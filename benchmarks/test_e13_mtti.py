"""Bench E13 — MTTI after similarity filtering (paper: ~3.5 days).

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e13_mtti(benchmark, dataset):
    result = run_and_print(benchmark, "e13", dataset)
    assert 2.0 < result.metrics["job_mtti_days_at_default"] < 7.0
