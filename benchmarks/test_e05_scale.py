"""Bench E05 — failure rate vs job scale.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e05_scale(benchmark, dataset):
    result = run_and_print(benchmark, "e05", dataset)
    assert result.metrics["large_over_small"] > 1.2
