"""Analytics-kernel microbenchmarks and the n_days scaling sweep.

Two jobs, both recorded into ``BENCH_pipeline.json``:

1. **Legacy vs vectorized** — each rewritten kernel (searchsorted
   attribution join, batched bootstrap, vectorized CUSUM/permutation
   changepoint, argsort-slice group iteration) is timed against its
   pre-rewrite implementation, kept verbatim below, on the base
   dataset.  Results are asserted value-identical before timing, so the
   speedup numbers always compare equal outputs.
2. **Scaling sweep** — the vectorized kernels run at every
   ``REPRO_KERNEL_SWEEP_DAYS`` scale (default ``120,500,1000,2001`` —
   the full BlueGene/Q lifespan is the routinely benchmarked
   configuration) and the per-kernel wall-times, the process RSS
   high-water mark after each scale, plus a log-log scaling exponent
   land in the ``kernel_sweep`` section.

Run ``pytest benchmarks/test_kernels_bench.py -q -s`` for the readable
summary.  CI scales the sweep down via the env knob.
"""

import json
import os
import time
from bisect import bisect_right

import numpy as np
import pytest

from repro.bgq.location import Location
from repro.core.attribution import NO_JOB, map_events_to_jobs
from repro.dataset import MiraDataset
from repro.stats.bootstrap import bootstrap_ci
from repro.stats.changepoint import detect_changepoints
from repro.table import Table

BENCH_SEED = 2019
SWEEP_DAYS = [
    float(d)
    for d in os.environ.get(
        "REPRO_KERNEL_SWEEP_DAYS", "120,500,1000,2001"
    ).split(",")
]
BASE_DAYS = SWEEP_DAYS[0]
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_pipeline.json")

# Filled by the tests below; merged into BENCH_pipeline.json at the end.
_KERNELS: dict[str, float] = {}
_SWEEP: list[dict] = []


@pytest.fixture(scope="module")
def base_dataset():
    return MiraDataset.synthesize(n_days=BASE_DAYS, seed=BENCH_SEED)


def _best_of(n, *timed):
    best = [float("inf")] * len(timed)
    for _ in range(n):
        for position, fn in enumerate(timed):
            start = time.perf_counter()
            fn()
            best[position] = min(best[position], time.perf_counter() - start)
    return best


def _record(prefix: str, legacy_s: float, vectorized_s: float) -> float:
    speedup = legacy_s / vectorized_s
    _KERNELS[f"{prefix}_legacy_s"] = round(legacy_s, 4)
    _KERNELS[f"{prefix}_vectorized_s"] = round(vectorized_s, 4)
    _KERNELS[f"{prefix}_speedup"] = round(speedup, 2)
    print(
        f"\n{prefix}: legacy {legacy_s:.4f}s vectorized {vectorized_s:.4f}s "
        f"({speedup:.1f}x)"
    )
    return speedup


# ---------------------------------------------------------------------------
# pre-rewrite kernels, kept verbatim as the timing baselines
# ---------------------------------------------------------------------------


def _legacy_event_midplanes(locations, spec):
    cache = {}
    out = []
    for code in locations:
        hit = cache.get(code)
        if hit is None:
            loc = Location.parse(code, spec)
            if loc.midplane is not None:
                hit = (loc.midplane_index(spec),)
            else:
                rack = spec.rack_index(loc.rack)
                base = rack * spec.midplanes_per_rack
                hit = tuple(range(base, base + spec.midplanes_per_rack))
            cache[code] = hit
        out.append(hit)
    return out


class _LegacyJobIntervalIndex:
    def __init__(self, jobs, spec):
        per_midplane = {}
        starts, ends = jobs["start_time"], jobs["end_time"]
        firsts, counts, ids = (
            jobs["first_midplane"],
            jobs["n_midplanes"],
            jobs["job_id"],
        )
        for i in range(jobs.n_rows):
            for midplane in range(int(firsts[i]), int(firsts[i]) + int(counts[i])):
                per_midplane.setdefault(midplane, []).append(
                    (float(starts[i]), float(ends[i]), int(ids[i]))
                )
        self._starts, self._intervals = {}, {}
        for midplane, intervals in per_midplane.items():
            intervals.sort()
            self._intervals[midplane] = intervals
            self._starts[midplane] = [iv[0] for iv in intervals]

    def lookup(self, midplane, timestamp):
        starts = self._starts.get(midplane)
        if not starts:
            return NO_JOB
        index = bisect_right(starts, timestamp) - 1
        if index < 0:
            return NO_JOB
        start, end, job_id = self._intervals[midplane][index]
        return job_id if start <= timestamp < end else NO_JOB


def _legacy_map_events_to_jobs(ras, jobs, spec):
    index = _LegacyJobIntervalIndex(jobs, spec)
    midplane_sets = _legacy_event_midplanes(ras["location"], spec)
    timestamps = ras["timestamp"]
    out = np.full(ras.n_rows, NO_JOB, dtype=np.int64)
    for i, (midplanes, timestamp) in enumerate(zip(midplane_sets, timestamps)):
        for midplane in midplanes:
            job_id = index.lookup(midplane, float(timestamp))
            if job_id != NO_JOB:
                out[i] = job_id
                break
    return out


def _legacy_bootstrap_estimates(sample, statistic, n_resamples, seed):
    arr = np.asarray(sample, dtype=np.float64)
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples, dtype=np.float64)
    for i in range(n_resamples):
        resample = arr[rng.integers(0, arr.size, size=arr.size)]
        estimates[i] = statistic(resample)
    return estimates


def _legacy_cusum_statistic(series):
    x = np.asarray(series, dtype=np.float64)
    n = x.size
    best_index, best_stat = -1, 0.0
    total = x.sum()
    cumulative = np.cumsum(x)
    overall_std = x.std(ddof=1)
    if overall_std == 0:
        return n // 2, 0.0
    for split in range(2, n - 1):
        left_mean = cumulative[split - 1] / split
        right_mean = (total - cumulative[split - 1]) / (n - split)
        pooled = overall_std * np.sqrt(1.0 / split + 1.0 / (n - split))
        stat = abs(left_mean - right_mean) / pooled
        if stat > best_stat:
            best_index, best_stat = split, stat
    return best_index, float(best_stat)


def _legacy_permutation_null(series, n_permutations, seed):
    rng = np.random.default_rng(seed)
    return np.array(
        [
            _legacy_cusum_statistic(rng.permutation(series))[1]
            for _ in range(n_permutations)
        ]
    )


def _mask_scan_apply(table, key, func):
    # Pre-rewrite apply: one O(n) mask per group, and every sub-table
    # rebuilt through the validating Table constructor (take() now uses
    # a validation-free internal path, so replicate the old cost here).
    gb = table.group_by(key)
    results = []
    for gid in range(gb._n_groups):
        idx = np.nonzero(gb._group_ids == gid)[0]
        sub = Table({name: arr[idx] for name, arr in table._data.items()})
        results.append(func(sub))
    return results


# ---------------------------------------------------------------------------
# legacy vs vectorized at the base scale
# ---------------------------------------------------------------------------


def test_attribution_join_speedup(base_dataset):
    """The e03 kernel: FATAL events joined against failed jobs."""
    ds = base_dataset
    failed = ds.jobs.filter(ds.jobs["exit_status"] != 0)
    fatal = ds.fatal_events()
    new = map_events_to_jobs(fatal, failed, ds.spec)
    old = _legacy_map_events_to_jobs(fatal, failed, ds.spec)
    assert np.array_equal(new, old)
    # The full-trace join (every RAS event x every job) is the e14 path.
    assert np.array_equal(
        map_events_to_jobs(ds.ras, ds.jobs, ds.spec),
        _legacy_map_events_to_jobs(ds.ras, ds.jobs, ds.spec),
    )
    t_legacy, t_vec = _best_of(
        3,
        lambda: _legacy_map_events_to_jobs(ds.ras, ds.jobs, ds.spec),
        lambda: map_events_to_jobs(ds.ras, ds.jobs, ds.spec),
    )
    speedup = _record("e03_join", t_legacy, t_vec)
    assert speedup > 2.5  # conservative floor; >8x on a quiet box


def test_bootstrap_speedup(base_dataset):
    failed = base_dataset.jobs.filter(base_dataset.jobs["exit_status"] != 0)
    sample = (failed["exit_status"] == 137).astype(np.float64)
    result = bootstrap_ci(sample, np.mean, seed=0)
    legacy = _legacy_bootstrap_estimates(sample, np.mean, 1000, 0)
    low, high = np.quantile(legacy, [0.025, 0.975])
    assert (result.low, result.high) == (float(low), float(high))
    t_legacy, t_vec = _best_of(
        3,
        lambda: _legacy_bootstrap_estimates(sample, np.mean, 1000, 0),
        lambda: bootstrap_ci(sample, np.mean, seed=0),
    )
    # The gathers and RNG draws are shared; the win is the removed
    # per-resample Python round-trip, so the floor is modest.
    _record("bootstrap", t_legacy, t_vec)


def test_changepoint_speedup():
    rng = np.random.default_rng(BENCH_SEED)
    series = np.concatenate(
        [rng.normal(1.0, 0.2, 48), rng.normal(2.5, 0.2, 48), rng.normal(1.5, 0.2, 48)]
    )

    def legacy():
        stat = _legacy_cusum_statistic(series)[1]
        return (_legacy_permutation_null(series, 200, 0) >= stat).sum()

    vec_found = detect_changepoints(series, seed=0)
    assert vec_found  # the injected shifts are detected
    t_legacy, t_vec = _best_of(
        3, legacy, lambda: detect_changepoints(series, seed=0)
    )
    # detect_changepoints recurses over segments (more work than the
    # single legacy scan), yet still wins; record, don't gate hard.
    _record("changepoint", t_legacy, t_vec)


def test_groupby_apply_speedup(base_dataset):
    jobs = base_dataset.jobs
    stat = lambda t: float(t["core_hours"].sum())  # noqa: E731
    new = jobs.group_by("user").apply(stat)
    old = _mask_scan_apply(jobs, "user", stat)
    assert new == old
    t_legacy, t_vec = _best_of(
        3,
        lambda: _mask_scan_apply(jobs, "user", stat),
        lambda: jobs.group_by("user").apply(stat),
    )
    speedup = _record("groupby_apply", t_legacy, t_vec)
    assert speedup > 1.5  # ~2.2x on a quiet box; margin for CI noise


# ---------------------------------------------------------------------------
# n_days scaling sweep
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n_days", SWEEP_DAYS)
def test_kernel_sweep(n_days):
    """Vectorized kernels at every sweep scale, 2001 days included."""
    dataset = MiraDataset.synthesize(n_days=n_days, seed=BENCH_SEED)
    jobs, ras = dataset.jobs, dataset.ras
    failed = jobs.filter(jobs["exit_status"] != 0)
    sample = (failed["exit_status"] == 137).astype(np.float64)

    start = time.perf_counter()
    map_events_to_jobs(ras, jobs, dataset.spec)
    join_s = time.perf_counter() - start

    start = time.perf_counter()
    bootstrap_ci(sample, np.mean, seed=0)
    bootstrap_s = time.perf_counter() - start

    start = time.perf_counter()
    jobs.group_by("user").apply(lambda t: float(t["core_hours"].sum()))
    groupby_s = time.perf_counter() - start

    from repro.core.lifetime import failure_rate_changepoints

    start = time.perf_counter()
    failure_rate_changepoints(dataset)
    changepoint_s = time.perf_counter() - start

    from check_rss_gate import _max_rss_kb

    entry = {
        "n_days": n_days,
        "n_jobs": jobs.n_rows,
        "n_ras_events": ras.n_rows,
        "join_s": round(join_s, 4),
        "bootstrap_s": round(bootstrap_s, 4),
        "groupby_apply_s": round(groupby_s, 4),
        "changepoint_s": round(changepoint_s, 4),
        # Process high-water mark after this scale: monotonic within
        # one run, so read it as "footprint by the time this scale
        # finished" (scales run in ascending order).
        "max_rss_kb": _max_rss_kb(),
    }
    _SWEEP.append(entry)
    print(f"\nsweep {n_days:g}d: {entry}")


def test_join_scaling_is_near_linear():
    """Log-log slope of join time vs event count stays well below 2."""
    done = sorted(_SWEEP, key=lambda e: e["n_days"])
    assert len(done) == len(SWEEP_DAYS)
    if len(done) < 2 or done[-1]["n_ras_events"] <= done[0]["n_ras_events"]:
        pytest.skip("sweep too small to fit a scaling exponent")
    events = np.array([e["n_ras_events"] for e in done], dtype=np.float64)
    times = np.array([max(e["join_s"], 1e-4) for e in done], dtype=np.float64)
    exponent = float(np.polyfit(np.log(events), np.log(times), 1)[0])
    _KERNELS["join_scaling_exponent"] = round(exponent, 3)
    print(f"\njoin scaling exponent: {exponent:.3f} over {events.tolist()}")
    assert exponent < 1.6  # the old per-event loop trends superlinear


def test_merge_into_bench_json():
    """Merge kernel timings into BENCH_pipeline.json without clobbering
    the pipeline-level sections written by test_pipeline_bench.py."""
    record = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            record = json.load(handle)
    record["kernels"] = dict(_KERNELS)
    record["kernel_sweep"] = sorted(_SWEEP, key=lambda e: e["n_days"])
    with open(BENCH_JSON, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nmerged {len(_KERNELS)} kernel timings + "
          f"{len(_SWEEP)}-point sweep into {BENCH_JSON}")
