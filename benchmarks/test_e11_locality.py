"""Bench E11 — fatal-event locality heatmap and metrics.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e11_locality(benchmark, dataset):
    result = run_and_print(benchmark, "e11", dataset)
    assert result.metrics["gini"] > 0.5
