"""Ablation A01 — filtering sensitivity to threshold and window.

The paper's similarity filter has two knobs: the time window and the
Jaccard threshold.  This bench sweeps both and prints the recovered
cluster count against the ground-truth incident count, exhibiting the
plateau that justifies the default operating point (window 1h,
threshold 0.5).
"""

import pytest

from repro.core import default_pipeline
from repro.table import Table

THRESHOLDS = (0.2, 0.35, 0.5, 0.65, 0.8, 0.95)
WINDOWS = (600.0, 1800.0, 3600.0, 7200.0)


def _sweep(dataset):
    fatal = dataset.fatal_events()
    truth = len(dataset.incidents)
    rows = {"window_s": [], "threshold": [], "clusters": [], "truth": [], "error": []}
    for window in WINDOWS:
        for threshold in THRESHOLDS:
            outcome = default_pipeline(
                temporal_window=window,
                spatial_window=window,
                similarity_window=window,
                similarity_threshold=threshold,
                spec=dataset.spec,
            ).run(fatal)
            rows["window_s"].append(window)
            rows["threshold"].append(threshold)
            rows["clusters"].append(outcome.n_clusters)
            rows["truth"].append(truth)
            rows["error"].append(
                abs(outcome.n_clusters - truth) / truth if truth else float("nan")
            )
    return Table(rows)


def test_a01_filter_sensitivity(benchmark, dataset):
    table = benchmark.pedantic(_sweep, args=(dataset,), rounds=1, iterations=1)
    print()
    print(table.to_text(max_rows=40))
    # The default operating point sits on the recovery plateau.
    default = table.filter(
        (table["window_s"] == 3600.0) & (table["threshold"] == 0.5)
    )
    assert default.row(0)["error"] < 0.3
    # Extreme thresholds over-split: more clusters than the default.
    loose = table.filter((table["window_s"] == 3600.0) & (table["threshold"] == 0.95))
    assert loose.row(0)["clusters"] >= default.row(0)["clusters"]
