"""Bench E06 — failure rate vs core-hours.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e06_corehours(benchmark, dataset):
    result = run_and_print(benchmark, "e06", dataset)
    assert result.metrics["wasted_share"] > 0.05
