"""Bench E16 — the 22 takeaways recomputed.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e16_takeaways(benchmark, dataset):
    result = run_and_print(benchmark, "e16", dataset)
    assert result.metrics["n_holding"] >= 19
