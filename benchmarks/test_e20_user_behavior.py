"""Bench E20 — user failure dynamics (extension)."""

from conftest import run_and_print


def test_e20_user_behavior(benchmark, dataset):
    result = run_and_print(benchmark, "e20", dataset)
    # Heterogeneous user propensities make repeated failures likely.
    assert result.metrics["repetition_factor"] > 1.5
