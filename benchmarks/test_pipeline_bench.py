"""Pipeline-level performance benchmarks for the three perf layers.

Each test measures one layer against its baseline and the final test
writes everything into ``BENCH_pipeline.json``:

- vectorized ``read_csv`` vs the pre-vectorization row-at-a-time parser
  (resulting tables asserted byte-identical)
- cold CSV directory load vs warm columnar-cache load (warm must win —
  this is the CI regression gate)
- the experiment suite at ``jobs=1`` vs ``jobs=N`` (recorded, not
  gated: single-core runners cannot speed up)

Run ``pytest benchmarks/test_pipeline_bench.py -q -s`` for a readable
summary.  ``REPRO_BENCH_DAYS`` scales the dataset (CI uses 30 days);
``REPRO_BENCH_JSON`` overrides the output path.
"""

import csv
import os
import time
from pathlib import Path

import pytest
from conftest import BENCH_DAYS, BENCH_SEED

from repro.dataset import MiraDataset
from repro.experiments.engine import bench_record, run_suite, write_bench_json
from repro.table import Table, read_csv

# Filled by the layer tests, written out by test_write_bench_json.
_STAGES: dict[str, float] = {}
_SUITES: dict[int, object] = {}
_RSS: dict[str, float] = {}


@pytest.fixture(scope="module")
def bench_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("pipeline-bench") / "ds"
    dataset = MiraDataset.synthesize(n_days=BENCH_DAYS, seed=BENCH_SEED)
    dataset.save(directory)
    return directory


def _best_of(n: int, *timed):
    """Interleave the candidates across ``n`` rounds; report each one's
    fastest round (interleaving keeps machine-load noise symmetric)."""
    best = [float("inf")] * len(timed)
    for _ in range(n):
        for position, fn in enumerate(timed):
            start = time.perf_counter()
            fn()
            best[position] = min(best[position], time.perf_counter() - start)
    return best


def _legacy_read_csv(path: Path) -> Table:
    """The pre-vectorization parser: stdlib reader, per-cell appends,
    per-cell int/float attempts.  Kept verbatim as the baseline."""

    def infer(values):
        if any(
            len(v) > 1 and v.lstrip("-")[:1] == "0" and v.lstrip("-")[1:2].isdigit()
            for v in values
        ):
            return values
        try:
            return [int(v) for v in values]
        except ValueError:
            pass
        try:
            return [float(v) for v in values]
        except ValueError:
            pass
        return values

    with Path(path).open(newline="") as handle:
        rows = list(csv.reader(handle))
    header, *body = rows
    columns = [[] for _ in header]
    for row in body:
        for cell, column in zip(row, columns):
            column.append(cell)
    return Table({name: infer(col) for name, col in zip(header, columns)})


def test_read_csv_vectorization(bench_dir):
    ras = bench_dir / "ras.csv"
    vectorized, legacy = read_csv(ras), _legacy_read_csv(ras)
    assert vectorized.column_names == legacy.column_names
    for name in vectorized.column_names:
        assert vectorized[name].dtype == legacy[name].dtype
        assert vectorized[name].tolist() == legacy[name].tolist()
    t_legacy, t_vec = _best_of(
        5, lambda: _legacy_read_csv(ras), lambda: read_csv(ras)
    )
    _STAGES["read_csv_legacy_s"] = round(t_legacy, 4)
    _STAGES["read_csv_vectorized_s"] = round(t_vec, 4)
    _STAGES["read_csv_speedup"] = round(t_legacy / t_vec, 2)
    print(
        f"\nread_csv[ras]: legacy {t_legacy:.3f}s vectorized {t_vec:.3f}s "
        f"({t_legacy / t_vec:.2f}x)"
    )
    assert t_legacy / t_vec > 1.3  # conservative floor; ~2x on a quiet box


def test_cache_warm_vs_cold(bench_dir):
    start = time.perf_counter()
    cold = MiraDataset.load(bench_dir, cache=False)
    t_cold = time.perf_counter() - start
    MiraDataset.load(bench_dir)  # prime the columnar cache
    start = time.perf_counter()
    warm = MiraDataset.load(bench_dir)
    t_warm = time.perf_counter() - start
    assert warm.jobs == cold.jobs and warm.ras == cold.ras
    _STAGES["load_cold_s"] = round(t_cold, 4)
    _STAGES["load_warm_s"] = round(t_warm, 4)
    _STAGES["load_speedup"] = round(t_cold / t_warm, 2)
    print(f"\nload: cold {t_cold:.3f}s warm {t_warm:.3f}s ({t_cold / t_warm:.2f}x)")
    assert t_warm < t_cold  # the CI regression gate


def test_suite_jobs_scaling(bench_dir):
    dataset = MiraDataset.load(bench_dir)
    sequential = run_suite(dataset, jobs=1)
    parallel = run_suite(dataset, jobs=4)
    _SUITES[1], _SUITES[4] = sequential, parallel
    _STAGES["suite_jobs1_s"] = round(sequential.total_seconds, 4)
    _STAGES["suite_jobs4_s"] = round(parallel.total_seconds, 4)
    _STAGES["suite_cpu_count"] = os.cpu_count() or 1
    assert [o.experiment_id for o in parallel.outcomes] == [
        o.experiment_id for o in sequential.outcomes
    ]
    assert [o.status for o in parallel.outcomes] == [
        o.status for o in sequential.outcomes
    ]
    assert all(o.status == "ok" for o in sequential.outcomes)
    print(
        f"\nsuite: jobs=1 {sequential.total_seconds:.2f}s "
        f"jobs=4 {parallel.total_seconds:.2f}s "
        f"({os.cpu_count() or 1} CPU(s) available)"
    )


def test_end_to_end_report(bench_dir):
    """Full repro-report path: synthesize (or hit the cache) + suite."""
    def run_cold():
        dataset = MiraDataset.synthesize(
            n_days=BENCH_DAYS, seed=BENCH_SEED, refresh_cache=True
        )
        run_suite(dataset, jobs=1)

    def run_warm():
        dataset = MiraDataset.synthesize(n_days=BENCH_DAYS, seed=BENCH_SEED)
        run_suite(dataset, jobs=1)

    t_cold, t_warm = _best_of(2, run_cold, run_warm)
    _STAGES["report_cold_s"] = round(t_cold, 4)
    _STAGES["report_warm_s"] = round(t_warm, 4)
    _STAGES["report_speedup"] = round(t_cold / t_warm, 2)
    print(f"\nreport: cold {t_cold:.2f}s warm {t_warm:.2f}s ({t_cold / t_warm:.2f}x)")
    assert t_warm < t_cold


def test_worker_rss_by_mode():
    """Per-worker peak RSS, pickled hand-off vs shared arena.

    Each measurement is a fresh subprocess (see
    ``check_rss_gate.py``); the recorded numbers are increments over a
    no-dataset baseline worker and land in the ``rss`` section of
    ``BENCH_pipeline.json``.
    """
    from check_rss_gate import measure_modes

    record = measure_modes(BENCH_DAYS, BENCH_SEED)
    _RSS.update(record)
    print(
        f"\nworker rss at {BENCH_DAYS:g}d: "
        f"pickle +{record['pickle_handoff_kb']:,} KiB, "
        f"arena +{record['arena_handoff_kb']:,} KiB "
        f"({record['reduction']:.2f}x reduction)"
    )
    # The CI gate runs check_rss_gate.py at a larger scale; here we
    # only require the arena hand-off to actually be the smaller one.
    assert record["arena_handoff_kb"] < record["pickle_handoff_kb"]


def test_write_bench_json(bench_dir):
    import json

    dataset = MiraDataset.load(bench_dir)
    suite = _SUITES.get(max(_SUITES)) if _SUITES else run_suite(dataset, jobs=1)
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_pipeline.json")
    record = bench_record(suite, dataset, stages=dict(_STAGES))
    record["bench"] = {"n_days": BENCH_DAYS, "seed": BENCH_SEED}
    if _RSS:
        record["rss"] = dict(_RSS)
    # The kernel microbenchmarks (test_kernels_bench.py) own the
    # "kernels"/"kernel_sweep" sections of the same file; carry them over
    # so whichever bench runs second does not drop the other's results.
    target = Path(path)
    if target.exists():
        try:
            previous = json.loads(target.read_text())
        except json.JSONDecodeError:
            previous = {}
        for key in ("kernels", "kernel_sweep"):
            if key in previous:
                record[key] = previous[key]
        if "rss" in previous and not _RSS:
            record["rss"] = previous["rss"]
    written = write_bench_json(path, record)
    assert written.exists()
    print(f"\nwrote {written} ({len(_STAGES)} stage timings)")
