"""Bench E12 — event-filtering ablation (per-stage reduction).

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e12_filtering(benchmark, dataset):
    result = run_and_print(benchmark, "e12", dataset)
    assert result.metrics["total_reduction"] > 5
