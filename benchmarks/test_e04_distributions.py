"""Bench E04 — best-fit distribution per exit family.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e04_distributions(benchmark, dataset):
    result = run_and_print(benchmark, "e04", dataset)
    assert result.metrics["families_matching_paper"] >= 3
