"""Shared fixtures for the benchmark harness.

One 120-day dataset is synthesized per session and reused by every
experiment bench; each bench times the analysis (not the synthesis) and
prints the regenerated rows/series so `pytest benchmarks/
--benchmark-only -s` reproduces the paper's tables and figures in one
pass.

``REPRO_BENCH_DAYS`` scales the dataset down for constrained
environments (CI runs the suite at 30 days).
"""

import os

import pytest

from repro.dataset import MiraDataset

BENCH_DAYS = float(os.environ.get("REPRO_BENCH_DAYS", "120"))
BENCH_SEED = 2019  # the paper's year


@pytest.fixture(scope="session")
def dataset():
    return MiraDataset.synthesize(n_days=BENCH_DAYS, seed=BENCH_SEED)


def run_and_print(benchmark, experiment_id: str, dataset, **params):
    """Time one experiment and print its regenerated series."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, dataset),
        kwargs=params,
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.to_text(max_rows=30))
    return result
