"""Bench E18 — submit-time failure predictability (extension).

Regenerates the predictor comparison table.
"""

from conftest import run_and_print


def test_e18_prediction(benchmark, dataset):
    result = run_and_print(benchmark, "e18", dataset)
    assert result.metrics["auc_user_history"] > 0.7
    assert result.metrics["auc_logistic"] > 0.7
