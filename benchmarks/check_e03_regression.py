"""CI regression gate for the e03 attribution experiment.

Reads the committed ``BENCH_pipeline.json`` baseline, re-runs e03
against the same synthesized dataset (``bench.n_days`` / ``bench.seed``
from the baseline record), and fails if the fresh wall-time exceeds
``--factor`` (default 2x) times the committed seconds.  A small
absolute grace (``--grace``, default 0.25s) keeps sub-second baselines
from tripping on scheduler jitter alone.

Usage::

    PYTHONPATH=src python benchmarks/check_e03_regression.py [BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def baseline_seconds(record: dict, experiment_id: str) -> float:
    """Committed wall-time for one experiment.

    Only ``id``/``status``/``seconds`` are read; any other field on the
    entry (``max_rss_kb``, future additions) and any other top-level
    section (``rss``, ``kernel_sweep``, ...) is ignored, so the gate
    keeps working as the bench record grows.
    """
    for entry in record.get("experiments", []):
        if entry.get("id") != experiment_id or entry.get("status") != "ok":
            continue
        try:
            return float(entry["seconds"])
        except (KeyError, TypeError, ValueError):
            continue
    raise SystemExit(
        f"baseline has no ok outcome for {experiment_id!r}; "
        "re-commit BENCH_pipeline.json from a full bench run"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline", nargs="?", default="BENCH_pipeline.json",
        help="committed bench record to gate against",
    )
    parser.add_argument("--experiment", default="e03")
    parser.add_argument(
        "--factor", type=float, default=2.0,
        help="fail when fresh seconds > factor * baseline seconds",
    )
    parser.add_argument(
        "--grace", type=float, default=0.25,
        help="absolute seconds always tolerated on top of the factor",
    )
    args = parser.parse_args(argv)

    record = json.loads(Path(args.baseline).read_text())
    bench = record.get("bench") or {}
    n_days = float(bench.get("n_days", record["dataset"]["n_days"]))
    seed = int(bench.get("seed", record["dataset"]["seed"]))
    committed = baseline_seconds(record, args.experiment)

    from repro.dataset import MiraDataset
    from repro.experiments.engine import run_suite

    dataset = MiraDataset.synthesize(n_days=n_days, seed=seed)
    # Warm-up run first: the gate times the kernel, not import costs or
    # first-touch allocator behaviour.
    run_suite(dataset, [args.experiment], jobs=1)
    suite = run_suite(dataset, [args.experiment], jobs=1)
    outcome = suite.outcome(args.experiment)
    if outcome.status != "ok":
        print(f"FAIL: {args.experiment} did not complete: {outcome.message}")
        return 1

    limit = args.factor * committed + args.grace
    verdict = "OK" if outcome.seconds <= limit else "FAIL"
    print(
        f"{verdict}: {args.experiment} at {n_days:g} days took "
        f"{outcome.seconds:.3f}s (baseline {committed:.3f}s, "
        f"limit {limit:.3f}s = {args.factor:g}x + {args.grace:g}s grace)"
    )
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
