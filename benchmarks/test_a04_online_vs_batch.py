"""Ablation A04 — online vs batch similarity filtering.

The online filter exists so operators can consume the live stream; this
bench shows its cost relative to the batch algorithm on the same FATAL
stream and re-checks output equivalence at bench scale.
"""

import time

from repro.core.filtering import events_to_clusters, similarity_filter
from repro.ras.replay import OnlineSimilarityFilter, replay
from repro.table import Table


def _run_both(dataset):
    fatal = dataset.fatal_events()
    started = time.perf_counter()
    batch = similarity_filter(
        events_to_clusters(fatal), window_seconds=3600, threshold=0.5
    )
    batch_seconds = time.perf_counter() - started

    started = time.perf_counter()
    online = OnlineSimilarityFilter(3600, 0.5)
    closed = []
    for event in replay(fatal):
        closed += online.push(event)
    closed += online.flush()
    online_seconds = time.perf_counter() - started
    return batch, closed, batch_seconds, online_seconds


def test_a04_online_vs_batch(benchmark, dataset):
    batch, closed, batch_seconds, online_seconds = benchmark.pedantic(
        _run_both, args=(dataset,), rounds=1, iterations=1
    )
    print()
    print(
        Table(
            {
                "mode": ["batch", "online"],
                "clusters": [batch.n_rows, len(closed)],
                "seconds": [batch_seconds, online_seconds],
            }
        ).to_text()
    )
    assert len(closed) == batch.n_rows
    assert sum(c.n_events for c in closed) == int(batch["n_events"].sum())
