#!/usr/bin/env python
"""Gate a ``BENCH_serve.json`` record: schema-valid and a clean drill.

Used by the CI ``serve-smoke`` job after ``repro-replay`` has fired a
workload at a live ``repro-serve``.  Exits 1 (with a reason) unless:

- the record matches the bench-serve schema (kind, version, sections);
- every fired request is accounted for by a typed protocol outcome
  (no ``unreachable``, no ``unaccounted``, counts sum to the total);
- the daemon survived the drill (healthy before and after, same PID);
- latency percentiles were actually measured (p50/p99 present, sane);
- when a ``cache`` section is present, its shape is valid.

Optional result-cache gates (the CI warm/cold pass sets both)::

    --require-cache-speedup 5   # warm-hit p50 must be >= 5x faster
                                # than the cold (computed-miss) p50
    --require-coalesced         # >0 requests rode an in-flight twin

Usage: ``python benchmarks/check_serve_bench.py [BENCH_serve.json]
[--require-cache-speedup X] [--require-coalesced]``
"""

import argparse
import json
import sys

from repro.serve.protocol import OUTCOMES

REQUIRED_LATENCY_KEYS = ("count", "p50_ms", "p99_ms", "mean_ms", "max_ms")
REQUIRED_CACHE_KEYS = (
    "hits", "misses", "coalesced", "bypasses", "hit_rate",
    "warm_p50_ms", "cold_p50_ms",
)


def fail(reason: str) -> "int":
    print(f"FAIL: {reason}")
    return 1


def check_cache(
    record: dict, require_speedup: float | None, require_coalesced: bool
) -> int | None:
    """Cache-section gates; ``None`` means this part passed."""
    cache = record.get("cache")
    if cache is None:
        # Old records have no cache section; that only fails when a
        # cache gate was explicitly requested.
        if require_speedup is not None or require_coalesced:
            return fail("cache gate requested but record has no cache section")
        return None
    if not isinstance(cache, dict):
        return fail(f"cache section is {type(cache).__name__}, not object")
    missing = [k for k in REQUIRED_CACHE_KEYS if k not in cache]
    if missing:
        return fail(f"cache section missing {', '.join(missing)}")
    if require_speedup is not None:
        if cache["hits"] < 1:
            return fail("cache speedup gate: no cache hits recorded")
        warm, cold = cache["warm_p50_ms"], cache["cold_p50_ms"]
        if not warm or warm <= 0:
            return fail(f"cache speedup gate: warm p50 is {warm!r}")
        if not cold or cold <= 0:
            return fail(f"cache speedup gate: cold p50 is {cold!r}")
        if cold < require_speedup * warm:
            return fail(
                f"warm-hit p50 {warm}ms is only {cold / warm:.1f}x faster "
                f"than cold p50 {cold}ms (need >= {require_speedup:g}x)"
            )
    if require_coalesced and cache.get("coalesced", 0) < 1:
        return fail("coalescing gate: no requests were coalesced")
    return None


def check(
    record: dict,
    require_speedup: float | None = None,
    require_coalesced: bool = False,
) -> int:
    if record.get("schema") != 1 or record.get("kind") != "bench-serve":
        return fail(
            f"not a bench-serve record (schema={record.get('schema')!r}, "
            f"kind={record.get('kind')!r})"
        )
    for section in ("config", "requests", "latency_ms", "server"):
        if not isinstance(record.get(section), dict):
            return fail(f"missing section {section!r}")

    requests = record["requests"]
    total = requests.get("total", 0)
    if not isinstance(total, int) or total < 1:
        return fail(f"no requests recorded (total={total!r})")
    outcomes = requests.get("outcomes", {})
    unknown = sorted(set(outcomes) - set(OUTCOMES))
    if unknown:
        return fail(f"unknown outcome(s) in record: {', '.join(unknown)}")
    if sum(outcomes.values()) != total:
        return fail(
            f"outcome counts {outcomes} do not sum to total {total}"
        )
    if requests.get("unreachable", 1) != 0:
        return fail(f"{requests.get('unreachable')} request(s) unreachable")
    if requests.get("unaccounted", 1) != 0:
        return fail(f"{requests.get('unaccounted')} request(s) unaccounted")

    server = record["server"]
    for key in ("healthy_before", "healthy_after", "same_pid"):
        if server.get(key) is not True:
            return fail(f"server.{key} is {server.get(key)!r} (daemon died?)")

    overall = record["latency_ms"].get("overall", {})
    missing = [k for k in REQUIRED_LATENCY_KEYS if k not in overall]
    if missing:
        return fail(f"latency_ms.overall missing {', '.join(missing)}")
    if overall["count"] != total:
        return fail(
            f"latency count {overall['count']} != request total {total}"
        )
    if not (0 < overall["p50_ms"] <= overall["p99_ms"] <= overall["max_ms"]):
        return fail(
            "latency percentiles not ordered: "
            f"p50={overall['p50_ms']} p99={overall['p99_ms']} "
            f"max={overall['max_ms']}"
        )

    if record.get("clean") is not True:
        return fail("record is not marked clean")

    failed = check_cache(record, require_speedup, require_coalesced)
    if failed is not None:
        return failed

    shed = outcomes.get("shed", 0)
    errors = outcomes.get("error", 0)
    summary = (
        f"OK: {total} request(s) all typed "
        f"({', '.join(f'{k}={v}' for k, v in sorted(outcomes.items()))}); "
        f"p50 {overall['p50_ms']}ms p99 {overall['p99_ms']}ms; "
        f"shed={shed} errors={errors}; daemon survived (pid "
        f"{server.get('pid')}, {server.get('workers_replaced')} worker "
        "replacement(s))"
    )
    cache = record.get("cache")
    if isinstance(cache, dict):
        summary += (
            f"; cache hits={cache.get('hits')} "
            f"misses={cache.get('misses')} "
            f"coalesced={cache.get('coalesced')} "
            f"hit_rate={cache.get('hit_rate')} "
            f"warm_p50={cache.get('warm_p50_ms')}ms "
            f"cold_p50={cache.get('cold_p50_ms')}ms"
        )
    print(summary)
    return 0


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        prog="check_serve_bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("path", nargs="?", default="BENCH_serve.json")
    parser.add_argument(
        "--require-cache-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless cold p50 >= X * warm-hit p50 (and hits > 0)",
    )
    parser.add_argument(
        "--require-coalesced",
        action="store_true",
        help="fail unless at least one request was coalesced",
    )
    args = parser.parse_args(argv[1:])
    try:
        with open(args.path) as handle:
            record = json.load(handle)
    except (OSError, ValueError) as error:
        return fail(f"cannot read {args.path}: {error}")
    if not isinstance(record, dict):
        return fail(f"{args.path}: not a JSON object")
    return check(
        record,
        require_speedup=args.require_cache_speedup,
        require_coalesced=args.require_coalesced,
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv))
