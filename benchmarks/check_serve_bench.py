#!/usr/bin/env python
"""Gate a ``BENCH_serve.json`` record: schema-valid and a clean drill.

Used by the CI ``serve-smoke`` job after ``repro-replay`` has fired a
chaos-armed workload at a live ``repro-serve``.  Exits 1 (with a
reason) unless:

- the record matches the bench-serve schema (kind, version, sections);
- every fired request is accounted for by a typed protocol outcome
  (no ``unreachable``, no ``unaccounted``, counts sum to the total);
- the daemon survived the drill (healthy before and after, same PID);
- latency percentiles were actually measured (p50/p99 present, sane).

Usage: ``python benchmarks/check_serve_bench.py [BENCH_serve.json]``
"""

import json
import sys

from repro.serve.protocol import OUTCOMES

REQUIRED_LATENCY_KEYS = ("count", "p50_ms", "p99_ms", "mean_ms", "max_ms")


def fail(reason: str) -> "int":
    print(f"FAIL: {reason}")
    return 1


def check(record: dict) -> int:
    if record.get("schema") != 1 or record.get("kind") != "bench-serve":
        return fail(
            f"not a bench-serve record (schema={record.get('schema')!r}, "
            f"kind={record.get('kind')!r})"
        )
    for section in ("config", "requests", "latency_ms", "server"):
        if not isinstance(record.get(section), dict):
            return fail(f"missing section {section!r}")

    requests = record["requests"]
    total = requests.get("total", 0)
    if not isinstance(total, int) or total < 1:
        return fail(f"no requests recorded (total={total!r})")
    outcomes = requests.get("outcomes", {})
    unknown = sorted(set(outcomes) - set(OUTCOMES))
    if unknown:
        return fail(f"unknown outcome(s) in record: {', '.join(unknown)}")
    if sum(outcomes.values()) != total:
        return fail(
            f"outcome counts {outcomes} do not sum to total {total}"
        )
    if requests.get("unreachable", 1) != 0:
        return fail(f"{requests.get('unreachable')} request(s) unreachable")
    if requests.get("unaccounted", 1) != 0:
        return fail(f"{requests.get('unaccounted')} request(s) unaccounted")

    server = record["server"]
    for key in ("healthy_before", "healthy_after", "same_pid"):
        if server.get(key) is not True:
            return fail(f"server.{key} is {server.get(key)!r} (daemon died?)")

    overall = record["latency_ms"].get("overall", {})
    missing = [k for k in REQUIRED_LATENCY_KEYS if k not in overall]
    if missing:
        return fail(f"latency_ms.overall missing {', '.join(missing)}")
    if overall["count"] != total:
        return fail(
            f"latency count {overall['count']} != request total {total}"
        )
    if not (0 < overall["p50_ms"] <= overall["p99_ms"] <= overall["max_ms"]):
        return fail(
            "latency percentiles not ordered: "
            f"p50={overall['p50_ms']} p99={overall['p99_ms']} "
            f"max={overall['max_ms']}"
        )

    if record.get("clean") is not True:
        return fail("record is not marked clean")

    shed = outcomes.get("shed", 0)
    errors = outcomes.get("error", 0)
    print(
        f"OK: {total} request(s) all typed "
        f"({', '.join(f'{k}={v}' for k, v in sorted(outcomes.items()))}); "
        f"p50 {overall['p50_ms']}ms p99 {overall['p99_ms']}ms; "
        f"shed={shed} errors={errors}; daemon survived (pid "
        f"{server.get('pid')}, {server.get('workers_replaced')} worker "
        "replacement(s))"
    )
    return 0


def main(argv: list) -> int:
    path = argv[1] if len(argv) > 1 else "BENCH_serve.json"
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (OSError, ValueError) as error:
        return fail(f"cannot read {path}: {error}")
    if not isinstance(record, dict):
        return fail(f"{path}: not a JSON object")
    return check(record)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
