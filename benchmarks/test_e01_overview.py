"""Bench E01 — dataset overview table.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e01_overview(benchmark, dataset):
    result = run_and_print(benchmark, "e01", dataset)
    assert result.metrics["n_jobs"] > 0
    assert 0.3 < result.metrics["utilization"] < 0.95
