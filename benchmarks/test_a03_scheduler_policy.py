"""Ablation A03 — scheduler policy effect on the delivered trace.

The spatial analyses join RAS events against where the scheduler placed
jobs; this bench checks how much the placement policy matters.  It runs
the same intent stream under plain FCFS (no backfill) and under EASY
backfill at several depths, printing utilization, median wait, and the
number of system-caused failures (the quantity the RAS join consumes).
"""

from repro.ras import RasGenerator
from repro.scheduler import CobaltScheduler, SchedulerParams, WorkloadModel
from repro.table import Table

DAYS = 60.0
DEPTHS = (0, 8, 64, 256)


def _policy_sweep():
    intents = WorkloadModel(seed=7).generate(DAYS)
    _, incidents = RasGenerator(seed=7).generate(DAYS)
    rows = {
        "backfill_depth": [], "completed": [], "utilization": [],
        "median_wait_h": [], "system_failures": [],
    }
    capacity = 49_152 * 16 * 24.0 * DAYS
    for depth in DEPTHS:
        result = CobaltScheduler(
            params=SchedulerParams(backfill_depth=depth)
        ).run(intents, incidents, horizon_days=DAYS)
        waits = sorted(j.wait_time for j in result.jobs)
        core_hours = sum(j.core_hours for j in result.jobs)
        rows["backfill_depth"].append(depth)
        rows["completed"].append(result.n_completed)
        rows["utilization"].append(core_hours / capacity)
        rows["median_wait_h"].append(waits[len(waits) // 2] / 3600.0)
        rows["system_failures"].append(result.n_system_failures)
    return Table(rows)


def test_a03_scheduler_policy(benchmark):
    table = benchmark.pedantic(_policy_sweep, rounds=1, iterations=1)
    print()
    print(table.to_text())
    rows = {r["backfill_depth"]: r for r in table.to_rows()}
    # Backfill must improve throughput and cut waiting vs plain FCFS.
    assert rows[256]["utilization"] > rows[0]["utilization"]
    assert rows[256]["median_wait_h"] < rows[0]["median_wait_h"]
    # System-failure counts stay in the same regime across policies: the
    # attribution analyses are not an artifact of the queue discipline.
    assert rows[256]["system_failures"] <= 3 * max(rows[0]["system_failures"], 1)
