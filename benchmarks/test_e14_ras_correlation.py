"""Bench E14 — RAS exposure vs users/core-hours correlation.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e14_ras_correlation(benchmark, dataset):
    result = run_and_print(benchmark, "e14", dataset)
    assert result.metrics["spearman"] > 0.3
