"""Bench E02 — exit-status breakdown figure.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e02_exit_status(benchmark, dataset):
    result = run_and_print(benchmark, "e02", dataset)
    assert 0.1 < result.metrics["failure_rate"] < 0.45
