"""Bench E21 — WARN precursors of fatal events (extension)."""

from conftest import run_and_print


def test_e21_precursors(benchmark, dataset):
    result = run_and_print(benchmark, "e21", dataset)
    assert result.metrics["coverage"] > 0.3
