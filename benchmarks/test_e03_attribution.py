"""Bench E03 — user- vs system-caused attribution (paper: 99.4% user).

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e03_attribution(benchmark, dataset):
    result = run_and_print(benchmark, "e03", dataset)
    assert result.metrics["user_share"] > 0.97
