"""Bench E15 — I/O behaviour of failed vs successful jobs.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e15_io(benchmark, dataset):
    result = run_and_print(benchmark, "e15", dataset)
    assert result.metrics["write_per_ch_success_over_failed"] > 1.5
