"""Ablation A02 — experiment stability across trace length and seed.

The study's claims should not be artifacts of one trace: this bench
re-synthesizes datasets at several spans and seeds and prints the key
headline metrics, showing which stabilize with scale (attribution
share, concentration) and which stay noisy at short spans (MTTI).
"""

from repro.core import attribute_failures, attribution_summary
from repro.core.characterize import failure_concentration
from repro.dataset import MiraDataset
from repro.table import Table

CONFIGS = ((30.0, 11), (30.0, 12), (90.0, 11), (90.0, 12))


def _stability_sweep():
    rows = {
        "days": [], "seed": [], "failure_rate": [],
        "user_share": [], "user_gini": [],
    }
    for days, seed in CONFIGS:
        dataset = MiraDataset.synthesize(n_days=days, seed=seed)
        summary = dataset.summary()
        attribution = attribution_summary(
            attribute_failures(dataset.jobs, dataset.fatal_events(), dataset.spec)
        )
        concentration = failure_concentration(dataset.jobs, "user")
        rows["days"].append(days)
        rows["seed"].append(seed)
        rows["failure_rate"].append(summary["failure_rate"])
        rows["user_share"].append(attribution["user_share"])
        rows["user_gini"].append(concentration["gini"])
    return Table(rows)


def test_a02_workload_scale(benchmark):
    table = benchmark.pedantic(_stability_sweep, rounds=1, iterations=1)
    print()
    print(table.to_text())
    # The attribution and concentration claims hold at every span/seed.
    assert (table["user_share"] > 0.95).all()
    assert (table["user_gini"] > 0.5).all()
    assert ((table["failure_rate"] > 0.1) & (table["failure_rate"] < 0.45)).all()
