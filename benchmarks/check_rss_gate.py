"""CI gate for the zero-copy dataset hand-off: worker RSS by mode.

Measures the peak resident set of a *fresh* worker process that
receives the benchmark dataset two ways:

- ``pickle`` (``mode="ram"``): the dataset is serialized in full and
  the worker materializes every column — the pre-arena hand-off.
- ``arena`` (``mode="mmap"``): the dataset pickles as tiny
  ``(path, table, fingerprint)`` descriptors and the worker attaches
  the shared read-only arena (:mod:`repro.table.arena`), paying only
  for the pages its queries actually touch.

A third baseline worker loads no dataset at all; its RSS (interpreter
plus numpy) is subtracted from both measurements so the gate compares
dataset *increments*, not interpreter overhead.  Every worker is a
fresh subprocess (``--measure``) because ``ru_maxrss`` is a monotonic
per-process high-water mark.

The gate fails when the arena increment exceeds ``--limit-ratio``
(default 0.5) of the pickle increment.  With ``--json`` the measured
numbers are merged into ``BENCH_pipeline.json`` under ``"rss"``.

Usage::

    PYTHONPATH=src python benchmarks/check_rss_gate.py [--days 500]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import resource
import subprocess
import sys
import tempfile
from pathlib import Path


def _max_rss_kb() -> int:
    """Peak RSS of this process in KiB.

    Prefers ``/proc/self/status`` ``VmHWM``: unlike ``ru_maxrss`` —
    which Linux carries *across exec*, so a worker forked from a fat
    parent inherits the parent's high-water mark — ``VmHWM`` belongs
    to the process's own address space and starts fresh.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        peak //= 1024
    return int(peak)


def _measure(payload: str) -> int:
    """Worker body: optionally load a pickled dataset, do work, report.

    The work mirrors a serve/pool worker answering one query: a summary
    plus one experiment.  Prints a one-line JSON record on stdout.
    """
    # Everything a worker imports is charged to the baseline too, so
    # the increments isolate the dataset hand-off itself.
    import numpy  # noqa: F401
    import repro.experiments  # noqa: F401
    from repro.dataset import MiraDataset  # noqa: F401

    if payload != "none":
        with open(payload, "rb") as handle:
            dataset = pickle.load(handle)
        dataset.summary()
        from repro.experiments import run_experiment

        run_experiment("e01", dataset)
    print(json.dumps({"max_rss_kb": _max_rss_kb()}))
    return 0


def _spawn_measure(payload: str) -> int:
    output = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--measure", payload],
        check=True,
        capture_output=True,
        text=True,
        env=os.environ,
    ).stdout
    return int(json.loads(output.strip().splitlines()[-1])["max_rss_kb"])


def measure_modes(n_days: float, seed: int) -> dict:
    """Measure per-worker RSS increments for both hand-off modes.

    Returns ``{"n_days", "baseline_kb", "pickle_handoff_kb",
    "arena_handoff_kb", "reduction"}`` where the hand-off numbers are
    increments over the no-dataset baseline worker.
    """
    from repro.dataset import MiraDataset

    ram = MiraDataset.synthesize(n_days=n_days, seed=seed, mode="ram")
    mmap = MiraDataset.synthesize(n_days=n_days, seed=seed, mode="mmap")

    with tempfile.TemporaryDirectory(prefix="rss-gate-") as tmp:
        ram_pickle = Path(tmp) / "ram.pkl"
        mmap_pickle = Path(tmp) / "mmap.pkl"
        ram_pickle.write_bytes(pickle.dumps(ram))
        mmap_pickle.write_bytes(pickle.dumps(mmap))
        print(
            f"hand-off bytes: pickle {ram_pickle.stat().st_size:,} "
            f"arena descriptor {mmap_pickle.stat().st_size:,}"
        )
        baseline_kb = _spawn_measure("none")
        pickle_kb = _spawn_measure(str(ram_pickle))
        arena_kb = _spawn_measure(str(mmap_pickle))

    pickle_inc = max(pickle_kb - baseline_kb, 1)
    arena_inc = max(arena_kb - baseline_kb, 1)
    return {
        "n_days": n_days,
        "baseline_kb": baseline_kb,
        "pickle_handoff_kb": pickle_inc,
        "arena_handoff_kb": arena_inc,
        "reduction": round(pickle_inc / arena_inc, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--measure", metavar="PICKLE",
        help="internal: run as a measurement worker on this payload "
             "('none' = baseline)",
    )
    parser.add_argument(
        "--days", type=float,
        default=float(os.environ.get("REPRO_RSS_GATE_DAYS", "500")),
        help="dataset size for the gate (the largest practical sweep)",
    )
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument(
        "--limit-ratio", type=float, default=0.5,
        help="fail when arena increment > ratio * pickle increment",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="merge the measurements into this BENCH_pipeline.json",
    )
    args = parser.parse_args(argv)

    if args.measure:
        return _measure(args.measure)

    record = measure_modes(args.days, args.seed)
    print(
        f"worker RSS at {args.days:g} days: baseline {record['baseline_kb']:,} KiB, "
        f"+{record['pickle_handoff_kb']:,} KiB pickled, "
        f"+{record['arena_handoff_kb']:,} KiB arena "
        f"({record['reduction']:.2f}x reduction)"
    )

    if args.json:
        target = Path(args.json)
        merged = {}
        if target.exists():
            try:
                merged = json.loads(target.read_text())
            except json.JSONDecodeError:
                merged = {}
        merged["rss"] = record
        target.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"merged rss section into {target}")

    limit = args.limit_ratio * record["pickle_handoff_kb"]
    if record["arena_handoff_kb"] > limit:
        print(
            f"FAIL: arena worker RSS {record['arena_handoff_kb']:,} KiB exceeds "
            f"{args.limit_ratio:g}x pickle-mode ({limit:,.0f} KiB)"
        )
        return 1
    print(
        f"OK: arena worker RSS {record['arena_handoff_kb']:,} KiB <= "
        f"{args.limit_ratio:g}x pickle-mode ({limit:,.0f} KiB)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
