"""Bench E09 — RAS severity-by-component composition table.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e09_ras_breakdown(benchmark, dataset):
    result = run_and_print(benchmark, "e09", dataset)
    assert result.metrics["info_share"] > 0.5
