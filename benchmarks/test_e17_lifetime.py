"""Bench E17 — machine-life phase analysis (extension).

Regenerates the epoch failure-rate series and changepoint scan.
"""

from conftest import run_and_print


def test_e17_lifetime(benchmark, dataset):
    result = run_and_print(benchmark, "e17", dataset)
    assert result.metrics["n_changepoints"] == 0  # stationary by construction
