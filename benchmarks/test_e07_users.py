"""Bench E07 — failures by user/project (concentration).

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e07_users(benchmark, dataset):
    result = run_and_print(benchmark, "e07", dataset)
    assert result.metrics["user_top10pct_share"] > 0.5
