"""Streaming ingestion benchmark: tail throughput and checkpoint cost.

Measures the streaming pipeline against the batch loader on the same
bytes:

- end-to-end streamed ingestion (tail -> parse -> dedup -> watermark ->
  online kernels) in rows/second
- batch load of the identical directory, for the "cost of streaming"
  ratio (recorded, not gated: the layers do different work)
- a single checkpoint write, which bounds the kill-window an operator
  pays for at any `--checkpoint-every`

The run is gated on *correctness*, not speed: the streamed state must
match the batch kernels (`verify_batch`), otherwise the throughput
number is meaningless.

Run ``pytest benchmarks/test_stream_bench.py -q -s`` for a summary.
``REPRO_BENCH_DAYS`` scales the dataset (CI uses 30 days).
"""

import time

import pytest
from conftest import BENCH_DAYS, BENCH_SEED

from repro.dataset import MiraDataset
from repro.faults.streams import StreamFeeder
from repro.stream.pipeline import StreamPipeline

# Streaming re-parses CSV rows one line at a time; cap the feed so the
# bench stays interactive even at the full 120-day dataset.
STREAM_DAYS = min(BENCH_DAYS, 30.0)


@pytest.fixture(scope="module")
def stream_dirs(tmp_path_factory):
    root = tmp_path_factory.mktemp("stream-bench")
    source = root / "source"
    MiraDataset.synthesize(
        n_days=STREAM_DAYS, seed=BENCH_SEED, cache=False
    ).save(source)
    feed = root / "feed"
    StreamFeeder(source, feed, seed=1, chunk_rows=5_000).run()
    return source, feed


def test_stream_ingestion_throughput(stream_dirs, tmp_path):
    source_dir, feed_dir = stream_dirs
    pipeline = StreamPipeline(
        feed_dir, tmp_path / "ckpt", max_lines_per_poll=20_000
    )
    start = time.perf_counter()
    idle = 0
    while idle < 2:
        idle = 0 if pipeline.tick()["progressed"] else idle + 1
    ingest_s = time.perf_counter() - start

    results = pipeline.projected_results()
    rows = sum(
        entry["rows_applied"] for entry in results["sources"].values()
    )
    assert rows > 0

    ckpt_start = time.perf_counter()
    pipeline.checkpoint()
    ckpt_s = time.perf_counter() - ckpt_start

    batch_start = time.perf_counter()
    MiraDataset.load(source_dir, cache=False)
    batch_s = time.perf_counter() - batch_start

    verdict = pipeline.verify_batch()
    assert verdict["ok"], verdict["checks"]

    print()
    print(f"streamed rows        : {rows}")
    print(f"streamed ingest      : {ingest_s:.3f}s "
          f"({rows / ingest_s:,.0f} rows/s)")
    print(f"batch load (same dir): {batch_s:.3f}s")
    print(f"stream/batch ratio   : {ingest_s / batch_s:.1f}x")
    print(f"checkpoint write     : {ckpt_s * 1000:.1f}ms")
    # Sanity floor only — CI machines vary wildly.  The real gate is
    # the verify_batch assertion above.
    assert rows / ingest_s > 1_000, "streaming collapsed below 1k rows/s"
    assert ckpt_s < 5.0, "checkpoint write should be well under 5s"
