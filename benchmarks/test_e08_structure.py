"""Bench E08 — execution structure (tasks per job) vs failure.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e08_structure(benchmark, dataset):
    result = run_and_print(benchmark, "e08", dataset)
    assert result.metrics["multi_over_single_rate"] > 1.1
