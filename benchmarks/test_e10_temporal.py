"""Bench E10 — monthly/diurnal/weekly series.

Regenerates the reconstructed paper artefact; see DESIGN.md §4.
"""

from conftest import BENCH_DAYS, run_and_print


def test_e10_temporal(benchmark, dataset):
    result = run_and_print(benchmark, "e10", dataset)
    assert result.metrics["day_night_ratio"] > 1.2
