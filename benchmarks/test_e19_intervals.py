"""Bench E19 — interruption-interval distribution fitting (extension)."""

from conftest import run_and_print


def test_e19_intervals(benchmark, dataset):
    result = run_and_print(benchmark, "e19", dataset)
    assert result.metrics["bic_winner_in_expected_family"] == 1
