"""Every backend must drive the full experiment battery and round-trip
through the on-disk format, and each must get its own cache identity."""

import pytest

from repro.adapters import all_backend_names, get_backend
from repro.dataset import MiraDataset, validate_dataset
from repro.dataset.cache import fingerprint_synthesis
from repro.experiments import all_experiments, run_experiment

SMOKE_DAYS = 18.0
SMOKE_SEED = 7


@pytest.fixture(scope="module", params=all_backend_names())
def backend_dataset(request):
    return MiraDataset.synthesize(
        n_days=SMOKE_DAYS, seed=SMOKE_SEED, backend=request.param
    )


class TestBackendBattery:
    def test_synthesis_labeled_and_within_machine(self, backend_dataset):
        spec = get_backend(backend_dataset.backend).spec
        assert backend_dataset.spec == spec
        assert (backend_dataset.jobs["allocated_nodes"] <= spec.n_nodes).all()
        assert (
            backend_dataset.jobs["first_midplane"]
            + backend_dataset.jobs["n_midplanes"]
            <= spec.n_midplanes
        ).all()

    def test_validates_against_own_catalog(self, backend_dataset):
        report = validate_dataset(backend_dataset)
        assert report["ras_catalog"] == "ok"
        assert all(status == "ok" for status in report.values())

    def test_full_battery_runs_undegraded(self, backend_dataset):
        # e22 synthesizes every backend itself; run it once in its own
        # test rather than once per backend fixture here.
        for experiment_id in all_experiments():
            if experiment_id == "e22":
                continue
            result = run_experiment(experiment_id, backend_dataset)
            assert result.tables, f"{experiment_id} returned no tables"
            assert not result.degraded, f"{experiment_id} degraded"


class TestGoldenRoundTrip:
    def test_save_load_preserves_tables_and_identity(
        self, backend_dataset, tmp_path
    ):
        target = tmp_path / backend_dataset.backend
        backend_dataset.save(target)
        loaded = MiraDataset.load(target, cache=False)
        assert loaded.backend == backend_dataset.backend
        assert loaded.spec == backend_dataset.spec
        assert loaded.jobs == backend_dataset.jobs
        assert loaded.ras == backend_dataset.ras
        assert loaded.tasks == backend_dataset.tasks
        assert loaded.io == backend_dataset.io

    def test_lenient_load_is_clean_and_keeps_backend(
        self, backend_dataset, tmp_path
    ):
        target = tmp_path / backend_dataset.backend
        backend_dataset.save(target)
        loaded = MiraDataset.load(target, lenient=True, cache=False)
        assert not loaded.ingestion  # nothing degraded
        assert loaded.backend == backend_dataset.backend


class TestCacheIdentity:
    def test_fingerprints_distinct_per_backend(self):
        prints = {
            name: fingerprint_synthesis(
                get_backend(name).spec, 5.0, 3, backend=name
            )
            for name in all_backend_names()
        }
        assert len(set(prints.values())) == len(prints)

    def test_mira_fingerprint_unchanged_by_backend_arg(self):
        from repro.bgq.machine import MIRA

        # The historical cache key must survive the backend layer: old
        # callers never passed a backend and must hit the same entries.
        assert fingerprint_synthesis(MIRA, 5.0, 3) == fingerprint_synthesis(
            MIRA, 5.0, 3, 1.0, "mira"
        )

    def test_cache_round_trip_keeps_backend(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        first = MiraDataset.synthesize(n_days=2.0, seed=11, backend="google")
        second = MiraDataset.synthesize(n_days=2.0, seed=11, backend="google")
        assert second.backend == "google"
        assert second.spec == first.spec
        assert second.jobs == first.jobs
