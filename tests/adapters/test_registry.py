"""Backend registry, calibration contract, and per-backend invariants."""

import dataclasses

import pytest

from repro.adapters import (
    MIRA_BACKEND,
    PublishedCalibration,
    all_backend_names,
    all_backends,
    get_backend,
    midplane_ladder,
    register_backend,
)
from repro.bgq.machine import MIRA, MIRA_SMALL
from repro.errors import BackendError, ReproError
from repro.ras.severity import Severity


class TestRegistry:
    def test_builtin_backends_in_registration_order(self):
        assert all_backend_names() == ("mira", "google", "mistral", "mlcluster")
        assert [b.name for b in all_backends()] == list(all_backend_names())

    def test_mira_is_the_default_path(self):
        backend = get_backend("mira")
        assert backend is MIRA_BACKEND
        assert backend.spec is MIRA
        # None means "module defaults": the mira synthesis path must
        # stay bit-identical to the pre-backend toolkit.
        assert backend.workload_params() is None
        assert backend.ras_params() is None

    def test_unknown_backend_is_typed_and_lists_known(self):
        with pytest.raises(BackendError, match="known:.*mira"):
            get_backend("bluewaters")

    def test_backend_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            get_backend("nope")

    def test_duplicate_registration_refused(self):
        with pytest.raises(BackendError, match="duplicate"):
            register_backend(dataclasses.replace(MIRA_BACKEND))
        assert all_backend_names().count("mira") == 1


class TestPublishedCalibration:
    def test_validates_ranges(self):
        with pytest.raises(ValueError, match="user_share"):
            PublishedCalibration(1.5, 1.0, 0.1, "x")
        with pytest.raises(ValueError, match="failure_rate"):
            PublishedCalibration(0.9, 1.0, -0.1, "x")
        with pytest.raises(ValueError, match="mtti_days"):
            PublishedCalibration(0.9, 0.0, 0.1, "x")

    def test_every_backend_cites_a_source(self):
        for backend in all_backends():
            assert backend.published.source
            assert 0.0 < backend.published.failure_rate < 1.0


class TestMidplaneLadder:
    def test_oversize_rungs_dropped_and_renormalized(self):
        counts, weights = midplane_ladder(
            MIRA_SMALL, midplanes=(1, 2, 4, 1024), weights=(0.4, 0.3, 0.2, 0.1)
        )
        assert max(counts) <= MIRA_SMALL.n_nodes
        assert len(counts) == len(weights) == 3
        assert sum(weights) == 1.0  # exact, round-off absorbed in last rung

    def test_all_rungs_too_big_falls_back_to_full_machine(self):
        counts, weights = midplane_ladder(MIRA_SMALL, midplanes=(10**6,))
        assert counts == (MIRA_SMALL.n_nodes,)
        assert weights == (1.0,)

    def test_zero_mass_profile_rejected(self):
        with pytest.raises(ValueError, match="positive mass"):
            midplane_ladder(MIRA, midplanes=(1, 2), weights=(0.0, 0.0))


class TestBackendInvariants:
    """Contract every adapter must satisfy (see docs/backends.md)."""

    @pytest.fixture(params=all_backend_names())
    def backend(self, request):
        return get_backend(request.param)

    def test_geometry_is_consistent(self, backend):
        spec = backend.spec
        assert spec.n_nodes == (
            spec.n_midplanes * spec.node_boards_per_midplane * spec.nodes_per_node_board
        )
        assert spec.rack_columns <= 16  # hex rack naming

    def test_catalog_ids_unique_and_hex(self, backend):
        entries = list(backend.catalog())
        assert entries
        ids = [entry.msg_id for entry in entries]
        assert len(set(ids)) == len(ids)
        for msg_id in ids:
            assert len(msg_id) == 8
            int(msg_id, 16)

    def test_only_fatal_entries_interrupt(self, backend):
        for entry in backend.catalog():
            if entry.interrupts_jobs:
                assert entry.severity is Severity.FATAL
        assert any(e.interrupts_jobs for e in backend.catalog())

    def test_workload_ladder_fits_machine(self, backend):
        params = backend.workload_params()
        if params is None:  # mira: module defaults, checked elsewhere
            return
        assert max(params.node_counts) <= backend.spec.n_nodes
        assert min(params.node_counts) >= backend.spec.nodes_per_midplane
        assert sum(params.node_weights) == pytest.approx(1.0)

    def test_catalogs_do_not_collide_across_backends(self):
        seen: dict[str, str] = {}
        for backend in all_backends():
            for entry in backend.catalog():
                owner = seen.setdefault(entry.msg_id, backend.name)
                assert owner == backend.name, (
                    f"msg_id {entry.msg_id} in both {owner} and {backend.name}"
                )
