"""Admission queue: bounded lanes, priority order, shed hints."""

from repro.serve.admission import AdmissionQueue, Ticket
from repro.serve.protocol import ServeRequest, ServeResponse
from repro.util.deadline import Deadline

import pytest


def _ticket(priority="interactive", mode="ping"):
    return Ticket(
        request=ServeRequest(mode=mode, priority=priority),
        deadline=Deadline.after(10.0),
    )


class TestBoundedLanes:
    def test_full_lane_refuses_instantly(self):
        queue = AdmissionQueue(interactive_capacity=2, batch_capacity=2)
        assert queue.submit(_ticket())
        assert queue.submit(_ticket())
        assert not queue.submit(_ticket())  # shed
        # The batch lane is independent.
        assert queue.submit(_ticket(priority="batch"))

    def test_capacity_frees_after_take(self):
        queue = AdmissionQueue(interactive_capacity=1, batch_capacity=1)
        assert queue.submit(_ticket())
        assert not queue.submit(_ticket())
        assert queue.take(timeout=0.1) is not None
        assert queue.submit(_ticket())

    def test_capacities_must_be_positive(self):
        with pytest.raises(ValueError, match="capacities"):
            AdmissionQueue(interactive_capacity=0)


class TestPriorityOrder:
    def test_interactive_drains_before_batch(self):
        queue = AdmissionQueue()
        first_batch = _ticket(priority="batch")
        queue.submit(first_batch)
        urgent = _ticket(priority="interactive")
        queue.submit(urgent)
        assert queue.take(timeout=0.1) is urgent
        assert queue.take(timeout=0.1) is first_batch

    def test_fifo_within_a_lane(self):
        queue = AdmissionQueue()
        tickets = [_ticket() for _ in range(3)]
        for ticket in tickets:
            queue.submit(ticket)
        assert [queue.take(timeout=0.1) for _ in tickets] == tickets

    def test_take_times_out_empty(self):
        queue = AdmissionQueue()
        assert queue.take(timeout=0.05) is None


class TestCloseAndDrain:
    def test_closed_queue_refuses_submits(self):
        queue = AdmissionQueue()
        queue.close()
        assert not queue.submit(_ticket())

    def test_drain_remaining_empties_both_lanes(self):
        queue = AdmissionQueue()
        queue.submit(_ticket())
        queue.submit(_ticket(priority="batch"))
        leftovers = queue.drain_remaining()
        assert len(leftovers) == 2
        assert queue.depth == 0

    def test_close_drains_queued_work_before_returning_none(self):
        queue = AdmissionQueue()
        ticket = _ticket()
        queue.submit(ticket)
        queue.close()
        assert queue.take(timeout=0.1) is ticket
        assert queue.take(timeout=0.1) is None


class TestRetryAfter:
    def test_hint_tracks_depth_and_service_time(self):
        queue = AdmissionQueue()
        baseline = queue.retry_after_s(workers=2)
        for _ in range(8):
            queue.submit(_ticket())
        deeper = queue.retry_after_s(workers=2)
        assert deeper > baseline
        # Slower observed service times push the hint up further.
        for _ in range(20):
            queue.record_service(2.0)
        assert queue.retry_after_s(workers=2) > deeper

    def test_hint_is_clamped_to_a_sane_band(self):
        queue = AdmissionQueue()
        assert queue.retry_after_s(workers=64) >= 0.1
        for _ in range(20):
            queue.record_service(3600.0)
        for _ in range(10):
            queue.submit(_ticket())
        assert queue.retry_after_s(workers=1) <= 30.0


class TestTicket:
    def test_complete_is_first_wins(self):
        ticket = _ticket()
        first = ServeResponse(request_id="r", outcome="ok")
        second = ServeResponse(request_id="r", outcome="error")
        assert ticket.complete(first)
        assert not ticket.complete(second)
        assert ticket.response is first
        assert ticket.done.is_set()

    def test_settle_probe_is_first_wins(self):
        # The breaker's half-open slot must be released exactly once —
        # by record() or cancel_probe(), whichever claims it first.
        ticket = _ticket()
        assert ticket.settle_probe()
        assert not ticket.settle_probe()
