"""Unit tests for the content-addressed result cache."""

import json

import pytest

from repro.serve.resultcache import (
    CACHE_SCHEMA,
    CACHEABLE_OUTCOMES,
    ResultCache,
    result_key,
)


class TestResultKey:
    def test_deterministic(self):
        params = (("experiment", "e03"), ("mode", "experiment"))
        assert result_key("fp", params, "1.0.0") == result_key(
            "fp", params, "1.0.0"
        )

    def test_fingerprint_changes_the_key(self):
        params = (("mode", "summary"),)
        assert result_key("fp-a", params, "1.0.0") != result_key(
            "fp-b", params, "1.0.0"
        )

    def test_toolkit_version_changes_the_key(self):
        params = (("mode", "summary"),)
        assert result_key("fp", params, "1.0.0") != result_key(
            "fp", params, "1.0.1"
        )

    def test_params_change_the_key(self):
        assert result_key(
            "fp", (("experiment", "e01"), ("mode", "experiment")), "1"
        ) != result_key(
            "fp", (("experiment", "e02"), ("mode", "experiment")), "1"
        )


class TestMemoryTier:
    def put(self, cache, key, payload="x"):
        return cache.put(
            key, outcome="ok", message="", result={"payload": payload}
        )

    def test_round_trip(self):
        cache = ResultCache(1 << 20)
        self.put(cache, "k1", "hello")
        entry, tier = cache.get("k1")
        assert tier == "memory"
        assert entry.outcome == "ok"
        assert entry.result == {"payload": "hello"}

    def test_miss_returns_none_and_counts(self):
        cache = ResultCache(1 << 20)
        assert cache.get("nope") is None
        assert cache.stats()["misses"] == 1

    def test_uncacheable_outcomes_are_refused(self):
        cache = ResultCache(1 << 20)
        for outcome in ("error", "deadline_exceeded", "shed", "draining"):
            assert outcome not in CACHEABLE_OUTCOMES
            assert not cache.put(
                "k", outcome=outcome, message="boom", result=None
            )
        assert cache.get("k") is None

    def test_lru_eviction_is_byte_bounded(self):
        cache = ResultCache(max_bytes=400)
        for index in range(10):
            self.put(cache, f"k{index}", "v" * 50)
        stats = cache.stats()
        assert stats["memory"]["bytes"] <= 400
        assert stats["evictions"] > 0
        # The newest entry survived; the oldest was evicted.
        assert cache.get("k9") is not None
        assert cache.get("k0") is None

    def test_get_refreshes_recency(self):
        probe = ResultCache(1 << 20)
        self.put(probe, "a", "v" * 40)
        entry_bytes = probe.stats()["memory"]["bytes"]
        # Room for two entries but not three.
        cache = ResultCache(max_bytes=entry_bytes * 2 + entry_bytes // 2)
        self.put(cache, "a", "v" * 40)
        self.put(cache, "b", "v" * 40)
        assert cache.get("a") is not None  # a is now most-recent
        self.put(cache, "c", "v" * 40)  # forces one eviction
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_oversized_entry_skips_the_memory_tier(self):
        cache = ResultCache(max_bytes=64)
        self.put(cache, "big", "v" * 500)
        assert cache.stats()["memory"]["entries"] == 0
        assert cache.get("big") is None

    def test_overwrite_replaces_accounting(self):
        cache = ResultCache(1 << 20)
        self.put(cache, "k", "v" * 100)
        before = cache.stats()["memory"]["bytes"]
        self.put(cache, "k", "v")
        after = cache.stats()["memory"]["bytes"]
        assert cache.stats()["memory"]["entries"] == 1
        assert after < before

    def test_flush_empties_the_tier(self):
        cache = ResultCache(1 << 20)
        self.put(cache, "k1")
        self.put(cache, "k2")
        assert cache.flush() == {"memory": 2, "disk": 0}
        assert cache.stats()["memory"]["entries"] == 0

    def test_events_are_emitted(self):
        events = []
        cache = ResultCache(
            1 << 20, on_event=lambda name, value: events.append(name)
        )
        self.put(cache, "k")
        cache.get("k")
        cache.get("absent")
        assert events == ["store", "hit_memory", "miss"]


class TestDiskTier:
    def test_round_trip_and_promotion(self, tmp_path):
        writer = ResultCache(1 << 20, directory=tmp_path)
        writer.put("k", outcome="ok", message="", result={"n": 1})
        # A fresh cache (new daemon) reads the entry from disk...
        reader = ResultCache(1 << 20, directory=tmp_path)
        entry, tier = reader.get("k")
        assert tier == "disk"
        assert entry.result == {"n": 1}
        # ...and promotes it, so the next hit is memory.
        _, tier = reader.get("k")
        assert tier == "memory"

    def test_disk_payload_is_byte_identical_across_processes(self, tmp_path):
        writer = ResultCache(1 << 20, directory=tmp_path)
        writer.put("k", outcome="ok", message="", result={"n": [1, 2]})
        fresh = ResultCache(1 << 20, directory=tmp_path)
        entry, _ = fresh.get("k")
        direct, _ = writer.get("k")
        assert entry.encoded.strip() == direct.encoded.strip()
        assert entry.result == direct.result

    def test_corrupt_file_is_removed_and_missed(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        cache = ResultCache(1 << 20, directory=tmp_path)
        assert cache.get("bad") is None
        assert not (tmp_path / "bad.json").exists()

    def test_key_mismatch_is_treated_as_garbage(self, tmp_path):
        envelope = {
            "schema": CACHE_SCHEMA,
            "key": "other",
            "outcome": "ok",
            "result": None,
        }
        (tmp_path / "stolen.json").write_text(json.dumps(envelope))
        cache = ResultCache(1 << 20, directory=tmp_path)
        assert cache.get("stolen") is None
        assert not (tmp_path / "stolen.json").exists()

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(1 << 20, directory=tmp_path)
        for index in range(5):
            cache.put(f"k{index}", outcome="ok", message="", result={})
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_flush_unlinks_disk_entries(self, tmp_path):
        cache = ResultCache(1 << 20, directory=tmp_path)
        cache.put("k1", outcome="ok", message="", result=None)
        cache.put("k2", outcome="skipped", message="small", result=None)
        assert cache.flush() == {"memory": 2, "disk": 2}
        assert list(tmp_path.glob("*.json")) == []

    def test_prune_mismatched_removes_stale_envelopes(self, tmp_path):
        cache = ResultCache(1 << 20, directory=tmp_path)
        cache.put(
            "live", outcome="ok", message="", result=None,
            fingerprint="fp-now", toolkit_version="2.0",
        )
        cache.put(
            "stale-fp", outcome="ok", message="", result=None,
            fingerprint="fp-old", toolkit_version="2.0",
        )
        cache.put(
            "stale-ver", outcome="ok", message="", result=None,
            fingerprint="fp-now", toolkit_version="1.0",
        )
        assert cache.prune_mismatched("fp-now", "2.0") == 2
        names = {path.stem for path in tmp_path.glob("*.json")}
        assert names == {"live"}


class TestValidation:
    def test_nonpositive_budget_is_refused(self):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(0)
