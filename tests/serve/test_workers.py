"""WorkerSlot supervision: the kill/run race and fork hygiene."""

import threading
import time

from repro.serve.workers import FORK_LOCK, WorkerSlot


class TestKillDuringRun:
    def test_concurrent_kill_yields_a_typed_verdict(self):
        # Regression: kill() nulling the pipe while the dispatcher was
        # inside run() used to raise AttributeError past the
        # (EOFError, OSError) handlers, killing the dispatcher thread
        # and leaving its ticket to the slow HTTP-side backstop.
        slot = WorkerSlot(None)
        verdicts, errors = [], []

        def dispatch():
            try:
                verdicts.append(
                    slot.run(
                        {"mode": "sleep", "seconds": 30.0,
                         "deadline_s": 40.0},
                        40.0,
                    )
                )
            except BaseException as error:  # noqa: BLE001 - the regression
                errors.append(error)

        thread = threading.Thread(target=dispatch, daemon=True)
        thread.start()
        time.sleep(0.3)  # the worker is asleep inside the job
        slot.kill()
        thread.join(timeout=10.0)
        try:
            assert not thread.is_alive()
            assert errors == []
            assert len(verdicts) == 1
            assert verdicts[0].kind in ("crashed", "stalled")
            # The crash path replaced the worker; the slot serves again.
            assert slot.alive
        finally:
            slot.close()

    def test_run_on_a_killed_slot_reports_crashed(self):
        slot = WorkerSlot(None)
        slot.kill()
        try:
            verdict = slot.run({"mode": "ping", "deadline_s": 2.0}, 2.0)
            assert verdict.kind == "crashed"
            assert slot.alive  # auto-replaced
        finally:
            slot.close()


class TestForkHygiene:
    def test_spawn_serialises_against_the_fork_lock(self):
        # A journal/trace write holding FORK_LOCK must exclude the
        # fork, so the child can never inherit it held.
        with FORK_LOCK:
            spawned = []
            thread = threading.Thread(
                target=lambda: spawned.append(WorkerSlot(None)),
                daemon=True,
            )
            thread.start()
            time.sleep(0.4)
            assert not spawned  # blocked on the lock, as designed
        thread.join(timeout=10.0)
        assert spawned
        try:
            assert spawned[0].run({"mode": "ping"}, 2.0).kind == "done"
        finally:
            spawned[0].close()
