"""Wire-protocol schema tests: golden round-trips + tolerance rules."""

import json

import pytest

from repro.serve.protocol import (
    CACHE_STATES,
    HTTP_STATUS,
    MODES,
    OUTCOMES,
    PROTOCOL_SCHEMA,
    ProtocolError,
    ServeRequest,
    ServeResponse,
)

GOLDEN_REQUESTS = [
    {"schema": 1, "kind": "request", "mode": "ping", "request_id": "r1",
     "experiment": "", "priority": "interactive", "deadline_ms": None,
     "seconds": 0.0},
    {"schema": 1, "kind": "request", "mode": "experiment",
     "request_id": "r2", "experiment": "e03", "priority": "batch",
     "deadline_ms": 2500, "seconds": 0.0},
    {"schema": 1, "kind": "request", "mode": "sleep", "request_id": "r3",
     "experiment": "", "priority": "interactive", "deadline_ms": 100,
     "seconds": 0.25},
    {"schema": 1, "kind": "request", "mode": "summary", "request_id": "",
     "experiment": "", "priority": "interactive", "deadline_ms": None,
     "seconds": 0.0},
]

GOLDEN_RESPONSES = [
    {"schema": 1, "kind": "response", "request_id": "r1", "outcome": "ok",
     "message": "", "seconds": 0.012, "queue_seconds": 0.001,
     "retry_after_s": None, "breaker": None,
     "result": {"summary": {"n_jobs": 3}}, "cache": "miss",
     "epoch": 0, "http_status": 200},
    {"schema": 1, "kind": "response", "request_id": "r2",
     "outcome": "shed", "message": "queue full", "seconds": 0.0,
     "queue_seconds": 0.0, "retry_after_s": 0.4, "breaker": None,
     "result": None, "cache": None, "epoch": None, "http_status": 503},
    {"schema": 1, "kind": "response", "request_id": "r3",
     "outcome": "breaker_open", "message": "e03 breaker open",
     "seconds": 0.0, "queue_seconds": 0.0, "retry_after_s": 2.1,
     "breaker": {"state": "open", "consecutive_failures": 5,
                 "threshold": 5, "cooldown_s": 3.0},
     "result": None, "cache": None, "epoch": None, "http_status": 503},
    {"schema": 1, "kind": "response", "request_id": "r4",
     "outcome": "deadline_exceeded", "message": "deadline exceeded",
     "seconds": 0.5, "queue_seconds": 0.2, "retry_after_s": None,
     "breaker": None, "result": None, "cache": "coalesced",
     "epoch": 1, "http_status": 504},
    {"schema": 1, "kind": "response", "request_id": "r5", "outcome": "ok",
     "message": "", "seconds": 0.001, "queue_seconds": 0.0,
     "retry_after_s": None, "breaker": None,
     "result": {"summary": {"n_jobs": 3}}, "cache": "hit_memory",
     "epoch": 2, "http_status": 200},
]


class TestGoldenRoundTrips:
    @pytest.mark.parametrize("payload", GOLDEN_REQUESTS)
    def test_request_round_trip_is_identity(self, payload):
        request = ServeRequest.parse(payload)
        assert request.to_json() == payload
        # And a second hop stays stable.
        assert ServeRequest.parse(request.to_json()) == request

    @pytest.mark.parametrize("payload", GOLDEN_RESPONSES)
    def test_response_round_trip_is_identity(self, payload):
        response = ServeResponse.parse(payload)
        assert response.to_json() == payload
        assert ServeResponse.parse(response.to_json()) == response

    @pytest.mark.parametrize("payload", GOLDEN_REQUESTS + GOLDEN_RESPONSES)
    def test_wire_form_is_json_serializable(self, payload):
        assert json.loads(json.dumps(payload)) == payload


class TestTolerance:
    def test_request_ignores_unknown_fields(self):
        request = ServeRequest.parse(
            {"schema": 1, "mode": "ping", "request_id": "r1",
             "a_future_field": {"nested": True}, "another": 7}
        )
        assert request == ServeRequest(mode="ping", request_id="r1")

    def test_response_ignores_unknown_fields(self):
        response = ServeResponse.parse(
            {"schema": 1, "request_id": "r", "outcome": "ok",
             "shiny_new_hint": [1, 2, 3]}
        )
        assert response.outcome == "ok"

    def test_missing_schema_defaults_to_current(self):
        assert ServeRequest.parse({"mode": "ping"}).mode == "ping"

    def test_future_schema_is_refused(self):
        with pytest.raises(ProtocolError, match="protocol schema"):
            ServeRequest.parse({"schema": 99, "mode": "ping"})


class TestValidation:
    def test_every_outcome_has_an_http_status(self):
        assert set(HTTP_STATUS) == set(OUTCOMES)

    @pytest.mark.parametrize("outcome", OUTCOMES)
    def test_http_status_property(self, outcome):
        response = ServeResponse(request_id="r", outcome=outcome)
        assert response.http_status == HTTP_STATUS[outcome]

    def test_unknown_mode_is_typed(self):
        with pytest.raises(ProtocolError, match="unknown mode"):
            ServeRequest(mode="teleport")

    def test_unknown_priority_is_typed(self):
        with pytest.raises(ProtocolError, match="unknown priority"):
            ServeRequest(mode="ping", priority="urgent")

    def test_experiment_mode_needs_an_id(self):
        with pytest.raises(ProtocolError, match="needs an 'experiment'"):
            ServeRequest(mode="experiment")

    def test_nonpositive_deadline_is_typed(self):
        with pytest.raises(ProtocolError, match="deadline_ms"):
            ServeRequest(mode="ping", deadline_ms=0)

    def test_unknown_outcome_is_typed(self):
        with pytest.raises(ProtocolError, match="unknown outcome"):
            ServeResponse(request_id="r", outcome="mystery")

    def test_unknown_cache_state_is_typed(self):
        with pytest.raises(ProtocolError, match="unknown cache state"):
            ServeResponse(request_id="r", outcome="ok", cache="maybe")

    @pytest.mark.parametrize("state", CACHE_STATES)
    def test_every_cache_state_round_trips(self, state):
        response = ServeResponse(request_id="r", outcome="ok", cache=state)
        assert ServeResponse.parse(response.to_json()) == response

    def test_non_object_payload_is_typed(self):
        with pytest.raises(ProtocolError, match="not a JSON object"):
            ServeRequest.parse(["mode", "ping"])

    def test_wrong_field_type_is_typed(self):
        with pytest.raises(ProtocolError, match="deadline_ms"):
            ServeRequest.parse(
                {"schema": 1, "mode": "ping", "deadline_ms": "fast"}
            )

    def test_boolean_is_not_a_number(self):
        with pytest.raises(ProtocolError, match="seconds"):
            ServeRequest.parse({"schema": 1, "mode": "sleep", "seconds": True})

    def test_missing_mode_is_typed(self):
        with pytest.raises(ProtocolError, match="missing 'mode'"):
            ServeRequest.parse({"schema": 1})

    def test_modes_are_stable(self):
        # The replay CSV format and docs enumerate these; growing the
        # tuple is fine, renaming/removing is a protocol break.
        assert set(MODES) >= {"experiment", "summary", "ping", "sleep"}
        assert PROTOCOL_SCHEMA == 1
