"""repro-replay: CSV handling, workload generation, and a live drill."""

import pytest

from repro.dataset import MiraDataset
from repro.serve.replay import (
    RequestSpec,
    ReplayError,
    cache_summary,
    generate_requests,
    latency_stats,
    load_request_csv,
    run_replay,
    write_request_csv,
)
from repro.serve.server import ReproServer, ServeConfig


class TestRequestCsv:
    def test_write_then_load_round_trips(self, tmp_path):
        specs = [
            RequestSpec("r1", 0.0, "ping", "interactive", 2000),
            RequestSpec("r2", 0.05, "e03", "batch", 8000),
            RequestSpec("r3", 0.125, "sleep:0.25", "interactive", 1000),
        ]
        path = tmp_path / "requests.csv"
        write_request_csv(path, specs)
        assert load_request_csv(path) == specs

    def test_header_is_the_documented_format(self, tmp_path):
        path = tmp_path / "requests.csv"
        write_request_csv(path, [RequestSpec("r1", 0.0, "ping")])
        header = path.read_text().splitlines()[0]
        assert header == "request_id,arrival_offset_s,mode,priority,deadline_ms"

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ReplayError, match="cannot read"):
            load_request_csv(tmp_path / "absent.csv")

    def test_missing_column_is_typed(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("request_id,mode\nr1,ping\n")
        with pytest.raises(ReplayError, match="missing column"):
            load_request_csv(path)

    def test_bad_row_is_typed_with_line_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "request_id,arrival_offset_s,mode,priority,deadline_ms\n"
            "r1,zero,ping,interactive,1000\n"
        )
        with pytest.raises(ReplayError, match=":2:"):
            load_request_csv(path)

    def test_negative_offset_is_typed(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "request_id,arrival_offset_s,mode,priority,deadline_ms\n"
            "r1,-1.0,ping,interactive,1000\n"
        )
        with pytest.raises(ReplayError, match="negative"):
            load_request_csv(path)

    def test_empty_body_is_typed(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text(
            "request_id,arrival_offset_s,mode,priority,deadline_ms\n"
        )
        with pytest.raises(ReplayError, match="no request rows"):
            load_request_csv(path)


class TestGenerate:
    def test_deterministic_for_a_seed(self):
        a = generate_requests(20, 50.0, ["ping", "e01"], seed=7)
        b = generate_requests(20, 50.0, ["ping", "e01"], seed=7)
        assert a == b
        assert a != generate_requests(20, 50.0, ["ping", "e01"], seed=8)

    def test_offsets_follow_the_rate(self):
        specs = generate_requests(10, 20.0, ["ping"])
        assert specs[0].arrival_offset_s == 0.0
        assert specs[4].arrival_offset_s == pytest.approx(0.2)

    def test_mixes_priorities(self):
        specs = generate_requests(40, 100.0, ["ping"], seed=0)
        priorities = {spec.priority for spec in specs}
        assert priorities == {"interactive", "batch"}

    def test_validation(self):
        with pytest.raises(ReplayError):
            generate_requests(0, 10.0, ["ping"])
        with pytest.raises(ReplayError):
            generate_requests(5, 0.0, ["ping"])
        with pytest.raises(ReplayError):
            generate_requests(5, 10.0, [])
        with pytest.raises(ReplayError):
            generate_requests(5, 10.0, ["ping"], dist="pareto")
        with pytest.raises(ReplayError):
            generate_requests(5, 10.0, ["ping"], dist="zipf", zipf_s=0.0)

    def test_zipf_is_deterministic_for_a_seed(self):
        a = generate_requests(30, 50.0, ["e01", "e02", "e03"], seed=7,
                              dist="zipf")
        b = generate_requests(30, 50.0, ["e01", "e02", "e03"], seed=7,
                              dist="zipf")
        assert a == b

    def test_zipf_skews_toward_the_first_mode(self):
        modes = ["e01", "e02", "e03", "e04", "e05"]
        specs = generate_requests(
            400, 100.0, modes, seed=1, dist="zipf", zipf_s=1.5
        )
        counts = {mode: 0 for mode in modes}
        for spec in specs:
            counts[spec.mode] += 1
        # Rank-1 dominates and the tail thins out — the hot-query
        # shape a result cache is supposed to exploit.
        assert counts["e01"] > counts["e03"] > counts["e05"]
        assert counts["e01"] > len(specs) * 0.35

    def test_uniform_generation_is_unchanged_by_the_dist_knob(self):
        # dist="uniform" must keep the exact pre-existing RNG stream so
        # recorded workloads (and goldens) stay reproducible.
        assert generate_requests(20, 50.0, ["ping", "e01"], seed=7) == (
            generate_requests(
                20, 50.0, ["ping", "e01"], seed=7, dist="uniform"
            )
        )


class TestSpecPayload:
    def test_sleep_mode_carries_seconds(self):
        payload = RequestSpec("r", 0.0, "sleep:0.75").payload()
        assert payload["mode"] == "sleep"
        assert payload["seconds"] == 0.75

    def test_experiment_ids_become_experiment_mode(self):
        payload = RequestSpec("r", 0.0, "e05").payload()
        assert payload["mode"] == "experiment"
        assert payload["experiment"] == "e05"

    def test_builtin_modes_pass_through(self):
        assert RequestSpec("r", 0.0, "summary").payload()["mode"] == "summary"


class TestCacheSummary:
    @staticmethod
    def result(cache, outcome="ok", latency_ms=10.0):
        return {
            "request_id": "r", "mode": "e01", "priority": "interactive",
            "outcome": outcome, "cache": cache, "http_status": 200,
            "latency_ms": latency_ms,
        }

    def test_hit_rate_and_warm_cold_split(self):
        results = (
            [self.result("hit_memory", latency_ms=1.0)] * 3
            + [self.result("hit_disk", latency_ms=2.0)]
            + [self.result("miss", latency_ms=50.0)] * 2
            + [self.result("coalesced", latency_ms=30.0)]
            + [self.result("bypass", latency_ms=40.0)]
            + [self.result(None, latency_ms=5.0)]
        )
        summary = cache_summary(results)
        assert summary["hits"] == 4
        assert summary["misses"] == 2
        assert summary["coalesced"] == 1
        assert summary["bypasses"] == 1
        assert summary["hit_rate"] == pytest.approx(4 / 6, abs=1e-4)
        assert summary["warm_p50_ms"] <= 2.0
        assert summary["cold_p50_ms"] == 50.0

    def test_failed_misses_do_not_pollute_cold_latency(self):
        results = [
            self.result("miss", outcome="deadline_exceeded",
                        latency_ms=5000.0),
            self.result("miss", outcome="ok", latency_ms=40.0),
        ]
        assert cache_summary(results)["cold_p50_ms"] == 40.0

    def test_empty_results_are_zeroed(self):
        summary = cache_summary([])
        assert summary["hits"] == 0
        assert summary["hit_rate"] == 0.0
        assert summary["server"] is None


class TestLatencyStats:
    def test_percentiles_over_known_values(self):
        results = [{"latency_ms": float(v)} for v in range(1, 101)]
        stats = latency_stats(results)
        assert stats["count"] == 100
        assert stats["p50_ms"] == 51.0
        assert stats["p99_ms"] == 100.0
        assert stats["max_ms"] == 100.0

    def test_empty_subset_is_zeroed(self):
        assert latency_stats([])["count"] == 0


class TestLiveReplay:
    def test_drill_against_a_live_server_is_clean(self):
        dataset = MiraDataset.synthesize(n_days=2.0, seed=3)
        server = ReproServer(
            dataset, config=ServeConfig(workers=2, drain_s=3.0)
        )
        server.start()
        try:
            url = f"http://127.0.0.1:{server.port}"
            specs = generate_requests(
                12, 40.0, ["ping", "e01"], seed=1, deadline_ms=8000
            )
            record = run_replay(url, specs, source="test")
        finally:
            server.drain_and_stop("test-teardown")
        assert record["clean"] is True
        assert record["requests"]["total"] == 12
        assert record["requests"]["outcomes"].get("ok") == 12
        assert record["requests"]["unreachable"] == 0
        assert record["requests"]["unaccounted"] == 0
        assert record["server"]["same_pid"] is True
        assert record["latency_ms"]["overall"]["count"] == 12
        assert record["latency_ms"]["overall"]["p99_ms"] > 0

    def test_zipf_replay_records_cache_hits(self):
        dataset = MiraDataset.synthesize(n_days=2.0, seed=3)
        server = ReproServer(
            dataset,
            fingerprint="replay-fp",
            config=ServeConfig(workers=2, drain_s=3.0),
        )
        server.start()
        try:
            url = f"http://127.0.0.1:{server.port}"
            specs = generate_requests(
                16, 30.0, ["e01", "e02"], seed=2, deadline_ms=15_000,
                dist="zipf", zipf_s=1.5,
            )
            record = run_replay(
                url, specs, source="test", flush_cache_first=True
            )
        finally:
            server.drain_and_stop("test-teardown")
        assert record["clean"] is True
        cache = record["cache"]
        # 16 requests over two distinct analyses: at most a handful of
        # true computations, everything else hits or coalesces.
        assert cache["hits"] + cache["coalesced"] >= 10
        assert cache["hits"] > 0
        assert cache["hit_rate"] > 0.5
        assert cache["warm_p50_ms"] > 0.0
        assert cache["server"]["enabled"] is True
        assert cache["server"]["hits"] >= cache["hits"]

    def test_unreachable_server_is_reported_not_raised(self):
        specs = [RequestSpec("r1", 0.0, "ping", deadline_ms=500)]
        record = run_replay("http://127.0.0.1:9", specs, source="test")
        assert record["clean"] is False
        assert record["requests"]["outcomes"] == {"unreachable": 1}
        assert record["server"]["healthy_before"] is False

    def test_sweep_failures_fail_the_clean_verdict(self, monkeypatch):
        # Regression: unreachable/untyped responses during --rps-sweep
        # passes used to be invisible to the clean verdict (and so to
        # the exit code), violating the documented contract.
        import repro.serve.replay as replay_mod

        calls = {"n": 0}

        def fake_fire(url, specs, speed=1.0):
            calls["n"] += 1
            outcome = "ok" if calls["n"] == 1 else "unreachable"
            return [
                {
                    "request_id": spec.request_id,
                    "mode": spec.mode,
                    "priority": spec.priority,
                    "outcome": outcome,
                    "http_status": 200 if outcome == "ok" else 0,
                    "latency_ms": 1.0,
                }
                for spec in specs
            ]

        monkeypatch.setattr(replay_mod, "fire_requests", fake_fire)
        monkeypatch.setattr(
            replay_mod, "check_health", lambda url, timeout=5.0: {"pid": 7}
        )
        specs = [RequestSpec("r1", 0.0, "ping", deadline_ms=500)]
        record = replay_mod.run_replay(
            "http://test", specs, rps_sweep=[5.0], source="test"
        )
        # The main pass was clean; only the sweep went unreachable.
        assert record["requests"]["outcomes"] == {"ok": 1}
        assert record["requests"]["unreachable"] == 1
        assert record["clean"] is False
