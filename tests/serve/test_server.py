"""End-to-end tests of the repro-serve daemon.

Most tests drive :meth:`ReproServer.handle_query` directly — the full
admission → dispatch → worker → response path minus the HTTP socket —
and a couple go through the real HTTP front.  The SIGTERM drill runs
the actual ``repro-serve`` CLI in a subprocess.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.dataset import MiraDataset
from repro.serve.server import ReproServer, ServeConfig

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=2.0, seed=3)


@pytest.fixture()
def server(dataset):
    srv = ReproServer(
        dataset,
        fingerprint="test-fp",
        config=ServeConfig(workers=2, drain_s=3.0),
    )
    srv.start()
    yield srv
    srv.drain_and_stop("test-teardown")


def query(srv, **payload):
    payload.setdefault("schema", 1)
    return srv.handle_query(payload)


class TestHappyPath:
    def test_ping_round_trips_through_a_worker(self, server):
        response = query(server, mode="ping", request_id="p1")
        assert response.outcome == "ok"
        assert response.request_id == "p1"
        assert response.http_status == 200

    def test_summary_returns_dataset_counts(self, server, dataset):
        response = query(server, mode="summary")
        assert response.outcome == "ok"
        assert response.result["summary"]["n_jobs"] == dataset.jobs.n_rows

    def test_experiment_returns_journal_form_result(self, server):
        response = query(server, mode="experiment", experiment="e01")
        assert response.outcome == "ok"
        from repro.experiments.journal import result_from_json

        result = result_from_json(response.result)
        assert result.experiment_id == "e01"

    def test_request_ids_are_assigned_when_missing(self, server):
        response = query(server, mode="ping")
        assert response.request_id.startswith("srv-")

    def test_unknown_experiment_is_invalid_without_a_worker(self, server):
        response = query(server, mode="experiment", experiment="e99")
        assert response.outcome == "invalid"
        assert "unknown experiment" in response.message

    def test_malformed_payload_is_invalid(self, server):
        response = query(server, mode="teleport")
        assert response.outcome == "invalid"
        assert response.http_status == 400


class TestDeadlines:
    def test_sleep_past_deadline_is_cancelled_in_worker(self, server):
        started = time.monotonic()
        response = query(
            server, mode="sleep", seconds=30.0, deadline_ms=300
        )
        assert response.outcome == "deadline_exceeded"
        assert response.http_status == 504
        # The in-worker SIGALRM cancels promptly: nowhere near the
        # 30s sleep, and well under the supervisor's grace backstop.
        assert time.monotonic() - started < 5.0

    def test_worker_survives_a_cancelled_request(self, server):
        query(server, mode="sleep", seconds=30.0, deadline_ms=200)
        assert server.workers_replaced() == 0
        assert query(server, mode="ping").outcome == "ok"


class TestChaos:
    def test_kill_worker_is_isolated_and_replaced(self, server):
        server.arm_chaos("kill_worker:ping:1")
        try:
            response = query(server, mode="ping", request_id="doomed")
        finally:
            server.arm_chaos("")
        assert response.outcome == "error"
        assert "worker process died" in response.message
        assert server.workers_replaced() >= 1
        # The replacement worker serves the next request.
        assert query(server, mode="ping").outcome == "ok"

    def test_hang_trips_the_supervisor_stall_kill(self, server):
        server.arm_chaos("hang:ping:60")
        try:
            started = time.monotonic()
            response = query(server, mode="ping", deadline_ms=300)
        finally:
            server.arm_chaos("")
        assert response.outcome == "deadline_exceeded"
        assert "killed" in response.message
        # Deadline + supervisor grace, not the 60s hang.
        assert time.monotonic() - started < 10.0
        assert server.workers_replaced() >= 1

    def test_bad_spec_is_refused_eagerly(self, server):
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            server.arm_chaos("explode:everything")

    def test_arming_affects_only_requests_admitted_while_armed(self, server):
        assert query(server, mode="ping").outcome == "ok"
        server.arm_chaos("kill_worker:ping:1")
        server.arm_chaos("")
        assert query(server, mode="ping").outcome == "ok"


class TestBreaker:
    @pytest.fixture()
    def flaky_server(self, dataset):
        srv = ReproServer(
            dataset,
            config=ServeConfig(
                workers=1,
                drain_s=2.0,
                breaker_threshold=2,
                breaker_cooldown_s=0.4,
            ),
        )
        srv.start()
        yield srv
        srv.drain_and_stop("test-teardown")

    def test_trip_refuse_and_recover(self, flaky_server):
        srv = flaky_server
        srv.arm_chaos("kill_worker:e01:1")
        for _ in range(2):
            assert (
                query(srv, mode="experiment", experiment="e01").outcome
                == "error"
            )
        # Tripped: refused without touching a worker.
        replaced_before = srv.workers_replaced()
        refused = query(srv, mode="experiment", experiment="e01")
        assert refused.outcome == "breaker_open"
        assert refused.http_status == 503
        assert refused.retry_after_s is not None
        assert refused.breaker["state"] == "open"
        assert srv.workers_replaced() == replaced_before
        # Heal the source, wait out the cooldown: the half-open probe
        # closes the breaker again.
        srv.arm_chaos("")
        time.sleep(0.5)
        recovered = query(srv, mode="experiment", experiment="e01")
        assert recovered.outcome == "ok"
        assert recovered.breaker["state"] == "closed"
        assert (
            query(srv, mode="experiment", experiment="e01").outcome == "ok"
        )

    def test_other_experiments_unaffected_by_a_tripped_breaker(
        self, flaky_server
    ):
        srv = flaky_server
        srv.arm_chaos("kill_worker:e01:1")
        for _ in range(2):
            query(srv, mode="experiment", experiment="e01")
        srv.arm_chaos("")
        assert (
            query(srv, mode="experiment", experiment="e02").outcome == "ok"
        )

    def test_probe_expiring_in_queue_releases_the_half_open_slot(
        self, flaky_server
    ):
        # Regression: a half-open probe whose deadline expired while
        # queued used to keep the probe slot reserved forever, so every
        # later request answered breaker_open until a restart.
        srv = flaky_server
        srv.arm_chaos("kill_worker:e01:1")
        for _ in range(2):
            assert (
                query(srv, mode="experiment", experiment="e01").outcome
                == "error"
            )
        srv.arm_chaos("")
        # Occupy the only worker so the probe has to sit in queue.
        blocker = threading.Thread(
            target=lambda: query(srv, mode="sleep", seconds=1.2),
            daemon=True,
        )
        blocker.start()
        time.sleep(0.6)  # worker busy, breaker cooldown (0.4s) elapsed
        probe = query(
            srv, mode="experiment", experiment="e01", deadline_ms=200
        )
        assert probe.outcome == "deadline_exceeded"
        blocker.join(timeout=10.0)
        # The slot was released: the next request is admitted as the
        # new probe, succeeds, and closes the breaker.
        recovered = query(srv, mode="experiment", experiment="e01")
        assert recovered.outcome == "ok"
        assert recovered.breaker["state"] == "closed"


class TestOverload:
    """Satellite: a full queue sheds with a typed response + retry hint."""

    @pytest.fixture()
    def tiny_server(self, dataset):
        srv = ReproServer(
            dataset,
            config=ServeConfig(
                workers=1,
                interactive_capacity=1,
                batch_capacity=1,
                drain_s=4.0,
            ),
        )
        srv.start()
        yield srv
        srv.drain_and_stop("test-teardown")

    def test_full_lane_sheds_with_retry_after(self, tiny_server):
        srv = tiny_server
        background = []

        def fire(seconds):
            thread = threading.Thread(
                target=lambda: background.append(
                    query(srv, mode="sleep", seconds=seconds)
                ),
                daemon=True,
            )
            thread.start()
            return thread

        threads = [fire(0.8)]  # occupies the only worker
        time.sleep(0.3)  # let the dispatcher take it off the queue
        threads.append(fire(0.8))  # fills the 1-deep interactive lane
        time.sleep(0.1)
        shed = query(srv, mode="ping", request_id="overflow")
        assert shed.outcome == "shed"
        assert shed.http_status == 503
        assert shed.retry_after_s is not None and shed.retry_after_s > 0
        assert "queue full" in shed.message
        # The batch lane still has room — priorities shed independently.
        assert query(
            srv, mode="ping", priority="batch"
        ).outcome in ("ok", "shed")
        for thread in threads:
            thread.join(timeout=10.0)
        assert [r.outcome for r in background] == ["ok", "ok"]


class TestGracefulDrain:
    """Satellite: drain finishes in-flight work and journals shutdown."""

    def _journal(self, tmp_path):
        from repro.experiments.journal import RunJournal

        return RunJournal.start(
            tmp_path / "runs",
            fingerprint="drain-fp",
            config={"serve": True},
            run_id="drain-test",
        )

    def _events(self, journal):
        lines = (journal.directory / "journal.jsonl").read_text().splitlines()
        return [json.loads(line) for line in lines]

    def test_drain_finishes_in_flight_and_journals(self, dataset, tmp_path):
        journal = self._journal(tmp_path)
        srv = ReproServer(
            dataset,
            fingerprint="drain-fp",
            config=ServeConfig(workers=1, drain_s=5.0),
            journal=journal,
        )
        srv.start()
        in_flight = {}

        def slow_request():
            in_flight["response"] = query(
                srv, mode="sleep", seconds=0.6, request_id="inflight"
            )

        thread = threading.Thread(target=slow_request, daemon=True)
        thread.start()
        time.sleep(0.25)  # request is running on the worker
        srv.drain_and_stop("test-sigterm")
        thread.join(timeout=10.0)
        # The in-flight request finished normally within the budget.
        assert in_flight["response"].outcome == "ok"
        events = {
            r["event"]: r for r in self._events(journal) if "event" in r
        }
        assert events["drain-start"]["reason"] == "test-sigterm"
        shutdown = events["shutdown"]
        assert shutdown["drained_in_time"] is True
        assert shutdown["outcomes"].get("ok", 0) >= 1

    def test_requests_during_drain_get_typed_draining(self, dataset):
        srv = ReproServer(dataset, config=ServeConfig(workers=1, drain_s=1.0))
        srv.start()
        srv.request_stop("test")
        response = query(srv, mode="ping")
        assert response.outcome == "draining"
        assert response.http_status == 503
        assert response.retry_after_s is not None
        srv.run_until_stopped()

    def test_overrunning_work_is_killed_and_answered_draining(
        self, dataset
    ):
        srv = ReproServer(
            dataset, config=ServeConfig(workers=1, drain_s=0.3)
        )
        srv.start()
        outcome = {}

        def never_finishes():
            outcome["response"] = query(
                srv, mode="sleep", seconds=60.0, deadline_ms=50_000
            )

        thread = threading.Thread(target=never_finishes, daemon=True)
        thread.start()
        time.sleep(0.2)
        started = time.monotonic()
        srv.drain_and_stop("budget-blown")
        thread.join(timeout=15.0)
        assert not thread.is_alive()
        # Still a typed outcome — the request was not dropped.
        assert outcome["response"].outcome == "draining"
        assert time.monotonic() - started < 12.0


class TestHealth:
    def test_healthz_reports_fleet_state(self, server):
        query(server, mode="ping")
        payload = server.healthz()
        assert payload["status"] == "ok"
        assert payload["dataset"]["fingerprint"] == "test-fp"
        assert payload["workers"]["slots"] == 2
        assert payload["workers"]["alive"] == 2
        assert payload["requests"].get("ok", 0) >= 1
        assert "interactive" in payload["queue"]

    def test_readyz_flips_on_drain(self, dataset):
        srv = ReproServer(dataset, config=ServeConfig(workers=1, drain_s=0.5))
        srv.start()
        assert srv.readyz()[0] is True
        srv.request_stop("test")
        ready, payload = srv.readyz()
        assert ready is False
        assert payload["reason"] == "draining"
        srv.run_until_stopped()


class TestHTTPFront:
    def test_query_health_and_errors_over_real_http(self, server):
        from repro.serve.replay import _http_json

        url = f"http://127.0.0.1:{server.port}"
        status, body = _http_json(
            url, "POST", "/query", {"schema": 1, "mode": "ping"}
        )
        assert status == 200 and body["outcome"] == "ok"
        status, body = _http_json(url, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        status, body = _http_json(url, "GET", "/readyz")
        assert status == 200 and body["ready"] is True
        status, body = _http_json(url, "POST", "/query", None)
        assert status == 400 and body["outcome"] == "invalid"
        status, body = _http_json(url, "GET", "/nope")
        assert status == 404


class TestSigtermDrill:
    """Satellite: SIGTERM mid-request → in-flight completes, clean exit."""

    def test_sigterm_drains_gracefully(self, tmp_path):
        runs_root = tmp_path / "runs"
        env = dict(
            os.environ,
            PYTHONPATH=REPO_SRC,
            REPRO_RUNS_DIR=str(runs_root),
            REPRO_CACHE_DIR=str(tmp_path / "cache"),
        )
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.serve.cli import main_serve; import sys; "
                "sys.exit(main_serve(["
                "'--days','2','--seed','3','--workers','1',"
                "'--run-id','drill','--no-cache','--drain-seconds','6']))",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        endpoint_file = runs_root / "drill" / "endpoint.json"
        try:
            for _ in range(200):
                if endpoint_file.exists():
                    break
                assert child.poll() is None, child.communicate()[1]
                time.sleep(0.1)
            else:
                pytest.fail("server never wrote endpoint.json")
            url = json.loads(endpoint_file.read_text())["url"]

            from repro.serve.replay import _http_json

            answer = {}

            def in_flight():
                answer["status"], answer["body"] = _http_json(
                    url,
                    "POST",
                    "/query",
                    {"schema": 1, "mode": "sleep", "seconds": 1.0,
                     "request_id": "mid-sigterm", "deadline_ms": 20_000},
                    timeout=30.0,
                )

            thread = threading.Thread(target=in_flight, daemon=True)
            thread.start()
            time.sleep(0.4)  # the sleep is running on the worker
            child.send_signal(signal.SIGTERM)
            thread.join(timeout=30.0)
            stdout, stderr = child.communicate(timeout=30.0)
        finally:
            if child.poll() is None:
                child.kill()
                child.communicate()
        assert child.returncode == 0, stderr
        # The in-flight request completed normally despite the SIGTERM.
        assert answer["status"] == 200
        assert answer["body"]["outcome"] == "ok"
        assert answer["body"]["request_id"] == "mid-sigterm"
        # The shutdown was journaled as a graceful drain.
        records = [
            json.loads(line)
            for line in (runs_root / "drill" / "journal.jsonl")
            .read_text()
            .splitlines()
        ]
        shutdown = [r for r in records if r.get("event") == "shutdown"]
        assert len(shutdown) == 1
        assert shutdown[0]["reason"] == "SIGTERM"
        assert shutdown[0]["drained_in_time"] is True
        ends = [r for r in records if r.get("kind") == "end"]
        assert ends and ends[0]["status"] == "complete"
