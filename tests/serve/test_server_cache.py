"""E2e tests for result caching, coalescing, and batch folding.

The correctness bar for the whole caching layer is *byte identity*: a
cached answer must be indistinguishable from a freshly computed one
for every experiment, and anything non-deterministic (chaos, dirty
datasets, error outcomes) must never enter the cache.
"""

import json
import threading
import time

import pytest

from repro import __version__
from repro.dataset import MiraDataset
from repro.experiments import all_experiments
from repro.serve.replay import check_health
from repro.serve.server import ReproServer, ServeConfig


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=2.0, seed=3)


def make_server(dataset, tmp_path=None, **config):
    config.setdefault("workers", 2)
    config.setdefault("drain_s", 3.0)
    if tmp_path is not None:
        config.setdefault("cache_dir", str(tmp_path))
    srv = ReproServer(
        dataset,
        fingerprint=config.pop("fingerprint", "cache-fp"),
        config=ServeConfig(**config),
    )
    srv.start()
    return srv


def query(srv, **payload):
    payload.setdefault("schema", 1)
    return srv.handle_query(payload)


def canonical_bytes(result):
    return json.dumps(result, sort_keys=True)


class TestByteIdentity:
    @pytest.fixture(scope="class")
    def server(self, dataset):
        srv = make_server(dataset)
        yield srv
        srv.drain_and_stop("test-teardown")

    def test_every_experiment_is_byte_identical_from_cache(self, server):
        for experiment in sorted(all_experiments()):
            fresh = query(
                server, mode="experiment", experiment=experiment,
                deadline_ms=30_000,
            )
            cached = query(
                server, mode="experiment", experiment=experiment,
                deadline_ms=30_000,
            )
            assert fresh.cache == "miss", experiment
            assert cached.cache == "hit_memory", experiment
            assert cached.outcome == fresh.outcome, experiment
            assert cached.message == fresh.message, experiment
            assert canonical_bytes(cached.result) == canonical_bytes(
                fresh.result
            ), experiment

    def test_summary_hits_too(self, server):
        first = query(server, mode="summary")
        second = query(server, mode="summary")
        assert first.cache in ("miss", "hit_memory")
        assert second.cache == "hit_memory"
        assert canonical_bytes(second.result) == canonical_bytes(
            first.result
        )

    def test_ping_is_never_cached(self, server):
        assert query(server, mode="ping").cache is None

    def test_healthz_reports_the_cache_block(self, server):
        health = server.healthz()
        cache = health["cache"]
        assert cache["enabled"] is True
        assert cache["hits"] > 0
        assert 0.0 <= cache["hit_ratio"] <= 1.0
        assert cache["memory"]["entries"] > 0
        assert {"coalesced", "batched", "bypasses"} <= set(cache)


class TestInvalidation:
    def test_fingerprint_change_invalidates_the_disk_tier(
        self, dataset, tmp_path
    ):
        first = make_server(dataset, tmp_path, fingerprint="fp-old")
        try:
            assert query(first, mode="summary").cache == "miss"
            assert query(first, mode="summary").cache == "hit_memory"
            assert first.cache.stats()["disk"]["entries"] == 1
        finally:
            first.drain_and_stop("test-teardown")
        # Same cache dir, different dataset fingerprint: the old entry
        # is unreachable by key and pruned from disk at startup.
        second = make_server(dataset, tmp_path, fingerprint="fp-new")
        try:
            assert second.cache.stats()["disk"]["entries"] == 0
            assert query(second, mode="summary").cache == "miss"
        finally:
            second.drain_and_stop("test-teardown")

    def test_disk_tier_survives_a_daemon_restart(self, dataset, tmp_path):
        first = make_server(dataset, tmp_path, fingerprint="fp-same")
        try:
            fresh = query(first, mode="summary")
            assert fresh.cache == "miss"
        finally:
            first.drain_and_stop("test-teardown")
        second = make_server(dataset, tmp_path, fingerprint="fp-same")
        try:
            warm = query(second, mode="summary")
            assert warm.cache == "hit_disk"
            assert canonical_bytes(warm.result) == canonical_bytes(
                fresh.result
            )
        finally:
            second.drain_and_stop("test-teardown")


class TestBypasses:
    def test_chaos_armed_requests_bypass_and_never_store(self, dataset):
        server = make_server(dataset)
        try:
            server.arm_chaos("kill_worker:e01:99")
            try:
                doomed = query(server, mode="experiment", experiment="e01")
            finally:
                server.arm_chaos("")
            assert doomed.outcome == "error"
            assert doomed.cache == "bypass"
            # The error was not cached; the next request computes.
            clean = query(server, mode="experiment", experiment="e01")
            assert clean.outcome == "ok"
            assert clean.cache == "miss"
            assert server.cache_stats()["bypasses"] >= 1
        finally:
            server.drain_and_stop("test-teardown")

    def test_dirty_dataset_bypasses_the_cache(self):
        dirty = MiraDataset.synthesize(n_days=1.0, seed=5)
        dirty.ingestion = {"quarantined_rows": 2}
        server = make_server(dirty, fingerprint="dirty-fp")
        try:
            assert query(server, mode="summary").cache == "bypass"
            assert query(server, mode="summary").cache == "bypass"
            stats = server.cache_stats()
            assert stats["dirty_bypass"] is True
            assert stats["stores"] == 0
        finally:
            server.drain_and_stop("test-teardown")

    def test_cache_disabled_still_serves(self, dataset):
        server = make_server(dataset, cache_enabled=False)
        try:
            assert query(server, mode="summary").cache == "bypass"
            stats = server.cache_stats()
            assert stats["enabled"] is False
            assert stats["hits"] == 0
        finally:
            server.drain_and_stop("test-teardown")

    def test_error_outcomes_are_never_cached(self, dataset):
        server = make_server(dataset, workers=1)
        try:
            slow = query(server, mode="sleep", seconds=10.0, deadline_ms=200)
            assert slow.outcome == "deadline_exceeded"
            assert server.cache_stats()["stores"] == 0
        finally:
            server.drain_and_stop("test-teardown")


class TestCoalescing:
    def test_identical_requests_share_one_execution(self, dataset):
        server = make_server(dataset, workers=1)
        try:
            # Occupy the only worker so identical requests pile up in
            # the queue behind one leader flight.
            responses = {}

            def fire(name, **payload):
                responses[name] = query(server, **payload)

            blocker = threading.Thread(
                target=fire,
                args=("blocker",),
                kwargs={"mode": "sleep", "seconds": 0.6, "deadline_ms": 5000},
            )
            blocker.start()
            time.sleep(0.15)  # let the blocker reach the worker
            threads = [
                threading.Thread(
                    target=fire,
                    args=(f"rider-{index}",),
                    kwargs={
                        "mode": "experiment",
                        "experiment": "e01",
                        "deadline_ms": 30_000,
                    },
                )
                for index in range(3)
            ]
            for thread in threads:
                thread.start()
                time.sleep(0.05)
            for thread in [blocker, *threads]:
                thread.join()
            riders = [responses[f"rider-{i}"] for i in range(3)]
            assert all(r.outcome == "ok" for r in riders)
            payloads = {canonical_bytes(r.result) for r in riders}
            assert len(payloads) == 1
            states = sorted(r.cache for r in riders)
            assert "coalesced" in states
            assert server.cache_stats()["coalesced"] >= 1
        finally:
            server.drain_and_stop("test-teardown")

    def test_coalesced_waiter_honors_its_own_deadline(self, dataset):
        server = make_server(dataset, workers=1)
        try:
            responses = {}

            def fire(name, **payload):
                responses[name] = query(server, **payload)

            blocker = threading.Thread(
                target=fire,
                args=("blocker",),
                kwargs={"mode": "sleep", "seconds": 1.0, "deadline_ms": 5000},
            )
            leader = threading.Thread(
                target=fire,
                args=("leader",),
                kwargs={
                    "mode": "experiment",
                    "experiment": "e02",
                    "deadline_ms": 30_000,
                },
            )
            follower = threading.Thread(
                target=fire,
                args=("follower",),
                kwargs={
                    "mode": "experiment",
                    "experiment": "e02",
                    "deadline_ms": 250,
                },
            )
            blocker.start()
            time.sleep(0.15)
            leader.start()
            time.sleep(0.1)
            follower.start()
            for thread in (blocker, leader, follower):
                thread.join()
            # The follower's own (tiny) deadline expired while it was
            # coalesced behind the leader's flight...
            assert responses["follower"].outcome == "deadline_exceeded"
            assert responses["follower"].cache == "coalesced"
            assert "coalesced" in responses["follower"].message
            # ...without affecting the leader's flight at all.
            assert responses["leader"].outcome == "ok"
        finally:
            server.drain_and_stop("test-teardown")


class TestBatchFolding:
    def test_queued_batch_requests_fold_into_one_dispatch(self, dataset):
        server = make_server(dataset, workers=1, batch_max=4)
        try:
            responses = {}

            def fire(name, **payload):
                responses[name] = query(server, **payload)

            blocker = threading.Thread(
                target=fire,
                args=("blocker",),
                kwargs={"mode": "sleep", "seconds": 0.6, "deadline_ms": 5000},
            )
            blocker.start()
            time.sleep(0.15)
            experiments = ("e01", "e02", "e03")
            threads = [
                threading.Thread(
                    target=fire,
                    args=(experiment,),
                    kwargs={
                        "mode": "experiment",
                        "experiment": experiment,
                        "priority": "batch",
                        "deadline_ms": 30_000,
                    },
                )
                for experiment in experiments
            ]
            for thread in threads:
                thread.start()
                time.sleep(0.05)
            for thread in [blocker, *threads]:
                thread.join()
            for experiment in experiments:
                assert responses[experiment].outcome == "ok", experiment
                assert responses[experiment].result is not None
            assert server.cache_stats()["batched"] >= 2
            # Folded answers enter the cache like any other.
            assert query(
                server, mode="experiment", experiment="e01",
                priority="batch", deadline_ms=30_000,
            ).cache == "hit_memory"
        finally:
            server.drain_and_stop("test-teardown")


class TestAdminEndpoints:
    def test_admin_cache_get_and_flush_over_http(self, dataset):
        import http.client

        server = make_server(dataset)
        try:
            assert query(server, mode="summary").outcome == "ok"
            url = f"http://127.0.0.1:{server.port}"
            health = check_health(url)
            assert health is not None
            assert isinstance(health["cache"], dict)

            conn = http.client.HTTPConnection("127.0.0.1", server.port)
            try:
                conn.request("GET", "/admin/cache")
                stats = json.loads(conn.getresponse().read())
                assert stats["enabled"] is True
                assert stats["stores"] >= 1

                body = json.dumps({"flush": True}).encode()
                conn.request(
                    "POST", "/admin/cache", body=body,
                    headers={"Content-Type": "application/json"},
                )
                flushed = json.loads(conn.getresponse().read())
                assert flushed["enabled"] is True
                assert flushed["flushed"]["memory"] >= 1
            finally:
                conn.close()
            assert query(server, mode="summary").cache == "miss"
        finally:
            server.drain_and_stop("test-teardown")

    def test_check_health_rejects_a_missing_cache_block(self, dataset):
        server = make_server(dataset)
        try:
            url = f"http://127.0.0.1:{server.port}"
            assert check_health(url) is not None
            assert check_health(url)["cache"]["enabled"] is True
        finally:
            server.drain_and_stop("test-teardown")
        assert check_health(url) is None  # unreachable after shutdown


class TestKeying:
    def test_cache_keys_embed_fingerprint_and_version(self, dataset):
        from repro.serve.resultcache import result_key

        params = (("mode", "summary"),)
        key_now = result_key("cache-fp", params, __version__)
        assert key_now != result_key("other-fp", params, __version__)
        assert key_now != result_key("cache-fp", params, "0.0.0")
