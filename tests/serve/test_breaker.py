"""Circuit breaker state machine, driven by an injected clock."""

from repro.serve.breaker import BreakerBoard, CircuitBreaker

import pytest


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


class TestTrip:
    def test_stays_closed_below_threshold(self, clock):
        breaker = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=clock)
        for _ in range(2):
            assert breaker.admit() == "closed"
            breaker.record(success=False)
        assert breaker.admit() == "closed"

    def test_consecutive_failures_trip_it_open(self, clock):
        breaker = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=clock)
        for _ in range(3):
            breaker.record(success=False)
        assert breaker.admit() == "open"
        assert breaker.snapshot()["state"] == "open"

    def test_success_resets_the_streak(self, clock):
        breaker = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=clock)
        breaker.record(success=False)
        breaker.record(success=False)
        breaker.record(success=True)
        breaker.record(success=False)
        breaker.record(success=False)
        assert breaker.admit() == "closed"


class TestHalfOpen:
    def _tripped(self, clock, threshold=2, cooldown_s=5.0):
        breaker = CircuitBreaker(
            threshold=threshold, cooldown_s=cooldown_s, clock=clock
        )
        for _ in range(threshold):
            breaker.record(success=False)
        return breaker

    def test_open_until_cooldown_elapses(self, clock):
        breaker = self._tripped(clock)
        assert breaker.admit() == "open"
        clock.advance(4.9)
        assert breaker.admit() == "open"
        clock.advance(0.2)
        assert breaker.admit() == "probe"

    def test_single_probe_at_a_time(self, clock):
        breaker = self._tripped(clock)
        clock.advance(5.1)
        assert breaker.admit() == "probe"
        # Concurrent admits while the probe is deciding are refused.
        assert breaker.admit() == "open"

    def test_successful_probe_closes(self, clock):
        breaker = self._tripped(clock)
        clock.advance(5.1)
        assert breaker.admit() == "probe"
        breaker.record(success=True, probe=True)
        assert breaker.admit() == "closed"
        assert breaker.snapshot()["consecutive_failures"] == 0

    def test_failed_probe_reopens_for_another_cooldown(self, clock):
        breaker = self._tripped(clock)
        clock.advance(5.1)
        assert breaker.admit() == "probe"
        breaker.record(success=False, probe=True)
        assert breaker.admit() == "open"
        clock.advance(5.1)
        assert breaker.admit() == "probe"

    def test_cancelled_probe_releases_the_slot(self, clock):
        # A probe shed at admission never runs; the slot must free up
        # or the breaker would refuse probes forever.
        breaker = self._tripped(clock)
        clock.advance(5.1)
        assert breaker.admit() == "probe"
        breaker.cancel_probe()
        assert breaker.admit() == "probe"


class TestStaleResults:
    """Results from requests admitted *before* a trip must not move
    the state machine around the single-probe half-open protocol."""

    def _tripped(self, clock, threshold=2, cooldown_s=5.0):
        breaker = CircuitBreaker(
            threshold=threshold, cooldown_s=cooldown_s, clock=clock
        )
        for _ in range(threshold):
            breaker.record(success=False)
        return breaker

    def test_stale_success_cannot_force_close_an_open_breaker(self, clock):
        breaker = self._tripped(clock)
        breaker.record(success=True)  # admitted pre-trip, finished late
        assert breaker.admit() == "open"

    def test_stale_success_cannot_bypass_an_inflight_probe(self, clock):
        breaker = self._tripped(clock)
        clock.advance(5.1)
        assert breaker.admit() == "probe"
        breaker.record(success=True)  # stale non-probe result
        # The probe still owns the half-open slot, and its verdict —
        # not the stale success — decides the state.
        assert breaker.admit() == "open"
        breaker.record(success=False, probe=True)
        assert breaker.admit() == "open"

    def test_stale_failure_cannot_reopen_under_a_probe(self, clock):
        breaker = self._tripped(clock)
        clock.advance(5.1)
        assert breaker.admit() == "probe"
        breaker.record(success=False)  # stale non-probe failure
        breaker.record(success=True, probe=True)
        assert breaker.admit() == "closed"


class TestRetryAfter:
    def test_counts_down_with_the_clock(self, clock):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0, clock=clock)
        breaker.record(success=False)
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock.advance(6.0)
        assert breaker.retry_after_s() == pytest.approx(4.0)

    def test_closed_breaker_needs_no_retry(self, clock):
        breaker = CircuitBreaker(clock=clock)
        assert breaker.retry_after_s() == 0.0


class TestBoard:
    def test_keys_are_independent(self, clock):
        board = BreakerBoard(threshold=1, cooldown_s=5.0, clock=clock)
        board.get("e03").record(success=False)
        assert board.get("e03").admit() == "open"
        assert board.get("e05").admit() == "closed"

    def test_snapshot_hides_clean_breakers(self, clock):
        board = BreakerBoard(threshold=2, cooldown_s=5.0, clock=clock)
        board.get("quiet").record(success=True)
        board.get("flaky").record(success=False)
        board.get("dead").record(success=False)
        board.get("dead").record(success=False)
        snap = board.snapshot()
        assert set(snap) == {"flaky", "dead"}
        assert snap["dead"]["state"] == "open"
        assert snap["flaky"]["consecutive_failures"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown_s=0.0)
