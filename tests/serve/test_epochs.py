"""Dataset epochs: live swap, cache invalidation, replay consistency."""

import shutil

import pytest

from repro.dataset.cache import fingerprint_for_run
from repro.dataset.mira import MiraDataset
from repro.serve.replay import epoch_summary
from repro.serve.resultcache import ResultCache, result_key
from repro.serve.server import ReproServer, ServeConfig
from repro.serve.workers import WorkerSlot


def query(srv, **payload):
    payload.setdefault("schema", 1)
    return srv.handle_query(payload)


@pytest.fixture(scope="module")
def dataset_dirs(tmp_path_factory):
    root = tmp_path_factory.mktemp("epoch-datasets")
    old_dir, new_dir = root / "old", root / "new"
    MiraDataset.synthesize(2.0, seed=5, cache=False).save(old_dir)
    MiraDataset.synthesize(2.0, seed=6, cache=False).save(new_dir)
    return old_dir, new_dir


@pytest.fixture()
def live_dir(dataset_dirs, tmp_path):
    # A mutable copy of the "old" dataset the test can overwrite to
    # simulate the feed growing on disk.
    old_dir, _ = dataset_dirs
    target = tmp_path / "live"
    shutil.copytree(old_dir, target)
    return target


def _make_server(live_dir, tmp_path):
    dataset = MiraDataset.load(live_dir, cache=False)
    fingerprint = fingerprint_for_run(live_dir, 2.0, 5)

    def reloader():
        return (
            MiraDataset.load(live_dir, cache=False),
            fingerprint_for_run(live_dir, 2.0, 5),
        )

    srv = ReproServer(
        dataset,
        fingerprint=fingerprint,
        config=ServeConfig(workers=2, drain_s=3.0),
        reloader=reloader,
    )
    srv.start()
    return srv


class TestWorkerRebind:
    def test_rebind_swaps_dataset_and_counts(self):
        a = MiraDataset.synthesize(1.0, seed=1, cache=False)
        b = MiraDataset.synthesize(1.0, seed=2, cache=False)
        slot = WorkerSlot(a)
        assert slot.epoch == 0
        slot.rebind(b, 3)
        assert slot._dataset is b
        assert slot.epoch == 3
        assert slot.rebinds == 1
        assert slot.replacements == 0  # rebinds are not crash recoveries


class TestCacheInvalidation:
    def test_prune_memory_mismatched_drops_stale_epoch_entries(self):
        cache = ResultCache(max_bytes=1 << 20)
        params = (("mode", "summary"),)
        k_old = result_key("fp-old", params, "1.0")
        k_new = result_key("fp-new", params, "1.0")
        for key, fingerprint, n in (
            (k_old, "fp-old", 1), (k_new, "fp-new", 2)
        ):
            cache.put(
                key, outcome="ok", message="", result={"n": n},
                fingerprint=fingerprint, toolkit_version="1.0",
                params=params,
            )
        assert cache.prune_memory_mismatched("fp-new") == 1
        assert cache.get(k_old) is None
        entry, tier = cache.get(k_new)
        assert tier == "memory"
        assert entry.result == {"n": 2}


class TestAdvanceEpoch:
    def test_refused_without_a_reloader(self):
        dataset = MiraDataset.synthesize(1.0, seed=1, cache=False)
        srv = ReproServer(
            dataset, fingerprint="fp",
            config=ServeConfig(workers=1, drain_s=2.0),
        )
        srv.start()
        try:
            verdict = srv.advance_epoch()
            assert verdict["advanced"] is False
            assert verdict["reason"] == "no reloader configured"
            assert verdict["epoch"] == 0
        finally:
            srv.drain_and_stop("test-teardown")

    def test_unchanged_fingerprint_is_a_noop(self, live_dir, tmp_path):
        srv = _make_server(live_dir, tmp_path)
        try:
            verdict = srv.advance_epoch()
            assert verdict["advanced"] is False
            assert verdict["reason"] == "fingerprint unchanged"
        finally:
            srv.drain_and_stop("test-teardown")

    def test_reload_failure_is_reported_not_fatal(self, tmp_path):
        dataset = MiraDataset.synthesize(1.0, seed=1, cache=False)

        def broken():
            raise OSError("disk gone")

        srv = ReproServer(
            dataset, fingerprint="fp",
            config=ServeConfig(workers=1, drain_s=2.0),
            reloader=broken,
        )
        srv.start()
        try:
            verdict = srv.advance_epoch()
            assert verdict["advanced"] is False
            assert "reload failed" in verdict["reason"]
            # The server still answers under the old epoch.
            response = query(srv, mode="summary")
            assert response.outcome == "ok"
            assert response.epoch == 0
        finally:
            srv.drain_and_stop("test-teardown")

    def test_live_swap_invalidates_and_rebinds(
        self, dataset_dirs, live_dir, tmp_path
    ):
        _, new_dir = dataset_dirs
        srv = _make_server(live_dir, tmp_path)
        try:
            first = query(srv, mode="summary")
            assert first.outcome == "ok"
            assert first.epoch == 0
            assert first.cache == "miss"
            old_jobs = first.result["summary"]["n_jobs"]
            assert query(srv, mode="summary").cache == "hit_memory"

            # The dataset grows on disk: overwrite the live files.
            for path in new_dir.iterdir():
                shutil.copy(path, live_dir / path.name)
            verdict = srv.advance_epoch()
            assert verdict["advanced"] is True
            assert verdict["epoch"] == 1
            assert verdict["invalidated"] >= 1

            second = query(srv, mode="summary")
            assert second.outcome == "ok"
            assert second.epoch == 1
            assert second.cache == "miss"  # old answer was invalidated
            assert second.result["summary"]["n_jobs"] != old_jobs

            health = srv.healthz()
            assert health["dataset"]["epoch"] == 1
            assert health["dataset"]["epochs_advanced"] == 1
            assert health["workers"]["rebound"] >= 1
        finally:
            srv.drain_and_stop("test-teardown")


class TestEpochSummary:
    def test_consistent_when_witnesses_agree(self):
        results = [
            {"outcome": "ok", "epoch": 0, "n_jobs": 10},
            {"outcome": "ok", "epoch": 0, "n_jobs": 10},
            {"outcome": "ok", "epoch": 1, "n_jobs": 17},
        ]
        summary = epoch_summary(results, enabled=True)
        assert summary["observed"] == [0, 1]
        assert summary["mixed"] == []
        assert summary["untagged"] == 0
        assert summary["consistent"] is True

    def test_mixed_witnesses_fail_the_drill(self):
        results = [
            {"outcome": "ok", "epoch": 0, "n_jobs": 10},
            {"outcome": "ok", "epoch": 0, "n_jobs": 17},  # epoch-0 lies
        ]
        summary = epoch_summary(results, enabled=True)
        assert summary["mixed"] == [0]
        assert summary["consistent"] is False

    def test_untagged_only_fails_when_drill_enabled(self):
        results = [{"outcome": "ok", "epoch": None, "n_jobs": None}]
        assert epoch_summary(results, enabled=True)["consistent"] is False
        assert epoch_summary(results, enabled=False)["consistent"] is True

    def test_failed_shots_are_not_witnesses(self):
        results = [
            {"outcome": "ok", "epoch": 0, "n_jobs": 10},
            {"outcome": "error", "epoch": 0, "n_jobs": 99},
        ]
        summary = epoch_summary(results, enabled=True)
        assert summary["mixed"] == []
        assert summary["consistent"] is True
