"""End-to-end tracing: ``repro-report --trace`` + the ``repro-trace`` CLI."""

import json

import pytest

from repro.cli import main_report
from repro.obs import trace
from repro.obs.cli import main_trace
from repro.obs.schema import validate_file


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced report run (worker pool), shared by the read-only tests."""
    runs_root = tmp_path_factory.mktemp("runs")
    rc = main_report(
        [
            "--days", "6", "--seed", "7", "--jobs", "2",
            "--run-id", "traced", "--no-cache", "--trace",
            "--run-dir", str(runs_root),
        ]
    )
    assert rc == 0
    return runs_root


class TestReportTrace:
    def test_trace_jsonl_is_schema_valid(self, traced_run):
        validate_file(traced_run / "traced" / "trace.jsonl")

    def test_spans_cover_synthesis_kernels_and_every_experiment(
        self, traced_run
    ):
        from repro.experiments import all_experiments

        records = validate_file(traced_run / "traced" / "trace.jsonl")
        names = {r["name"] for r in records if r["kind"] == "span"}
        assert {
            "dataset.synthesize", "synth.ras", "synth.workload",
            "synth.scheduler", "synth.tasks", "synth.io", "synth.annotate",
        } <= names
        # The vectorized kernels that run on a 6-day trace.
        assert {"kernel.attribution", "kernel.bootstrap", "kernel.groupby"} <= names
        traced_experiments = {
            r["attrs"]["id"]
            for r in records
            if r["kind"] == "span" and r["name"] == "experiment"
        }
        assert traced_experiments == set(all_experiments())

    def test_worker_spans_keep_their_parent_links(self, traced_run):
        # Kernel spans shipped from workers must stay nested under their
        # "experiment" root after the supervisor re-bases their ids.
        # (Kernels also run under dataset.synthesize in the supervisor,
        # so only the experiment-rooted chains prove the worker path.)
        records = validate_file(traced_run / "traced" / "trace.jsonl")
        spans = {r["id"]: r for r in records if r["kind"] == "span"}

        def root(span):
            while span["parent"] is not None:
                span = spans[span["parent"]]
            return span

        worker_kernels = [
            s for s in spans.values()
            if s["name"].startswith("kernel.")
            and root(s)["name"] == "experiment"
        ]
        assert worker_kernels, "no kernel spans survived the worker boundary"

    def test_trace_implies_timings_section(self, traced_run):
        report = (traced_run / "traced" / "report.txt").read_text()
        assert "TIMINGS" in report

    def test_journal_carries_no_spans(self, traced_run):
        journal = traced_run / "traced" / "journal.jsonl"
        for line in journal.read_text().splitlines():
            assert "spans" not in json.loads(line)

    def test_recorder_uninstalled_after_run(self, traced_run):
        assert trace.active() is None

    def test_trace_conflicts_with_no_journal(self):
        with pytest.raises(SystemExit) as excinfo:
            main_report(["--trace", "--no-journal"])
        assert excinfo.value.code == 2


class TestIngestSpans:
    def test_saved_dataset_load_traces_csv_and_cache(self, tmp_path, capsys):
        """csv.* spans and cache miss/store counters from a real load."""
        from repro.dataset import MiraDataset

        dataset_dir = tmp_path / "ds"
        MiraDataset.synthesize(n_days=5, seed=3, cache=False).save(dataset_dir)
        with trace.recording() as recorder:
            MiraDataset.load(dataset_dir, cache=True)
        names = {s["name"] for s in recorder.spans}
        assert "dataset.load" in names
        assert {"csv.read", "csv.scan", "csv.tokenize", "csv.infer"} <= names
        assert recorder.counters["cache.miss"] >= 1
        assert recorder.counters["cache.store"] >= 1
        assert recorder.counters["csv.rows"] > 0

        with trace.recording() as warm:
            MiraDataset.load(dataset_dir, cache=True)
        assert warm.counters["cache.hit"] >= 1
        assert "cache.read" in {s["name"] for s in warm.spans}


class TestTraceCli:
    def test_validate_subcommand(self, traced_run, capsys):
        rc = main_trace(["--run-dir", str(traced_run), "validate", "traced"])
        assert rc == 0
        assert "OK:" in capsys.readouterr().out

    def test_summarize_subcommand(self, traced_run, capsys):
        rc = main_trace(
            ["--run-dir", str(traced_run), "summarize", "traced", "--top", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "span" in out and "self s" in out
        assert "experiment" in out

    def test_diff_self_is_flat(self, traced_run, capsys):
        rc = main_trace(
            [
                "--run-dir", str(traced_run),
                "diff", "traced", "traced", "--fail-above", "1.5",
            ]
        )
        assert rc == 0
        assert "1.00" in capsys.readouterr().out

    def test_diff_fail_above_gates_regressions(self, tmp_path, capsys):
        def write_trace(path, seconds):
            with trace.recording() as recorder:
                with trace.span("kernel.hot"):
                    pass
            recorder.spans[0]["seconds"] = seconds
            recorder.write(path, run_id="r")

        write_trace(tmp_path / "a.jsonl", 0.1)
        write_trace(tmp_path / "b.jsonl", 0.5)
        rc = main_trace(
            [
                "diff",
                str(tmp_path / "a.jsonl"),
                str(tmp_path / "b.jsonl"),
                "--fail-above", "1.5",
            ]
        )
        assert rc == 1
        assert "regression" in capsys.readouterr().err

    def test_missing_run_exits_1(self, tmp_path, capsys):
        rc = main_trace(["--run-dir", str(tmp_path), "summarize", "nope"])
        assert rc == 1
        assert "INVALID" in capsys.readouterr().err
