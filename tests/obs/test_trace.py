"""Core tracing: nesting, metrics, serialization, absorb, no-op cost."""

import json
import time

import pytest

from repro.obs import trace
from repro.obs.schema import TraceSchemaError, validate_file, validate_lines


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Tracing must be off before and after every test here."""
    assert trace.active() is None
    yield
    trace.uninstall()


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        with trace.recording() as recorder:
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
                with trace.span("sibling"):
                    pass
        outer, inner, sibling = recorder.spans
        assert outer["parent"] is None and outer["depth"] == 0
        assert inner["parent"] == outer["id"] and inner["depth"] == 1
        assert sibling["parent"] == outer["id"] and sibling["depth"] == 1

    def test_durations_are_monotonic_and_nested(self):
        with trace.recording() as recorder:
            with trace.span("outer"):
                with trace.span("inner"):
                    time.sleep(0.002)
        outer, inner = recorder.spans
        assert inner["seconds"] >= 0.002
        assert outer["seconds"] >= inner["seconds"]
        assert outer["start"] <= inner["start"]

    def test_note_attaches_attrs_mid_span(self):
        with trace.recording() as recorder:
            with trace.span("csv.tokenize", file="jobs.csv") as sp:
                sp.note(rows=42, fields=7)
        (span,) = recorder.spans
        assert span["attrs"] == {"file": "jobs.csv", "rows": 42, "fields": 7}

    def test_exception_closes_span_and_records_error_class(self):
        with trace.recording() as recorder:
            with pytest.raises(ValueError):
                with trace.span("doomed"):
                    raise ValueError("boom")
            # The stack unwound: new spans are roots again.
            with trace.span("after"):
                pass
        doomed, after = recorder.spans
        assert doomed["attrs"]["error"] == "ValueError"
        assert after["parent"] is None

    def test_counters_accumulate_and_gauges_overwrite(self):
        with trace.recording() as recorder:
            trace.add("csv.rows", 10)
            trace.add("csv.rows", 5)
            trace.set_gauge("cache.entries", 3)
            trace.set_gauge("cache.entries", 9)
        assert recorder.counters == {"csv.rows": 15}
        assert recorder.gauges == {"cache.entries": 9}


class TestDisabled:
    def test_span_is_shared_noop_when_off(self):
        first = trace.span("anything", rows=1)
        second = trace.span("else")
        assert first is second  # the shared _NULL_SPAN, no allocation
        with first as sp:
            sp.note(rows=2)  # discards silently
        trace.add("counter")
        trace.set_gauge("gauge", 1.0)  # no recorder: both no-ops

    def test_recording_restores_previous_recorder(self):
        outer = trace.install(trace.TraceRecorder())
        try:
            with trace.recording() as inner:
                assert trace.active() is inner
            assert trace.active() is outer
        finally:
            trace.uninstall()

    def test_disabled_span_costs_under_a_microsecond(self):
        """The acceptance guard: one global load + `is None` per span."""
        n = 20_000

        def timed_once() -> float:
            t0 = time.perf_counter()
            for _ in range(n):
                with trace.span("hot"):
                    pass
            return (time.perf_counter() - t0) / n
        # min-of-repeats filters scheduler noise; the true cost is ~50 ns.
        assert min(timed_once() for _ in range(5)) < 1e-6


class TestSerialization:
    def test_write_produces_schema_valid_jsonl(self, tmp_path):
        with trace.recording() as recorder:
            with trace.span("outer", label="x"):
                with trace.span("inner"):
                    pass
            trace.add("rows", 3)
            trace.set_gauge("level", 0.5)
        path = recorder.write(tmp_path / "trace.jsonl", run_id="r1")
        validate_file(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["kind"] == "trace" and records[0]["run_id"] == "r1"
        kinds = [r["kind"] for r in records[1:]]
        assert kinds == ["span", "span", "counter", "gauge"]

    def test_absorb_rebases_ids_and_keeps_batch_parent_links(self):
        with trace.recording() as shipped_rec:
            with trace.span("experiment", id="e01"):
                with trace.span("kernel.bootstrap"):
                    pass
        shipped = tuple(shipped_rec.spans)
        trace.uninstall()

        with trace.recording() as supervisor:
            with trace.span("supervisor.local"):
                pass
            supervisor.absorb(shipped, counters={"resamples": 100})
        local, experiment, kernel = supervisor.spans
        assert experiment["id"] == local["id"] + 1
        assert experiment["parent"] is None  # batch roots stay roots
        assert kernel["parent"] == experiment["id"]
        assert supervisor.counters == {"resamples": 100}

    def test_absorb_copies_records(self):
        """Shipped dicts are not aliased into the supervisor's trace."""
        shipped = (
            {
                "kind": "span", "id": 0, "parent": None, "name": "experiment",
                "start": 0.0, "seconds": 1.0, "depth": 0, "pid": 1,
                "attrs": {"id": "e01"},
            },
        )
        recorder = trace.TraceRecorder()
        recorder.absorb(shipped)
        recorder.spans[0]["attrs"]["mutated"] = True
        assert "mutated" not in shipped[0]["attrs"]


class TestSchemaValidation:
    def _valid_lines(self):
        with trace.recording() as recorder:
            with trace.span("a"):
                pass
        return [
            json.dumps(record) for record in recorder.records(run_id="r1")
        ]

    def test_rejects_missing_header(self):
        lines = self._valid_lines()[1:]
        with pytest.raises(TraceSchemaError, match="header"):
            validate_lines(lines, where="t")

    def test_rejects_unknown_parent(self):
        lines = self._valid_lines()
        record = json.loads(lines[1])
        record["parent"] = 99
        with pytest.raises(TraceSchemaError, match="parent"):
            validate_lines([lines[0], json.dumps(record)], where="t")

    def test_rejects_bool_where_number_expected(self):
        lines = self._valid_lines()
        record = json.loads(lines[1])
        record["seconds"] = True
        with pytest.raises(TraceSchemaError):
            validate_lines([lines[0], json.dumps(record)], where="t")
