"""With tracing off, the obs package must be invisible.

Two subprocess report runs with identical inputs — one with every
``repro.obs`` import blocked — must produce a byte-identical
``report.txt`` and an equivalent ``journal.jsonl`` (equal after
normalizing wall-time and RSS, which vary run to run).  That is the
contract behind the guarded-import pattern in every instrumented
module: deleting ``src/repro/obs/`` degrades nothing.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

_DRIVER = """
import sys
if sys.argv[1] == "block":
    class _BlockObs:
        def find_spec(self, name, path=None, target=None):
            if name == "repro.obs" or name.startswith("repro.obs."):
                raise ImportError("repro.obs blocked for the obs-less drill")
            return None
    sys.meta_path.insert(0, _BlockObs())
from repro.cli import main_report
sys.exit(main_report([
    "--days", "6", "--seed", "7", "--jobs", "1", "--no-cache",
    "--run-id", sys.argv[2],
]))
"""


def _run_report(tmp_path: Path, mode: str) -> Path:
    # Each mode gets its own runs root so both runs share one run ID —
    # the journals then differ only in genuinely volatile fields.
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src)
    env["REPRO_RUNS_DIR"] = str(tmp_path / mode / "runs")
    result = subprocess.run(
        [sys.executable, "-c", _DRIVER, mode, "identity"],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return tmp_path / mode / "runs" / "identity"


def _normalized_journal(run_dir: Path) -> list[dict]:
    records = [
        json.loads(line)
        for line in (run_dir / "journal.jsonl").read_text().splitlines()
    ]
    for record in records:
        for volatile in ("seconds", "total_seconds", "max_rss_kb"):
            record.pop(volatile, None)
    return records


@pytest.fixture(scope="module")
def run_pair(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("identity")
    with_obs = _run_report(tmp_path, "allow")
    without_obs = _run_report(tmp_path, "block")
    return with_obs, without_obs


class TestObsLessIdentity:
    def test_report_is_byte_identical(self, run_pair):
        with_obs, without_obs = run_pair
        assert (
            (with_obs / "report.txt").read_bytes()
            == (without_obs / "report.txt").read_bytes()
        )

    def test_journal_matches_after_normalizing_volatile_fields(self, run_pair):
        with_obs, without_obs = run_pair
        assert _normalized_journal(with_obs) == _normalized_journal(without_obs)

    def test_journal_keys_are_identical_per_record(self, run_pair):
        # Stronger than value equality post-normalization: the obs-less
        # run must not change which fields get journaled (rss_scope is
        # driven by jobs, not by obs availability).
        with_obs, without_obs = run_pair
        keys_a = [list(r) for r in _normalized_journal(with_obs)]
        keys_b = [list(r) for r in _normalized_journal(without_obs)]
        assert keys_a == keys_b

    def test_no_trace_file_without_trace_flag(self, run_pair):
        for run_dir in run_pair:
            assert not (run_dir / "trace.jsonl").exists()
