"""Regression tests: repro-trace must answer bad inputs with typed
errors that name the failing operand, never a traceback.

Follow-up to the serve work: server traces made ``diff`` a routine
two-file operation, and a half-written or binary operand used to
escape as ``UnicodeDecodeError``/``IsADirectoryError`` tracebacks.
"""

import pytest

from repro.obs.cli import main_trace
from repro.obs.trace import TraceRecorder


@pytest.fixture()
def good_trace(tmp_path):
    recorder = TraceRecorder()
    with recorder.start_span("work", {}):
        pass
    path = tmp_path / "good.jsonl"
    recorder.write(path, run_id="good")
    return str(path)


def run(capsys, *argv):
    rc = main_trace(list(argv))
    captured = capsys.readouterr()
    return rc, captured.err + captured.out


class TestDiffOperandErrors:
    def test_empty_candidate_names_the_side(self, good_trace, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.touch()
        rc, out = run(capsys, "diff", good_trace, str(empty))
        assert rc == 1
        assert "INVALID:" in out
        assert "candidate" in out
        assert "empty trace" in out

    def test_empty_baseline_names_the_side(self, good_trace, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.touch()
        rc, out = run(capsys, "diff", str(empty), good_trace)
        assert rc == 1
        assert "baseline" in out
        assert "empty trace" in out

    def test_missing_run_header_is_typed(self, good_trace, tmp_path, capsys):
        headerless = tmp_path / "headerless.jsonl"
        headerless.write_text(
            '{"kind": "span", "id": 0, "parent": null, "name": "x", '
            '"start": 0.0, "seconds": 1.0, "depth": 0, "pid": 1, '
            '"attrs": {}}\n'
        )
        rc, out = run(capsys, "diff", good_trace, str(headerless))
        assert rc == 1
        assert "INVALID:" in out
        assert "candidate" in out
        assert "header" in out

    def test_binary_file_is_typed_not_a_unicode_traceback(
        self, good_trace, tmp_path, capsys
    ):
        binary = tmp_path / "binary.jsonl"
        binary.write_bytes(b"\x80\x81\x82 not text")
        rc, out = run(capsys, "diff", good_trace, str(binary))
        assert rc == 1
        assert "candidate" in out
        assert "not a text file" in out

    def test_missing_file_is_typed(self, good_trace, tmp_path, capsys):
        rc, out = run(
            capsys, "diff", good_trace, str(tmp_path / "absent.jsonl")
        )
        assert rc == 1
        assert "candidate" in out
        assert "no such file" in out

    def test_directory_operand_is_typed(self, good_trace, tmp_path, capsys):
        trap = tmp_path / "trap.jsonl"
        trap.mkdir()
        rc, out = run(capsys, "diff", good_trace, str(trap))
        assert rc == 1
        assert "unreadable" in out


class TestOtherCommandsShareTheHardening:
    def test_summarize_binary_file(self, tmp_path, capsys):
        binary = tmp_path / "binary.jsonl"
        binary.write_bytes(b"\xff\xfe")
        rc, out = run(capsys, "summarize", str(binary))
        assert rc == 1
        assert "not a text file" in out

    def test_validate_binary_file(self, tmp_path, capsys):
        binary = tmp_path / "binary.jsonl"
        binary.write_bytes(b"\xff\xfe")
        rc, out = run(capsys, "validate", str(binary))
        assert rc == 1
        assert "not a text file" in out


class TestDiffStillDiffs:
    def test_two_good_traces_diff_cleanly(self, good_trace, capsys):
        rc, out = run(capsys, "diff", good_trace, good_trace)
        assert rc == 0
        assert "work" in out
