"""Unit tests for the fault-injection subsystem: determinism, per-fault
effects, and plan validation."""

import pytest

from repro.dataset import MiraDataset
from repro.errors import FaultError, ParseError
from repro.faults import ALL_FAULTS, FAULT_INJECTORS, FaultPlan, inject_faults
from repro.ingest import ParseReport
from repro.ras import default_catalog, load_ras_log
from repro.scheduler import load_job_log


@pytest.fixture()
def dataset_dir(tmp_path):
    MiraDataset.synthesize(n_days=5.0, seed=11).save(tmp_path / "ds")
    return tmp_path / "ds"


class TestDeterminism:
    def test_same_seed_same_corruption(self, tmp_path):
        dirs = []
        for name in ("a", "b"):
            MiraDataset.synthesize(n_days=3.0, seed=5).save(tmp_path / name)
            FaultPlan(seed=123, rate=0.05).inject(tmp_path / name)
            dirs.append(tmp_path / name)
        assert (dirs[0] / "ras.csv").read_text() == (dirs[1] / "ras.csv").read_text()
        assert (dirs[0] / "jobs.csv").read_text() == (dirs[1] / "jobs.csv").read_text()

    def test_different_seed_different_corruption(self, tmp_path):
        texts = []
        for name, seed in (("a", 1), ("b", 2)):
            MiraDataset.synthesize(n_days=3.0, seed=5).save(tmp_path / name)
            FaultPlan(faults=("garble_rows",), seed=seed, rate=0.05).inject(
                tmp_path / name
            )
            texts.append((tmp_path / name / "ras.csv").read_text())
        assert texts[0] != texts[1]


class TestFaultEffects:
    def test_truncate_rows_breaks_strict_parse(self, dataset_dir):
        inject_faults(dataset_dir, ["truncate_rows"], seed=1, rate=0.02)
        with pytest.raises(ParseError, match="expected .* fields"):
            load_ras_log(dataset_dir / "ras.csv")

    def test_garble_rows_quarantined_in_lenient(self, dataset_dir):
        records = inject_faults(dataset_dir, ["garble_rows"], seed=1, rate=0.02)
        report = ParseReport()
        load_ras_log(dataset_dir / "ras.csv", report=report)
        assert report.counts()["ras"] == records[0].n_rows

    def test_unknown_severity_detected(self, dataset_dir):
        records = inject_faults(dataset_dir, ["unknown_severity"], seed=1, rate=0.02)
        assert records[0].n_rows >= 1
        with pytest.raises(ParseError, match="unknown severities"):
            load_ras_log(dataset_dir / "ras.csv")

    def test_unknown_msg_id_quarantined_with_catalog(self, dataset_dir):
        records = inject_faults(dataset_dir, ["unknown_msg_id"], seed=1, rate=0.02)
        report = ParseReport()
        load_ras_log(dataset_dir / "ras.csv", default_catalog(), report=report)
        assert report.counts()["ras"] == records[0].n_rows

    def test_shuffle_timestamps_breaks_sortedness(self, dataset_dir):
        records = inject_faults(dataset_dir, ["shuffle_timestamps"], seed=1, rate=0.02)
        assert records[0].n_rows >= 1
        with pytest.raises(ParseError, match="not sorted"):
            load_ras_log(dataset_dir / "ras.csv")
        report = ParseReport()
        table = load_ras_log(dataset_dir / "ras.csv", report=report)
        ts = table["timestamp"]
        assert (ts[1:] >= ts[:-1]).all()

    def test_negative_timestamps_quarantined(self, dataset_dir):
        records = inject_faults(
            dataset_dir, ["negative_timestamps"], seed=1, rate=0.02
        )
        report = ParseReport()
        load_ras_log(dataset_dir / "ras.csv", report=report)
        negative = [
            e for e in report.quarantined if "negative timestamp" in e.reason
        ]
        assert len(negative) == records[0].n_rows

    def test_duplicate_rows_detected(self, dataset_dir):
        inject_faults(dataset_dir, ["duplicate_rows"], seed=1, rate=0.02)
        with pytest.raises(ParseError, match="duplicate job ids"):
            load_job_log(dataset_dir / "jobs.csv")

    def test_drop_darshan_removes_file(self, dataset_dir):
        record = inject_faults(dataset_dir, ["drop_darshan"], seed=1)[0]
        assert not (dataset_dir / "io.csv").exists()
        assert record.detail == "file deleted"
        # A second application reports the target as already gone.
        again = inject_faults(dataset_dir, ["drop_darshan"], seed=1)[0]
        assert again.n_rows == 0 and "skipped" in again.detail


class TestFaultPlan:
    def test_unknown_fault_rejected(self):
        with pytest.raises(FaultError, match="unknown fault"):
            FaultPlan(faults=("no_such_fault",))

    def test_empty_plan_rejected(self):
        with pytest.raises(FaultError, match="empty"):
            FaultPlan(faults=())

    def test_bad_rate_rejected(self):
        with pytest.raises(FaultError, match="rate"):
            FaultPlan(rate=0.0)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(FaultError, match="not a dataset directory"):
            FaultPlan().inject(tmp_path / "nope")

    def test_directory_without_logs_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FaultError, match="no log files"):
            FaultPlan().inject(empty)

    def test_registry_covers_all_faults(self):
        assert set(ALL_FAULTS) == set(FAULT_INJECTORS)
        assert len(ALL_FAULTS) >= 8
