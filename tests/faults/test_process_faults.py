"""Process-level fault plans: spec grammar, env transport, determinism."""

import os

import pytest

from repro.errors import FaultError
from repro.faults import (
    PROCESS_FAULT_ENV,
    ProcessFaultPlan,
    active_process_plan,
    process_faults,
)


class TestSpecGrammar:
    def test_parse_all_kinds(self):
        plan = ProcessFaultPlan.parse("kill_worker:e03:2;hang:e05:60;slow:e07:0.5")
        assert plan.kills == {"e03": 2}
        assert plan.hangs == {"e05": 60.0}
        assert plan.slows == {"e07": 0.5}

    def test_spec_round_trips(self):
        spec = "kill_worker:e03:2;hang:e05:60;slow:e07:0.5"
        plan = ProcessFaultPlan.parse(spec)
        assert ProcessFaultPlan.parse(plan.spec()) == plan

    def test_defaults(self):
        plan = ProcessFaultPlan.parse("kill_worker:e03;hang:e05;slow:e01")
        assert plan.kills["e03"] == 1
        assert plan.hangs["e05"] == 3600.0
        assert plan.slows["e01"] == 1.0

    def test_blank_clauses_skipped(self):
        plan = ProcessFaultPlan.parse("slow:e01:0.1; ;")
        assert plan.slows == {"e01": 0.1}

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:e01",  # unknown kind
            "kill_worker",  # no experiment
            "slow::1.0",  # empty experiment
            "slow:e01:fast",  # non-numeric amount
            "kill_worker:e01:1:extra",  # too many fields
            "",  # nothing armed
            ";;",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultError):
            ProcessFaultPlan.parse(spec)


class TestEnvTransport:
    def test_context_manager_arms_and_restores(self, monkeypatch):
        monkeypatch.delenv(PROCESS_FAULT_ENV, raising=False)
        assert active_process_plan() is None
        with process_faults("slow:e01:0.1") as plan:
            assert os.environ[PROCESS_FAULT_ENV] == plan.spec()
            assert active_process_plan() == plan
        assert PROCESS_FAULT_ENV not in os.environ
        assert active_process_plan() is None

    def test_previous_value_restored(self, monkeypatch):
        monkeypatch.setenv(PROCESS_FAULT_ENV, "slow:e09:9")
        with process_faults("slow:e01:0.1"):
            assert "e01" in os.environ[PROCESS_FAULT_ENV]
        assert os.environ[PROCESS_FAULT_ENV] == "slow:e09:9"

    def test_bad_env_spec_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(PROCESS_FAULT_ENV, "explode:e01")
        with pytest.raises(FaultError):
            active_process_plan()

    def test_bad_spec_rejected_before_arming(self, monkeypatch):
        monkeypatch.delenv(PROCESS_FAULT_ENV, raising=False)
        with pytest.raises(FaultError):
            with process_faults("explode:e01"):
                pass
        assert PROCESS_FAULT_ENV not in os.environ


class TestApply:
    def test_unmatched_experiment_is_untouched(self):
        plan = ProcessFaultPlan.parse("slow:e01:30;hang:e02:30")
        plan.apply("e99", attempt=1)  # must return immediately

    def test_kill_respects_attempt_budget(self, monkeypatch):
        fired = []
        monkeypatch.setattr(
            "repro.faults.plan.kill_worker_action", lambda: fired.append(True)
        )
        plan = ProcessFaultPlan.parse("kill_worker:e03:2")
        plan.apply("e03", attempt=1)
        plan.apply("e03", attempt=2)
        plan.apply("e03", attempt=3)  # survives past the budget
        assert len(fired) == 2

    def test_slow_sleeps_roughly_requested(self):
        import time

        plan = ProcessFaultPlan.parse("slow:e01:0.05")
        started = time.perf_counter()
        plan.apply("e01")
        assert time.perf_counter() - started >= 0.05
