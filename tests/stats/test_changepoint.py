"""Unit tests for changepoint detection."""

import numpy as np
import pytest

from repro.stats.changepoint import cusum_statistic, detect_changepoints


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestCusum:
    def test_finds_obvious_shift(self, rng):
        series = np.concatenate([rng.normal(0, 1, 40), rng.normal(5, 1, 40)])
        split, stat = cusum_statistic(series)
        assert 35 <= split <= 45
        assert stat > 5

    def test_flat_series_weak(self, rng):
        series = rng.normal(0, 1, 80)
        _, stat = cusum_statistic(series)
        assert stat < 5

    def test_constant_series(self):
        split, stat = cusum_statistic(np.full(20, 3.0))
        assert stat == 0.0

    def test_too_short(self):
        with pytest.raises(ValueError):
            cusum_statistic(np.array([1.0, 2.0]))


class TestDetect:
    def test_single_changepoint(self, rng):
        series = np.concatenate([rng.normal(0.2, 0.02, 30), rng.normal(0.5, 0.02, 30)])
        found = detect_changepoints(series, seed=1)
        assert len(found) == 1
        assert 27 <= found[0].index <= 33
        assert found[0].shift > 0.25

    def test_two_changepoints(self, rng):
        series = np.concatenate(
            [
                rng.normal(0.2, 0.02, 30),
                rng.normal(0.6, 0.02, 30),
                rng.normal(0.3, 0.02, 30),
            ]
        )
        found = detect_changepoints(series, seed=2)
        assert len(found) == 2
        indices = sorted(c.index for c in found)
        assert 25 <= indices[0] <= 35
        assert 55 <= indices[1] <= 65

    def test_no_false_positives_on_noise(self, rng):
        series = rng.normal(0.3, 0.05, 60)
        found = detect_changepoints(series, seed=3)
        assert found == []

    def test_respects_max(self, rng):
        series = np.concatenate([rng.normal(m, 0.01, 20) for m in (0, 1, 0, 1, 0)])
        found = detect_changepoints(series, max_changepoints=2, seed=4)
        assert len(found) <= 2

    def test_sorted_by_index(self, rng):
        series = np.concatenate([rng.normal(m, 0.02, 25) for m in (0.1, 0.5, 0.9)])
        found = detect_changepoints(series, seed=5)
        assert [c.index for c in found] == sorted(c.index for c in found)
