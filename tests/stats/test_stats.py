"""Unit tests for the statistics substrate, cross-checked against scipy."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats import (
    bootstrap_ci,
    chi_square_independence,
    cramers_v,
    ecdf,
    gini,
    ks_statistic,
    ks_test,
    log_histogram,
    pearson,
    quantiles,
    rank,
    spearman,
)


class TestEcdf:
    def test_values_sorted(self):
        e = ecdf([3.0, 1.0, 2.0])
        assert e.values.tolist() == [1.0, 2.0, 3.0]

    def test_probabilities(self):
        e = ecdf([1.0, 2.0, 3.0, 4.0])
        assert e.probabilities.tolist() == [0.25, 0.5, 0.75, 1.0]

    def test_call_below_min(self):
        assert ecdf([1.0, 2.0])(0.5) == 0.0

    def test_call_at_max(self):
        assert ecdf([1.0, 2.0])(2.0) == 1.0

    def test_call_between(self):
        assert ecdf([1.0, 2.0, 3.0, 4.0])(2.5) == 0.5

    def test_survival(self):
        e = ecdf([1.0, 2.0, 3.0, 4.0])
        assert e.survival(2.5) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf([])

    def test_matches_manual_count(self):
        rng = np.random.default_rng(0)
        sample = rng.exponential(size=500)
        e = ecdf(sample)
        for x in (0.1, 0.5, 1.0, 3.0):
            assert e(x) == pytest.approx((sample <= x).mean())


class TestQuantiles:
    def test_median(self):
        q = quantiles([1.0, 2.0, 3.0], probs=(0.5,))
        assert q[0.5] == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantiles([])


class TestLogHistogram:
    def test_counts_conserved(self):
        sample = np.logspace(0, 3, 200)
        edges, counts = log_histogram(sample, n_bins=10)
        assert counts.sum() == 200
        assert len(edges) == 11

    def test_nonpositive_dropped(self):
        edges, counts = log_histogram([0.0, -1.0, 1.0, 10.0], n_bins=2)
        assert counts.sum() == 2

    def test_all_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            log_histogram([0.0, -3.0])

    def test_constant_sample(self):
        edges, counts = log_histogram([5.0, 5.0, 5.0], n_bins=3)
        assert counts.sum() == 3


class TestPearsonSpearman:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_matches_scipy(self):
        rng = np.random.default_rng(1)
        x = rng.random(300)
        y = x * 0.5 + rng.random(300)
        assert pearson(x, y) == pytest.approx(sps.pearsonr(x, y).statistic, abs=1e-12)

    def test_spearman_matches_scipy(self):
        rng = np.random.default_rng(2)
        x = rng.random(300)
        y = np.exp(x) + rng.random(300) * 0.1
        assert spearman(x, y) == pytest.approx(
            sps.spearmanr(x, y).statistic, abs=1e-10
        )

    def test_spearman_with_ties_matches_scipy(self):
        x = np.array([1, 2, 2, 3, 3, 3, 4], dtype=float)
        y = np.array([2, 1, 4, 4, 5, 5, 7], dtype=float)
        assert spearman(x, y) == pytest.approx(sps.spearmanr(x, y).statistic, abs=1e-10)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            pearson([1.0], [2.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2, 3], [1, 2])


class TestRank:
    def test_no_ties(self):
        assert rank([30.0, 10.0, 20.0]).tolist() == [3.0, 1.0, 2.0]

    def test_ties_average(self):
        assert rank([1.0, 2.0, 2.0, 3.0]).tolist() == [1.0, 2.5, 2.5, 4.0]

    def test_matches_scipy(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 10, 100).astype(float)
        assert rank(x).tolist() == pytest.approx(sps.rankdata(x).tolist())


class TestCramersV:
    def test_independent_near_zero(self):
        rng = np.random.default_rng(4)
        a = rng.choice(["x", "y"], 5000)
        b = rng.choice(["p", "q"], 5000)
        assert cramers_v(a, b) < 0.05

    def test_identical_is_one(self):
        a = ["x", "y", "x", "y", "x", "y"] * 10
        assert cramers_v(a, a) == pytest.approx(1.0)

    def test_single_category_is_zero(self):
        assert cramers_v(["x"] * 5, ["a", "b", "a", "b", "a"]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            cramers_v(["a"], ["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cramers_v([], [])

    def test_bounded(self):
        rng = np.random.default_rng(5)
        a = rng.choice(list("abcd"), 400)
        b = np.where(rng.random(400) < 0.7, a, rng.choice(list("abcd"), 400))
        v = cramers_v(a, b)
        assert 0.0 <= v <= 1.0
        assert v > 0.4  # strong designed association


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0, abs=1e-12)

    def test_single_holder_near_one(self):
        assert gini([0.0] * 99 + [100.0]) == pytest.approx(0.99, abs=0.01)

    def test_all_zero(self):
        assert gini([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini([])

    def test_scale_invariant(self):
        values = [1.0, 4.0, 9.0, 16.0]
        assert gini(values) == pytest.approx(gini([v * 7 for v in values]))


class TestKs:
    def test_statistic_matches_scipy(self):
        rng = np.random.default_rng(6)
        sample = rng.exponential(scale=2.0, size=400)
        cdf = lambda x: sps.expon.cdf(x, scale=2.0)
        ours = ks_statistic(sample, cdf)
        theirs = sps.kstest(sample, cdf).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_good_fit_high_p(self):
        rng = np.random.default_rng(7)
        sample = rng.weibull(1.5, size=500) * 3.0
        result = ks_test(sample, lambda x: sps.weibull_min.cdf(x, 1.5, scale=3.0))
        assert result.p_value > 0.05
        assert not result.rejects()

    def test_bad_fit_rejected(self):
        rng = np.random.default_rng(8)
        sample = rng.pareto(1.2, size=500) + 1.0
        result = ks_test(sample, lambda x: sps.expon.cdf(x, scale=1.0))
        assert result.rejects()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic([], lambda x: x)

    def test_shape_mismatch_from_cdf(self):
        with pytest.raises(ValueError):
            ks_statistic([1.0, 2.0], lambda x: np.array([0.5]))


class TestChiSquare:
    def test_matches_scipy_contingency(self):
        rng = np.random.default_rng(9)
        a = rng.choice(["u", "v", "w"], 600)
        b = rng.choice(["yes", "no"], 600)
        chi2, p, dof = chi_square_independence(a, b)
        table = np.zeros((3, 2))
        for ai, bi in zip(a, b):
            table["uvw".index(ai), 0 if bi == "yes" else 1] += 1
        expected = sps.chi2_contingency(table, correction=False)
        assert chi2 == pytest.approx(expected.statistic)
        assert p == pytest.approx(expected.pvalue)
        assert dof == expected.dof

    def test_needs_two_categories(self):
        with pytest.raises(ValueError):
            chi_square_independence(["a"] * 10, ["x", "y"] * 5)


class TestBootstrap:
    def test_mean_interval_contains_truth(self):
        rng = np.random.default_rng(10)
        sample = rng.normal(5.0, 1.0, size=400)
        result = bootstrap_ci(sample, np.mean, seed=1)
        assert float(np.mean(sample)) in result
        assert result.low < result.estimate < result.high
        # 95% interval for the mean of 400 unit-variance points: ~±0.1
        assert result.high - result.low < 0.3

    def test_deterministic(self):
        sample = np.arange(50, dtype=float)
        a = bootstrap_ci(sample, np.median, seed=3)
        b = bootstrap_ci(sample, np.median, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], np.mean, confidence=1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], np.mean)
