"""Coarse performance regression guards.

Not micro-benchmarks (those live in benchmarks/): these assert the
complexity class stays sane so a full 2001-day analysis keeps finishing
in minutes.  Bounds are several times above current timings to stay
robust on slow CI machines.
"""

import time

import pytest

from repro.core import default_pipeline, map_events_to_jobs
from repro.dataset import MiraDataset
from repro.scheduler import CobaltScheduler, WorkloadModel
from repro.table import Table


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=120.0, seed=121)


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


class TestThroughput:
    def test_scheduler_sim_rate(self):
        intents = WorkloadModel(seed=7).generate(90.0)
        _, seconds = _timed(lambda: CobaltScheduler().run(intents, horizon_days=90.0))
        # ~12k jobs; current ~1.5 s. Bound: 60 s.
        assert seconds < 60.0

    def test_event_job_join_rate(self, dataset):
        _, seconds = _timed(
            lambda: map_events_to_jobs(dataset.ras, dataset.jobs, dataset.spec)
        )
        # ~47k events vs ~16k jobs; current well under a second. Bound: 30 s.
        assert seconds < 30.0

    def test_filtering_rate(self, dataset):
        _, seconds = _timed(
            lambda: default_pipeline(spec=dataset.spec).run(dataset.fatal_events())
        )
        assert seconds < 30.0

    def test_groupby_scales_linearish(self):
        import numpy as np

        rng = np.random.default_rng(0)
        big = Table(
            {
                "k": rng.integers(0, 5000, 500_000),
                "v": rng.random(500_000),
            }
        )
        _, seconds = _timed(lambda: big.group_by("k").agg(v="sum"))
        assert seconds < 10.0
