"""Shared test fixtures.

Every ``repro-report`` invocation journals a run directory; point the
runs root at each test's tmp dir so tests never write into the
repository's ``results/`` tree (and never see each other's runs).
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
