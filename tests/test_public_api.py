"""Smoke tests of the package's public surface.

Guards against export drift: everything advertised in ``__all__`` must
exist, and the README's quickstart snippet must run as written.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.table",
    "repro.stats",
    "repro.bgq",
    "repro.ras",
    "repro.scheduler",
    "repro.tasks",
    "repro.darshan",
    "repro.dataset",
    "repro.adapters",
    "repro.core",
    "repro.core.fitting",
    "repro.core.filtering",
    "repro.experiments",
    "repro.serve",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} lacks __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version():
    import repro

    assert repro.__version__


def test_readme_quickstart():
    from repro import MiraDataset, run_experiment

    dataset = MiraDataset.synthesize(n_days=3, seed=0)
    text = run_experiment("e02", dataset).to_text()
    assert "failure_rate" in text


def test_every_public_symbol_documented():
    """Every callable/class exported at top level carries a docstring."""
    import repro

    for symbol in repro.__all__:
        obj = getattr(repro, symbol)
        if callable(obj):
            assert obj.__doc__, f"repro.{symbol} lacks a docstring"
