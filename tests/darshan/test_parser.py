"""Strict-vs-lenient contract of the I/O-log parser."""

import pytest

from repro.darshan import load_io_log, validate_io_table
from repro.errors import ParseError
from repro.ingest import ParseReport
from repro.table import Table, write_csv


def io_table(**overrides):
    base = {
        "job_id": [10, 11, 12],
        "user": ["u1", "u2", "u1"],
        "bytes_read": [1e9, 2e9, 0.0],
        "bytes_written": [5e8, 1e9, 1e7],
        "files_accessed": [12, 40, 2],
        "io_time": [60.0, 120.0, 5.0],
        "runtime": [3600.0, 3600.0, 600.0],
    }
    base.update(overrides)
    return Table(base)


class TestStrict:
    def test_negative_bytes_raise(self):
        with pytest.raises(ParseError, match="negative byte counts"):
            validate_io_table(io_table(bytes_read=[-1.0, 2e9, 0.0]))

    def test_io_time_beyond_runtime_raises(self):
        with pytest.raises(ParseError, match="io_time exceeding runtime"):
            validate_io_table(io_table(io_time=[60.0, 4000.0, 5.0]))

    def test_duplicate_profiles_raise(self):
        with pytest.raises(ParseError, match="duplicate job ids"):
            validate_io_table(io_table(job_id=[10, 10, 12]))


class TestLenient:
    def test_bad_rows_quarantined(self):
        report = ParseReport()
        out = validate_io_table(
            io_table(bytes_written=[-5.0, 1e9, 1e7], job_id=[10, 11, 11]),
            report=report,
        )
        assert out.n_rows == 1
        assert report.counts() == {"io": 2}
        reasons = sorted(entry.reason for entry in report.quarantined)
        assert any("duplicate I/O profile" in r for r in reasons)
        assert any("negative byte count" in r for r in reasons)

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "io.csv"
        write_csv(io_table(io_time=[60.0, 9999.0, 5.0]), path)
        report = ParseReport()
        out = load_io_log(path, report=report)
        assert out.n_rows == 2
        assert "io_time exceeds runtime" in report.quarantined[0].reason
