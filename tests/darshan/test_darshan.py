"""Unit tests for the Darshan I/O substrate."""

import numpy as np
import pytest

from repro.darshan import DarshanGenerator, DarshanParams, IoRecord, io_to_table
from repro.scheduler import CobaltScheduler, FailureOrigin, JobRecord, WorkloadModel


def _job(job_id=0, exit_status=0, origin=FailureOrigin.NONE, runtime=3600.0, nodes=512):
    return JobRecord(
        job_id=job_id,
        user="u",
        project="p",
        queue="q",
        submit_time=0.0,
        start_time=0.0,
        end_time=runtime,
        requested_nodes=nodes,
        allocated_nodes=nodes,
        requested_walltime=runtime * 2,
        exit_status=exit_status,
        block="B",
        first_midplane=0,
        n_midplanes=1,
        n_tasks=1,
        origin=origin,
    )


class TestIoRecord:
    def test_derived(self):
        r = IoRecord(0, "u", 100.0, 200.0, 5, 10.0, 100.0)
        assert r.total_bytes == 300.0
        assert r.io_intensity == pytest.approx(0.1)

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            IoRecord(0, "u", -1.0, 0.0, 0, 0.0, 10.0)

    def test_io_time_bounded_by_runtime(self):
        with pytest.raises(ValueError):
            IoRecord(0, "u", 0.0, 0.0, 0, 20.0, 10.0)

    def test_zero_runtime_intensity(self):
        assert IoRecord(0, "u", 0.0, 0.0, 0, 0.0, 0.0).io_intensity == 0.0


class TestGenerator:
    def test_coverage_subset(self):
        jobs = [_job(job_id=i) for i in range(2000)]
        params = DarshanParams(coverage=0.5)
        records = DarshanGenerator(params, seed=0).generate(jobs)
        assert 0.4 * len(jobs) < len(records) < 0.6 * len(jobs)
        job_ids = {j.job_id for j in jobs}
        assert all(r.job_id in job_ids for r in records)

    def test_full_coverage(self):
        jobs = [_job(job_id=i) for i in range(50)]
        records = DarshanGenerator(DarshanParams(coverage=1.0), seed=1).generate(jobs)
        assert len(records) == 50

    def test_volume_scales_with_corehours(self):
        small = [_job(job_id=i, nodes=512, runtime=1800.0) for i in range(300)]
        large = [_job(job_id=1000 + i, nodes=8192, runtime=7200.0) for i in range(300)]
        gen = DarshanGenerator(DarshanParams(coverage=1.0), seed=2)
        rec_small = gen.generate(small)
        rec_large = gen.generate(large)
        assert np.median([r.total_bytes for r in rec_large]) > 10 * np.median(
            [r.total_bytes for r in rec_small]
        )

    def test_failed_jobs_write_less(self):
        ok = [_job(job_id=i) for i in range(500)]
        bad = [
            _job(job_id=1000 + i, exit_status=139, origin=FailureOrigin.USER)
            for i in range(500)
        ]
        gen = DarshanGenerator(DarshanParams(coverage=1.0), seed=3)
        written_ok = np.median([r.bytes_written for r in gen.generate(ok)])
        written_bad = np.median([r.bytes_written for r in gen.generate(bad)])
        assert written_bad < 0.7 * written_ok

    def test_io_time_within_runtime(self):
        jobs = [_job(job_id=i) for i in range(100)]
        records = DarshanGenerator(DarshanParams(coverage=1.0), seed=4).generate(jobs)
        assert all(0 <= r.io_time <= r.runtime for r in records)

    def test_deterministic(self):
        jobs = [_job(job_id=i) for i in range(20)]
        a = DarshanGenerator(seed=5).generate(jobs)
        b = DarshanGenerator(seed=5).generate(jobs)
        assert [(r.job_id, r.bytes_read) for r in a] == [
            (r.job_id, r.bytes_read) for r in b
        ]

    def test_table_schema(self):
        jobs = [_job(job_id=i) for i in range(10)]
        table = io_to_table(DarshanGenerator(DarshanParams(coverage=1.0), seed=6).generate(jobs))
        assert table.n_rows == 10
        assert set(table.column_names) >= {"bytes_read", "bytes_written", "io_time"}

    def test_end_to_end(self):
        intents = WorkloadModel(seed=41).generate(5.0)
        result = CobaltScheduler().run(intents, horizon_days=5.0)
        records = DarshanGenerator(seed=41).generate(result.jobs)
        assert 0.3 * result.n_completed < len(records) < 0.8 * result.n_completed


class TestParams:
    def test_bad_coverage(self):
        with pytest.raises(ValueError):
            DarshanParams(coverage=0.0)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            DarshanParams(failed_write_factor=0.0)
