"""Strict-vs-lenient contract of the task-log parser."""

import pytest

from repro.errors import ParseError
from repro.ingest import ParseReport
from repro.tasks import load_task_log, validate_task_table
from repro.table import Table, write_csv


def task_table(**overrides):
    base = {
        "task_id": [0, 1, 2],
        "job_id": [10, 10, 11],
        "task_index": [0, 1, 0],
        "start_time": [0.0, 5.0, 10.0],
        "end_time": [4.0, 9.0, 20.0],
        "n_nodes": [512, 512, 1024],
        "exit_status": [0, 1, 0],
    }
    base.update(overrides)
    return Table(base)


class TestStrict:
    def test_inverted_window_raises(self):
        with pytest.raises(ParseError, match="end_time before start_time"):
            validate_task_table(task_table(end_time=[4.0, 1.0, 20.0]))

    def test_negative_index_raises(self):
        with pytest.raises(ParseError, match="negative task indices"):
            validate_task_table(task_table(task_index=[0, -1, 0]))

    def test_duplicate_task_ids_raise(self):
        with pytest.raises(ParseError, match="duplicate task ids"):
            validate_task_table(task_table(task_id=[0, 0, 2]))

    def test_missing_column_raises(self):
        with pytest.raises(ParseError, match="missing columns"):
            validate_task_table(task_table().drop(["n_nodes"]))


class TestLenient:
    def test_bad_rows_quarantined(self):
        report = ParseReport()
        out = validate_task_table(
            task_table(end_time=[4.0, 1.0, 20.0], task_id=[0, 1, 1]),
            report=report,
        )
        # row 1 has an inverted window; row 2 duplicates task_id 1 only
        # if row 1 survived — here row 1 is dropped first, so task_id 1
        # remains unique and row 2 survives.
        assert out.n_rows == 2
        assert report.counts() == {"tasks": 1}

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "tasks.csv"
        write_csv(task_table(exit_status=[0, 777, 0]), path)
        report = ParseReport()
        out = load_task_log(path, report=report)
        assert out.n_rows == 2
        assert "exit status" in report.quarantined[0].reason

    def test_strict_load_raises(self, tmp_path):
        path = tmp_path / "tasks.csv"
        write_csv(task_table(exit_status=[0, 777, 0]), path)
        with pytest.raises(ParseError):
            load_task_log(path)
