"""Unit tests for the task log substrate."""

import pytest

from repro.scheduler import CobaltScheduler, FailureOrigin, JobRecord, WorkloadModel
from repro.tasks import TaskLogGenerator, TaskLogParams, TaskRecord, tasks_to_table


def _job(job_id=0, n_tasks=1, exit_status=0, origin=FailureOrigin.NONE, runtime=1000.0):
    return JobRecord(
        job_id=job_id,
        user="u",
        project="p",
        queue="q",
        submit_time=0.0,
        start_time=100.0,
        end_time=100.0 + runtime,
        requested_nodes=512,
        allocated_nodes=512,
        requested_walltime=runtime * 2,
        exit_status=exit_status,
        block="B",
        first_midplane=0,
        n_midplanes=1,
        n_tasks=n_tasks,
        origin=origin,
    )


class TestTaskRecord:
    def test_runtime_and_failed(self):
        task = TaskRecord(0, 0, 0, 1.0, 5.0, 512, 139)
        assert task.runtime == 4.0
        assert task.failed

    def test_bad_times(self):
        with pytest.raises(ValueError):
            TaskRecord(0, 0, 0, 5.0, 1.0, 512, 0)

    def test_bad_exit(self):
        with pytest.raises(ValueError):
            TaskRecord(0, 0, 0, 0.0, 1.0, 512, 300)

    def test_bad_index(self):
        with pytest.raises(ValueError):
            TaskRecord(0, 0, -1, 0.0, 1.0, 512, 0)


class TestGenerator:
    def test_single_task_job(self):
        tasks = TaskLogGenerator(seed=0).generate([_job(n_tasks=1)])
        assert len(tasks) == 1
        assert tasks[0].exit_status == 0

    def test_ensemble_success_runs_all(self):
        tasks = TaskLogGenerator(seed=0).generate([_job(n_tasks=8)])
        assert len(tasks) == 8
        assert all(t.exit_status == 0 for t in tasks)

    def test_failed_ensemble_truncates(self):
        jobs = [
            _job(job_id=i, n_tasks=16, exit_status=139, origin=FailureOrigin.USER)
            for i in range(30)
        ]
        tasks = TaskLogGenerator(seed=1).generate(jobs)
        per_job = {}
        for t in tasks:
            per_job.setdefault(t.job_id, []).append(t)
        # On average fewer than 16 tasks ran, never more, at least one.
        counts = [len(v) for v in per_job.values()]
        assert all(1 <= c <= 16 for c in counts)
        assert sum(counts) / len(counts) < 16

    def test_last_task_carries_failure(self):
        jobs = [_job(n_tasks=4, exit_status=134, origin=FailureOrigin.USER)]
        tasks = sorted(TaskLogGenerator(seed=2).generate(jobs), key=lambda t: t.task_index)
        assert all(t.exit_status == 0 for t in tasks[:-1])
        assert tasks[-1].exit_status == 134

    def test_tasks_within_job_window(self):
        job = _job(n_tasks=5)
        tasks = TaskLogGenerator(seed=3).generate([job])
        for t in tasks:
            assert job.start_time <= t.start_time <= t.end_time <= job.end_time

    def test_tasks_sequential_no_overlap(self):
        tasks = sorted(
            TaskLogGenerator(seed=4).generate([_job(n_tasks=10)]),
            key=lambda t: t.task_index,
        )
        for a, b in zip(tasks, tasks[1:]):
            assert a.end_time <= b.start_time + 1e-9

    def test_task_ids_globally_unique(self):
        jobs = [_job(job_id=i, n_tasks=3) for i in range(20)]
        tasks = TaskLogGenerator(seed=5).generate(jobs)
        ids = [t.task_id for t in tasks]
        assert len(ids) == len(set(ids))

    def test_durations_sum_to_window(self):
        job = _job(n_tasks=6, runtime=3600.0)
        params = TaskLogParams(gap_fraction=0.0)
        tasks = TaskLogGenerator(params, seed=6).generate([job])
        total = sum(t.runtime for t in tasks)
        assert total == pytest.approx(job.runtime, rel=1e-6)

    def test_deterministic(self):
        jobs = [_job(job_id=i, n_tasks=4) for i in range(5)]
        a = TaskLogGenerator(seed=7).generate(jobs)
        b = TaskLogGenerator(seed=7).generate(jobs)
        assert [(t.start_time, t.end_time) for t in a] == [
            (t.start_time, t.end_time) for t in b
        ]

    def test_table_schema(self):
        tasks = TaskLogGenerator(seed=8).generate([_job(n_tasks=2)])
        table = tasks_to_table(tasks)
        assert table.n_rows == 2
        assert "task_index" in table

    def test_end_to_end_with_scheduler(self):
        intents = WorkloadModel(seed=31).generate(5.0)
        result = CobaltScheduler().run(intents, horizon_days=5.0)
        tasks = TaskLogGenerator(seed=31).generate(result.jobs)
        by_job = {}
        for t in tasks:
            by_job.setdefault(t.job_id, []).append(t)
        assert set(by_job) == {j.job_id for j in result.jobs}
        for job in result.jobs:
            job_tasks = by_job[job.job_id]
            if job.failed:
                last = max(job_tasks, key=lambda t: t.task_index)
                assert last.exit_status == job.exit_status


class TestParams:
    def test_bad_gap(self):
        with pytest.raises(ValueError):
            TaskLogParams(gap_fraction=0.5)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            TaskLogParams(dirichlet_alpha=0.0)

    def test_bad_truncation(self):
        with pytest.raises(ValueError):
            TaskLogParams(failed_truncation=0.0)
