"""Every example script must run end-to-end (small scale, fixed seed)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

# (script, days, seed) — spans chosen so each script exercises its full
# path quickly; distribution_fitting needs enough failures per family.
CASES = [
    ("quickstart.py", "15", "1"),
    ("user_failure_report.py", "15", "1"),
    ("mtti_filtering.py", "30", "2"),
    ("distribution_fitting.py", "40", "4"),
    ("fleet_comparison.py", "12", "5"),
    ("live_monitoring.py", "12", "6"),
    ("reliability_study.py", "40", "9"),
]


@pytest.mark.parametrize("script,days,seed", CASES)
def test_example_runs(script, days, seed):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), days, seed],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} produced no output"


def test_all_examples_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == {script for script, _, _ in CASES}
