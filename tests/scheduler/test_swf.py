"""Tests for Standard Workload Format interoperability."""

import pytest

from repro.core import failure_rate_by_category
from repro.dataset import MiraDataset
from repro.errors import ParseError
from repro.scheduler import read_swf, write_swf


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=10.0, seed=61)


class TestRoundtrip:
    def test_counts_preserved(self, dataset, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(dataset.jobs, path, dataset.spec)
        back = read_swf(path, cores_per_node=dataset.spec.cores_per_node)
        assert back.n_rows == dataset.jobs.n_rows
        assert back["job_id"].tolist() == dataset.jobs["job_id"].tolist()

    def test_outcome_preserved(self, dataset, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(dataset.jobs, path, dataset.spec)
        back = read_swf(path, cores_per_node=dataset.spec.cores_per_node)
        original_failed = (dataset.jobs["exit_status"] != 0)
        imported_failed = (back["exit_status"] != 0)
        assert imported_failed.tolist() == original_failed.tolist()

    def test_nodes_preserved(self, dataset, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(dataset.jobs, path, dataset.spec)
        back = read_swf(path, cores_per_node=dataset.spec.cores_per_node)
        assert back["allocated_nodes"].tolist() == dataset.jobs["allocated_nodes"].tolist()

    def test_times_preserved_to_second(self, dataset, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(dataset.jobs, path, dataset.spec)
        back = read_swf(path, cores_per_node=dataset.spec.cores_per_node)
        # SWF stores integer seconds.
        drift = abs(back["submit_time"] - dataset.jobs["submit_time"])
        assert drift.max() < 1.0

    def test_identity_legend_returned(self, dataset, tmp_path):
        legend = write_swf(dataset.jobs, tmp_path / "t.swf", dataset.spec)
        assert set(legend) == {"users", "projects", "queues"}
        n_users = len(set(dataset.jobs["user"].tolist()))
        assert len(legend["users"]) == n_users

    def test_analyses_run_on_imported_trace(self, dataset, tmp_path):
        """Non-spatial characterization works on an SWF import."""
        path = tmp_path / "trace.swf"
        write_swf(dataset.jobs, path, dataset.spec)
        back = read_swf(path, cores_per_node=dataset.spec.cores_per_node)
        rates = failure_rate_by_category(back, "user")
        assert rates["n_jobs"].sum() == back.n_rows


class TestParsing:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("; header\n\n" + " ".join(["1"] + ["0"] * 17) + "\n")
        assert read_swf(path).n_rows == 1

    def test_wrong_field_count(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(ParseError, match="18"):
            read_swf(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(" ".join(["x"] * 18) + "\n")
        with pytest.raises(ParseError, match="non-numeric"):
            read_swf(path)

    def test_unused_fields_default(self, tmp_path):
        # Status 1 (success), -1 walltime falls back to runtime.
        line = "5 100 10 50 32 -1 -1 32 -1 -1 1 3 2 -1 1 -1 -1 -1"
        path = tmp_path / "t.swf"
        path.write_text(line + "\n")
        table = read_swf(path, cores_per_node=16)
        row = table.row(0)
        assert row["job_id"] == 5
        assert row["exit_status"] == 0
        assert row["allocated_nodes"] == 2
        assert row["requested_walltime"] == 50.0
        assert row["start_time"] == 110.0


class TestReplay:
    def test_swf_trace_drives_simulator(self, dataset, tmp_path):
        """An archived trace can be replayed through the Cobalt simulator."""
        from repro.scheduler import CobaltScheduler, intents_from_swf

        path = tmp_path / "trace.swf"
        write_swf(dataset.jobs, path, dataset.spec)
        back = read_swf(path, cores_per_node=dataset.spec.cores_per_node)
        intents = intents_from_swf(back, dataset.spec, seed=1)
        assert len(intents) == dataset.jobs.n_rows
        result = CobaltScheduler(dataset.spec).run(intents, horizon_days=dataset.n_days + 5)
        assert result.n_completed > 0.9 * len(intents)
        # Replay preserves the outcome mix.
        replay_rate = sum(1 for j in result.jobs if j.failed) / result.n_completed
        original_rate = float((dataset.jobs["exit_status"] != 0).mean())
        assert abs(replay_rate - original_rate) < 0.1

    def test_intents_respect_machine_bounds(self, dataset, tmp_path):
        from repro.bgq import MIRA_SMALL
        from repro.scheduler import intents_from_swf

        path = tmp_path / "trace.swf"
        write_swf(dataset.jobs, path, dataset.spec)
        back = read_swf(path, cores_per_node=dataset.spec.cores_per_node)
        intents = intents_from_swf(back, MIRA_SMALL, seed=1)
        assert all(i.requested_nodes <= MIRA_SMALL.n_nodes for i in intents)
