"""Unit tests for scheduler quality metrics."""

import numpy as np
import pytest

from repro.bgq import MIRA
from repro.scheduler import (
    CobaltScheduler,
    WorkloadModel,
    bounded_slowdown,
    jobs_to_table,
    utilization_timeline,
    wait_time_summary,
)
from repro.table import Table


def _jobs(rows):
    """rows: (submit, start, end, nodes)."""
    return Table(
        {
            "submit_time": [float(r[0]) for r in rows],
            "start_time": [float(r[1]) for r in rows],
            "end_time": [float(r[2]) for r in rows],
            "allocated_nodes": [r[3] for r in rows],
        }
    )


class TestWaitSummary:
    def test_quantiles(self):
        jobs = _jobs([(0, 3600, 7200, 512), (0, 0, 100, 512)])
        summary = wait_time_summary(jobs)
        assert summary["median_h"] == pytest.approx(0.5)
        assert summary["max_h"] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            wait_time_summary(_jobs([]))


class TestBoundedSlowdown:
    def test_long_job_unaffected_by_bound(self):
        jobs = _jobs([(0, 1000, 11_000, 512)])  # wait 1000, run 10000
        assert bounded_slowdown(jobs)[0] == pytest.approx(1.1)

    def test_short_job_bounded(self):
        jobs = _jobs([(0, 600, 610, 512)])  # run 10s << bound
        assert bounded_slowdown(jobs, bound_seconds=600)[0] == pytest.approx(
            (600 + 10) / 600
        )

    def test_no_wait_is_one_ish(self):
        jobs = _jobs([(0, 0, 7200, 512)])
        assert bounded_slowdown(jobs)[0] == pytest.approx(1.0)

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            bounded_slowdown(_jobs([(0, 0, 1, 1)]), bound_seconds=0)


class TestUtilizationTimeline:
    def test_full_machine_full_day(self):
        jobs = _jobs([(0, 0, 86_400, MIRA.n_nodes)])
        timeline = utilization_timeline(jobs, MIRA, bucket_days=1.0)
        assert timeline.n_rows == 1
        assert timeline["utilization"][0] == pytest.approx(1.0)

    def test_half_machine(self):
        jobs = _jobs([(0, 0, 86_400, MIRA.n_nodes // 2)])
        timeline = utilization_timeline(jobs, MIRA, bucket_days=1.0)
        assert timeline["utilization"][0] == pytest.approx(0.5)

    def test_interval_split_across_buckets(self):
        # Runs from noon day0 to noon day1: half in each bucket.
        jobs = _jobs([(0, 43_200, 129_600, MIRA.n_nodes)])
        timeline = utilization_timeline(jobs, MIRA, bucket_days=1.0)
        assert timeline["utilization"].tolist() == pytest.approx([0.5, 0.5])

    def test_empty(self):
        assert utilization_timeline(_jobs([]), MIRA).n_rows == 0

    def test_never_exceeds_one_on_simulated_trace(self):
        intents = WorkloadModel(seed=51).generate(15.0)
        result = CobaltScheduler().run(intents, horizon_days=15.0)
        timeline = utilization_timeline(jobs_to_table(result.jobs), MIRA)
        assert (timeline["utilization"] <= 1.0 + 1e-9).all()
        assert (timeline["utilization"] >= 0).all()

    def test_bad_bucket(self):
        with pytest.raises(ValueError):
            utilization_timeline(_jobs([(0, 0, 1, 1)]), MIRA, bucket_days=0)
