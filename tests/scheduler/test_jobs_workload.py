"""Unit tests for job records and the workload model."""

import numpy as np
import pytest

from repro.core.exitcodes import ExitFamily, classify_exit_status
from repro.scheduler import FailureOrigin, JobRecord, WorkloadModel, WorkloadParams, jobs_to_table
from repro.scheduler.workload import WALLTIME_GRID_HOURS


def _record(**overrides):
    base = dict(
        job_id=1,
        user="u",
        project="p",
        queue="prod-short",
        submit_time=0.0,
        start_time=10.0,
        end_time=110.0,
        requested_nodes=512,
        allocated_nodes=512,
        requested_walltime=3600.0,
        exit_status=0,
        block="B",
        first_midplane=0,
        n_midplanes=1,
        n_tasks=1,
        origin=FailureOrigin.NONE,
    )
    base.update(overrides)
    return JobRecord(**base)


class TestJobRecord:
    def test_derived_quantities(self):
        job = _record()
        assert job.runtime == 100.0
        assert job.wait_time == 10.0
        assert job.core_hours == pytest.approx(512 * 16 * 100 / 3600.0)
        assert not job.failed
        assert list(job.midplane_indices) == [0]

    def test_time_ordering_enforced(self):
        with pytest.raises(ValueError, match="submit"):
            _record(start_time=-5.0)
        with pytest.raises(ValueError, match="submit"):
            _record(end_time=5.0)

    def test_allocation_ge_request(self):
        with pytest.raises(ValueError):
            _record(requested_nodes=1024)

    def test_exit_status_range(self):
        with pytest.raises(ValueError):
            _record(exit_status=300, origin=FailureOrigin.USER)

    def test_origin_consistency(self):
        with pytest.raises(ValueError, match="inconsistent"):
            _record(exit_status=1)  # NONE origin but failing status
        with pytest.raises(ValueError, match="inconsistent"):
            _record(exit_status=0, origin=FailureOrigin.USER)

    def test_failed_flag(self):
        assert _record(exit_status=139, origin=FailureOrigin.USER).failed

    def test_jobs_to_table_sorted(self):
        table = jobs_to_table([_record(job_id=5), _record(job_id=2)])
        assert table["job_id"].tolist() == [2, 5]
        assert table["core_hours"][0] == pytest.approx(512 * 16 * 100 / 3600.0)


@pytest.fixture(scope="module")
def intents():
    return WorkloadModel(seed=3).generate(30.0)


class TestWorkloadModel:
    def test_volume_near_rate(self, intents):
        # 160/day nominal, minus weekend dips: expect thousands over 30 days.
        assert 3000 < len(intents) < 6000

    def test_sorted_by_submit(self, intents):
        times = [i.submit_time for i in intents]
        assert times == sorted(times)

    def test_job_ids_sequential(self, intents):
        assert [i.job_id for i in intents] == list(range(len(intents)))

    def test_walltime_on_grid(self, intents):
        grid = {h * 3600.0 for h in WALLTIME_GRID_HOURS}
        assert all(i.requested_walltime in grid for i in intents)

    def test_runtime_within_walltime(self, intents):
        assert all(i.planned_runtime <= i.requested_walltime + 1e-6 for i in intents)

    def test_node_counts_on_ladder(self, intents):
        ladder = set(WorkloadParams().node_counts)
        assert all(i.requested_nodes in ladder for i in intents)

    def test_outcome_mix(self, intents):
        origins = {o: 0 for o in FailureOrigin}
        for intent in intents:
            origins[intent.planned_origin] += 1
        assert origins[FailureOrigin.NONE] > origins[FailureOrigin.USER] > 0
        assert origins[FailureOrigin.TIMEOUT] > 0
        assert origins[FailureOrigin.SYSTEM] == 0  # decided by the simulator

    def test_failure_rate_band(self, intents):
        failed = sum(1 for i in intents if i.planned_origin is not FailureOrigin.NONE)
        assert 0.15 < failed / len(intents) < 0.45

    def test_exit_statuses_match_origin(self, intents):
        for intent in intents:
            family = classify_exit_status(intent.planned_exit_status)
            if intent.planned_origin is FailureOrigin.NONE:
                assert family is ExitFamily.SUCCESS
            elif intent.planned_origin is FailureOrigin.TIMEOUT:
                assert family is ExitFamily.TIMEOUT
            else:
                assert family in {
                    ExitFamily.SEGFAULT,
                    ExitFamily.ABORT,
                    ExitFamily.APP_ERROR,
                    ExitFamily.CONFIG,
                }

    def test_all_user_families_appear(self, intents):
        families = {
            classify_exit_status(i.planned_exit_status)
            for i in intents
            if i.planned_origin is FailureOrigin.USER
        }
        assert families == {
            ExitFamily.SEGFAULT,
            ExitFamily.ABORT,
            ExitFamily.APP_ERROR,
            ExitFamily.CONFIG,
        }

    def test_user_concentration(self, intents):
        """A few users should dominate submissions (Zipf activity)."""
        from collections import Counter

        counts = Counter(i.user for i in intents)
        top10 = sum(c for _, c in counts.most_common(10))
        assert top10 / len(intents) > 0.3

    def test_ensemble_tasks(self, intents):
        multi = [i for i in intents if i.n_tasks > 1]
        assert multi  # ensembles exist
        assert max(i.n_tasks for i in intents) <= WorkloadParams().max_tasks

    def test_deterministic(self):
        a = WorkloadModel(seed=9).generate(5.0)
        b = WorkloadModel(seed=9).generate(5.0)
        assert [x.planned_exit_status for x in a] == [x.planned_exit_status for x in b]
        assert [x.submit_time for x in a] == [x.submit_time for x in b]

    def test_weekend_dip(self):
        intents = WorkloadModel(seed=5).generate(70.0)
        days = np.array([int(i.submit_time // 86_400) for i in intents])
        weekday = sum(1 for d in days if d % 7 < 5) / 5
        weekend = sum(1 for d in days if d % 7 >= 5) / 2
        assert weekday > weekend

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            WorkloadModel(seed=0).generate(-1.0)


class TestWorkloadParams:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadParams(node_weights=(0.5, 0.6), node_counts=(512, 1024))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            WorkloadParams(node_weights=(1.0,), node_counts=(512, 1024))

    def test_bad_timeout_share(self):
        with pytest.raises(ValueError):
            WorkloadParams(timeout_share=1.0)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            WorkloadParams(arrival_rate_per_day=0.0)

    def test_bad_population(self):
        with pytest.raises(ValueError):
            WorkloadParams(n_users=0)
