"""Tests for the opt-in debug-resubmit model."""

import pytest

from repro.core.exitcodes import classify_exit_status
from repro.dataset import MiraDataset
from repro.experiments import run_experiment
from repro.scheduler import FailureOrigin, WorkloadModel, WorkloadParams


class TestResubmission:
    def test_off_by_default(self):
        assert WorkloadParams().resubmit_probability == 0.0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            WorkloadParams(resubmit_probability=1.5)
        with pytest.raises(ValueError):
            WorkloadParams(refail_probability=-0.1)

    def test_adds_jobs(self):
        base = WorkloadModel(
            params=WorkloadParams(resubmit_probability=0.0), seed=5
        ).generate(20.0)
        with_resubmit = WorkloadModel(
            params=WorkloadParams(resubmit_probability=0.6), seed=5
        ).generate(20.0)
        assert len(with_resubmit) > len(base)

    def test_job_ids_sequential_and_sorted(self):
        intents = WorkloadModel(
            params=WorkloadParams(resubmit_probability=0.6), seed=6
        ).generate(15.0)
        assert [i.job_id for i in intents] == list(range(len(intents)))
        submits = [i.submit_time for i in intents]
        assert submits == sorted(submits)

    def test_resubmission_preserves_shape(self):
        """Retries keep the same user/project/size/tasks as the original."""
        params = WorkloadParams(resubmit_probability=1.0, refail_probability=1.0,
                                max_resubmissions=2)
        intents = WorkloadModel(params=params, seed=7).generate(10.0)
        by_user: dict = {}
        for intent in intents:
            by_user.setdefault(
                (intent.user, intent.requested_nodes, intent.n_tasks), []
            ).append(intent)
        # With certain resubmission, failed shapes appear repeatedly.
        repeated = [k for k, v in by_user.items() if len(v) >= 3]
        assert repeated

    def test_refail_keeps_exit_family(self):
        params = WorkloadParams(resubmit_probability=1.0, refail_probability=1.0,
                                max_resubmissions=1)
        intents = WorkloadModel(params=params, seed=8).generate(10.0)
        failures = [
            i for i in intents if i.planned_origin is FailureOrigin.USER
        ]
        # Consecutive same-user failed submissions of the same shape share
        # the exit family when the bug persists.
        by_key: dict = {}
        for intent in failures:
            by_key.setdefault((intent.user, intent.requested_nodes), []).append(intent)
        for sequence in by_key.values():
            families = {
                classify_exit_status(i.planned_exit_status) for i in sequence
            }
            if len(sequence) >= 2:
                # A user can have several distinct failing codes, but
                # chains keep families; assert no chain mixes more
                # families than original failures could introduce.
                assert len(families) <= len(sequence)

    def test_resubmissions_within_horizon(self):
        params = WorkloadParams(resubmit_probability=0.8)
        intents = WorkloadModel(params=params, seed=9).generate(12.0)
        assert all(i.submit_time < 12.0 * 86_400.0 for i in intents)

    def test_repetition_factor_rises_with_resubmission(self):
        """E20's repetition factor must increase when genuine resubmit
        streaks are added on top of user heterogeneity."""
        base = MiraDataset.synthesize(n_days=45.0, seed=14)
        streaky = MiraDataset.synthesize(
            n_days=45.0,
            seed=14,
            workload_params=WorkloadParams(
                resubmit_probability=0.7, refail_probability=0.8
            ),
        )
        factor_base = run_experiment("e20", base).metrics["repetition_factor"]
        factor_streaky = run_experiment("e20", streaky).metrics["repetition_factor"]
        assert factor_streaky > factor_base
