"""Unit and integration tests for the Cobalt-like scheduler simulation."""

import pytest

from repro.bgq import MIRA, MIRA_SMALL
from repro.errors import ParseError
from repro.ras import Incident, RasGenerator
from repro.scheduler import (
    CobaltScheduler,
    FailureOrigin,
    JobIntent,
    SchedulerParams,
    WorkloadModel,
    jobs_to_table,
    load_job_log,
    validate_job_table,
)
from repro.table import write_csv


def _intent(job_id, submit, nodes=512, runtime=100.0, walltime=3600.0,
            status=0, origin=FailureOrigin.NONE, user="u0"):
    return JobIntent(
        job_id=job_id,
        user=user,
        project="p0",
        queue="prod-short",
        submit_time=submit,
        requested_nodes=nodes,
        requested_walltime=walltime,
        planned_runtime=runtime,
        planned_exit_status=status,
        planned_origin=origin,
        n_tasks=1,
    )


class TestBasicExecution:
    def test_single_job(self):
        result = CobaltScheduler(MIRA).run([_intent(0, 0.0)])
        assert result.n_completed == 1
        job = result.jobs[0]
        assert job.start_time == 0.0
        assert job.end_time == 100.0
        assert job.allocated_nodes == 512
        assert job.origin is FailureOrigin.NONE

    def test_immediate_start_when_free(self):
        intents = [_intent(i, float(i), nodes=512) for i in range(10)]
        result = CobaltScheduler(MIRA).run(intents)
        assert all(j.wait_time == 0.0 for j in result.jobs)

    def test_fcfs_when_machine_full(self):
        first = _intent(0, 0.0, nodes=49_152, runtime=1000.0)
        second = _intent(1, 1.0, nodes=512, runtime=10.0, walltime=7200.0)
        result = CobaltScheduler(MIRA).run([first, second])
        by_id = {j.job_id: j for j in result.jobs}
        assert by_id[1].start_time == pytest.approx(1000.0)

    def test_backfill_small_job_jumps_queue(self):
        # Job 0 holds half the machine; job 1 wants the full machine and
        # must wait; job 2 is small with a short walltime and backfills.
        blocker = _intent(0, 0.0, nodes=24_576, runtime=10_000.0, walltime=10_800.0)
        big = _intent(1, 1.0, nodes=49_152, runtime=100.0, walltime=3600.0)
        small = _intent(2, 2.0, nodes=512, runtime=50.0, walltime=1800.0)
        result = CobaltScheduler(MIRA).run([blocker, big, small])
        by_id = {j.job_id: j for j in result.jobs}
        assert by_id[2].start_time == pytest.approx(2.0)  # backfilled
        assert by_id[1].start_time >= 10_000.0

    def test_backfill_respects_shadow(self):
        # A long backfill candidate would delay the waiting big job, so it
        # must NOT start before the big one.
        blocker = _intent(0, 0.0, nodes=24_576, runtime=1000.0, walltime=1200.0)
        big = _intent(1, 1.0, nodes=49_152, runtime=100.0, walltime=3600.0)
        long_small = _intent(2, 2.0, nodes=512, runtime=5000.0, walltime=7200.0)
        result = CobaltScheduler(MIRA).run([blocker, big, long_small])
        by_id = {j.job_id: j for j in result.jobs}
        assert by_id[2].start_time >= by_id[1].start_time

    def test_no_node_oversubscription(self):
        intents = [
            _intent(i, 0.0, nodes=8192, runtime=500.0, walltime=3600.0)
            for i in range(20)
        ]
        result = CobaltScheduler(MIRA).run(intents)
        # Build a busy timeline and assert midplane occupancy never overlaps.
        spans = [
            (j.start_time, j.end_time, set(j.midplane_indices)) for j in result.jobs
        ]
        for i, (s1, e1, m1) in enumerate(spans):
            for s2, e2, m2 in spans[i + 1 :]:
                if s1 < e2 and s2 < e1:  # time overlap
                    assert not (m1 & m2)

    def test_horizon_truncation(self):
        intents = [
            _intent(0, 0.0, runtime=100.0),
            _intent(1, 0.0, runtime=200_000.0, walltime=250_000.0),
        ]
        result = CobaltScheduler(MIRA).run(intents, horizon_days=1.0)
        assert result.n_completed == 1
        assert result.n_running_at_end == 1


class TestSystemFailures:
    def test_incident_kills_running_job(self):
        incident = Incident(0, 50.0, "00010006", midplane_index=0, n_events=3)
        result = CobaltScheduler(MIRA).run(
            [_intent(0, 0.0, runtime=100.0)], incidents=[incident]
        )
        job = result.jobs[0]
        assert job.origin is FailureOrigin.SYSTEM
        assert job.exit_status == 137
        delay = SchedulerParams().system_kill_delay_seconds
        assert job.end_time == pytest.approx(50.0 + delay)
        assert result.n_system_failures == 1

    def test_incident_on_idle_midplane_harmless(self):
        incident = Incident(0, 50.0, "00010006", midplane_index=40, n_events=3)
        result = CobaltScheduler(MIRA).run(
            [_intent(0, 0.0, runtime=100.0)], incidents=[incident]
        )
        assert result.jobs[0].origin is FailureOrigin.NONE

    def test_incident_after_job_end_harmless(self):
        incident = Incident(0, 150.0, "00010006", midplane_index=0, n_events=3)
        result = CobaltScheduler(MIRA).run(
            [_intent(0, 0.0, runtime=100.0)], incidents=[incident]
        )
        assert result.jobs[0].origin is FailureOrigin.NONE

    def test_first_of_several_incidents_wins(self):
        incidents = [
            Incident(0, 80.0, "00010006", midplane_index=0, n_events=1),
            Incident(1, 30.0, "00020004", midplane_index=0, n_events=1),
        ]
        result = CobaltScheduler(MIRA).run(
            [_intent(0, 0.0, runtime=100.0)], incidents=incidents
        )
        delay = SchedulerParams().system_kill_delay_seconds
        assert result.jobs[0].end_time == pytest.approx(30.0 + delay)

    def test_system_override_of_planned_user_failure(self):
        intent = _intent(0, 0.0, runtime=100.0, status=139, origin=FailureOrigin.USER)
        incident = Incident(0, 10.0, "00010006", midplane_index=0, n_events=1)
        result = CobaltScheduler(MIRA).run([intent], incidents=[incident])
        job = result.jobs[0]
        assert job.exit_status == 137
        assert job.origin is FailureOrigin.SYSTEM


class TestEndToEnd:
    def test_realistic_month(self):
        intents = WorkloadModel(spec=MIRA, seed=11).generate(30.0)
        _, incidents = RasGenerator(spec=MIRA, seed=11).generate(30.0)
        result = CobaltScheduler(MIRA).run(intents, incidents, horizon_days=30.0)
        assert result.n_completed > 0.8 * result.n_submitted
        failed = [j for j in result.jobs if j.failed]
        rate = len(failed) / result.n_completed
        assert 0.1 < rate < 0.5
        # Ground truth bookkeeping is consistent.
        system = [j for j in result.jobs if j.origin is FailureOrigin.SYSTEM]
        assert len(system) == result.n_system_failures
        assert all(j.exit_status == 137 for j in system)

    def test_queue_stays_stable(self):
        """The queue is stable: backlog transients drain rather than grow.

        A fixed snapshot can catch a temporary capability-job bulge, so
        stability is asserted as the backlog *fraction* not growing when
        the horizon doubles, plus a generous absolute cap.
        """
        model = WorkloadModel(spec=MIRA, seed=13)
        short = CobaltScheduler(MIRA).run(model.generate(60.0), horizon_days=60.0)
        long = CobaltScheduler(MIRA).run(
            WorkloadModel(spec=MIRA, seed=13).generate(120.0), horizon_days=120.0
        )
        short_fraction = short.n_unstarted / short.n_submitted
        long_fraction = long.n_unstarted / long.n_submitted
        assert long_fraction <= short_fraction + 0.01
        assert long_fraction < 0.10

    def test_job_table_valid(self):
        intents = WorkloadModel(spec=MIRA, seed=17).generate(10.0)
        result = CobaltScheduler(MIRA).run(intents, horizon_days=10.0)
        table = jobs_to_table(result.jobs)
        validate_job_table(table)

    def test_small_machine(self):
        intents = [
            _intent(i, float(i * 10), nodes=32, runtime=100.0) for i in range(5)
        ]
        result = CobaltScheduler(MIRA_SMALL).run(intents)
        assert result.n_completed == 5
        assert all(j.allocated_nodes == 32 for j in result.jobs)


class TestJobLogIo:
    def test_roundtrip(self, tmp_path):
        intents = WorkloadModel(spec=MIRA, seed=19).generate(3.0)
        result = CobaltScheduler(MIRA).run(intents, horizon_days=3.0)
        table = jobs_to_table(result.jobs)
        path = tmp_path / "jobs.csv"
        write_csv(table, path)
        loaded = load_job_log(path)
        assert loaded.n_rows == table.n_rows
        assert loaded["exit_status"].tolist() == table["exit_status"].tolist()

    def test_validation_rejects_bad_times(self):
        table = jobs_to_table(
            [
                # build via record then corrupt the column
            ]
        )
        intents = WorkloadModel(spec=MIRA, seed=23).generate(2.0)
        result = CobaltScheduler(MIRA).run(intents, horizon_days=2.0)
        table = jobs_to_table(result.jobs)
        corrupted = table.with_column("end_time", table["start_time"] - 1.0)
        with pytest.raises(ParseError):
            validate_job_table(corrupted)

    def test_validation_rejects_duplicate_ids(self):
        intents = WorkloadModel(spec=MIRA, seed=29).generate(2.0)
        result = CobaltScheduler(MIRA).run(intents, horizon_days=2.0)
        table = jobs_to_table(result.jobs)
        duplicated = table.with_column("job_id", [0] * table.n_rows)
        with pytest.raises(ParseError, match="duplicate"):
            validate_job_table(duplicated)


class TestSchedulerParams:
    def test_bad_depth(self):
        with pytest.raises(ValueError):
            SchedulerParams(backfill_depth=-1)


class TestConservationProperties:
    @pytest.mark.parametrize("seed", [3, 29, 71])
    def test_every_submission_accounted_for(self, seed):
        intents = WorkloadModel(spec=MIRA, seed=seed).generate(8.0)
        result = CobaltScheduler(MIRA).run(intents, horizon_days=8.0)
        assert (
            result.n_completed + result.n_unstarted + result.n_running_at_end
            == result.n_submitted
        )
        for job in result.jobs:
            assert job.submit_time <= job.start_time <= job.end_time
            assert job.allocated_nodes >= job.requested_nodes
