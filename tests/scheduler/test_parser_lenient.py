"""Strict-vs-lenient contract of the job-log parser."""

import pytest

from repro.errors import ParseError
from repro.ingest import ParseReport
from repro.scheduler import JOB_COLUMNS, validate_job_table
from repro.table import Table


def job_table(**overrides):
    base = {
        "job_id": [1, 2, 3],
        "user": ["u1", "u2", "u1"],
        "project": ["p1", "p1", "p2"],
        "queue": ["prod", "prod", "prod"],
        "submit_time": [0.0, 10.0, 20.0],
        "start_time": [5.0, 15.0, 25.0],
        "end_time": [8.0, 18.0, 30.0],
        "requested_nodes": [512, 512, 1024],
        "allocated_nodes": [512, 512, 1024],
        "requested_walltime": [3600.0, 3600.0, 7200.0],
        "exit_status": [0, 1, 0],
        "block": ["B0", "B1", "B2"],
        "first_midplane": [0, 1, 2],
        "n_midplanes": [1, 1, 2],
        "n_tasks": [1, 1, 1],
        "core_hours": [100.0, 100.0, 400.0],
        "origin": ["none", "user", "none"],
    }
    base.update(overrides)
    return Table(base)


class TestStrict:
    def test_duplicate_job_ids_raise(self):
        with pytest.raises(ParseError, match="duplicate job ids"):
            validate_job_table(job_table(job_id=[1, 1, 3]))

    def test_start_before_submit_raises(self):
        with pytest.raises(ParseError, match="start_time before submit_time"):
            validate_job_table(job_table(submit_time=[6.0, 10.0, 20.0]))

    def test_exit_status_range(self):
        with pytest.raises(ParseError, match=r"\[0, 255\]"):
            validate_job_table(job_table(exit_status=[0, 999, 0]))

    def test_schema_is_canonical(self):
        assert job_table().column_names == JOB_COLUMNS


class TestLenient:
    def test_duplicate_job_ids_keep_first(self):
        report = ParseReport()
        out = validate_job_table(job_table(job_id=[1, 1, 3]), report=report)
        assert out["job_id"].tolist() == [1, 3]
        assert "duplicate job_id 1" in report.quarantined[0].reason

    def test_inverted_times_quarantined(self):
        report = ParseReport()
        out = validate_job_table(
            job_table(end_time=[8.0, 12.0, 30.0]), report=report
        )
        assert out.n_rows == 2
        assert "end_time before start_time" in report.quarantined[0].reason

    def test_unparsable_numeric_quarantined(self):
        report = ParseReport()
        out = validate_job_table(
            job_table(end_time=["8.0", "oops", "30.0"]), report=report
        )
        assert out.n_rows == 2
        assert out["job_id"].dtype.kind == "i"  # ints survive the round trip
        assert "unparsable end_time" in report.quarantined[0].reason

    def test_out_of_range_exit_status_quarantined(self):
        report = ParseReport()
        out = validate_job_table(job_table(exit_status=[0, -3, 300]), report=report)
        assert out.n_rows == 1
        assert report.n_quarantined == 2
