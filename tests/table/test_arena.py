"""Arena round-trips, lazy decode, descriptor pickling, corruption."""

import os
import pickle

import numpy as np
import pytest

from repro.errors import ColumnTypeError, ParseError
from repro.table import Table
from repro.table.arena import (
    ARENA_ALIGN,
    attach_arena,
    attach_table,
    detach_all,
    prune_stale_temps,
    read_arena,
    write_arena,
)


@pytest.fixture(autouse=True)
def _fresh_attach_cache():
    detach_all()
    yield
    detach_all()


def _sample_tables():
    return {
        "events": Table(
            {
                "timestamp": [1.5, 2.0, float("nan")],
                "count": np.array([1, 2, 3], dtype=np.int64),
                "ok": np.array([True, False, True]),
                "msg_id": ["00010001", "café ☃", ""],
            }
        ),
        "empty": Table({"a": np.empty(0, dtype=np.int64), "b": []}),
        "nothing": Table({}),
    }


class TestRoundTrip:
    def test_tables_and_meta_round_trip(self, tmp_path):
        path = tmp_path / "data.arena"
        write_arena(path, _sample_tables(), meta={"fingerprint": "fp1", "k": 2})
        tables, meta = read_arena(path)
        assert meta["fingerprint"] == "fp1"
        assert meta["k"] == 2
        assert set(tables) == {"events", "empty", "nothing"}
        for name, original in _sample_tables().items():
            assert tables[name] == original
            assert tables[name].column_names == original.column_names

    def test_numeric_views_are_read_only_memmaps(self, tmp_path):
        path = tmp_path / "data.arena"
        write_arena(path, _sample_tables())
        tables, _ = read_arena(path)
        col = tables["events"]["count"]
        assert not col.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            col[0] = 99
        assert col.ctypes.data % np.dtype(np.int64).itemsize == 0

    def test_string_columns_decode_lazily_and_correctly(self, tmp_path):
        path = tmp_path / "data.arena"
        write_arena(path, _sample_tables())
        tables, _ = read_arena(path)
        msg = tables["events"]["msg_id"]
        assert msg.dtype.kind == "O"
        assert msg.tolist() == ["00010001", "café ☃", ""]

    def test_blob_alignment(self, tmp_path):
        path = tmp_path / "data.arena"
        write_arena(path, _sample_tables())
        raw = path.read_bytes()
        import json
        import struct

        _magic, dir_off, dir_len = struct.unpack("<8sQQ", raw[:24])
        directory = json.loads(raw[dir_off : dir_off + dir_len])
        for entry in directory["tables"].values():
            for column in entry["columns"]:
                if column["repr"] == "raw":
                    assert column["offset"] % ARENA_ALIGN == 0

    def test_object_column_with_non_strings_rejected(self, tmp_path):
        bad = Table({"x": np.array([1.0, 2.0])}).with_column(
            "blob", np.array(["a", {"not": "a str"}], dtype=object)
        )
        with pytest.raises(ColumnTypeError, match="t.blob"):
            write_arena(tmp_path / "bad.arena", {"t": bad})
        assert not (tmp_path / "bad.arena").exists()


class TestAttachCache:
    def test_attach_is_cached_per_process(self, tmp_path):
        path = tmp_path / "data.arena"
        write_arena(path, _sample_tables(), meta={"fingerprint": "fp"})
        tables_a, _ = attach_arena(path, "fp")
        tables_b, _ = attach_arena(path, "fp")
        assert tables_a["events"] is tables_b["events"]

    def test_rewrite_invalidates_cached_attachment(self, tmp_path):
        path = tmp_path / "data.arena"
        write_arena(path, {"t": Table({"a": [1]})}, meta={"fingerprint": "fp"})
        first, _ = attach_arena(path, "fp")
        os.utime(path, ns=(0, 0))  # force a different mtime_ns
        write_arena(path, {"t": Table({"a": [2]})}, meta={"fingerprint": "fp"})
        second, _ = attach_arena(path, "fp")
        assert first["t"]["a"].tolist() == [1]
        assert second["t"]["a"].tolist() == [2]

    def test_pickle_ships_descriptor_not_data(self, tmp_path):
        path = tmp_path / "data.arena"
        write_arena(path, _sample_tables(), meta={"fingerprint": "fp"})
        tables, _ = attach_arena(path, "fp")
        blob = pickle.dumps(tables["events"])
        # A descriptor is a few hundred bytes; the full table would be
        # far larger once every column rides along.
        assert len(blob) < 1024
        restored = pickle.loads(blob)
        assert restored is tables["events"]  # same-process cache hit

    def test_attach_table_unknown_name(self, tmp_path):
        path = tmp_path / "data.arena"
        write_arena(path, {"t": Table({"a": [1]})}, meta={"fingerprint": "fp"})
        with pytest.raises(ParseError, match="no table 'zzz'"):
            attach_table(str(path), "zzz", "fp")


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.arena"
        path.write_bytes(b"NOTARENA" + b"\x00" * 64)
        with pytest.raises(ParseError, match="bad magic"):
            read_arena(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "tiny.arena"
        path.write_bytes(b"RPRARENA")
        with pytest.raises(ParseError, match="truncated"):
            read_arena(path)

    def test_truncated_body(self, tmp_path):
        path = tmp_path / "cut.arena"
        write_arena(path, _sample_tables())
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ParseError):
            read_arena(path)

    def test_stale_fingerprint_rejected(self, tmp_path):
        path = tmp_path / "data.arena"
        write_arena(path, _sample_tables(), meta={"fingerprint": "old"})
        with pytest.raises(ParseError, match="stale arena"):
            read_arena(path, expected_fingerprint="new")

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_arena(tmp_path / "nope.arena")


class TestPruneStaleTemps:
    def test_dead_pid_temp_removed_live_pid_kept(self, tmp_path):
        # PID 2**22 + large offset is far above pid_max defaults; our
        # own PID is definitionally alive.
        dead = tmp_path / "data.arena.tmp.4194304"
        dead.write_bytes(b"x")
        mine = tmp_path / f"data.arena.tmp.{os.getpid()}"
        mine.write_bytes(b"x")
        nonpid = tmp_path / "data.arena.tmp.notapid"
        nonpid.write_bytes(b"x")
        removed = prune_stale_temps(tmp_path)
        assert removed == 1
        assert not dead.exists()
        assert mine.exists()
        assert nonpid.exists()
