"""Columnar ``.npz`` bundle round-trips and corruption handling."""

import numpy as np
import pytest

from repro.errors import ColumnTypeError, ParseError
from repro.table import Table, read_npz, write_npz
from repro.table.npzio import NPZ_FORMAT_VERSION


def _sample_tables():
    return {
        "events": Table(
            {
                "timestamp": [1.5, 2.0, 3.25],
                "count": [1, 2, 3],
                "msg_id": ["00010001", "00070002", ""],
            }
        ),
        "empty": Table({"a": np.empty(0, dtype=np.int64), "b": []}),
        "nothing": Table({}),
    }


class TestRoundTrip:
    def test_tables_and_meta_round_trip(self, tmp_path):
        path = tmp_path / "bundle.npz"
        write_npz(path, _sample_tables(), meta={"n_days": 3.5, "tags": ["x"]})
        tables, meta = read_npz(path)
        assert meta == {"n_days": 3.5, "tags": ["x"]}
        assert set(tables) == {"events", "empty", "nothing"}
        for name, original in _sample_tables().items():
            assert tables[name] == original
            assert tables[name].column_names == original.column_names

    def test_dtypes_survive(self, tmp_path):
        path = tmp_path / "bundle.npz"
        write_npz(path, _sample_tables())
        tables, _ = read_npz(path)
        events = tables["events"]
        assert events["timestamp"].dtype == np.float64
        assert events["count"].dtype == np.int64
        assert events["msg_id"].dtype.kind == "O"
        assert events["msg_id"].tolist() == ["00010001", "00070002", ""]

    def test_all_empty_string_column(self, tmp_path):
        path = tmp_path / "bundle.npz"
        write_npz(path, {"t": Table({"block": ["", "", ""]})})
        tables, _ = read_npz(path)
        assert tables["t"]["block"].tolist() == ["", "", ""]

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "bundle.npz"
        write_npz(path, _sample_tables())
        assert [p.name for p in tmp_path.iterdir()] == ["bundle.npz"]

    def test_object_column_with_non_strings_rejected(self, tmp_path):
        bad = np.empty(2, dtype=object)
        bad[0], bad[1] = "fine", 3.5
        table = Table({"a": [1, 2]}).with_column("label", bad)
        with pytest.raises(ColumnTypeError, match=r"t\.label"):
            write_npz(tmp_path / "bad.npz", {"t": table})
        assert not (tmp_path / "bad.npz").exists()


class TestCorruption:
    def test_garbage_file_raises_parse_error(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an archive")
        with pytest.raises(ParseError, match="unreadable npz"):
            read_npz(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_npz(tmp_path / "nope.npz")

    def test_plain_npz_without_manifest_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez_compressed(path, a=np.arange(3))
        with pytest.raises(ParseError, match="missing manifest"):
            read_npz(path)

    def test_future_format_version_rejected(self, tmp_path, monkeypatch):
        import repro.table.npzio as npzio

        path = tmp_path / "bundle.npz"
        monkeypatch.setattr(npzio, "NPZ_FORMAT_VERSION", NPZ_FORMAT_VERSION + 1)
        write_npz(path, {"t": Table({"a": [1]})})
        monkeypatch.undo()
        with pytest.raises(ParseError, match="format version"):
            read_npz(path)
