"""Unit tests for the Table core: construction, access, filter, sort."""

import numpy as np
import pytest

from repro.table import Table


@pytest.fixture
def jobs():
    return Table(
        {
            "job_id": [1, 2, 3, 4, 5],
            "user": ["alice", "bob", "alice", "carol", "bob"],
            "nodes": [512, 1024, 512, 2048, 512],
            "hours": [1.0, 2.5, 0.5, 8.0, 1.5],
        }
    )


class TestConstruction:
    def test_basic_shape(self, jobs):
        assert jobs.n_rows == 5
        assert jobs.column_names == ["job_id", "user", "nodes", "hours"]

    def test_len(self, jobs):
        assert len(jobs) == 5

    def test_empty_table(self):
        t = Table({})
        assert t.n_rows == 0
        assert t.column_names == []
        assert t.to_rows() == []

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="length"):
            Table({"a": [1, 2], "b": [1]})

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            Table({"a": np.zeros((2, 2))})

    def test_int_column_dtype(self, jobs):
        assert jobs["job_id"].dtype == np.int64

    def test_float_column_dtype(self, jobs):
        assert jobs["hours"].dtype == np.float64

    def test_string_column_dtype(self, jobs):
        assert jobs["user"].dtype.kind == "O"

    def test_from_rows_roundtrip(self, jobs):
        assert Table.from_rows(jobs.to_rows()) == jobs

    def test_from_rows_empty(self):
        assert Table.from_rows([]).n_rows == 0

    def test_from_rows_inconsistent_keys(self):
        with pytest.raises(ValueError, match="keys"):
            Table.from_rows([{"a": 1}, {"b": 2}])

    def test_empty_with_schema(self):
        t = Table.empty({"x": int, "y": float, "s": str})
        assert t.n_rows == 0
        assert t["x"].dtype == np.int64
        assert t["y"].dtype == np.float64

    def test_numpy_unicode_coerced_to_object(self):
        t = Table({"s": np.array(["a", "bb"])})
        assert t["s"].dtype.kind == "O"


class TestAccess:
    def test_getitem_unknown_column(self, jobs):
        with pytest.raises(KeyError, match="available"):
            jobs["nope"]

    def test_contains(self, jobs):
        assert "user" in jobs
        assert "nope" not in jobs

    def test_row(self, jobs):
        assert jobs.row(0) == {"job_id": 1, "user": "alice", "nodes": 512, "hours": 1.0}

    def test_row_negative_index(self, jobs):
        assert jobs.row(-1)["user"] == "bob"

    def test_row_out_of_range(self, jobs):
        with pytest.raises(IndexError):
            jobs.row(5)

    def test_iteration_yields_rows(self, jobs):
        rows = list(jobs)
        assert len(rows) == 5
        assert rows[1]["user"] == "bob"

    def test_to_dict(self, jobs):
        d = jobs.to_dict()
        assert d["nodes"] == [512, 1024, 512, 2048, 512]

    def test_repr_mentions_shape(self, jobs):
        assert "5 rows" in repr(jobs)


class TestProjection:
    def test_select_order(self, jobs):
        t = jobs.select(["hours", "user"])
        assert t.column_names == ["hours", "user"]

    def test_select_unknown(self, jobs):
        with pytest.raises(KeyError):
            jobs.select(["nope"])

    def test_drop(self, jobs):
        assert jobs.drop(["hours"]).column_names == ["job_id", "user", "nodes"]

    def test_rename(self, jobs):
        t = jobs.rename({"hours": "core_hours"})
        assert "core_hours" in t and "hours" not in t

    def test_with_column_add(self, jobs):
        t = jobs.with_column("failed", [True, False, True, False, False])
        assert t["failed"].sum() == 2
        assert jobs.column_names == ["job_id", "user", "nodes", "hours"]  # original intact

    def test_with_column_replace(self, jobs):
        t = jobs.with_column("nodes", [1, 2, 3, 4, 5])
        assert t["nodes"].tolist() == [1, 2, 3, 4, 5]

    def test_with_column_wrong_length(self, jobs):
        with pytest.raises(ValueError):
            jobs.with_column("x", [1, 2])

    def test_map_column(self, jobs):
        t = jobs.map_column("user", str.upper)
        assert t["user"][0] == "ALICE"


class TestFilterSortTake:
    def test_filter(self, jobs):
        small = jobs.filter(jobs["nodes"] == 512)
        assert small.n_rows == 3
        assert set(small["user"]) == {"alice", "bob"}

    def test_filter_requires_bool(self, jobs):
        with pytest.raises(TypeError):
            jobs.filter(np.array([1, 0, 1, 0, 1]))

    def test_filter_length_mismatch(self, jobs):
        with pytest.raises(ValueError):
            jobs.filter(np.array([True, False]))

    def test_take_order(self, jobs):
        t = jobs.take([4, 0])
        assert t["job_id"].tolist() == [5, 1]

    def test_head(self, jobs):
        assert jobs.head(2).n_rows == 2
        assert jobs.head(100).n_rows == 5

    def test_sort_numeric(self, jobs):
        t = jobs.sort_by("hours")
        assert t["hours"].tolist() == sorted(jobs["hours"].tolist())

    def test_sort_reverse(self, jobs):
        t = jobs.sort_by("hours", reverse=True)
        assert t["hours"][0] == 8.0

    def test_sort_string_then_numeric(self, jobs):
        t = jobs.sort_by("user", "hours")
        assert t["user"].tolist() == ["alice", "alice", "bob", "bob", "carol"]
        assert t["hours"].tolist()[:2] == [0.5, 1.0]

    def test_sort_requires_column(self, jobs):
        with pytest.raises(ValueError):
            jobs.sort_by()


class TestSummaries:
    def test_unique_strings(self, jobs):
        assert set(jobs.unique("user")) == {"alice", "bob", "carol"}

    def test_value_counts_sorted_desc(self, jobs):
        vc = jobs.value_counts("user")
        assert vc["count"].tolist() == sorted(vc["count"].tolist(), reverse=True)
        assert vc["count"].sum() == 5

    def test_value_counts_top(self, jobs):
        vc = jobs.value_counts("nodes")
        assert vc.row(0) == {"nodes": 512, "count": 3}


class TestConcat:
    def test_concat_two(self, jobs):
        both = Table.concat([jobs, jobs])
        assert both.n_rows == 10
        assert both["user"].tolist() == jobs["user"].tolist() * 2

    def test_concat_empty_list(self):
        assert Table.concat([]).n_rows == 0

    def test_concat_mismatched_columns(self, jobs):
        with pytest.raises(ValueError):
            Table.concat([jobs, jobs.drop(["hours"])])


class TestEquality:
    def test_equal_tables(self, jobs):
        assert jobs == jobs.take(np.arange(5))

    def test_unequal_values(self, jobs):
        assert jobs != jobs.with_column("hours", [0, 0, 0, 0, 0.0])

    def test_not_a_table(self, jobs):
        assert jobs != 42


class TestToText:
    def test_contains_header_and_values(self, jobs):
        text = jobs.to_text()
        assert "user" in text and "alice" in text

    def test_truncation_notice(self, jobs):
        text = jobs.to_text(max_rows=2)
        assert "3 more rows" in text

    def test_empty(self):
        assert Table({}).to_text() == "(empty table)"
