"""Unit tests for joins and CSV/JSONL persistence."""

import numpy as np
import pytest

from repro.table import Table, read_csv, read_jsonl, write_csv, write_jsonl


@pytest.fixture
def jobs():
    return Table({"job_id": [1, 2, 3], "user": ["a", "b", "a"]})


@pytest.fixture
def tasks():
    return Table(
        {
            "job_id": [1, 1, 2, 9],
            "task": [0, 1, 0, 0],
            "exit": [0, 11, 0, 1],
        }
    )


class TestInnerJoin:
    def test_fanout(self, jobs, tasks):
        j = jobs.join(tasks, on="job_id")
        assert j.n_rows == 3  # job 1 matches twice, job 2 once, job 3/9 dropped
        assert sorted(j["job_id"].tolist()) == [1, 1, 2]

    def test_columns_merged(self, jobs, tasks):
        j = jobs.join(tasks, on="job_id")
        assert set(j.column_names) == {"job_id", "user", "task", "exit"}

    def test_multi_key(self):
        left = Table({"u": ["a", "a", "b"], "d": [1, 2, 1], "x": [10, 20, 30]})
        right = Table({"u": ["a", "b"], "d": [2, 1], "y": [0.5, 0.7]})
        j = left.join(right, on=["u", "d"])
        assert j.n_rows == 2
        assert sorted(j["x"].tolist()) == [20, 30]

    def test_collision_suffix(self):
        left = Table({"k": [1], "v": [10]})
        right = Table({"k": [1], "v": [20]})
        j = left.join(right, on="k")
        assert j.row(0) == {"k": 1, "v": 10, "v_right": 20}

    def test_missing_key_left(self, jobs, tasks):
        with pytest.raises(KeyError, match="left"):
            jobs.join(tasks, on="task")

    def test_missing_key_right(self, jobs, tasks):
        with pytest.raises(KeyError, match="right"):
            jobs.join(tasks, on="user")

    def test_bad_how(self, jobs, tasks):
        with pytest.raises(ValueError):
            jobs.join(tasks, on="job_id", how="outer")


class TestLeftJoin:
    def test_unmatched_rows_kept(self, jobs, tasks):
        j = jobs.join(tasks, on="job_id", how="left")
        assert j.n_rows == 4  # 2 for job 1, 1 for job 2, 1 unmatched job 3

    def test_null_fill_int(self, jobs, tasks):
        j = jobs.join(tasks, on="job_id", how="left")
        unmatched = j.filter(j["job_id"] == 3)
        assert unmatched["task"].tolist() == [-1]

    def test_null_fill_float(self):
        left = Table({"k": [1, 2]})
        right = Table({"k": [1], "w": [1.5]})
        j = left.join(right, on="k", how="left").sort_by("k")
        assert np.isnan(j["w"][1])

    def test_null_fill_string(self):
        left = Table({"k": [1, 2]})
        right = Table({"k": [1], "s": ["x"]})
        j = left.join(right, on="k", how="left").sort_by("k")
        assert j["s"].tolist() == ["x", ""]

    def test_all_unmatched(self):
        left = Table({"k": [5, 6]})
        right = Table({"k": [1], "w": [1.0]})
        j = left.join(right, on="k", how="left")
        assert j.n_rows == 2 and np.isnan(j["w"]).all()


class TestCsv:
    def test_roundtrip(self, tmp_path, tasks):
        path = tmp_path / "tasks.csv"
        write_csv(tasks, path)
        assert read_csv(path) == tasks

    def test_type_inference_float(self, tmp_path):
        t = Table({"x": [1.5, 2.0]})
        write_csv(t, tmp_path / "f.csv")
        back = read_csv(tmp_path / "f.csv")
        assert back["x"].dtype == np.float64

    def test_type_inference_string(self, tmp_path):
        t = Table({"loc": ["R00-M0", "R01-M1"]})
        write_csv(t, tmp_path / "s.csv")
        assert read_csv(tmp_path / "s.csv")["loc"].dtype.kind == "O"

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert read_csv(path).n_rows == 0

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="expected 2 fields"):
            read_csv(path)

    def test_creates_parent_dirs(self, tmp_path, tasks):
        path = tmp_path / "deep" / "dir" / "t.csv"
        write_csv(tasks, path)
        assert path.exists()


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = tmp_path / "rows.jsonl"
        write_jsonl(rows, path)
        assert read_jsonl(path) == rows

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert len(read_jsonl(path)) == 2
