"""Unit tests for group-by aggregation."""

import numpy as np
import pytest

from repro.table import Table


@pytest.fixture
def jobs():
    return Table(
        {
            "user": ["a", "b", "a", "c", "b", "a"],
            "project": ["p1", "p1", "p2", "p2", "p1", "p2"],
            "hours": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            "nodes": [512, 1024, 512, 2048, 512, 4096],
        }
    )


class TestSingleKey:
    def test_size(self, jobs):
        sizes = jobs.group_by("user").size().sort_by("user")
        assert sizes["user"].tolist() == ["a", "b", "c"]
        assert sizes["count"].tolist() == [3, 2, 1]

    def test_sum(self, jobs):
        t = jobs.group_by("user").agg(hours="sum").sort_by("user")
        assert t["hours_sum"].tolist() == [10.0, 7.0, 4.0]

    def test_mean(self, jobs):
        t = jobs.group_by("user").agg(hours="mean").sort_by("user")
        assert t["hours_mean"].tolist() == pytest.approx([10 / 3, 3.5, 4.0])

    def test_min_max(self, jobs):
        t = jobs.group_by("user").agg({"hours": "min", "nodes": "max"}).sort_by("user")
        assert t["hours_min"].tolist() == [1.0, 2.0, 4.0]
        assert t["nodes_max"].tolist() == [4096, 1024, 2048]

    def test_median(self, jobs):
        t = jobs.group_by("user").agg(hours="median").sort_by("user")
        assert t["hours_median"].tolist() == [3.0, 3.5, 4.0]

    def test_std(self, jobs):
        t = jobs.group_by("user").agg(hours="std").sort_by("user")
        assert t["hours_std"].tolist() == pytest.approx(
            [np.std([1.0, 3.0, 6.0], ddof=1), np.std([2.0, 5.0], ddof=1), np.nan],
            nan_ok=True,
        )

    def test_std_singleton_group_is_nan(self, jobs):
        t = jobs.group_by("user").agg(hours="std").sort_by("user")
        assert np.isnan(t["hours_std"][2])  # user "c" has one row

    def test_std_large_offset_stays_accurate(self):
        # E[x^2]-E[x]^2 would lose everything at this offset.
        values = 1e9 + np.array([0.0, 1.0, 2.0, 3.0])
        t = Table({"k": ["g"] * 4, "v": values})
        agg = t.group_by("k").agg(v="std")
        assert agg["v_std"][0] == pytest.approx(np.std(values, ddof=1), rel=1e-12)

    def test_nancount(self):
        t = Table(
            {
                "k": ["a", "a", "a", "b", "b"],
                "v": [1.0, np.nan, 3.0, np.nan, np.nan],
            }
        )
        agg = t.group_by("k").agg(v="nancount").sort_by("k")
        assert agg["v_nancount"].tolist() == [2, 0]
        assert agg["count"].tolist() == [3, 2]
        assert agg["v_nancount"].dtype == np.int64

    def test_nancount_integer_column(self, jobs):
        agg = jobs.group_by("user").agg(nodes="nancount").sort_by("user")
        assert agg["nodes_nancount"].tolist() == [3, 2, 1]

    def test_numeric_key(self, jobs):
        t = jobs.group_by("nodes").agg(hours="sum").sort_by("nodes")
        assert t["nodes"].tolist() == [512, 1024, 2048, 4096]
        assert t["hours_sum"].tolist() == [9.0, 2.0, 4.0, 6.0]

    def test_n_groups(self, jobs):
        assert jobs.group_by("user").n_groups == 3

    def test_unknown_agg_rejected(self, jobs):
        with pytest.raises(ValueError, match="unknown aggregation"):
            jobs.group_by("user").agg(hours="mode")

    def test_string_column_agg_rejected(self, jobs):
        with pytest.raises(TypeError):
            jobs.group_by("user").agg(project="sum")

    def test_no_keys_rejected(self, jobs):
        with pytest.raises(ValueError):
            jobs.group_by()


class TestMultiKey:
    def test_group_count(self, jobs):
        t = jobs.group_by("user", "project").size()
        # distinct pairs: (a,p1) (a,p2) (b,p1) (c,p2)
        assert t.n_rows == 4

    def test_sums_per_pair(self, jobs):
        t = (
            jobs.group_by("user", "project")
            .agg(hours="sum")
            .sort_by("user", "project")
        )
        rows = {(r["user"], r["project"]): r["hours_sum"] for r in t.to_rows()}
        assert rows[("a", "p2")] == 9.0
        assert rows[("b", "p1")] == 7.0


class TestApplyAndGroups:
    def test_apply_returns_per_group(self, jobs):
        spans = jobs.group_by("user").apply(lambda t: float(t["hours"].max() - t["hours"].min()))
        assert len(spans) == 3

    def test_groups_iteration(self, jobs):
        seen = {}
        for key, sub in jobs.group_by("user").groups():
            seen[key["user"]] = sub.n_rows
        assert seen == {"a": 3, "b": 2, "c": 1}


class TestScale:
    def test_large_groupby_matches_bincount(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 100, size=20_000)
        values = rng.random(20_000)
        t = Table({"k": keys, "v": values})
        agg = t.group_by("k").agg(v="sum").sort_by("k")
        expected = np.bincount(keys, weights=values, minlength=100)
        assert agg["v_sum"].tolist() == pytest.approx(expected.tolist())


class TestOverflowFallback:
    def test_tuple_hash_path_matches_dense(self, jobs, monkeypatch):
        import repro.table.groupby as gb

        dense = jobs.group_by("user", "project").agg(hours="sum").sort_by("user", "project")
        monkeypatch.setattr(gb, "_MAX_DENSE_GROUPS", 1)
        sparse = jobs.group_by("user", "project").agg(hours="sum").sort_by("user", "project")
        assert sparse == dense
