"""Parser error paths of the CSV layer: malformed rows, type-inference
edge cases, and retry behaviour around transient read errors."""

import pytest

from repro.errors import ParseError
from repro.ingest import ParseReport, with_retry
from repro.table import Table, read_csv, write_csv
from repro.table.csvio import _infer


class TestStrictErrors:
    def test_ragged_row_raises_parse_error(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ParseError, match="expected 2 fields, got 1"):
            read_csv(path)

    def test_parse_error_is_value_error(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2,3\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_missing_file_raises_immediately(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_csv(tmp_path / "nope.csv")

    def test_empty_file_gives_empty_table(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        table = read_csv(path)
        assert table.n_rows == 0 and not table.column_names

    def test_header_only_gives_zero_rows(self, tmp_path):
        path = tmp_path / "hdr.csv"
        path.write_text("a,b\n")
        table = read_csv(path)
        assert table.n_rows == 0 and table.column_names == ["a", "b"]


class TestLenientQuarantine:
    def test_ragged_rows_quarantined(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\ngarbled\n3,4\n5,6,7\n")
        report = ParseReport()
        table = read_csv(path, report=report, source="log")
        assert table["a"].tolist() == [1, 3]
        assert report.counts() == {"log": 2}
        rows = {entry.row for entry in report.quarantined}
        assert rows == {3, 5}  # 1-based file lines

    def test_source_defaults_to_filename(self, tmp_path):
        path = tmp_path / "mylog.csv"
        path.write_text("a\n1\nx,y\n")
        report = ParseReport()
        read_csv(path, report=report)
        assert report.quarantined[0].source == "mylog.csv"

    def test_max_bad_rows_bound(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n" + "junk\n" * 5)
        with pytest.raises(ParseError, match="more than 2"):
            read_csv(path, report=ParseReport(max_bad_rows=2), source="log")


class TestTypeInference:
    def test_leading_zero_ids_stay_strings(self, tmp_path):
        table = Table({"msg_id": ["00010001", "00070002"], "n": [1, 2]})
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back["msg_id"].tolist() == ["00010001", "00070002"]
        assert back["n"].tolist() == [1, 2]

    def test_negative_ints_round_trip(self):
        assert _infer(["-1", "2"]) == [-1, 2]

    def test_negative_leading_zero_stays_string(self):
        assert _infer(["-01", "2"]) == ["-01", "2"]

    def test_mixed_int_float_becomes_float(self):
        assert _infer(["1", "2.5"]) == [1.0, 2.5]

    def test_plain_zero_is_int(self):
        assert _infer(["0", "10"]) == [0, 10]

    def test_non_numeric_stays_string(self):
        assert _infer(["1", "x"]) == ["1", "x"]


class TestRetry:
    def test_transient_oserror_retried(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        assert with_retry(flaky, retries=3, sleep=lambda _: None) == "ok"
        assert len(attempts) == 3

    def test_gives_up_after_retries(self):
        def always_fails():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            with_retry(always_fails, retries=2, sleep=lambda _: None)

    def test_permanent_error_not_retried(self):
        attempts = []

        def missing():
            attempts.append(1)
            raise FileNotFoundError("gone")

        with pytest.raises(FileNotFoundError):
            with_retry(missing, retries=5, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_backoff_doubles(self):
        delays = []

        def fail_then_ok():
            if len(delays) < 2:
                raise OSError("x")
            return 1

        with_retry(fail_then_ok, retries=3, base_delay=0.5, sleep=delays.append)
        assert delays == [0.5, 1.0]
