"""Parser error paths of the CSV layer: malformed rows, type-inference
edge cases, and retry behaviour around transient read errors."""

import pytest

from repro.errors import ParseError
from repro.ingest import ParseReport, with_retry
from repro.table import Table, read_csv, write_csv
from repro.table.csvio import _infer


class TestStrictErrors:
    def test_ragged_row_raises_parse_error(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ParseError, match="expected 2 fields, got 1"):
            read_csv(path)

    def test_parse_error_is_value_error(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2,3\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_missing_file_raises_immediately(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_csv(tmp_path / "nope.csv")

    def test_empty_file_gives_empty_table(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        table = read_csv(path)
        assert table.n_rows == 0 and not table.column_names

    def test_header_only_gives_zero_rows(self, tmp_path):
        path = tmp_path / "hdr.csv"
        path.write_text("a,b\n")
        table = read_csv(path)
        assert table.n_rows == 0 and table.column_names == ["a", "b"]


class TestLenientQuarantine:
    def test_ragged_rows_quarantined(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\ngarbled\n3,4\n5,6,7\n")
        report = ParseReport()
        table = read_csv(path, report=report, source="log")
        assert table["a"].tolist() == [1, 3]
        assert report.counts() == {"log": 2}
        rows = {entry.row for entry in report.quarantined}
        assert rows == {3, 5}  # 1-based file lines

    def test_source_defaults_to_filename(self, tmp_path):
        path = tmp_path / "mylog.csv"
        path.write_text("a\n1\nx,y\n")
        report = ParseReport()
        read_csv(path, report=report)
        assert report.quarantined[0].source == "mylog.csv"

    def test_max_bad_rows_bound(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n" + "junk\n" * 5)
        with pytest.raises(ParseError, match="more than 2"):
            read_csv(path, report=ParseReport(max_bad_rows=2), source="log")


class TestTypeInference:
    def test_leading_zero_ids_stay_strings(self, tmp_path):
        table = Table({"msg_id": ["00010001", "00070002"], "n": [1, 2]})
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back["msg_id"].tolist() == ["00010001", "00070002"]
        assert back["n"].tolist() == [1, 2]

    def test_negative_ints_round_trip(self):
        assert _infer(["-1", "2"]) == [-1, 2]

    def test_negative_leading_zero_stays_string(self):
        assert _infer(["-01", "2"]) == ["-01", "2"]

    def test_mixed_int_float_becomes_float(self):
        assert _infer(["1", "2.5"]) == [1.0, 2.5]

    def test_plain_zero_is_int(self):
        assert _infer(["0", "10"]) == [0, 10]

    def test_non_numeric_stays_string(self):
        assert _infer(["1", "x"]) == ["1", "x"]


class TestRetry:
    def test_transient_oserror_retried(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        assert with_retry(flaky, retries=3, sleep=lambda _: None) == "ok"
        assert len(attempts) == 3

    def test_gives_up_after_retries(self):
        def always_fails():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            with_retry(always_fails, retries=2, sleep=lambda _: None)

    def test_permanent_error_not_retried(self):
        attempts = []

        def missing():
            attempts.append(1)
            raise FileNotFoundError("gone")

        with pytest.raises(FileNotFoundError):
            with_retry(missing, retries=5, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_backoff_doubles(self):
        delays = []

        def fail_then_ok():
            if len(delays) < 2:
                raise OSError("x")
            return 1

        with_retry(fail_then_ok, retries=3, base_delay=0.5, sleep=delays.append)
        assert delays == [0.5, 1.0]


class TestRoundTripInference:
    """Inference is only applied when the text regenerates exactly."""

    def test_explicit_plus_sign_stays_string(self):
        assert _infer(["+3", "4"]) == ["+3", "4"]

    def test_scientific_notation_stays_string(self):
        assert _infer(["1e3", "2"]) == ["1e3", "2"]

    def test_whitespace_variants_stay_strings(self):
        assert _infer([" 3", "4"]) == [" 3", "4"]
        assert _infer(["3 ", "4"]) == ["3 ", "4"]
        assert _infer(["\t7"]) == ["\t7"]

    def test_non_canonical_float_stays_string(self):
        assert _infer(["2.50", "1.0"]) == ["2.50", "1.0"]
        assert _infer([".5"]) == [".5"]

    def test_canonical_floats_convert(self):
        assert _infer(["2.5", "-0.25"]) == [2.5, -0.25]

    def test_nan_and_inf_convert(self):
        out = _infer(["nan", "inf", "1.5"])
        assert out[1] == float("inf") and out[2] == 1.5
        assert out[0] != out[0]  # NaN

    def test_int64_boundaries_convert(self):
        big = ["9223372036854775807", "-9223372036854775808"]
        assert _infer(big) == [2**63 - 1, -(2**63)]

    def test_beyond_int64_stays_string(self):
        assert _infer(["99999999999999999999"]) == ["99999999999999999999"]

    def test_empty_cells_stay_strings(self):
        assert _infer(["", "1"]) == ["", "1"]

    def test_empty_column_stays_empty(self):
        assert _infer([]) == []

    def test_vectorized_read_matches_reference_parse(self, tmp_path):
        """read_csv's bulk path must equal a per-cell reference parse."""
        path = tmp_path / "mixed.csv"
        path.write_text(
            "id,score,label,msg\n"
            "1,0.5,alpha,00010001\n"
            "2,1.25,beta,00070002\n"
            "3,-2.0,gamma,00010001\n"
        )
        table = read_csv(path)
        assert table["id"].tolist() == [1, 2, 3]
        assert table["score"].tolist() == [0.5, 1.25, -2.0]
        assert table["label"].tolist() == ["alpha", "beta", "gamma"]
        assert table["msg"].tolist() == ["00010001", "00070002", "00010001"]

    def test_quoted_fields_with_commas_survive(self, tmp_path):
        path = tmp_path / "quoted.csv"
        path.write_text('a,b\n"x,y",1\nplain,2\n')
        table = read_csv(path)
        assert table["a"].tolist() == ["x,y", "plain"]
        assert table["b"].tolist() == [1, 2]


class TestDialectEdges:
    """Line endings and quoting shapes the byte-offset fast path handles."""

    def test_crlf_and_lf_parse_identically(self, tmp_path):
        crlf, lf = tmp_path / "crlf.csv", tmp_path / "lf.csv"
        crlf.write_bytes(b"a,b\r\n1,x\r\n2,y\r\n")
        lf.write_bytes(b"a,b\n1,x\n2,y\n")
        for column in ("a", "b"):
            assert read_csv(crlf)[column].tolist() == read_csv(lf)[column].tolist()

    def test_bare_cr_and_mixed_endings_normalize(self, tmp_path):
        bare = tmp_path / "cr.csv"
        bare.write_bytes(b"a,b\r1,x\r2,y\r")
        mixed = tmp_path / "mixed.csv"
        mixed.write_bytes(b"a,b\r\n1,x\n2,y\r\n")
        for path in (bare, mixed):
            table = read_csv(path)
            assert table["a"].tolist() == [1, 2]
            assert table["b"].tolist() == ["x", "y"]

    def test_missing_trailing_newline(self, tmp_path):
        path = tmp_path / "trunc.csv"
        path.write_bytes(b"a,b\n1,x\n2,y")
        assert read_csv(path)["a"].tolist() == [1, 2]

    def test_quoted_field_spanning_lines(self, tmp_path):
        path = tmp_path / "span.csv"
        path.write_bytes(b'a,b\n"first\nsecond",1\nplain,2\n')
        table = read_csv(path)
        assert table["a"].tolist() == ["first\nsecond", "plain"]
        assert table["b"].tolist() == [1, 2]

    def test_escaped_quotes_and_crlf_inside_quoted_field(self, tmp_path):
        path = tmp_path / "escaped.csv"
        path.write_bytes(b'a,b\r\n"say ""hi""",1\r\n"x\r\ny",2\r\n')
        table = read_csv(path)
        assert table["a"].tolist() == ['say "hi"', "x\r\ny"]
        assert table["b"].tolist() == [1, 2]

    def test_quoted_rows_keep_row_order(self, tmp_path):
        path = tmp_path / "order.csv"
        path.write_bytes(b'a,b\n1,u\n"q,uoted",v\n3,w\n"z",x\n')
        table = read_csv(path)
        assert table["a"].tolist() == ["1", "q,uoted", "3", "z"]
        assert table["b"].tolist() == ["u", "v", "w", "x"]

    def test_lenient_quoted_bad_row_keeps_original_text(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_bytes(b'a,b\n"x,y"\n1,2\n')
        report = ParseReport()
        table = read_csv(path, report=report)
        assert table["a"].tolist() == [1]
        assert [q.raw for q in report.quarantined] == ['"x,y"']

    def test_quarantine_with_quoted_and_dropped_rows_interleaved(self, tmp_path):
        path = tmp_path / "mess.csv"
        path.write_bytes(b'a,b\r\n1,u\r\nbad\r\n"q,q",v\r\n\r\n4,w\r\n')
        report = ParseReport()
        table = read_csv(path, report=report)
        assert table["a"].tolist() == ["1", "q,q", "4"]
        assert table["b"].tolist() == ["u", "v", "w"]
        assert [q.row for q in report.quarantined] == [3, 5]
