"""Property-based tests (hypothesis) for the table substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table import Table
from repro.table.column import factorize

keys = st.lists(st.sampled_from(["u1", "u2", "u3", "u4"]), min_size=1, max_size=60)
values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=60
)


@given(keys=keys, data=st.data())
def test_groupby_sum_partitions_total(keys, data):
    """Group sums over any key partition must add up to the global sum."""
    vals = data.draw(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=len(keys),
            max_size=len(keys),
        )
    )
    t = Table({"k": keys, "v": vals})
    agg = t.group_by("k").agg(v="sum")
    assert np.isclose(agg["v_sum"].sum(), np.sum(vals))
    assert agg["count"].sum() == len(keys)


@given(keys=keys)
def test_value_counts_conserves_rows(keys):
    t = Table({"k": keys})
    vc = t.value_counts("k")
    assert vc["count"].sum() == len(keys)
    assert set(vc["k"]) == set(keys)


@given(vals=values)
def test_sort_is_permutation_and_ordered(vals):
    t = Table({"v": vals})
    s = t.sort_by("v")
    assert sorted(vals) == s["v"].tolist()


@given(vals=values)
def test_filter_take_consistency(vals):
    """filter(mask) must equal take(nonzero(mask))."""
    t = Table({"v": vals})
    mask = t["v"] > 0
    assert t.filter(mask) == t.take(np.nonzero(mask)[0])


@given(keys=keys)
def test_factorize_roundtrip(keys):
    codes, uniques = factorize(np.array(keys, dtype=object))
    assert [uniques[c] for c in codes] == keys


@settings(max_examples=25)
@given(
    left_keys=st.lists(st.integers(0, 5), min_size=0, max_size=20),
    right_keys=st.lists(st.integers(0, 5), min_size=0, max_size=20),
)
def test_inner_join_row_count_matches_product(left_keys, right_keys):
    """Inner-join cardinality = sum over keys of count_left * count_right."""
    left = Table({"k": np.array(left_keys, dtype=np.int64)})
    right = Table(
        {
            "k": np.array(right_keys, dtype=np.int64),
            "x": np.arange(len(right_keys)),
        }
    )
    joined = left.join(right, on="k")
    expected = sum(
        left_keys.count(k) * right_keys.count(k) for k in set(left_keys)
    )
    assert joined.n_rows == expected


@given(rows=st.lists(st.integers(0, 100), min_size=1, max_size=50))
def test_concat_then_filter_equals_filter_then_concat(rows):
    t = Table({"v": rows})
    mask = t["v"] % 2 == 0
    both = Table.concat([t, t])
    big_mask = np.concatenate([mask, mask])
    assert both.filter(big_mask) == Table.concat([t.filter(mask), t.filter(mask)])
