"""Atomic write helper: all-or-nothing file replacement."""

import pytest

from repro.util.atomic import atomic_open, atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_write_text_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "out.txt"
        assert atomic_write_text(target, "hello\n") == target
        assert target.read_text() == "hello\n"

    def test_write_bytes(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_residue_on_success(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "data")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestFailureLeavesTargetUntouched:
    def test_exception_mid_write_preserves_old_file(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("intact")
        with pytest.raises(RuntimeError):
            with atomic_open(target) as handle:
                handle.write("half-writ")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "intact"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_exception_with_no_preexisting_file(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_open(target) as handle:
                handle.write("partial")
                raise RuntimeError("crash")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []


class TestModeValidation:
    @pytest.mark.parametrize("mode", ["a", "ab", "r", "r+", "w+"])
    def test_non_whole_file_modes_rejected(self, tmp_path, mode):
        with pytest.raises(ValueError, match="write mode"):
            with atomic_open(tmp_path / "out.txt", mode):
                pass

    def test_binary_mode_yields_binary_handle(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_open(target, "wb") as handle:
            handle.write(b"bytes")
        assert target.read_bytes() == b"bytes"
