"""Unit tests for the shared deadline utilities (``repro.util.deadline``).

This module was extracted from the experiment engine's private SIGALRM
machinery so the serve daemon could reuse it; these tests pin its
contract independently of either caller.
"""

import signal
import threading
import time

import pytest

from repro.util.deadline import Deadline, DeadlineExceeded, deadline


class TestDeadlineContext:
    def test_fires_on_overrun(self):
        with pytest.raises(DeadlineExceeded):
            with deadline(0.05):
                time.sleep(5.0)

    def test_noop_within_budget(self):
        with deadline(5.0):
            value = 1 + 1
        assert value == 2

    def test_none_disables_enforcement(self):
        with deadline(None):
            time.sleep(0.01)

    def test_restores_previous_handler_and_timer(self):
        previous = signal.getsignal(signal.SIGALRM)
        with deadline(5.0):
            pass
        assert signal.getsignal(signal.SIGALRM) is previous
        # The itimer must be fully disarmed afterwards.
        remaining, _ = signal.getitimer(signal.ITIMER_REAL)
        assert remaining == 0.0

    def test_restores_handler_after_expiry(self):
        previous = signal.getsignal(signal.SIGALRM)
        with pytest.raises(DeadlineExceeded):
            with deadline(0.05):
                time.sleep(5.0)
        assert signal.getsignal(signal.SIGALRM) is previous

    def test_off_main_thread_is_a_noop(self):
        # SIGALRM can only be armed from the main thread; elsewhere the
        # context must degrade to no enforcement instead of crashing.
        outcome = {}

        def body():
            try:
                with deadline(0.05):
                    time.sleep(0.2)
                outcome["ok"] = True
            except Exception as error:  # pragma: no cover - failure path
                outcome["error"] = error

        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
        assert outcome == {"ok": True}

    def test_not_a_repro_error(self):
        from repro.errors import ReproError

        # Engine and server both map timeouts specially; a timeout
        # must never be swallowed by a generic ReproError handler.
        assert not issubclass(DeadlineExceeded, ReproError)


class TestDeadlineClock:
    def test_after_sets_budget_and_remaining(self):
        d = Deadline.after(10.0)
        assert d.budget == 10.0
        assert 9.0 < d.remaining() <= 10.0
        assert not d.expired

    def test_expired_deadline_clamps_remaining_to_zero(self):
        d = Deadline(expires_at=time.monotonic() - 1.0, budget=0.5)
        assert d.remaining() == 0.0
        assert d.expired
