"""Parallel experiment engine: ordering, isolation, parity, timings."""

import json

import pytest

from repro.core.report import render_report
from repro.dataset import MiraDataset
from repro.experiments import run_suite
from repro.experiments.base import _REGISTRY, register
from repro.experiments.engine import bench_record, timing_lines, write_bench_json


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    import os

    os.environ.setdefault(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("engine-cache"))
    )
    return MiraDataset.synthesize(n_days=5.0, seed=42)


@pytest.fixture()
def crashing_experiment():
    """Temporarily register an experiment that always crashes."""

    @register("zz_crash", "always crashes")
    def _run(dataset):
        raise RuntimeError("kaboom")

    yield "zz_crash"
    _REGISTRY.pop("zz_crash")


@pytest.fixture()
def starved_experiment():
    """Temporarily register an experiment that raises an expected error."""

    @register("zz_starved", "always starved")
    def _run(dataset):
        raise ValueError("not enough samples")

    yield "zz_starved"
    _REGISTRY.pop("zz_starved")


class TestOrderingAndIsolation:
    def test_outcomes_preserve_requested_order(self, dataset):
        ids = ["e05", "e01", "e03"]
        suite = run_suite(dataset, ids, jobs=2)
        assert [o.experiment_id for o in suite.outcomes] == ids

    def test_crash_is_isolated(self, dataset, crashing_experiment):
        suite = run_suite(dataset, ["e01", crashing_experiment, "e02"], jobs=1)
        statuses = {o.experiment_id: o.status for o in suite.outcomes}
        assert statuses == {"e01": "ok", crashing_experiment: "error", "e02": "ok"}
        crashed = suite.outcome(crashing_experiment)
        assert crashed.message == "RuntimeError('kaboom')"
        assert crashed.result is None

    def test_expected_errors_become_skips(self, dataset, starved_experiment):
        suite = run_suite(dataset, [starved_experiment], jobs=1)
        outcome = suite.outcomes[0]
        assert outcome.status == "skipped"
        assert outcome.message == "not enough samples"

    def test_unknown_experiment_is_isolated_too(self, dataset):
        suite = run_suite(dataset, ["e01", "nope"], jobs=1)
        assert suite.outcome("nope").status == "error"
        assert suite.outcome("e01").status == "ok"

    def test_jobs_validation(self, dataset):
        with pytest.raises(ValueError, match="jobs must be"):
            run_suite(dataset, ["e01"], jobs=0)


class TestParallelParity:
    def test_parallel_report_text_is_byte_identical(self, dataset):
        ids = ["e01", "e02", "e03", "e04", "e05"]
        sequential = render_report(dataset, suite=run_suite(dataset, ids, jobs=1))
        parallel = render_report(dataset, suite=run_suite(dataset, ids, jobs=3))
        assert sequential == parallel

    def test_parallel_crash_parity(self, dataset, crashing_experiment):
        ids = ["e01", crashing_experiment, "e02"]
        sequential = render_report(dataset, suite=run_suite(dataset, ids, jobs=1))
        parallel = render_report(dataset, suite=run_suite(dataset, ids, jobs=2))
        assert sequential == parallel
        assert "failed experiment zz_crash: error: RuntimeError('kaboom')" in parallel

    def test_render_report_default_matches_engine_path(self, dataset):
        ids = ["e01", "e13"]
        assert render_report(dataset, experiment_ids=ids) == render_report(
            dataset, suite=run_suite(dataset, ids, jobs=1)
        )


class TestTimingsAndBench:
    def test_outcomes_carry_timings(self, dataset):
        suite = run_suite(dataset, ["e01", "e02"], jobs=1)
        for outcome in suite.outcomes:
            assert outcome.seconds >= 0.0
            assert outcome.max_rss_kb > 0
        assert suite.total_seconds >= sum(o.seconds for o in suite.outcomes) * 0.5

    def test_timings_section_is_flag_gated(self, dataset):
        suite = run_suite(dataset, ["e01"], jobs=1)
        plain = render_report(dataset, suite=suite)
        timed = render_report(dataset, suite=suite, timings=True)
        assert "== TIMINGS ==" not in plain
        assert "== TIMINGS ==" in timed
        assert "e01:" in "\n".join(timing_lines(suite))

    def test_bench_record_and_json_round_trip(self, dataset, tmp_path):
        suite = run_suite(dataset, ["e01", "e02"], jobs=2)
        record = bench_record(
            suite, dataset, stages={"load_cold_s": 1.5, "load_warm_s": 0.1}
        )
        path = write_bench_json(tmp_path / "BENCH_pipeline.json", record)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == 1
        assert loaded["suite"]["jobs"] == 2
        assert loaded["dataset"]["n_jobs"] == dataset.jobs.n_rows
        assert loaded["stages"]["load_cold_s"] == 1.5
        assert [e["id"] for e in loaded["experiments"]] == ["e01", "e02"]
        assert all(e["status"] == "ok" for e in loaded["experiments"])
