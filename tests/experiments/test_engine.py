"""Parallel experiment engine: ordering, isolation, parity, timings."""

import json

import pytest

from repro.core.report import render_report
from repro.dataset import MiraDataset
from repro.experiments import run_suite
from repro.experiments.base import _REGISTRY, register
from repro.experiments.engine import bench_record, timing_lines, write_bench_json
from repro.faults import process_faults


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    import os

    os.environ.setdefault(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("engine-cache"))
    )
    return MiraDataset.synthesize(n_days=5.0, seed=42)


@pytest.fixture()
def crashing_experiment():
    """Temporarily register an experiment that always crashes."""

    @register("zz_crash", "always crashes")
    def _run(dataset):
        raise RuntimeError("kaboom")

    yield "zz_crash"
    _REGISTRY.pop("zz_crash")


@pytest.fixture()
def starved_experiment():
    """Temporarily register an experiment that raises an expected error."""

    @register("zz_starved", "always starved")
    def _run(dataset):
        raise ValueError("not enough samples")

    yield "zz_starved"
    _REGISTRY.pop("zz_starved")


class TestOrderingAndIsolation:
    def test_outcomes_preserve_requested_order(self, dataset):
        ids = ["e05", "e01", "e03"]
        suite = run_suite(dataset, ids, jobs=2)
        assert [o.experiment_id for o in suite.outcomes] == ids

    def test_crash_is_isolated(self, dataset, crashing_experiment):
        suite = run_suite(dataset, ["e01", crashing_experiment, "e02"], jobs=1)
        statuses = {o.experiment_id: o.status for o in suite.outcomes}
        assert statuses == {"e01": "ok", crashing_experiment: "error", "e02": "ok"}
        crashed = suite.outcome(crashing_experiment)
        assert crashed.message == "RuntimeError('kaboom')"
        assert crashed.result is None

    def test_expected_errors_become_skips(self, dataset, starved_experiment):
        suite = run_suite(dataset, [starved_experiment], jobs=1)
        outcome = suite.outcomes[0]
        assert outcome.status == "skipped"
        assert outcome.message == "not enough samples"

    def test_unknown_experiment_is_isolated_too(self, dataset):
        suite = run_suite(dataset, ["e01", "nope"], jobs=1)
        assert suite.outcome("nope").status == "error"
        assert suite.outcome("e01").status == "ok"

    def test_jobs_validation(self, dataset):
        with pytest.raises(ValueError, match="jobs must be"):
            run_suite(dataset, ["e01"], jobs=0)

    def test_duplicate_ids_rejected(self, dataset):
        with pytest.raises(ValueError, match="duplicate experiment id"):
            run_suite(dataset, ["e01", "e02", "e01"], jobs=1)

    def test_retries_validation(self, dataset):
        with pytest.raises(ValueError, match="retries must be"):
            run_suite(dataset, ["e01"], jobs=1, retries=-1)

    def test_outcome_lookup(self, dataset):
        suite = run_suite(dataset, ["e01", "e02"], jobs=1)
        assert suite.outcome("e02").experiment_id == "e02"
        with pytest.raises(KeyError, match="no outcome"):
            suite.outcome("e99")


class TestSupervision:
    """Timeout, worker-death re-dispatch, and replay — driven by the
    deterministic process-fault injectors."""

    def test_timeout_becomes_error_in_process(self, dataset):
        with process_faults("slow:e01:30"):
            suite = run_suite(dataset, ["e01"], jobs=1, timeout=0.5)
        outcome = suite.outcome("e01")
        assert outcome.status == "error"
        assert outcome.message == "timeout: exceeded 0.5s"
        assert not suite.interrupted

    def test_timeout_becomes_error_in_pool(self, dataset):
        with process_faults("slow:e01:30"):
            suite = run_suite(
                dataset, ["e01", "e02"], jobs=2, timeout=0.5, backoff=0.01
            )
        assert suite.outcome("e01").status == "error"
        assert "timeout" in suite.outcome("e01").message
        assert suite.outcome("e02").status == "ok"

    def test_worker_kill_redispatches_only_lost_work(self, dataset):
        journaled = []
        with process_faults("kill_worker:e03"):
            suite = run_suite(
                dataset,
                ["e01", "e03"],
                jobs=2,
                retries=2,
                backoff=0.01,
                on_outcome=journaled.append,
            )
        outcome = suite.outcome("e03")
        assert outcome.status == "ok"
        assert outcome.attempt == 2  # first dispatch died, retry survived
        assert suite.outcome("e01").status == "ok"
        # each experiment produced exactly one outcome — no full rerun
        ids = [o.experiment_id for o in journaled]
        assert sorted(ids) == ["e01", "e03"]

    def test_retry_budget_exhaustion_is_an_error_outcome(self, dataset):
        with process_faults("kill_worker:e03:9"):
            suite = run_suite(
                dataset, ["e01", "e03"], jobs=2, retries=1, backoff=0.01
            )
        outcome = suite.outcome("e03")
        assert outcome.status == "error"
        assert "worker lost" in outcome.message
        assert outcome.attempt == 2  # 1 + retries dispatches, all died
        assert suite.outcome("e01").status == "ok"

    def test_hang_trips_stall_detector_then_exhausts(self, dataset):
        # A hang blocks SIGALRM, so only the supervisor-side stall
        # detector can reclaim the worker.
        with process_faults("hang:e01:120"):
            suite = run_suite(
                dataset,
                ["e01", "e02"],
                jobs=2,
                timeout=0.3,
                retries=1,
                backoff=0.01,
            )
        outcome = suite.outcome("e01")
        assert outcome.status == "error"
        assert "worker lost" in outcome.message
        assert suite.outcome("e02").status == "ok"

    def test_completed_outcomes_replay_without_rerun(self, dataset):
        first = run_suite(dataset, ["e01", "e02"], jobs=1)
        fresh = []
        replayed = run_suite(
            dataset,
            ["e01", "e02"],
            jobs=1,
            completed={o.experiment_id: o for o in first.outcomes},
            on_outcome=fresh.append,
        )
        assert fresh == []  # nothing recomputed
        assert [o.experiment_id for o in replayed.outcomes] == ["e01", "e02"]
        assert replayed.outcome("e01") is first.outcome("e01")

    def test_partial_replay_runs_only_missing(self, dataset):
        first = run_suite(dataset, ["e01"], jobs=1)
        fresh = []
        suite = run_suite(
            dataset,
            ["e01", "e02"],
            jobs=1,
            completed={o.experiment_id: o for o in first.outcomes},
            on_outcome=fresh.append,
        )
        assert [o.experiment_id for o in fresh] == ["e02"]
        assert [o.experiment_id for o in suite.outcomes] == ["e01", "e02"]


class TestParallelParity:
    def test_parallel_report_text_is_byte_identical(self, dataset):
        ids = ["e01", "e02", "e03", "e04", "e05"]
        sequential = render_report(dataset, suite=run_suite(dataset, ids, jobs=1))
        parallel = render_report(dataset, suite=run_suite(dataset, ids, jobs=3))
        assert sequential == parallel

    def test_parallel_crash_parity(self, dataset, crashing_experiment):
        ids = ["e01", crashing_experiment, "e02"]
        sequential = render_report(dataset, suite=run_suite(dataset, ids, jobs=1))
        parallel = render_report(dataset, suite=run_suite(dataset, ids, jobs=2))
        assert sequential == parallel
        assert "failed experiment zz_crash: error: RuntimeError('kaboom')" in parallel

    def test_render_report_default_matches_engine_path(self, dataset):
        ids = ["e01", "e13"]
        assert render_report(dataset, experiment_ids=ids) == render_report(
            dataset, suite=run_suite(dataset, ids, jobs=1)
        )


class TestTimingsAndBench:
    def test_outcomes_carry_timings(self, dataset):
        suite = run_suite(dataset, ["e01", "e02"], jobs=1)
        for outcome in suite.outcomes:
            assert outcome.seconds >= 0.0
            assert outcome.max_rss_kb > 0
        assert suite.total_seconds >= sum(o.seconds for o in suite.outcomes) * 0.5

    def test_timings_section_is_flag_gated(self, dataset):
        suite = run_suite(dataset, ["e01"], jobs=1)
        plain = render_report(dataset, suite=suite)
        timed = render_report(dataset, suite=suite, timings=True)
        assert "== TIMINGS ==" not in plain
        assert "== TIMINGS ==" in timed
        assert "e01:" in "\n".join(timing_lines(suite))

    def test_bench_record_and_json_round_trip(self, dataset, tmp_path):
        suite = run_suite(dataset, ["e01", "e02"], jobs=2)
        record = bench_record(
            suite, dataset, stages={"load_cold_s": 1.5, "load_warm_s": 0.1}
        )
        path = write_bench_json(tmp_path / "BENCH_pipeline.json", record)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == 1
        assert loaded["suite"]["jobs"] == 2
        assert loaded["dataset"]["n_jobs"] == dataset.jobs.n_rows
        assert loaded["stages"]["load_cold_s"] == 1.5
        assert [e["id"] for e in loaded["experiments"]] == ["e01", "e02"]
        assert all(e["status"] == "ok" for e in loaded["experiments"])


class TestPickleProbe:
    """_can_pickle must be O(1): it probes ``pickle_probe()`` when the
    object offers one instead of serializing the full dataset."""

    def test_dataset_probe_is_tiny(self, dataset):
        import pickle

        probe = dataset.pickle_probe()
        assert len(pickle.dumps(probe)) < 64 * 1024
        assert len(pickle.dumps(probe)) < len(pickle.dumps(dataset)) / 4

    def test_can_pickle_accepts_dataset(self, dataset):
        from repro.experiments.engine import _can_pickle

        assert _can_pickle(dataset)
        assert _can_pickle({"plain": [1, 2, 3]})

    def test_can_pickle_rejects_unpicklable(self):
        from repro.experiments.engine import _can_pickle

        assert not _can_pickle(lambda: None)

        class Liar:
            def pickle_probe(self):
                return lambda: None  # probe itself unpicklable

        assert not _can_pickle(Liar())

    def test_null_writer_consumes_without_buffering(self):
        from repro.experiments.engine import _NullWriter

        writer = _NullWriter()
        assert writer.write(b"xyz") == 3
        assert not hasattr(writer, "getvalue")
