"""End-to-end chaos drill (the PR's acceptance scenario).

``repro-gen`` → ``repro-chaos`` (row corruption + Darshan dropout) →
``repro-report --lenient`` must exit 0, render every non-degraded
experiment, and list quarantine counts and degraded experiments in the
failure section — while strict mode fails deterministically on the same
corrupted dataset.
"""

import pytest

from repro.cli import main_chaos, main_gen, main_report, main_validate
from repro.dataset import MiraDataset
from repro.errors import DatasetError, ParseError, QuarantineOverflowError


@pytest.fixture(scope="module")
def corrupted(tmp_path_factory):
    """One generated-then-corrupted dataset shared by the drill tests."""
    directory = tmp_path_factory.mktemp("chaos") / "ds"
    assert main_gen([str(directory), "--days", "10", "--seed", "3"]) == 0
    rc = main_chaos(
        [
            str(directory),
            "--faults",
            "truncate_rows",
            "unknown_severity",
            "negative_timestamps",
            "duplicate_rows",
            "drop_darshan",
            "--seed",
            "7",
            "--rate",
            "0.02",
        ]
    )
    assert rc == 0
    return directory


class TestChaosCli:
    def test_list_faults(self, capsys):
        assert main_chaos(["--list"]) == 0
        out = capsys.readouterr().out
        assert "drop_darshan" in out and "truncate_rows" in out

    def test_chaos_reports_each_fault(self, corrupted, capsys):
        # fixture already ran; rerun on a missing dir for the error path
        assert main_chaos([str(corrupted / "nope")]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestStrictFailsDeterministically:
    def test_strict_load_raises(self, corrupted):
        with pytest.raises((ParseError, DatasetError)):
            MiraDataset.load(corrupted)

    def test_strict_report_exits_1(self, corrupted, capsys):
        assert main_report(["--dataset", str(corrupted)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_strict_analyze_exits_1(self, corrupted, capsys):
        from repro.cli import main_analyze

        assert main_analyze(["e01", "--dataset", str(corrupted)]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestLenientSurvives:
    def test_report_exits_0_and_lists_damage(self, corrupted, capsys):
        rc = main_report(["--dataset", str(corrupted), "--lenient"])
        out = capsys.readouterr().out
        assert rc == 0
        # failure section lists quarantined-row counts per source
        assert "== INGESTION & FAILURES ==" in out
        assert "quarantined[ras]:" in out
        assert "quarantined[jobs]:" in out
        assert "degraded[io]: missing io.csv" in out
        # the I/O experiment degrades with an explanatory note
        assert "degraded experiment e15" in out
        # non-degraded experiments still render
        for eid in ("E01", "E02", "E05", "E09", "E13"):
            assert f"== {eid}:" in out

    def test_lenient_load_preserves_good_rows(self, corrupted):
        clean = MiraDataset.synthesize(n_days=10.0, seed=3)
        dirty = MiraDataset.load(corrupted, lenient=True)
        assert dirty.ingestion is not None
        assert dirty.ingestion.n_quarantined > 0
        # most of the data survives the 2% corruption
        assert dirty.ras.n_rows > 0.9 * clean.ras.n_rows
        assert dirty.jobs.n_rows == clean.jobs.n_rows  # dups dropped exactly
        assert dirty.io.n_rows == 0  # dropped source degrades to empty

    def test_lenient_validate_exits_0(self, corrupted, capsys):
        assert main_validate([str(corrupted), "--lenient"]) == 0
        out = capsys.readouterr().out
        assert "source:io: degraded" in out

    def test_max_bad_rows_aborts_lenient_load(self, corrupted):
        with pytest.raises(QuarantineOverflowError):
            MiraDataset.load(corrupted, lenient=True, max_bad_rows=1)

    def test_max_bad_rows_cli(self, corrupted, capsys):
        rc = main_report(
            ["--dataset", str(corrupted), "--lenient", "--max-bad-rows", "1"]
        )
        assert rc == 1
        assert "INVALID" in capsys.readouterr().out


class TestValidateSynthesisParity:
    def test_validate_synthesizes_without_dataset(self, capsys):
        assert main_validate(["--days", "4", "--seed", "6"]) == 0
        assert "OK:" in capsys.readouterr().out
