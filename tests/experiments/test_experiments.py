"""Integration tests for the experiment suite.

All experiments run against one shared 120-day dataset (module-scoped);
assertions pin the paper's *shape* claims, not absolute counts.
"""

import numpy as np
import pytest

from repro.dataset import MiraDataset
from repro.experiments import ExperimentResult, all_experiments, get_experiment, run_experiment


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=120.0, seed=101)


class TestFramework:
    def test_all_experiments_registered(self):
        ids = list(all_experiments())
        # e01..e16 reconstruct the paper; e17..e22 are extensions
        # (e22 compares the findings across trace backends).
        assert ids == [f"e{i:02d}" for i in range(1, 23)]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("e99")

    def test_result_text_rendering(self, dataset):
        result = run_experiment("e01", dataset)
        text = result.to_text()
        assert "E01" in text and "overview" in text

    def test_all_experiments_run(self, dataset):
        for experiment_id in all_experiments():
            result = run_experiment(experiment_id, dataset)
            assert isinstance(result, ExperimentResult)
            assert result.experiment_id == experiment_id
            assert result.tables


class TestE01Overview:
    def test_totals_consistent(self, dataset):
        result = run_experiment("e01", dataset)
        assert result.metrics["n_jobs"] == dataset.jobs.n_rows
        assert 0.3 < result.metrics["utilization"] < 0.95


class TestE02ExitStatus:
    def test_zero_dominates(self, dataset):
        result = run_experiment("e02", dataset)
        per_status = result.tables["per_status"]
        assert per_status.row(0)["exit_status"] == 0
        assert 0.1 < result.metrics["failure_rate"] < 0.45


class TestE03Attribution:
    def test_user_share_matches_paper_band(self, dataset):
        result = run_experiment("e03", dataset)
        assert result.metrics["user_share"] > 0.97
        assert result.metrics["system_share"] < 0.03

    def test_join_close_to_ground_truth(self, dataset):
        result = run_experiment("e03", dataset)
        breakdown = result.tables["breakdown"]
        joined = {
            (r["source"], r["cause"]): r["n_failures"] for r in breakdown.to_rows()
        }
        truth_system = joined[("ground_truth", "system")]
        ras_system = joined[("ras_join", "system")]
        assert abs(ras_system - truth_system) <= max(3, 0.5 * truth_system)


class TestE04Distributions:
    def test_majority_of_families_match(self, dataset):
        result = run_experiment("e04", dataset)
        assert result.metrics["families_checked"] == 4
        # At 120-day scale sampling noise can flip one family.
        assert result.metrics["families_matching_paper"] >= 3

    def test_fit_table_schema(self, dataset):
        fits = run_experiment("e04", dataset).tables["fits"]
        assert set(fits["family"]) == {"segfault", "abort", "app_error", "config"}
        assert (fits["ks_statistic"] < 0.2).all()


class TestE05Scale:
    def test_rate_grows_with_scale(self, dataset):
        result = run_experiment("e05", dataset)
        assert result.metrics["large_over_small"] > 1.2
        assert result.metrics["spearman_size_vs_failure"] > 0


class TestE06CoreHours:
    def test_rate_grows_with_corehours(self, dataset):
        result = run_experiment("e06", dataset)
        bins = result.tables["by_corehours"]
        assert bins["failure_rate"][-1] > bins["failure_rate"][0]
        assert 0.05 < result.metrics["wasted_share"] < 0.8


class TestE07Users:
    def test_concentration(self, dataset):
        result = run_experiment("e07", dataset)
        assert result.metrics["user_top10pct_share"] > 0.5
        assert result.metrics["user_gini"] > 0.6
        top = result.tables["top_users"]
        assert (top["n_failed"][:-1] >= top["n_failed"][1:]).all()


class TestE08Structure:
    def test_multi_task_fails_more(self, dataset):
        result = run_experiment("e08", dataset)
        assert result.metrics["multi_over_single_rate"] > 1.1


class TestE09Ras:
    def test_composition(self, dataset):
        result = run_experiment("e09", dataset)
        assert result.metrics["info_share"] > 0.5
        assert result.metrics["fatal_share"] < 0.15
        by_component = result.tables["by_component"]
        assert by_component["total"].sum() == dataset.ras.n_rows


class TestE10Temporal:
    def test_human_cycles(self, dataset):
        result = run_experiment("e10", dataset)
        assert result.metrics["day_night_ratio"] > 1.2
        assert result.metrics["weekday_weekend_ratio"] > 1.1
        monthly = result.tables["monthly"]
        assert monthly["jobs"].sum() == dataset.jobs.n_rows


class TestE11Locality:
    def test_strong_locality(self, dataset):
        result = run_experiment("e11", dataset)
        assert result.metrics["gini"] > 0.5
        assert result.metrics["top10pct_share"] > 0.3
        heatmap = result.tables["heatmap"]
        assert heatmap.n_rows == dataset.spec.n_midplanes


class TestE12Filtering:
    def test_substantial_reduction(self, dataset):
        result = run_experiment("e12", dataset)
        assert result.metrics["total_reduction"] > 5
        assert result.metrics["recovery_error"] < 0.3

    def test_stage_monotonicity(self, dataset):
        stages = run_experiment("e12", dataset).tables["stages"]
        counts = stages["clusters"]
        assert (counts[:-1] >= counts[1:]).all()


class TestE13Mtti:
    def test_mtti_in_paper_band(self, dataset):
        result = run_experiment("e13", dataset)
        assert 2.0 < result.metrics["job_mtti_days_at_default"] < 7.0

    def test_sweep_monotone_in_threshold(self, dataset):
        sweep = run_experiment("e13", dataset).tables["threshold_sweep"]
        clusters = sweep["clusters"]
        # Higher similarity threshold -> fewer merges -> more clusters.
        assert (np.diff(clusters) >= 0).all()


class TestE14RasCorrelation:
    def test_high_correlation(self, dataset):
        result = run_experiment("e14", dataset)
        assert result.metrics["pearson"] > 0.5
        assert result.metrics["spearman"] > 0.3


class TestE15Io:
    def test_failed_jobs_write_less(self, dataset):
        result = run_experiment("e15", dataset)
        assert result.metrics["write_per_ch_success_over_failed"] > 1.5
        assert result.metrics["ks_p_value"] < 0.01


class TestE16Takeaways:
    def test_most_takeaways_hold(self, dataset):
        result = run_experiment("e16", dataset)
        assert result.metrics["n_takeaways"] == 22
        # Marginal statistical takeaways can flip at sub-year scale.
        assert result.metrics["n_holding"] >= 19

    def test_table_has_all_ids(self, dataset):
        table = run_experiment("e16", dataset).tables["takeaways"]
        assert table["id"].tolist() == [f"T{i:02d}" for i in range(1, 23)]


class TestE17Lifetime:
    def test_stationary_no_changepoints(self, dataset):
        result = run_experiment("e17", dataset)
        assert result.metrics["n_changepoints"] == 0
        epochs = result.tables["epochs"]
        assert epochs["jobs"].sum() == dataset.jobs.n_rows


class TestE18Prediction:
    def test_predictable_far_above_coin_flip(self, dataset):
        result = run_experiment("e18", dataset)
        assert result.metrics["auc_user_history"] > 0.7
        assert result.metrics["auc_logistic"] > 0.7


class TestE19Intervals:
    def test_poisson_process_recovered(self, dataset):
        result = run_experiment("e19", dataset)
        assert result.metrics["bic_winner_in_expected_family"] == 1
        assert result.metrics["n_intervals"] >= 8


class TestE20UserBehavior:
    def test_repetition_above_one(self, dataset):
        result = run_experiment("e20", dataset)
        assert result.metrics["repetition_factor"] > 1.5
        assert 0 <= result.metrics["p_fail_after_success"] <= 1


class TestE21Precursors:
    def test_coverage_tracks_planted_rate(self, dataset):
        result = run_experiment("e21", dataset)
        truth = result.metrics["ground_truth_precursor_rate"]
        coverage = result.metrics["coverage"]
        # Coverage >= planted rate (chance adds), and not wildly above.
        assert coverage >= truth - 0.1
        assert coverage <= min(truth + 0.35, 1.0)

    def test_alarm_precision_is_low(self, dataset):
        """Naive WARN alarms must be imprecise (background WARN dominates)."""
        result = run_experiment("e21", dataset)
        assert result.metrics["alarm_precision"] < 0.2
