"""Measurement bugfixes: RSS units, RSS scope attribution, run-id collisions."""

import os
import re
from types import SimpleNamespace

import pytest

from repro.dataset import MiraDataset
from repro.experiments import engine, journal
from repro.experiments.engine import (
    ExperimentOutcome,
    SuiteResult,
    run_suite,
    timing_lines,
    bench_record,
)
from repro.experiments.journal import (
    new_run_id,
    outcome_from_record,
    outcome_to_record,
)


def _fake_rusage(monkeypatch, platform: str, ru_maxrss: int) -> None:
    """Swap engine's module bindings only — not the global modules."""
    monkeypatch.setattr(engine, "sys", SimpleNamespace(platform=platform))
    monkeypatch.setattr(
        engine,
        "resource",
        SimpleNamespace(
            RUSAGE_SELF=0,
            getrusage=lambda who: SimpleNamespace(ru_maxrss=ru_maxrss),
        ),
    )


class TestRssUnits:
    def test_linux_kib_passes_through(self, monkeypatch):
        _fake_rusage(monkeypatch, "linux", ru_maxrss=8192)
        assert engine._peak_rss_kb() == 8192

    def test_darwin_bytes_normalized_to_kib(self, monkeypatch):
        # macOS getrusage reports bytes; 8 MiB must come back as 8192 KiB,
        # not as an absurd 8388608 "KiB".
        _fake_rusage(monkeypatch, "darwin", ru_maxrss=8 * 1024 * 1024)
        assert engine._peak_rss_kb() == 8192


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    os.environ.setdefault(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("measure-cache"))
    )
    return MiraDataset.synthesize(n_days=5.0, seed=42)


class TestRssScope:
    def test_in_process_outcomes_are_process_scoped(self, dataset):
        suite = run_suite(dataset, ["e01", "e02"], jobs=1)
        assert all(o.rss_scope == "process" for o in suite.outcomes)

    def test_worker_outcomes_are_worker_scoped(self, dataset):
        suite = run_suite(dataset, ["e01", "e02"], jobs=2)
        assert all(o.rss_scope == "worker" for o in suite.outcomes)

    def test_timing_lines_label_process_scope(self):
        def outcome(scope):
            return ExperimentOutcome(
                experiment_id="e01",
                status="ok",
                result=None,
                message="",
                seconds=0.5,
                max_rss_kb=2048,
                rss_scope=scope,
            )

        def lines_for(scope):
            suite = SuiteResult(
                outcomes=(outcome(scope),), jobs=1, total_seconds=0.5
            )
            return "\n".join(timing_lines(suite))

        assert "(process-wide)" in lines_for("process")
        assert "(process-wide)" not in lines_for("worker")

    def test_bench_record_carries_scope(self):
        suite = SuiteResult(
            outcomes=(
                ExperimentOutcome(
                    experiment_id="e01",
                    status="ok",
                    result=None,
                    message="",
                    seconds=0.1,
                    max_rss_kb=1024,
                    rss_scope="process",
                ),
            ),
            jobs=1,
            total_seconds=0.1,
        )
        record = bench_record(suite)
        assert record["experiments"][0]["rss_scope"] == "process"


class TestRssScopeJournal:
    def _outcome(self, scope):
        return ExperimentOutcome(
            experiment_id="e01",
            status="skipped",
            result=None,
            message="starved",
            seconds=0.1,
            max_rss_kb=1024,
            rss_scope=scope,
        )

    def test_process_scope_round_trips(self):
        record = outcome_to_record(self._outcome("process"))
        assert record["rss_scope"] == "process"
        assert outcome_from_record(record).rss_scope == "process"

    def test_worker_scope_is_not_serialized(self):
        # Pre-scope journals had no rss_scope key; worker outcomes keep
        # that byte layout and rehydrate to the default.
        record = outcome_to_record(self._outcome("worker"))
        assert "rss_scope" not in record
        assert outcome_from_record(record).rss_scope == "worker"


class TestRunIdCollisions:
    def test_many_ids_are_unique(self):
        ids = {new_run_id() for _ in range(2000)}
        assert len(ids) == 2000

    def test_unique_even_within_one_timestamp_second(self, monkeypatch):
        # Freeze the clock: the random tail alone must prevent collisions
        # for IDs minted back to back inside the same second.
        monkeypatch.setattr(
            journal,
            "time",
            SimpleNamespace(
                strftime=lambda fmt, t=None: "20260807-000000",
                gmtime=lambda: None,
            ),
        )
        ids = {new_run_id() for _ in range(500)}
        assert len(ids) == 500
        assert all(i.startswith("20260807-000000-") for i in ids)

    def test_id_embeds_pid_and_sequence(self):
        # Two supervisors launched the same second differ in PID; two
        # IDs minted by one process differ in the sequence — collisions
        # are structurally impossible, not just improbable.
        pid = format(os.getpid(), "x")
        first, second = new_run_id(), new_run_id()
        pattern = r"\d{8}-\d{6}-p" + pid + r"s([0-9a-f]+)-[0-9a-f]{6}"
        match_a, match_b = re.fullmatch(pattern, first), re.fullmatch(pattern, second)
        assert match_a and match_b
        assert int(match_b.group(1), 16) == int(match_a.group(1), 16) + 1
