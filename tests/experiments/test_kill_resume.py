"""End-to-end crash drill: SIGKILL a journaled run, resume, compare bytes.

The PR's acceptance scenario: a parallel ``repro-report`` run killed
mid-suite must resume from its journal without re-running finished
experiments, and the resumed report must be byte-identical to an
uninterrupted run over the same dataset.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main_report
from repro.faults import PROCESS_FAULT_ENV

IDS = ["e01", "e02", "e03", "e05"]
DAYS, SEED = "4", "9"

_CHILD = """
import sys
from repro.cli import main_report
sys.exit(main_report({argv!r}))
"""


def _count_outcomes(journal_path: Path) -> int:
    if not journal_path.exists():
        return 0
    n = 0
    for line in journal_path.read_text().splitlines():
        try:
            n += json.loads(line).get("kind") == "outcome"
        except json.JSONDecodeError:
            continue
    return n


@pytest.fixture()
def runs_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    # conftest already points REPRO_RUNS_DIR at tmp_path / "runs"
    return Path(os.environ["REPRO_RUNS_DIR"])


class TestKillResume:
    def test_sigkilled_run_resumes_byte_identical(self, runs_root, capsys):
        # 1. the reference: an uninterrupted run
        argv = ["--days", DAYS, "--seed", SEED, "--jobs", "2", "--experiments"]
        assert main_report(argv + IDS + ["--run-id", "clean"]) == 0
        capsys.readouterr()
        clean_report = (runs_root / "clean" / "report.txt").read_bytes()

        # 2. the drill: same run, slowed on its last experiment and
        #    SIGKILLed once most of the suite is journaled
        env = dict(os.environ)
        env[PROCESS_FAULT_ENV] = "slow:e05:120"
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _CHILD.format(
                    argv=argv + IDS + ["--run-id", "drill", "--timeout", "300"]
                ),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        journal_path = runs_root / "drill" / "journal.jsonl"
        deadline = time.monotonic() + 120.0
        try:
            while _count_outcomes(journal_path) < len(IDS) - 1:
                assert child.poll() is None, "drill run exited before the kill"
                assert time.monotonic() < deadline, "drill never journaled outcomes"
                time.sleep(0.1)
        finally:
            child.kill()
            child.wait()

        journaled_before = _count_outcomes(journal_path)
        assert journaled_before == len(IDS) - 1

        # 3. resume (faults disarmed): only the lost experiment reruns
        assert main_report(["--resume", "drill"]) == 0
        capsys.readouterr()
        assert _count_outcomes(journal_path) == len(IDS)

        drill_report = (runs_root / "drill" / "report.txt").read_bytes()
        assert drill_report == clean_report

    def test_resume_of_complete_run_recomputes_nothing(self, runs_root, capsys):
        argv = [
            "--days", DAYS, "--seed", SEED, "--jobs", "1",
            "--experiments", "e01", "--run-id", "done",
        ]
        assert main_report(argv) == 0
        journal_path = runs_root / "done" / "journal.jsonl"
        assert _count_outcomes(journal_path) == 1
        capsys.readouterr()
        assert main_report(["--resume", "done"]) == 0
        out = capsys.readouterr().out
        assert "E01" in out
        assert _count_outcomes(journal_path) == 1  # replayed, not re-run
