"""Run journal: exact outcome round-trips, replay, torn-tail tolerance."""

import json

import numpy as np
import pytest

from repro.errors import JournalError
from repro.experiments.base import ExperimentResult
from repro.experiments.engine import ExperimentOutcome
from repro.experiments.journal import (
    RunJournal,
    new_run_id,
    outcome_from_record,
    outcome_to_record,
)
from repro.table import Table


def _rich_outcome() -> ExperimentOutcome:
    """An outcome exercising every dtype kind and awkward float values."""
    table = Table(
        {
            "name": np.array(["abort", "segfault"], dtype=object),
            "count": np.array([29, 26], dtype=np.int64),
            "code": np.array([134, 139], dtype=np.uint64),
            "share": np.array([0.1234567890123, np.nan], dtype=np.float64),
            "fatal": np.array([True, False], dtype=np.bool_),
        }
    )
    result = ExperimentResult(
        experiment_id="e02",
        title="Exit-status breakdown",
        tables={"per_family": table},
        metrics={
            "n_jobs": np.int64(491),
            "failure_rate": 0.23625254841998087,
            "utilization": np.float64(0.532984),
            "degraded_flag": np.bool_(False),
        },
        notes="round-trip me",
    )
    return ExperimentOutcome(
        experiment_id="e02",
        status="ok",
        result=result,
        message="",
        seconds=0.125,
        max_rss_kb=43210,
        attempt=2,
    )


class TestOutcomeRoundTrip:
    def test_json_round_trip_is_value_identical(self):
        outcome = _rich_outcome()
        # through an actual JSON encode/decode, like the journal file
        record = json.loads(json.dumps(outcome_to_record(outcome)))
        back = outcome_from_record(record)
        assert back.experiment_id == outcome.experiment_id
        assert back.status == outcome.status
        assert back.seconds == outcome.seconds
        assert back.attempt == 2
        table, original = back.result.tables["per_family"], outcome.result.tables[
            "per_family"
        ]
        assert table.column_names == original.column_names
        for name in original.column_names:
            assert table[name].dtype.kind == original[name].dtype.kind
            np.testing.assert_array_equal(table[name], original[name])

    def test_rendered_text_is_byte_identical(self):
        outcome = _rich_outcome()
        record = json.loads(json.dumps(outcome_to_record(outcome)))
        back = outcome_from_record(record)
        assert back.result.to_text() == outcome.result.to_text()

    def test_metric_order_survives(self):
        outcome = _rich_outcome()
        record = json.loads(json.dumps(outcome_to_record(outcome)))
        back = outcome_from_record(record)
        assert list(back.result.metrics) == list(outcome.result.metrics)

    def test_error_outcome_without_result(self):
        outcome = ExperimentOutcome(
            experiment_id="e07",
            status="error",
            result=None,
            message="RuntimeError('kaboom')",
            seconds=0.01,
            max_rss_kb=100,
        )
        back = outcome_from_record(json.loads(json.dumps(outcome_to_record(outcome))))
        assert back == outcome


class TestJournalLifecycle:
    def test_start_resume_round_trip(self, tmp_path):
        journal = RunJournal.start(
            tmp_path, fingerprint="f" * 64, config={"days": 4.0, "seed": 9}
        )
        outcome = _rich_outcome()
        journal.append_outcome(outcome)
        journal.append_end("complete", 1.5)

        resumed, state = RunJournal.resume(tmp_path, journal.run_id)
        assert resumed.path == journal.path
        assert state.fingerprint == "f" * 64
        assert state.config == {"days": 4.0, "seed": 9}
        assert state.complete
        assert set(state.outcomes) == {"e02"}
        replayed = state.outcomes["e02"]
        assert replayed.result.to_text() == outcome.result.to_text()

    def test_interrupted_run_is_not_complete(self, tmp_path):
        journal = RunJournal.start(tmp_path, fingerprint="a", config={})
        journal.append_end("interrupted", 0.5)
        _, state = RunJournal.resume(tmp_path, journal.run_id)
        assert not state.complete

    def test_torn_tail_is_ignored(self, tmp_path):
        journal = RunJournal.start(tmp_path, fingerprint="a", config={})
        journal.append_outcome(_rich_outcome())
        with journal.path.open("a") as handle:
            handle.write('{"kind": "outcome", "experiment_id": "e0')  # SIGKILL here
        _, state = RunJournal.resume(tmp_path, journal.run_id)
        assert set(state.outcomes) == {"e02"}

    def test_duplicate_outcome_first_wins(self, tmp_path):
        journal = RunJournal.start(tmp_path, fingerprint="a", config={})
        first = _rich_outcome()
        journal.append_outcome(first)
        journal.append_outcome(
            ExperimentOutcome("e02", "error", None, "late dup", 0.0, 0)
        )
        _, state = RunJournal.resume(tmp_path, journal.run_id)
        assert state.outcomes["e02"].status == "ok"

    def test_existing_run_id_refused(self, tmp_path):
        RunJournal.start(tmp_path, fingerprint="a", config={}, run_id="r1")
        with pytest.raises(JournalError, match="already exists"):
            RunJournal.start(tmp_path, fingerprint="a", config={}, run_id="r1")

    def test_missing_run_refused(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            RunJournal.resume(tmp_path, "nope")

    def test_wrong_schema_refused(self, tmp_path):
        run_dir = tmp_path / "old"
        run_dir.mkdir()
        (run_dir / "journal.jsonl").write_text(
            json.dumps({"kind": "run", "schema": 99, "run_id": "old"}) + "\n"
        )
        with pytest.raises(JournalError, match="schema"):
            RunJournal.resume(tmp_path, "old")

    def test_headerless_file_refused(self, tmp_path):
        run_dir = tmp_path / "junk"
        run_dir.mkdir()
        (run_dir / "journal.jsonl").write_text("not json\n")
        with pytest.raises(JournalError, match="not a run journal"):
            RunJournal.resume(tmp_path, "junk")

    def test_new_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()
