"""Tests for the report renderer and the CLI entry points."""

import pytest

from repro.cli import main_analyze, main_gen, main_report
from repro.core.report import render_report
from repro.dataset import MiraDataset


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=15.0, seed=77)


class TestReport:
    def test_subset_render(self, dataset):
        text = render_report(dataset, experiment_ids=["e01", "e03"])
        assert "E01" in text and "E03" in text and "E13" not in text

    def test_header_mentions_span(self, dataset):
        text = render_report(dataset, experiment_ids=["e01"])
        assert "15 days" in text


class TestCliGen:
    def test_writes_dataset(self, tmp_path, capsys):
        rc = main_gen([str(tmp_path / "ds"), "--days", "5", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "jobs" in out
        loaded = MiraDataset.load(tmp_path / "ds")
        assert loaded.n_days == 5


class TestCliAnalyze:
    def test_synthesize_on_the_fly(self, capsys):
        rc = main_analyze(["e02", "--days", "5", "--seed", "3"])
        assert rc == 0
        assert "failure_rate" in capsys.readouterr().out

    def test_load_from_dir(self, tmp_path, capsys):
        main_gen([str(tmp_path / "ds"), "--days", "5", "--seed", "4"])
        capsys.readouterr()
        rc = main_analyze(["e01", "--dataset", str(tmp_path / "ds")])
        assert rc == 0
        assert "overview" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main_analyze(["e99", "--days", "1"])


class TestCliReport:
    def test_report_subset(self, capsys):
        rc = main_report(["--days", "5", "--seed", "5", "--experiments", "e01", "e02"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "E01" in out and "E02" in out


class TestCliValidate:
    def test_valid_dataset(self, tmp_path, capsys):
        from repro.cli import main_validate

        main_gen([str(tmp_path / "ds"), "--days", "4", "--seed", "6"])
        capsys.readouterr()
        rc = main_validate([str(tmp_path / "ds")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK:" in out and "occupancy: ok" in out

    def test_corrupted_dataset(self, tmp_path, capsys):
        from repro.cli import main_validate

        main_gen([str(tmp_path / "ds"), "--days", "4", "--seed", "6"])
        (tmp_path / "ds" / "tasks.csv").unlink()
        capsys.readouterr()
        rc = main_validate([str(tmp_path / "ds")])
        assert rc == 1
        assert "INVALID" in capsys.readouterr().out


class TestGracefulDegradation:
    def test_report_survives_starved_experiments(self, capsys):
        """A 5-day trace starves e19 (too few intervals); the report must
        render every other experiment and note the skip."""
        rc = main_report(["--days", "5", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "E19 == skipped" in out
        assert "E16" in out  # the rest still render

    def test_export_omits_starved_experiments(self, tmp_path):
        from repro.dataset import MiraDataset
        from repro.experiments import export_all

        dataset = MiraDataset.synthesize(n_days=5.0, seed=3)
        written = export_all(dataset, tmp_path / "out", experiment_ids=["e01", "e19"])
        names = {p.name for p in written}
        assert "e01.md" in names
        assert "e19.md" not in names
