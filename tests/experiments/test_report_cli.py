"""Tests for the report renderer and the CLI entry points."""

import pytest

from repro.cli import main_analyze, main_gen, main_report
from repro.core.report import render_report
from repro.dataset import MiraDataset


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=15.0, seed=77)


class TestReport:
    def test_subset_render(self, dataset):
        text = render_report(dataset, experiment_ids=["e01", "e03"])
        assert "E01" in text and "E03" in text and "E13" not in text

    def test_header_mentions_span(self, dataset):
        text = render_report(dataset, experiment_ids=["e01"])
        assert "15 days" in text


class TestCliGen:
    def test_writes_dataset(self, tmp_path, capsys):
        rc = main_gen([str(tmp_path / "ds"), "--days", "5", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "jobs" in out
        loaded = MiraDataset.load(tmp_path / "ds")
        assert loaded.n_days == 5


class TestCliAnalyze:
    def test_synthesize_on_the_fly(self, capsys):
        rc = main_analyze(["e02", "--days", "5", "--seed", "3"])
        assert rc == 0
        assert "failure_rate" in capsys.readouterr().out

    def test_load_from_dir(self, tmp_path, capsys):
        main_gen([str(tmp_path / "ds"), "--days", "5", "--seed", "4"])
        capsys.readouterr()
        rc = main_analyze(["e01", "--dataset", str(tmp_path / "ds")])
        assert rc == 0
        assert "overview" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main_analyze(["e99", "--days", "1"])


class TestCliReport:
    def test_report_subset(self, capsys):
        rc = main_report(["--days", "5", "--seed", "5", "--experiments", "e01", "e02"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "E01" in out and "E02" in out


class TestCliReportJournal:
    def test_run_directory_written(self, tmp_path, capsys):
        rc = main_report(
            ["--days", "4", "--seed", "8", "--experiments", "e01",
             "--run-dir", str(tmp_path / "runs"), "--run-id", "r1"]
        )
        assert rc == 0
        run_dir = tmp_path / "runs" / "r1"
        assert (run_dir / "journal.jsonl").exists()
        report = (run_dir / "report.txt").read_text()
        assert report == capsys.readouterr().out

    def test_no_journal_writes_nothing(self, tmp_path, capsys):
        rc = main_report(
            ["--days", "4", "--seed", "8", "--experiments", "e01",
             "--run-dir", str(tmp_path / "runs"), "--no-journal"]
        )
        assert rc == 0
        assert not (tmp_path / "runs").exists()

    def test_resume_conflicts_with_no_journal(self):
        with pytest.raises(SystemExit):
            main_report(["--resume", "r1", "--no-journal"])

    def test_resume_unknown_run_exits_1(self, capsys):
        assert main_report(["--resume", "no-such-run"]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_resume_refuses_fingerprint_mismatch(self, tmp_path, capsys):
        import json

        runs = tmp_path / "runs"
        rc = main_report(
            ["--days", "4", "--seed", "8", "--experiments", "e01",
             "--run-dir", str(runs), "--run-id", "r1"]
        )
        assert rc == 0
        capsys.readouterr()
        # tamper with the journaled dataset identity
        journal = runs / "r1" / "journal.jsonl"
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        header["fingerprint"] = "0" * 64
        journal.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        assert main_report(["--run-dir", str(runs), "--resume", "r1"]) == 1
        out = capsys.readouterr().out
        assert "fingerprint mismatch" in out

    def test_duplicate_run_id_exits_1(self, tmp_path, capsys):
        argv = ["--days", "4", "--seed", "8", "--experiments", "e01",
                "--run-dir", str(tmp_path / "runs"), "--run-id", "r1"]
        assert main_report(argv) == 0
        capsys.readouterr()
        assert main_report(argv) == 1
        assert "already exists" in capsys.readouterr().out


class TestCliReportExitCodes:
    @pytest.fixture()
    def crashing_experiment(self):
        from repro.experiments.base import _REGISTRY, register

        @register("zz_crash", "always crashes")
        def _run(dataset):
            raise RuntimeError("kaboom")

        yield "zz_crash"
        _REGISTRY.pop("zz_crash")

    def test_errored_experiment_exits_1(self, crashing_experiment, capsys):
        rc = main_report(
            ["--days", "4", "--seed", "8", "--jobs", "1",
             "--experiments", "e01", crashing_experiment]
        )
        assert rc == 1
        # the report still renders; the nonzero exit is the contract
        assert "E01" in capsys.readouterr().out

    def test_allow_errors_downgrades_to_0(self, crashing_experiment, capsys):
        rc = main_report(
            ["--days", "4", "--seed", "8", "--jobs", "1",
             "--experiments", "e01", crashing_experiment, "--allow-errors"]
        )
        assert rc == 0

    def test_exit_code_contract_documented(self, capsys):
        with pytest.raises(SystemExit):
            main_report(["--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out and "130" in out


class TestCliChaosProcessFaults:
    def test_spec_printed_for_arming(self, capsys):
        from repro.cli import main_chaos

        assert main_chaos(["--process-faults", "kill_worker:e03"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == "REPRO_PROCESS_FAULTS=kill_worker:e03:1"

    def test_bad_spec_rejected(self, capsys):
        from repro.cli import main_chaos

        assert main_chaos(["--process-faults", "explode:e01"]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_list_includes_process_kinds(self, capsys):
        from repro.cli import main_chaos

        assert main_chaos(["--list"]) == 0
        out = capsys.readouterr().out
        assert "kill_worker (process-level)" in out


class TestCliValidate:
    def test_valid_dataset(self, tmp_path, capsys):
        from repro.cli import main_validate

        main_gen([str(tmp_path / "ds"), "--days", "4", "--seed", "6"])
        capsys.readouterr()
        rc = main_validate([str(tmp_path / "ds")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK:" in out and "occupancy: ok" in out

    def test_corrupted_dataset(self, tmp_path, capsys):
        from repro.cli import main_validate

        main_gen([str(tmp_path / "ds"), "--days", "4", "--seed", "6"])
        (tmp_path / "ds" / "tasks.csv").unlink()
        capsys.readouterr()
        rc = main_validate([str(tmp_path / "ds")])
        assert rc == 1
        assert "INVALID" in capsys.readouterr().out


class TestGracefulDegradation:
    def test_report_survives_starved_experiments(self, capsys):
        """A 5-day trace starves e19 (too few intervals); the report must
        render every other experiment and note the skip."""
        rc = main_report(["--days", "5", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "E19 == skipped" in out
        assert "E16" in out  # the rest still render

    def test_export_omits_starved_experiments(self, tmp_path):
        from repro.dataset import MiraDataset
        from repro.experiments import export_all

        dataset = MiraDataset.synthesize(n_days=5.0, seed=3)
        written = export_all(dataset, tmp_path / "out", experiment_ids=["e01", "e19"])
        names = {p.name for p in written}
        assert "e01.md" in names
        assert "e19.md" not in names
