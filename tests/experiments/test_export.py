"""Tests for experiment export (Markdown + CSV)."""

import pytest

from repro.cli import main_analyze
from repro.dataset import MiraDataset
from repro.experiments import export_all, export_result, result_to_markdown, run_experiment
from repro.table import read_csv


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=12.0, seed=91)


@pytest.fixture(scope="module")
def result(dataset):
    return run_experiment("e02", dataset)


class TestMarkdown:
    def test_contains_title_and_metrics(self, result):
        md = result_to_markdown(result)
        assert md.startswith("# E02")
        assert "| failure_rate |" in md

    def test_tables_rendered(self, result):
        md = result_to_markdown(result)
        assert "## per_status" in md
        assert "| exit_status | count |" in md

    def test_truncation_notice(self, result):
        md = result_to_markdown(result, max_rows=2)
        assert "more rows" in md


class TestExport:
    def test_writes_md_and_csvs(self, result, tmp_path):
        written = export_result(result, tmp_path / "out")
        names = {p.name for p in written}
        assert "e02.md" in names
        assert "e02_per_status.csv" in names
        assert "e02_per_family.csv" in names

    def test_csv_roundtrip(self, result, tmp_path):
        export_result(result, tmp_path / "out")
        table = read_csv(tmp_path / "out" / "e02_per_status.csv")
        assert table.n_rows == result.tables["per_status"].n_rows

    def test_export_all_subset(self, dataset, tmp_path):
        written = export_all(dataset, tmp_path / "all", experiment_ids=["e01", "e02"])
        ids = {p.name.split(".")[0].split("_")[0] for p in written}
        assert ids == {"e01", "e02"}

    def test_cli_output_flag(self, tmp_path, capsys):
        rc = main_analyze(
            ["e01", "--days", "5", "--seed", "1", "--output", str(tmp_path / "cli")]
        )
        assert rc == 0
        assert "exported" in capsys.readouterr().out
        assert (tmp_path / "cli" / "e01.md").exists()
