"""Unit tests for severity, catalog, and event records."""

import pytest

from repro.bgq.components import Category, Component
from repro.errors import CatalogError
from repro.ras import (
    CatalogEntry,
    RasEvent,
    Severity,
    default_catalog,
    events_to_table,
    table_to_events,
    validate_against_catalog,
)


class TestSeverity:
    def test_parse_case_insensitive(self):
        assert Severity.parse("fatal") is Severity.FATAL
        assert Severity.parse(" Info ") is Severity.INFO

    def test_parse_warning_alias(self):
        assert Severity.parse("WARNING") is Severity.WARN

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            Severity.parse("CRITICAL")

    def test_ordering(self):
        assert Severity.INFO < Severity.WARN < Severity.FATAL

    def test_rank(self):
        assert [s.rank for s in (Severity.INFO, Severity.WARN, Severity.FATAL)] == [0, 1, 2]


class TestCatalogEntry:
    def test_render(self):
        entry = default_catalog().lookup("00010006")
        msg = entry.render("addr=0xdeadbe")
        assert "addr=0xdeadbe" in msg
        assert "DDR" in msg

    def test_bad_msg_id(self):
        with pytest.raises(CatalogError):
            CatalogEntry("xyz", Component.CNK, Category.DDR, Severity.INFO, "{detail}")

    def test_template_requires_detail(self):
        with pytest.raises(CatalogError, match="detail"):
            CatalogEntry("00010001", Component.CNK, Category.DDR, Severity.INFO, "static")

    def test_nonpositive_weight(self):
        with pytest.raises(CatalogError):
            CatalogEntry(
                "00010001", Component.CNK, Category.DDR, Severity.INFO, "{detail}", weight=0
            )

    def test_interrupts_requires_fatal(self):
        with pytest.raises(CatalogError, match="FATAL"):
            CatalogEntry(
                "00010001", Component.CNK, Category.DDR, Severity.WARN,
                "{detail}", interrupts_jobs=True,
            )


class TestDefaultCatalog:
    def test_nonempty_all_severities(self):
        catalog = default_catalog()
        for severity in Severity:
            assert catalog.by_severity(severity), severity

    def test_lookup_unknown(self):
        with pytest.raises(CatalogError):
            default_catalog().lookup("FFFFFFFF")

    def test_contains(self):
        catalog = default_catalog()
        assert "00010006" in catalog
        assert "FFFFFFFF" not in catalog

    def test_interrupting_ids_are_fatal(self):
        catalog = default_catalog()
        for msg_id in catalog.interrupting_ids():
            assert catalog.lookup(msg_id).severity is Severity.FATAL

    def test_every_fatal_interrupts(self):
        # In this catalog all FATALs are job-interrupting by design.
        catalog = default_catalog()
        fatal_ids = {e.msg_id for e in catalog.by_severity(Severity.FATAL)}
        assert fatal_ids == set(catalog.interrupting_ids())

    def test_by_component_partition(self):
        catalog = default_catalog()
        total = sum(len(catalog.by_component(c)) for c in Component)
        assert total == len(catalog)

    def test_by_category(self):
        catalog = default_catalog()
        ddr = catalog.by_category(Category.DDR)
        assert ddr and all(e.category is Category.DDR for e in ddr)

    def test_duplicate_id_rejected(self):
        entry = default_catalog().lookup("00010001")
        from repro.ras import Catalog

        with pytest.raises(CatalogError, match="duplicate"):
            Catalog([entry, entry])


def _event(record_id=0, ts=1.0, msg_id="00010006"):
    entry = default_catalog().lookup(msg_id)
    return RasEvent(
        record_id=record_id,
        timestamp=ts,
        msg_id=msg_id,
        severity=entry.severity,
        component=entry.component,
        category=entry.category,
        location="R00-M0-N00-J00",
        message=entry.render("x=1"),
    )


class TestRasEvent:
    def test_is_fatal(self):
        assert _event().is_fatal
        assert not _event(msg_id="00010001").is_fatal

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            _event(ts=-1.0)

    def test_table_roundtrip(self):
        events = [_event(0, 5.0), _event(1, 2.0), _event(2, 9.0)]
        table = events_to_table(events)
        assert table["timestamp"].tolist() == [2.0, 5.0, 9.0]  # sorted
        back = table_to_events(table)
        assert {e.record_id for e in back} == {0, 1, 2}

    def test_table_missing_column(self):
        table = events_to_table([_event()]).drop(["message"])
        with pytest.raises(KeyError):
            table_to_events(table)

    def test_validate_against_catalog_ok(self):
        validate_against_catalog([_event()], default_catalog())

    def test_validate_detects_severity_mismatch(self):
        entry = default_catalog().lookup("00010006")
        bad = RasEvent(
            record_id=0, timestamp=0.0, msg_id="00010006",
            severity=Severity.INFO, component=entry.component,
            category=entry.category, location="R00", message="m",
        )
        with pytest.raises(CatalogError, match="severity"):
            validate_against_catalog([bad], default_catalog())
