"""Unit tests for the RAS generator and log parser."""

import numpy as np
import pytest

from repro.bgq import MIRA, MIRA_SMALL, Location
from repro.errors import ParseError
from repro.ras import (
    RasGenerator,
    RasGeneratorParams,
    Severity,
    default_catalog,
    load_ras_log,
    validate_ras_table,
)
from repro.table import write_csv


@pytest.fixture(scope="module")
def stream():
    generator = RasGenerator(spec=MIRA, seed=42)
    table, incidents = generator.generate(n_days=30.0)
    return table, incidents


class TestGeneratorBasics:
    def test_sorted_and_ids_sequential(self, stream):
        table, _ = stream
        ts = table["timestamp"]
        assert (ts[1:] >= ts[:-1]).all()
        assert table["record_id"].tolist() == list(range(table.n_rows))

    def test_all_severities_present(self, stream):
        table, _ = stream
        assert set(table.unique("severity")) == {"INFO", "WARN", "FATAL"}

    def test_severity_proportions(self, stream):
        table, _ = stream
        counts = {r["severity"]: r["count"] for r in table.value_counts("severity").to_rows()}
        assert counts["INFO"] > counts["WARN"] > counts["FATAL"]

    def test_locations_valid(self, stream):
        table, _ = stream
        for code in set(table.unique("location")):
            Location.parse(code, spec=MIRA)  # raises on invalid

    def test_messages_rendered_from_catalog(self, stream):
        table, _ = stream
        catalog = default_catalog()
        row = table.filter(table["severity"] == "FATAL").row(0)
        entry = catalog.lookup(row["msg_id"])
        prefix = entry.template.split("{detail}")[0]
        assert row["message"].startswith(prefix)

    def test_timestamps_within_horizon(self, stream):
        table, _ = stream
        assert float(table["timestamp"].max()) <= 31 * 86_400.0

    def test_deterministic(self):
        a, _ = RasGenerator(spec=MIRA_SMALL, seed=7).generate(5.0)
        b, _ = RasGenerator(spec=MIRA_SMALL, seed=7).generate(5.0)
        assert a == b

    def test_seed_changes_stream(self):
        a, _ = RasGenerator(spec=MIRA_SMALL, seed=1).generate(5.0)
        b, _ = RasGenerator(spec=MIRA_SMALL, seed=2).generate(5.0)
        assert a != b

    def test_invalid_days(self):
        with pytest.raises(ValueError):
            RasGenerator(seed=0).generate(0.0)


class TestIncidents:
    def test_incident_count_near_rate(self, stream):
        _, incidents = stream
        # 30 days at 1/3.5 per day -> ~8.6 expected; Poisson 99.9% within [1, 25]
        assert 1 <= len(incidents) <= 25

    def test_fatal_events_match_incident_bursts(self, stream):
        table, incidents = stream
        n_fatal = int((table["severity"] == "FATAL").sum())
        assert n_fatal == sum(i.n_events for i in incidents)

    def test_burst_duplication(self, stream):
        """A burst emits many near-duplicate records per incident."""
        table, incidents = stream
        n_fatal = int((table["severity"] == "FATAL").sum())
        if incidents:
            assert n_fatal / len(incidents) >= 2.0

    def test_incident_msg_ids_interrupting(self, stream):
        _, incidents = stream
        interrupting = set(default_catalog().interrupting_ids())
        assert all(i.msg_id in interrupting for i in incidents)

    def test_locality_concentration(self):
        """Fault propensity must be strongly non-uniform across midplanes."""
        generator = RasGenerator(spec=MIRA, seed=3)
        top_decile = np.sort(generator.midplane_propensity)[-10:].sum()
        assert top_decile > 0.25  # top ~10% of midplanes hold >25% of propensity

    def test_propensity_normalized(self):
        generator = RasGenerator(spec=MIRA, seed=4)
        assert generator.midplane_propensity.sum() == pytest.approx(1.0)


class TestDiurnal:
    def test_daytime_heavier_than_night(self):
        params = RasGeneratorParams(
            info_rate_per_day=2000.0, warn_rate_per_day=0.0,
            diurnal_amplitude=0.8,
        )
        table, _ = RasGenerator(
            spec=MIRA_SMALL, params=params, seed=11
        ).generate(20.0)
        info = table.filter(table["severity"] == "INFO")
        hours = (info["timestamp"] / 3600.0) % 24.0
        day = ((hours >= 10) & (hours < 18)).sum()
        night = ((hours >= 0) & (hours < 8)).sum()
        assert day > night * 1.5


class TestParams:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            RasGeneratorParams(info_rate_per_day=-1.0)

    def test_bad_fanout(self):
        with pytest.raises(ValueError):
            RasGeneratorParams(fanout_probability=1.5)

    def test_bad_amplitude(self):
        with pytest.raises(ValueError):
            RasGeneratorParams(diurnal_amplitude=1.0)


class TestParser:
    def test_roundtrip_through_csv(self, tmp_path, stream):
        table, _ = stream
        sample = table.head(500)
        path = tmp_path / "ras.csv"
        write_csv(sample, path)
        loaded = load_ras_log(path, catalog=default_catalog())
        assert loaded.n_rows == 500
        assert loaded["msg_id"].tolist() == sample["msg_id"].tolist()

    def test_missing_column_rejected(self, stream):
        table, _ = stream
        with pytest.raises(ParseError, match="missing"):
            validate_ras_table(table.drop(["severity"]))

    def test_unknown_severity_rejected(self, stream):
        table, _ = stream
        bad = table.head(5).with_column("severity", ["BAD"] * 5)
        with pytest.raises(ParseError, match="severities"):
            validate_ras_table(bad)

    def test_unsorted_rejected(self, stream):
        table, _ = stream
        shuffled = table.head(10).take([5, 1, 3, 0, 2, 4, 9, 6, 8, 7])
        with pytest.raises(ParseError, match="sorted"):
            validate_ras_table(shuffled)

    def test_unknown_msg_id_rejected(self, stream):
        table, _ = stream
        bad = table.head(3).with_column("msg_id", ["FFFFFFFF"] * 3)
        with pytest.raises(ParseError, match="message ids"):
            validate_ras_table(bad, catalog=default_catalog())

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ParseError, match="empty"):
            load_ras_log(path)
