"""Tests for streaming replay and the online similarity filter."""

import pytest

from repro.core.filtering import events_to_clusters, similarity_filter
from repro.dataset import MiraDataset
from repro.ras.replay import OnlineSimilarityFilter, replay
from repro.table import Table


def _events(rows):
    return Table(
        {
            "timestamp": [float(r[0]) for r in rows],
            "msg_id": [r[1] for r in rows],
            "location": [r[2] for r in rows],
            "message": [r[3] for r in rows],
        }
    )


MSG = "uncorrectable DDR memory error at addr=0x{:06x}"


class TestReplay:
    def test_yields_in_order(self):
        table = _events([(1, "a", "R00", "m one"), (2, "b", "R01", "m two")])
        rows = list(replay(table))
        assert [r["timestamp"] for r in rows] == [1.0, 2.0]

    def test_window(self):
        table = _events([(t, "a", "R00", "m") for t in range(10)])
        rows = list(replay(table, start=3, end=7))
        assert [r["timestamp"] for r in rows] == [3.0, 4.0, 5.0, 6.0]

    def test_unsorted_rejected(self):
        table = _events([(5, "a", "R00", "m"), (1, "a", "R00", "m")])
        with pytest.raises(ValueError, match="sorted"):
            list(replay(table))


class TestOnlineFilter:
    def test_burst_merges(self):
        online = OnlineSimilarityFilter(window_seconds=60)
        closed = []
        for t in (0, 10, 20):
            closed += online.push(
                {"timestamp": t, "msg_id": "00010006", "location": "R00-M0",
                 "message": MSG.format(t)}
            )
        closed += online.flush()
        assert len(closed) == 1
        assert closed[0].n_events == 3
        assert closed[0].last_timestamp == 20.0

    def test_window_closes_cluster(self):
        online = OnlineSimilarityFilter(window_seconds=60)
        online.push({"timestamp": 0, "msg_id": "a", "location": "R00",
                     "message": MSG.format(1)})
        closed = online.push({"timestamp": 1000, "msg_id": "a", "location": "R00",
                              "message": MSG.format(2)})
        assert len(closed) == 1
        assert online.n_open == 1

    def test_dissimilar_messages_separate(self):
        online = OnlineSimilarityFilter(window_seconds=60, threshold=0.5)
        online.push({"timestamp": 0, "msg_id": "a", "location": "R00",
                     "message": MSG.format(1)})
        online.push({"timestamp": 1, "msg_id": "b", "location": "R05",
                     "message": "bulk power module failure unit=3"})
        assert online.n_open == 2

    def test_out_of_order_rejected(self):
        online = OnlineSimilarityFilter()
        online.push({"timestamp": 10, "msg_id": "a", "location": "R00", "message": "m x"})
        with pytest.raises(ValueError, match="arrived after"):
            online.push({"timestamp": 5, "msg_id": "a", "location": "R00", "message": "m x"})

    def test_bad_params(self):
        with pytest.raises(ValueError):
            OnlineSimilarityFilter(window_seconds=0)
        with pytest.raises(ValueError):
            OnlineSimilarityFilter(threshold=2.0)


class TestBatchEquivalence:
    """The online filter must reproduce the batch similarity filter."""

    def _run_online(self, events, window, threshold):
        online = OnlineSimilarityFilter(window, threshold)
        closed = []
        for row in replay(events):
            closed += online.push(row)
        closed += online.flush()
        return sorted(
            (c.first_timestamp, c.last_timestamp, c.n_events) for c in closed
        )

    def test_equivalence_on_synthetic_stream(self):
        dataset = MiraDataset.synthesize(n_days=30.0, seed=88)
        fatal = dataset.fatal_events()
        batch = similarity_filter(
            events_to_clusters(fatal), window_seconds=1800, threshold=0.5
        )
        batch_keys = sorted(
            zip(
                batch["first_timestamp"].tolist(),
                batch["last_timestamp"].tolist(),
                batch["n_events"].tolist(),
            )
        )
        online_keys = self._run_online(fatal, 1800, 0.5)
        assert online_keys == batch_keys

    def test_equivalence_across_thresholds(self):
        dataset = MiraDataset.synthesize(n_days=15.0, seed=89)
        fatal = dataset.fatal_events()
        for threshold in (0.3, 0.7):
            batch = similarity_filter(
                events_to_clusters(fatal), window_seconds=600, threshold=threshold
            )
            online = self._run_online(fatal, 600, threshold)
            assert len(online) == batch.n_rows
