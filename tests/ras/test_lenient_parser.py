"""Strict-vs-lenient contract of the RAS parser: every fault class the
chaos subsystem injects must raise in strict mode and quarantine in
lenient mode."""

import pytest

from repro.errors import ParseError
from repro.ingest import ParseReport
from repro.ras import RAS_COLUMNS, default_catalog, load_ras_log, validate_ras_table
from repro.table import Table, write_csv


def ras_table(**overrides):
    base = {
        "record_id": [0, 1, 2],
        "timestamp": [10.0, 20.0, 30.0],
        "msg_id": ["00010001", "00010001", "00010001"],
        "severity": ["INFO", "WARN", "FATAL"],
        "component": ["CNK", "CNK", "CNK"],
        "category": ["Software", "Software", "Software"],
        "location": ["R00-M0", "R00-M0", "R00-M0"],
        "message": ["a", "b", "c"],
        "block": ["", "", ""],
    }
    base.update(overrides)
    return Table(base)


class TestStrict:
    def test_unknown_severity_raises(self):
        with pytest.raises(ParseError, match="unknown severities"):
            validate_ras_table(ras_table(severity=["INFO", "BOGUS", "FATAL"]))

    def test_unsorted_timestamps_raise(self):
        with pytest.raises(ParseError, match="not sorted"):
            validate_ras_table(ras_table(timestamp=[10.0, 5.0, 30.0]))

    def test_negative_timestamp_raises(self):
        with pytest.raises(ParseError, match="negative"):
            validate_ras_table(ras_table(timestamp=[-1.0, 20.0, 30.0]))

    def test_non_numeric_timestamps_raise(self):
        with pytest.raises(ParseError, match="non-numeric"):
            validate_ras_table(ras_table(timestamp=["x", "y", "z"]))

    def test_unknown_msg_id_raises_with_catalog(self):
        table = ras_table(msg_id=["FFFFFFFF"] * 3)
        with pytest.raises(ParseError, match="unknown RAS message ids"):
            validate_ras_table(table, default_catalog())

    def test_missing_column_raises(self):
        table = ras_table().drop(["severity"])
        with pytest.raises(ParseError, match="missing columns"):
            validate_ras_table(table)

    def test_valid_table_returned(self):
        table = ras_table()
        assert validate_ras_table(table, default_catalog()) is table


class TestLenient:
    def test_unknown_severity_quarantined(self):
        report = ParseReport()
        out = validate_ras_table(
            ras_table(severity=["INFO", "BOGUS", "FATAL"]), report=report
        )
        assert out.n_rows == 2
        assert report.counts() == {"ras": 1}
        assert "unknown severity" in report.quarantined[0].reason

    def test_negative_timestamp_quarantined(self):
        report = ParseReport()
        out = validate_ras_table(
            ras_table(timestamp=[-5.0, 20.0, 30.0]), report=report
        )
        assert out.n_rows == 2
        assert "negative timestamp" in report.quarantined[0].reason

    def test_unparsable_timestamp_quarantined(self):
        report = ParseReport()
        out = validate_ras_table(
            ras_table(timestamp=["10.0", "oops", "30.0"]), report=report
        )
        assert out.n_rows == 2
        assert out["timestamp"].tolist() == [10.0, 30.0]
        assert "unparsable timestamp" in report.quarantined[0].reason

    def test_unsorted_resorted_with_note(self):
        report = ParseReport()
        out = validate_ras_table(
            ras_table(timestamp=[30.0, 20.0, 10.0]), report=report
        )
        assert out.n_rows == 3
        assert out["timestamp"].tolist() == [10.0, 20.0, 30.0]
        assert report.n_quarantined == 0
        assert any("re-sorted" in note for note in report.notes)

    def test_unknown_msg_id_quarantined(self):
        report = ParseReport()
        out = validate_ras_table(
            ras_table(msg_id=["00010001", "FFFFFFFF", "00010001"]),
            default_catalog(),
            report=report,
        )
        assert out.n_rows == 2
        assert "unknown msg_id" in report.quarantined[0].reason

    def test_duplicate_record_ids_deduplicated(self):
        report = ParseReport()
        out = validate_ras_table(
            ras_table(record_id=[0, 0, 2]), report=report
        )
        assert out.n_rows == 2
        assert "duplicate record_id" in report.quarantined[0].reason

    def test_missing_column_still_raises(self):
        table = ras_table().drop(["msg_id"])
        with pytest.raises(ParseError, match="missing columns"):
            validate_ras_table(table, report=ParseReport())

    def test_clean_table_untouched(self):
        report = ParseReport()
        out = validate_ras_table(ras_table(), report=report)
        assert out.n_rows == 3
        assert not report


class TestLoadRasLog:
    def test_lenient_load_from_disk(self, tmp_path):
        path = tmp_path / "ras.csv"
        write_csv(ras_table(severity=["INFO", "NONSENSE", "FATAL"]), path)
        report = ParseReport()
        out = load_ras_log(path, report=report)
        assert out.n_rows == 2
        assert report.counts() == {"ras": 1}

    def test_empty_file_raises_both_modes(self, tmp_path):
        path = tmp_path / "ras.csv"
        path.write_text("")
        with pytest.raises(ParseError, match="empty RAS log"):
            load_ras_log(path)
        with pytest.raises(ParseError, match="empty RAS log"):
            load_ras_log(path, report=ParseReport())

    def test_column_order_is_canonical(self):
        assert list(ras_table().column_names) == RAS_COLUMNS
