"""Online kernels vs. their batch counterparts: value identity."""

import numpy as np
import pytest

from repro.dataset.mira import MiraDataset
from repro.stream.online import (
    ComponentCounter,
    OnlineCusum,
    RollingMtti,
    UserFailureCounter,
    batch_component_counts,
    batch_cusum,
    batch_mtti,
    batch_user_failures,
)


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(2.0, seed=11, cache=False)


def _ras_rows_sorted(dataset):
    ras = dataset.ras.sort_by("timestamp")
    return ras.to_rows()


class TestCounters:
    def test_user_failures_match_batch(self, dataset):
        online = UserFailureCounter()
        for row in dataset.jobs.to_rows():
            online.update(row)
        assert online.result() == batch_user_failures(dataset.jobs)

    def test_user_failures_are_order_independent(self, dataset):
        forward = UserFailureCounter()
        backward = UserFailureCounter()
        rows = dataset.jobs.to_rows()
        for row in rows:
            forward.update(row)
        for row in reversed(rows):
            backward.update(row)
        assert forward.result() == backward.result()

    def test_component_counts_match_batch(self, dataset):
        online = ComponentCounter()
        for row in dataset.ras.to_rows():
            online.update(row)
        assert online.result() == batch_component_counts(dataset.ras)


class TestOnlineCusum:
    def test_changepoints_match_batch(self, dataset):
        online = OnlineCusum()
        for row in _ras_rows_sorted(dataset):
            online.update(row)
        assert online.result() == batch_cusum(dataset.ras)

    def test_bucketing_is_order_independent(self, dataset):
        forward = OnlineCusum()
        backward = OnlineCusum()
        rows = _ras_rows_sorted(dataset)
        for row in rows:
            forward.update(row)
        for row in reversed(rows):
            backward.update(row)
        assert forward.result() == backward.result()

    def test_state_round_trip(self, dataset):
        online = OnlineCusum()
        rows = _ras_rows_sorted(dataset)
        for row in rows[: len(rows) // 2]:
            online.update(row)
        clone = OnlineCusum()
        clone.restore(online.state())
        for row in rows[len(rows) // 2:]:
            online.update(row)
            clone.update(row)
        assert clone.result() == online.result()


class TestRollingMtti:
    def test_matches_batch_on_the_closed_window(self, dataset):
        online = RollingMtti()
        for row in _ras_rows_sorted(dataset):
            online.update(row)
        span = float(np.max(dataset.ras["timestamp"])) / 86400.0
        batch = batch_mtti(dataset.ras, span)
        result = online.result(span)
        assert result["n_clusters"] == batch["n_clusters"]
        assert (
            result["first_timestamps_checksum"]
            == batch["first_timestamps_checksum"]
        )
        assert result["mtti_days"] == batch["mtti_days"]

    def test_freeze_margin_prefix_is_provably_independent(self):
        # Two FATAL groups separated by a gap no filter stage can
        # bridge: the streamed (freeze-as-you-go) answer must equal the
        # batch answer over the concatenation.
        def fatal(ts, loc):
            return {
                "severity": "FATAL", "timestamp": ts, "msg_id": "M1",
                "location": loc, "message": "m",
            }

        events = [
            fatal(1000.0 + i * 10, f"R00-M0-N{i:02d}") for i in range(5)
        ]
        events += [
            fatal(100_000.0 + i * 10, f"R01-M0-N{i:02d}") for i in range(5)
        ]
        online = RollingMtti()
        for event in events:
            online.update(event)
        # The early group froze once the gap appeared behind it.
        assert online.result()["n_fatal_active"] < len(events)

        from repro.table import Table

        ras = Table.from_rows(
            [
                {
                    "record_id": i, "timestamp": e["timestamp"],
                    "msg_id": e["msg_id"], "severity": "FATAL",
                    "component": "c", "location": e["location"],
                    "message": e["message"],
                }
                for i, e in enumerate(events)
            ]
        )
        span = 100_100.0 / 86400.0
        batch = batch_mtti(ras, span)
        result = online.result(span)
        assert result["n_clusters"] == batch["n_clusters"]
        assert (
            result["first_timestamps_checksum"]
            == batch["first_timestamps_checksum"]
        )

    def test_state_round_trip_mid_stream(self, dataset):
        rows = _ras_rows_sorted(dataset)
        online = RollingMtti()
        for row in rows[: len(rows) // 3]:
            online.update(row)
        clone = RollingMtti()
        clone.restore(online.state())
        for row in rows[len(rows) // 3:]:
            online.update(row)
            clone.update(row)
        assert clone.result(2.0) == online.result(2.0)
