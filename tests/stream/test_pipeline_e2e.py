"""StreamPipeline end-to-end: parity, kill–resume identity, quarantine."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.dataset.mira import MiraDataset
from repro.errors import CheckpointError, QuarantineOverflowError
from repro.faults.streams import StreamFeeder
from repro.stream.pipeline import StreamPipeline

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

RAS_HEADER = (
    "record_id,timestamp,msg_id,severity,component,category,location,"
    "message,block"
)


def _ras_line(record_id, ts, severity="FATAL"):
    return (
        f"{record_id},{ts},M42,{severity},MMCS,SOFTWARE,"
        f"R00-M0-N00,boom,B0"
    )


def _write_ras(feed_dir, lines):
    feed_dir.mkdir(parents=True, exist_ok=True)
    (feed_dir / "ras.csv").write_text(
        "\n".join([RAS_HEADER] + lines) + "\n"
    )


def _drain(pipeline, max_ticks=500):
    idle = 0
    for _ in range(max_ticks):
        if not pipeline.tick()["progressed"]:
            idle += 1
            if idle >= 2:
                return
        else:
            idle = 0
    raise AssertionError("pipeline failed to drain the feed")


@pytest.fixture(scope="module")
def saved_dataset(tmp_path_factory):
    directory = tmp_path_factory.mktemp("closed-window") / "data"
    MiraDataset.synthesize(1.0, seed=11, cache=False).save(directory)
    return directory


class TestCleanParity:
    def test_streamed_equals_batch_on_a_real_dataset(
        self, saved_dataset, tmp_path
    ):
        feed = tmp_path / "feed"
        StreamFeeder(saved_dataset, feed, seed=1, chunk_rows=500).run()
        pipeline = StreamPipeline(feed, tmp_path / "ckpt")
        _drain(pipeline)
        verdict = pipeline.verify_batch()
        assert verdict["ok"], verdict["checks"]

    def test_duplicate_appends_have_exactly_once_effects(self, tmp_path):
        feed = tmp_path / "feed"
        lines = [_ras_line(i, 1000.0 + i) for i in range(5)]
        _write_ras(feed, lines + lines)  # everything shipped twice
        pipeline = StreamPipeline(feed, tmp_path / "ckpt")
        _drain(pipeline)
        results = pipeline.projected_results()
        assert results["sources"]["ras"]["admitted"] == 5
        assert results["sources"]["ras"]["duplicates"] == 5
        assert pipeline.verify_batch()["ok"]


class TestLateRows:
    def test_late_row_is_quarantined_and_accounted(self, tmp_path):
        feed = tmp_path / "feed"
        _write_ras(feed, [_ras_line(1, 10_000.0)])
        pipeline = StreamPipeline(
            feed, tmp_path / "ckpt", lateness={"ras": 0.0}
        )
        _drain(pipeline)  # seals through 10000
        with open(feed / "ras.csv", "a") as fh:
            fh.write(_ras_line(2, 500.0) + "\n")  # behind the seal
        _drain(pipeline)
        results = pipeline.projected_results()
        ras = results["sources"]["ras"]
        assert ras["late"] == 1
        assert ras["quarantined"] == 1
        assert ras["rows_applied"] == 1  # the late row never applied
        assert pipeline.quarantine_counts() == {"ras": 1}
        # Parity still holds: verify excludes exactly the late ids.
        assert pipeline.verify_batch()["ok"]

    def test_replayed_late_row_stays_deduplicated(self, tmp_path):
        feed = tmp_path / "feed"
        _write_ras(feed, [_ras_line(1, 10_000.0)])
        pipeline = StreamPipeline(
            feed, tmp_path / "ckpt", lateness={"ras": 0.0}
        )
        _drain(pipeline)
        with open(feed / "ras.csv", "a") as fh:
            fh.write(_ras_line(2, 500.0) + "\n")
            fh.write(_ras_line(2, 500.0) + "\n")  # shipper retried it
        _drain(pipeline)
        ras = pipeline.projected_results()["sources"]["ras"]
        assert ras["late"] == 1  # quarantined once, deduped after
        assert ras["duplicates"] == 1


class TestQuarantine:
    def test_malformed_rows_are_counted_never_dropped(self, tmp_path):
        feed = tmp_path / "feed"
        _write_ras(feed, [_ras_line(1, 1000.0), "not,a,ras,row"])
        pipeline = StreamPipeline(feed, tmp_path / "ckpt")
        _drain(pipeline)
        assert pipeline.quarantine_counts() == {"ras": 1}
        assert pipeline.projected_results()["sources"]["ras"]["admitted"] == 1

    def test_quarantine_bound_is_enforced(self, tmp_path):
        feed = tmp_path / "feed"
        _write_ras(feed, ["garbage"] * 5)
        pipeline = StreamPipeline(feed, tmp_path / "ckpt", max_bad_rows=3)
        with pytest.raises(QuarantineOverflowError, match="more than 3"):
            _drain(pipeline)

    def test_quarantine_counts_survive_resume(self, tmp_path):
        feed = tmp_path / "feed"
        _write_ras(feed, [_ras_line(1, 1000.0), "garbage"])
        pipeline = StreamPipeline(feed, tmp_path / "ckpt")
        _drain(pipeline)
        pipeline.checkpoint()
        resumed = StreamPipeline(feed, tmp_path / "ckpt")
        assert resumed.resume() is True
        assert resumed.quarantine_counts() == {"ras": 1}
        assert resumed.quarantined_total() == 1


class TestBackpressure:
    def test_full_buffer_skips_polling_only_that_source(self, tmp_path):
        feed = tmp_path / "feed"
        _write_ras(feed, [_ras_line(i, 1000.0 + i) for i in range(10)])
        # Huge lateness: nothing ever seals, so the tiny buffer fills.
        pipeline = StreamPipeline(
            feed, tmp_path / "ckpt",
            lateness={"ras": 1e12}, pending_capacity=5,
        )
        pipeline.tick()
        assert pipeline.results()["sources"]["ras"]["pending"] >= 5
        before = pipeline.backpressure_events
        pipeline.tick()
        assert pipeline.backpressure_events > before


class TestCheckpointLifecycle:
    def test_stale_temps_are_pruned_at_construction(self, tmp_path):
        feed = tmp_path / "feed"
        _write_ras(feed, [_ras_line(1, 1000.0)])
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        dead_pid = 2 ** 22 + 54321
        (ckpt / f"checkpoint.json.tmp.{dead_pid}").write_text("torn")
        pipeline = StreamPipeline(feed, ckpt)
        assert pipeline.pruned_temps == 1

    def test_resume_refuses_a_foreign_feed(self, tmp_path):
        feed_a = tmp_path / "feed-a"
        feed_b = tmp_path / "feed-b"
        for feed in (feed_a, feed_b):
            _write_ras(feed, [_ras_line(1, 1000.0)])
        ckpt = tmp_path / "ckpt"
        pipeline = StreamPipeline(feed_a, ckpt)
        _drain(pipeline)
        pipeline.checkpoint()
        other = StreamPipeline(feed_b, ckpt)
        with pytest.raises(CheckpointError, match="tracks feed"):
            other.resume()


class TestKillResumeIdentity:
    def test_interrupted_run_matches_uninterrupted_byte_for_byte(
        self, saved_dataset, tmp_path
    ):
        # Feed grows in phases; run B is "killed" (object discarded,
        # uncheckpointed progress lost) between phases and resumed from
        # its checkpoint.  Identity state must match run A exactly.
        feed_a, feed_b = tmp_path / "feed-a", tmp_path / "feed-b"
        ckpt_a, ckpt_b = tmp_path / "ckpt-a", tmp_path / "ckpt-b"
        feeders = [
            StreamFeeder(saved_dataset, feed, seed=3, chunk_rows=120)
            for feed in (feed_a, feed_b)
        ]
        run_a = StreamPipeline(feed_a, ckpt_a)
        run_b = StreamPipeline(feed_b, ckpt_b)
        phase = 0
        while not feeders[0].done:
            for feeder in feeders:
                feeder.step()
            _drain(run_a)
            _drain(run_b)
            run_b.checkpoint()
            if phase % 2 == 0:
                # SIGKILL simulation: drop the object (in-memory state
                # beyond the checkpoint is gone), resume from disk.
                run_b = StreamPipeline(feed_b, ckpt_b)
                assert run_b.resume() is True
            phase += 1
        _drain(run_a)
        _drain(run_b)
        assert run_a.state_json() == run_b.state_json()

    def test_progress_after_checkpoint_is_replayed_not_lost(
        self, tmp_path
    ):
        feed = tmp_path / "feed"
        _write_ras(feed, [_ras_line(i, 1000.0 + i * 10) for i in range(4)])
        pipeline = StreamPipeline(feed, tmp_path / "ckpt")
        _drain(pipeline)
        pipeline.checkpoint()
        with open(feed / "ras.csv", "a") as fh:
            fh.write(_ras_line(10, 2000.0) + "\n")
        _drain(pipeline)  # progressed but NOT checkpointed
        killed_state = pipeline.state_json()
        resumed = StreamPipeline(feed, tmp_path / "ckpt")
        assert resumed.resume() is True
        _drain(resumed)  # re-reads the uncheckpointed tail
        assert resumed.state_json() == killed_state


class TestSubprocessSigkill:
    def test_repro_tail_survives_a_real_sigkill(
        self, saved_dataset, tmp_path
    ):
        feed = tmp_path / "feed"
        ckpt = tmp_path / "ckpt"
        StreamFeeder(saved_dataset, feed, seed=7, chunk_rows=300).run()
        env = {**os.environ, "PYTHONPATH": REPO_SRC}
        command = [
            sys.executable, "-c",
            "import sys; from repro.stream.cli import main_tail; "
            "sys.exit(main_tail(sys.argv[1:]))",
            str(feed), "--checkpoint-dir", str(ckpt),
            "--interval", "0.01", "--max-lines", "50",
        ]
        victim = subprocess.Popen(
            command, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        time.sleep(1.5)  # let it make (and checkpoint) partial progress
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10)
        assert victim.returncode == -signal.SIGKILL
        state_path = tmp_path / "state.json"
        finish = subprocess.run(
            command[:3] + [
                str(feed), "--checkpoint-dir", str(ckpt), "--oneshot",
                "--interval", "0", "--verify-batch",
                "--state-json", str(state_path),
            ],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert finish.returncode == 0, finish.stdout + finish.stderr
        assert "matches batch kernels" in finish.stdout
        # An uninterrupted reference run over the same bytes agrees.
        reference = StreamPipeline(feed, tmp_path / "ckpt-ref")
        _drain(reference)
        assert (
            state_path.read_text().strip() == reference.state_json()
        )
        leftovers = [p for p in ckpt.iterdir() if ".tmp." in p.name]
        assert leftovers == []
