"""StreamFeeder chaos injectors: determinism and streamed/batch parity."""

import pytest

from repro.dataset.mira import MiraDataset
from repro.errors import FaultError
from repro.faults.streams import STREAM_FAULTS, StreamFeeder
from repro.stream.pipeline import StreamPipeline


@pytest.fixture(scope="module")
def saved_dataset(tmp_path_factory):
    directory = tmp_path_factory.mktemp("feeder-src") / "data"
    MiraDataset.synthesize(1.0, seed=23, cache=False).save(directory)
    return directory


def _drain(pipeline, max_ticks=800):
    idle = 0
    for _ in range(max_ticks):
        if not pipeline.tick()["progressed"]:
            idle += 1
            if idle >= 2:
                return
        else:
            idle = 0
    raise AssertionError("pipeline failed to drain the feed")


def _feed_bytes(feed_dir):
    return {
        path.name: path.read_bytes()
        for path in sorted(feed_dir.iterdir())
        if not path.name.startswith(".")
    }


class TestDeterminism:
    def test_same_seed_produces_identical_feeds(
        self, saved_dataset, tmp_path
    ):
        feeds = []
        for name in ("run-a", "run-b"):
            feed = tmp_path / name
            StreamFeeder(
                saved_dataset, feed, seed=9, chunk_rows=150,
                faults=STREAM_FAULTS, rate=0.3,
            ).run()
            feeds.append(_feed_bytes(feed))
        assert feeds[0] == feeds[1]

    def test_different_seeds_diverge(self, saved_dataset, tmp_path):
        feeds = []
        for seed in (1, 2):
            feed = tmp_path / f"seed-{seed}"
            StreamFeeder(
                saved_dataset, feed, seed=seed, chunk_rows=150,
                faults=("duplicate_replay",), rate=0.5,
            ).run()
            feeds.append(_feed_bytes(feed))
        assert feeds[0] != feeds[1]


class TestChaosParity:
    @pytest.mark.parametrize("fault", STREAM_FAULTS)
    def test_each_fault_alone_preserves_parity(
        self, saved_dataset, tmp_path, fault
    ):
        feed = tmp_path / "feed"
        feeder = StreamFeeder(
            saved_dataset, feed, seed=5, chunk_rows=200,
            faults=(fault,), rate=0.4,
        )
        pipeline = StreamPipeline(feed, tmp_path / "ckpt")
        while not feeder.done:
            feeder.step()
            _drain(pipeline)
        _drain(pipeline)
        verdict = pipeline.verify_batch()
        assert verdict["ok"], (fault, verdict["checks"])

    def test_all_faults_together_preserve_parity(
        self, saved_dataset, tmp_path
    ):
        feed = tmp_path / "feed"
        feeder = StreamFeeder(
            saved_dataset, feed, seed=13, chunk_rows=180,
            faults=STREAM_FAULTS, rate=0.35,
        )
        pipeline = StreamPipeline(feed, tmp_path / "ckpt")
        while not feeder.done:
            feeder.step()
            _drain(pipeline)
        _drain(pipeline)
        verdict = pipeline.verify_batch()
        assert verdict["ok"], verdict["checks"]


class TestTypedFailures:
    def test_unknown_fault_is_refused(self, saved_dataset, tmp_path):
        with pytest.raises(FaultError, match="unknown stream fault"):
            StreamFeeder(
                saved_dataset, tmp_path / "feed", faults=("meteor",)
            )

    def test_missing_source_is_typed(self, tmp_path):
        with pytest.raises(FaultError, match="source dataset not found"):
            StreamFeeder(tmp_path / "nope", tmp_path / "feed")
