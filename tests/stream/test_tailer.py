"""FileTailer: rotation, truncation, torn lines, and resume state."""

import os

import pytest

from repro.errors import StreamError
from repro.stream.tailer import FileTailer


def _append(path, text):
    with open(path, "a") as fh:
        fh.write(text)


@pytest.fixture()
def feed(tmp_path):
    return tmp_path / "ras.csv"


class TestBasicTailing:
    def test_missing_file_is_benign(self, feed):
        tailer = FileTailer(feed)
        result = tailer.poll()
        assert result.exists is False
        assert result.lines == []
        assert not result.progressed

    def test_complete_lines_come_out_in_order(self, feed):
        _append(feed, "a\nb\nc\n")
        tailer = FileTailer(feed)
        assert tailer.poll().lines == ["a", "b", "c"]
        # Nothing new: the offset holds.
        assert tailer.poll().lines == []
        _append(feed, "d\n")
        assert tailer.poll().lines == ["d"]

    def test_torn_trailing_line_is_held_back(self, feed):
        _append(feed, "a\nb\npartial")
        tailer = FileTailer(feed)
        assert tailer.poll().lines == ["a", "b"]
        # The fragment stays invisible until its newline lands.
        assert tailer.poll().lines == []
        _append(feed, "-done\n")
        assert tailer.poll().lines == ["partial-done"]

    def test_max_lines_bounds_one_poll(self, feed):
        _append(feed, "".join(f"r{i}\n" for i in range(10)))
        tailer = FileTailer(feed, max_lines=4)
        assert tailer.poll().lines == ["r0", "r1", "r2", "r3"]
        assert tailer.poll().lines == ["r4", "r5", "r6", "r7"]
        assert tailer.poll().lines == ["r8", "r9"]

    def test_read_limit_cut_line_is_reread_whole(self, feed):
        _append(feed, "x" * 100 + "\nsecond\n")
        tailer = FileTailer(feed, read_limit=50)
        # First poll's slice ends mid-line: nothing complete yet is
        # consumed beyond what terminated inside the window.
        assert tailer.poll().lines == []
        tailer.read_limit = 1 << 20
        assert tailer.poll().lines == ["x" * 100, "second"]


class TestRotation:
    def test_logrotate_rename_drains_the_old_tail(self, feed):
        _append(feed, "a\nb\n")
        tailer = FileTailer(feed)
        assert tailer.poll().lines == ["a", "b"]
        # Writer appends one more line, then rotates before we poll.
        _append(feed, "c\n")
        feed.rename(feed.with_name(feed.name + ".1"))
        _append(feed, "d\n")
        result = tailer.poll()
        assert result.rotated is True
        assert result.recovered == ["c"]  # drained from ras.csv.1
        assert result.lines == ["d"]
        assert result.lost_tail is False
        assert tailer.rotations == 1
        assert tailer.recovered_lines == 1

    def test_same_size_new_inode_replacement_is_a_rotation(self, feed):
        # Regression: a file swapped for an *identical-length* copy must
        # read as a rotation (identity check), not a silent no-op (size
        # heuristic).
        _append(feed, "AAAA\n")
        tailer = FileTailer(feed)
        assert tailer.poll().lines == ["AAAA"]
        replacement = feed.with_name("swap.tmp")
        replacement.write_text("BBBB\n")  # same byte length
        os.replace(replacement, feed)
        result = tailer.poll()
        assert result.rotated is True
        assert result.lines == ["BBBB"]
        assert tailer.rotations == 1

    def test_unrecoverable_rotation_counts_a_lost_tail(self, feed):
        _append(feed, "a\nb\n")
        tailer = FileTailer(feed)
        tailer.poll()
        _append(feed, "never-read\n")
        # Replace without leaving a .1 sibling: the unread tail is gone.
        replacement = feed.with_name("swap.tmp")
        replacement.write_text("fresh\n")
        os.replace(replacement, feed)
        result = tailer.poll()
        assert result.rotated is True
        assert result.lost_tail is True
        assert result.recovered == []
        assert result.lines == ["fresh"]
        assert tailer.lost_tails == 1

    def test_sibling_with_wrong_inode_is_not_trusted(self, feed):
        _append(feed, "a\n")
        tailer = FileTailer(feed)
        tailer.poll()
        _append(feed, "tail\n")
        # A .1 sibling exists but is some other file entirely.
        feed.with_name(feed.name + ".1").write_text("imposter\n" * 2)
        replacement = feed.with_name("swap.tmp")
        replacement.write_text("new\n")
        os.replace(replacement, feed)
        result = tailer.poll()
        assert result.lost_tail is True
        assert result.recovered == []
        assert result.lines == ["new"]


class TestTruncation:
    def test_shrunk_file_resets_and_rereads(self, feed):
        _append(feed, "a\nb\nc\n")
        tailer = FileTailer(feed)
        assert tailer.poll().lines == ["a", "b", "c"]
        # In-place rewrite, same inode, shorter content.
        with open(feed, "w") as fh:
            fh.write("a\n")
        result = tailer.poll()
        assert result.truncated is True
        assert result.lines == ["a"]  # re-read; dedup upstream absorbs
        assert tailer.truncations == 1


class TestStateRoundTrip:
    def test_restore_resumes_byte_exactly(self, feed):
        _append(feed, "a\nb\nc\n")
        first = FileTailer(feed)
        assert first.poll().lines == ["a", "b", "c"]
        state = first.state()
        _append(feed, "d\ne\n")
        second = FileTailer(feed)
        second.restore(state)
        assert second.poll().lines == ["d", "e"]
        assert second.state()["offset"] == os.path.getsize(feed)

    def test_counters_survive_the_round_trip(self, feed):
        _append(feed, "a\n")
        tailer = FileTailer(feed)
        tailer.poll()
        tailer.rotations, tailer.lost_tails = 3, 1
        clone = FileTailer(feed)
        clone.restore(tailer.state())
        assert clone.rotations == 3
        assert clone.lost_tails == 1


class TestErrors:
    def test_unreadable_file_raises_typed_stream_error(self, feed):
        _append(feed, "a\n")
        tailer = FileTailer(feed, retries=1, sleep=lambda _s: None)
        os.chmod(feed, 0o000)
        try:
            if os.geteuid() == 0:  # root ignores permission bits
                pytest.skip("permission-based fault needs a non-root user")
            with pytest.raises(StreamError, match="cannot read feed file"):
                tailer.poll()
        finally:
            os.chmod(feed, 0o644)
