"""Atomic stream checkpoints: round-trip, corruption, temp pruning."""

import json

import pytest

from repro.errors import CheckpointError
from repro.stream.checkpoint import (
    CHECKPOINT_NAME,
    STREAM_SCHEMA,
    load_checkpoint,
    prune_checkpoint_temps,
    save_checkpoint,
)


class TestRoundTrip:
    def test_save_then_load_is_identity(self, tmp_path):
        payload = {"feed": "/f", "identity": {"x": [1, 2]}, "meta": {"t": 3}}
        path = save_checkpoint(tmp_path, payload)
        assert path == tmp_path / CHECKPOINT_NAME
        loaded = load_checkpoint(tmp_path)
        for key, value in payload.items():
            assert loaded[key] == value

    def test_missing_checkpoint_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path) is None

    def test_no_temp_files_survive_a_save(self, tmp_path):
        save_checkpoint(tmp_path, {"a": 1})
        leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []


class TestCorruption:
    def test_unparsable_json_is_typed(self, tmp_path):
        (tmp_path / CHECKPOINT_NAME).write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(tmp_path)

    def test_wrong_schema_is_typed(self, tmp_path):
        (tmp_path / CHECKPOINT_NAME).write_text(
            json.dumps({"schema": STREAM_SCHEMA + 1,
                        "kind": "stream-checkpoint"})
        )
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(tmp_path)

    def test_wrong_kind_is_typed(self, tmp_path):
        (tmp_path / CHECKPOINT_NAME).write_text(
            json.dumps({"schema": STREAM_SCHEMA, "kind": "something-else"})
        )
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path)


class TestTempPruning:
    def test_dead_writer_temps_are_reclaimed(self, tmp_path):
        # A SIGKILLed writer leaves <name>.tmp.<pid>; PID 1 is never a
        # dead test process, so fabricate an id that cannot be alive.
        dead_pid = 2 ** 22 + 12345  # beyond default pid_max
        stale = tmp_path / f"{CHECKPOINT_NAME}.tmp.{dead_pid}"
        stale.write_text("half-written")
        assert prune_checkpoint_temps(tmp_path) == 1
        assert not stale.exists()

    def test_nothing_to_prune_is_zero(self, tmp_path):
        assert prune_checkpoint_temps(tmp_path) == 0
