"""WatermarkBuffer boundary semantics and checkpoint round-trips."""

import pytest

from repro.stream.watermark import WatermarkBuffer


def _rows(buffer):
    return [r["id"] for r in buffer.seal()]


class TestBoundaries:
    def test_event_time_exactly_at_watermark_seals_now(self):
        buffer = WatermarkBuffer(lateness=10.0)
        assert buffer.offer(100.0, {"id": "high"})
        assert buffer.offer(90.0, {"id": "edge"})  # == watermark
        assert buffer.watermark == 90.0
        assert _rows(buffer) == ["edge"]  # inclusive seal
        assert buffer.pending_count == 1  # "high" still waiting

    def test_arrival_at_sealed_through_is_late(self):
        buffer = WatermarkBuffer(lateness=10.0)
        buffer.offer(100.0, {"id": "a"})
        buffer.seal()  # sealed_through -> 90.0
        # Exactly at the sealed boundary: applying it would double-count.
        assert buffer.offer(90.0, {"id": "late"}) is False
        assert buffer.late == 1
        # Just above the boundary: merely out of order, admitted.
        assert buffer.offer(90.5, {"id": "ok"}) is True
        assert buffer.late == 1

    def test_duplicate_timestamps_seal_in_arrival_order(self):
        buffer = WatermarkBuffer(lateness=0.0)
        for name in ("first", "second", "third"):
            buffer.offer(50.0, {"id": name})
        assert _rows(buffer) == ["first", "second", "third"]

    def test_clock_regression_is_buffered_not_late(self):
        buffer = WatermarkBuffer(lateness=40.0)
        buffer.offer(200.0, {"id": "new"})
        # Event time drops below max_seen but stays above the sealed
        # floor: out of order, must seal in event-time position.
        assert buffer.offer(150.0, {"id": "old"}) is True
        assert buffer.late == 0
        assert buffer.max_seen == 200.0  # regression never moves max
        assert _rows(buffer) == ["old"]  # watermark 160: only "old" due

    def test_regressed_row_seals_in_event_time_order(self):
        buffer = WatermarkBuffer(lateness=10.0)
        buffer.offer(200.0, {"id": "new"})
        buffer.offer(150.0, {"id": "old"})
        buffer.offer(300.0, {"id": "newest"})  # watermark -> 290
        assert _rows(buffer) == ["old", "new"]

    def test_seal_without_rows_is_empty(self):
        buffer = WatermarkBuffer(lateness=5.0)
        assert buffer.seal() == []
        assert buffer.watermark is None


class TestBackpressure:
    def test_full_flags_at_capacity(self):
        buffer = WatermarkBuffer(lateness=1e9, capacity=3)
        for i in range(3):
            assert buffer.full is False
            buffer.offer(float(i), {"id": i})
        assert buffer.full is True

    def test_invalid_parameters_are_refused(self):
        with pytest.raises(ValueError, match="lateness"):
            WatermarkBuffer(lateness=-1.0)
        with pytest.raises(ValueError, match="capacity"):
            WatermarkBuffer(lateness=0.0, capacity=0)


class TestDrainView:
    def test_drain_view_projects_without_sealing(self):
        buffer = WatermarkBuffer(lateness=1e9)
        buffer.offer(20.0, {"id": "b"})
        buffer.offer(10.0, {"id": "a"})
        assert [r["id"] for r in buffer.drain_view()] == ["a", "b"]
        assert buffer.pending_count == 2  # untouched
        assert buffer.sealed_through is None


class TestStateRoundTrip:
    def test_restore_is_value_identical(self):
        buffer = WatermarkBuffer(lateness=10.0)
        buffer.offer(100.0, {"id": "a"})
        buffer.seal()  # watermark 90: "a" stays pending
        buffer.offer(90.0, {"id": "late"})  # counted late
        buffer.offer(95.0, {"id": "pending"})
        clone = WatermarkBuffer(lateness=10.0)
        clone.restore(buffer.state())
        assert clone.state() == buffer.state()
        assert clone.late == 1
        assert clone.pending_count == 2
        # And the clone seals exactly like the original would.
        buffer.offer(200.0, {"id": "x"})
        clone.offer(200.0, {"id": "x"})
        assert [r["id"] for r in buffer.seal()] == [
            r["id"] for r in clone.seal()
        ]
