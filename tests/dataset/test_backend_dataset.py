"""Backend identity on disk: meta round-trip, catalog validation, and
the refusal paths for spec-less or mislabeled datasets."""

import dataclasses
import json

import pytest

from repro.adapters import get_backend
from repro.bgq.machine import MIRA
from repro.dataset import MiraDataset, validate_dataset
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def google_dataset():
    return MiraDataset.synthesize(n_days=4.0, seed=13, backend="google")


@pytest.fixture()
def saved_google(google_dataset, tmp_path):
    google_dataset.save(tmp_path / "ds")
    return tmp_path / "ds"


class TestMetaRoundTrip:
    def test_non_mira_spec_survives_the_meta_record(
        self, google_dataset, saved_google
    ):
        loaded = MiraDataset.load(saved_google, cache=False)
        assert loaded.backend == "google"
        assert loaded.spec == get_backend("google").spec
        assert loaded.spec != MIRA

    def test_meta_without_spec_fields_is_a_typed_error(self, saved_google):
        meta_path = saved_google / "meta.jsonl"
        records = [
            json.loads(line) for line in meta_path.read_text().splitlines()
        ]
        stripped = [
            {
                k: v
                for k, v in record.items()
                if k not in ("rack_rows", "rack_columns", "midplanes_per_rack")
            }
            for record in records
        ]
        meta_path.write_text(
            "".join(json.dumps(r) + "\n" for r in stripped)
        )
        with pytest.raises(DatasetError, match="machine-spec"):
            MiraDataset.load(saved_google, cache=False)

    def test_synthesize_rejects_spec_and_backend_together(self):
        from repro.bgq.machine import MIRA_SMALL

        with pytest.raises(ValueError, match="spec"):
            MiraDataset.synthesize(
                n_days=1.0, seed=0, spec=MIRA_SMALL, backend="google"
            )

    def test_synthesize_rejects_scale_on_non_mira_backend(self):
        with pytest.raises(ValueError, match="scale"):
            MiraDataset.synthesize(n_days=1.0, seed=0, scale=2, backend="google")


class TestCatalogValidation:
    def test_google_dataset_validates_against_google_catalog(
        self, google_dataset
    ):
        report = validate_dataset(google_dataset)
        assert report["ras_catalog"] == "ok"

    def test_mislabeled_backend_fails_catalog_check(self, google_dataset):
        mislabeled = dataclasses.replace(google_dataset, backend="mira")
        with pytest.raises(DatasetError, match="catalog"):
            validate_dataset(mislabeled)

    def test_unknown_backend_fails_validation(self, google_dataset):
        unknown = dataclasses.replace(google_dataset, backend="crayxc40")
        with pytest.raises(DatasetError, match="unknown trace backend"):
            validate_dataset(unknown)
