"""Failure-injection tests: corrupted inputs must fail loudly, not quietly.

A toolkit consuming multi-GB production logs must reject malformed
input with actionable errors rather than producing subtly wrong
analyses.  These tests corrupt on-disk datasets and CSVs in targeted
ways and assert the error surface.
"""

import pytest

from repro.dataset import MiraDataset, validate_dataset
from repro.errors import DatasetError, ParseError, ReproError
from repro.ras import default_catalog, load_ras_log
from repro.scheduler import load_job_log


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    directory = tmp_path_factory.mktemp("ds") / "mira"
    MiraDataset.synthesize(n_days=8.0, seed=55).save(directory)
    return directory


def _corrupt(path, transform):
    text = path.read_text()
    path.write_text(transform(text))


class TestCorruptedJobLog:
    def test_truncated_file(self, saved, tmp_path):
        import shutil

        target = tmp_path / "ds"
        shutil.copytree(saved, target)
        jobs = target / "jobs.csv"
        lines = jobs.read_text().splitlines()
        # Chop a line in half (ragged row).
        lines[3] = lines[3].split(",")[0]
        jobs.write_text("\n".join(lines))
        with pytest.raises((ParseError, ValueError)):
            MiraDataset.load(target)

    def test_negative_runtime(self, saved, tmp_path):
        import shutil

        target = tmp_path / "ds"
        shutil.copytree(saved, target)
        table = load_job_log(target / "jobs.csv")
        broken = table.with_column("end_time", table["start_time"] - 10.0)
        from repro.table import write_csv

        write_csv(broken, target / "jobs.csv")
        with pytest.raises(ParseError, match="end_time"):
            MiraDataset.load(target)

    def test_exit_status_out_of_range(self, saved, tmp_path):
        import shutil

        target = tmp_path / "ds"
        shutil.copytree(saved, target)
        table = load_job_log(target / "jobs.csv")
        broken = table.with_column("exit_status", [999] * table.n_rows)
        from repro.table import write_csv

        write_csv(broken, target / "jobs.csv")
        with pytest.raises(ParseError, match="exit statuses"):
            MiraDataset.load(target)


class TestCorruptedRasLog:
    def test_severity_typo(self, saved, tmp_path):
        import shutil

        target = tmp_path / "ds"
        shutil.copytree(saved, target)
        _corrupt(target / "ras.csv", lambda t: t.replace("FATAL", "FATAAL"))
        with pytest.raises(ParseError, match="severities"):
            MiraDataset.load(target)

    def test_unknown_msg_id_vs_catalog(self, saved):
        table = load_ras_log(saved / "ras.csv")
        broken = table.with_column("msg_id", ["DEADBEEF"] * table.n_rows)
        from repro.ras import validate_ras_table

        with pytest.raises(ParseError, match="message ids"):
            validate_ras_table(broken, catalog=default_catalog())


class TestCorruptedMetadata:
    def test_missing_meta(self, saved, tmp_path):
        import shutil

        target = tmp_path / "ds"
        shutil.copytree(saved, target)
        (target / "meta.jsonl").unlink()
        with pytest.raises(DatasetError, match="missing"):
            MiraDataset.load(target)

    def test_garbled_meta(self, saved, tmp_path):
        import shutil

        target = tmp_path / "ds"
        shutil.copytree(saved, target)
        (target / "meta.jsonl").write_text("not json\n")
        with pytest.raises(Exception):
            MiraDataset.load(target)


class TestErrorHierarchy:
    def test_all_toolkit_errors_catchable(self):
        """Every deliberate error derives from ReproError."""
        from repro import errors

        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, ReproError)

    def test_cross_log_errors_are_dataset_errors(self, saved):
        import dataclasses

        dataset = MiraDataset.load(saved)
        broken = dataclasses.replace(
            dataset, io=dataset.io.with_column("job_id", [10**9] * dataset.io.n_rows)
        )
        with pytest.raises(DatasetError):
            validate_dataset(broken)
