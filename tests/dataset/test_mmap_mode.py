"""``mode="mmap"`` datasets: arena parity, worker attach, invalidation.

The zero-copy arena must be an invisible optimization: every
experiment result, every summary, and every worker hand-off has to be
value-identical to the in-RAM path.  These tests run a short window
(days/seed fixed) through both modes and diff the serialized results.
"""

import json
import os
import pickle
import re

import numpy as np
import pytest

import repro.dataset.cache as cache_mod
from repro.dataset import MiraDataset
from repro.errors import ParseError
from repro.table.arena import detach_all

DAYS, SEED = 6.0, 2019


@pytest.fixture(autouse=True)
def synth_cache_dir(tmp_path, monkeypatch):
    """Throwaway synthesis cache + fresh arena attachments per test."""
    directory = tmp_path / "synth-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
    detach_all()
    yield directory
    detach_all()


def _pair():
    ram = MiraDataset.synthesize(n_days=DAYS, seed=SEED, mode="ram")
    mmap = MiraDataset.synthesize(n_days=DAYS, seed=SEED, mode="mmap")
    return ram, mmap


class TestParity:
    def test_tables_and_summary_identical(self):
        ram, mmap = _pair()
        assert mmap.jobs._arena is not None
        assert ram.jobs._arena is None
        for name, table in ram._tables().items():
            assert mmap._tables()[name] == table, name
        assert json.dumps(ram.summary(), sort_keys=True) == json.dumps(
            mmap.summary(), sort_keys=True
        )

    def test_every_experiment_identical(self):
        from repro.experiments import all_experiments, run_experiment
        from repro.experiments.journal import result_to_json

        from repro.errors import ReproError

        ram, mmap = _pair()
        for experiment_id in all_experiments():
            try:
                a = result_to_json(run_experiment(experiment_id, ram))
            except (ReproError, ValueError) as error:
                # A short window starves some analyses (e.g. too few
                # interruption intervals); mmap must starve identically.
                with pytest.raises(type(error), match=re.escape(str(error)[:40])):
                    run_experiment(experiment_id, mmap)
                continue
            b = result_to_json(run_experiment(experiment_id, mmap))
            assert json.dumps(a, sort_keys=True) == json.dumps(
                b, sort_keys=True
            ), experiment_id

    def test_numeric_columns_are_lazy_views(self):
        _, mmap = _pair()
        col = mmap.jobs["start_time"]
        assert isinstance(col, np.memmap)
        assert not col.flags.writeable

    def test_load_mmap_matches_load_ram(self, tmp_path):
        ram, _ = _pair()
        directory = tmp_path / "saved"
        ram.save(directory)
        loaded_ram = MiraDataset.load(directory, mode="ram")
        loaded_mmap = MiraDataset.load(directory, mode="mmap")
        assert loaded_mmap.jobs._arena is not None
        for name, table in loaded_ram._tables().items():
            assert loaded_mmap._tables()[name] == table, name


class TestDescriptorHandOff:
    def test_pickled_dataset_is_tiny_and_round_trips(self):
        ram, mmap = _pair()
        blob = pickle.dumps(mmap)
        assert len(blob) < 4 * len(pickle.dumps(ram.spec)) + 4096
        assert len(blob) < len(pickle.dumps(ram)) / 10
        restored = pickle.loads(blob)
        assert restored.summary() == mmap.summary()

    def test_engine_pool_equivalence(self):
        """A 2-worker suite over mmap matches the in-process RAM suite."""
        from repro.experiments import run_suite
        from repro.experiments.journal import result_to_json

        ram, mmap = _pair()
        ids = ["e01", "e03"]
        solo = run_suite(ram, ids, jobs=1)
        pooled = run_suite(mmap, ids, jobs=2)
        for experiment_id in ids:
            assert solo.outcome(experiment_id).status == "ok"
            assert pooled.outcome(experiment_id).status == "ok"
            a = result_to_json(solo.outcome(experiment_id).result)
            b = result_to_json(pooled.outcome(experiment_id).result)
            assert json.dumps(a, sort_keys=True) == json.dumps(
                b, sort_keys=True
            ), experiment_id

    def test_serve_worker_equivalence(self):
        """A forked serve worker attaches the arena and answers
        identically to the parent's in-RAM dataset."""
        from repro.serve.workers import WorkerSlot

        ram, mmap = _pair()
        slot = WorkerSlot(mmap)
        try:
            verdict = slot.run(
                {"mode": "summary", "deadline_s": 60.0, "request_id": "t"},
                budget_s=60.0,
            )
        finally:
            slot.close()
        assert verdict.kind == "done"
        assert verdict.payload["outcome"] == "ok"
        assert verdict.payload["result"]["summary"] == ram.summary()


class TestInvalidation:
    def test_arena_cache_hit_and_stale_rejection(self, synth_cache_dir):
        MiraDataset.synthesize(n_days=DAYS, seed=SEED, mode="mmap")
        arenas = list(synth_cache_dir.glob("*.arena"))
        assert len(arenas) == 1
        # Second synthesize attaches the same arena (no new files).
        MiraDataset.synthesize(n_days=DAYS, seed=SEED, mode="mmap")
        assert list(synth_cache_dir.glob("*.arena")) == arenas
        # A corrupted arena is rejected and rebuilt, not served.
        detach_all()
        arenas[0].write_bytes(b"garbage")
        rebuilt = MiraDataset.synthesize(n_days=DAYS, seed=SEED, mode="mmap")
        assert rebuilt.jobs._arena is not None
        assert rebuilt.jobs.n_rows > 0

    def test_stale_arena_replaced_on_source_change(self, tmp_path):
        ram, _ = _pair()
        directory = tmp_path / "saved"
        ram.save(directory)
        MiraDataset.load(directory, mode="mmap")
        cache_dir = directory / ".repro-cache"
        before = set(cache_dir.glob("*.arena"))
        assert len(before) == 1
        # Edit a source CSV (append the last data row with a fresh
        # job_id): the content fingerprint changes, so the old arena
        # must be pruned and rebuilt.
        jobs_csv = directory / "jobs.csv"
        lines = jobs_csv.read_text().splitlines()
        header = lines[0].split(",")
        fields = lines[-1].split(",")
        id_at = header.index("job_id")
        fields[id_at] = str(
            max(int(line.split(",")[id_at]) for line in lines[1:]) + 1
        )
        jobs_csv.write_text("\n".join(lines + [",".join(fields)]) + "\n")
        os.utime(jobs_csv, ns=(1, 1))
        detach_all()
        MiraDataset.load(directory, mode="mmap")
        after = set(cache_dir.glob("*.arena"))
        assert len(after) == 1
        assert after != before


class TestModeValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            MiraDataset.synthesize(n_days=DAYS, seed=SEED, mode="turbo")

    def test_mmap_requires_cacheable_synthesis(self):
        with pytest.raises(ValueError):
            MiraDataset.synthesize(n_days=DAYS, seed=SEED, mode="mmap", cache=False)

    def test_mmap_load_requires_cache(self, tmp_path):
        ram, _ = _pair()
        directory = tmp_path / "saved"
        ram.save(directory)
        with pytest.raises(ValueError):
            MiraDataset.load(directory, mode="mmap", cache=False)


class TestFleetScale:
    def test_scale_one_is_default_fingerprint(self):
        fp_default = cache_mod.fingerprint_synthesis(
            MiraDataset.synthesize(n_days=DAYS, seed=SEED).spec, DAYS, SEED
        )
        fp_explicit = cache_mod.fingerprint_synthesis(
            MiraDataset.synthesize(n_days=DAYS, seed=SEED, scale=1).spec,
            DAYS,
            SEED,
            1.0,
        )
        assert fp_default == fp_explicit

    def test_scaled_fleet_spec_and_volume(self):
        base = MiraDataset.synthesize(n_days=DAYS, seed=SEED)
        fleet = MiraDataset.synthesize(n_days=DAYS, seed=SEED, scale=3)
        assert fleet.spec.name == f"{base.spec.name}x3"
        assert fleet.spec.rack_rows == base.spec.rack_rows * 3
        assert fleet.spec.n_midplanes == base.spec.n_midplanes * 3
        # Event volume scales roughly linearly with the fleet.
        assert fleet.ras.n_rows > 2.0 * base.ras.n_rows

    def test_invalid_scales_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            MiraDataset.synthesize(n_days=DAYS, seed=SEED, scale=1.5)
        with pytest.raises(ValueError, match="positive integer"):
            MiraDataset.synthesize(n_days=DAYS, seed=SEED, scale=0)
        with pytest.raises(ValueError, match="rack rows"):
            MiraDataset.synthesize(n_days=DAYS, seed=SEED, scale=6)
