"""Spec-parametricity: the whole pipeline must run on non-Mira machines."""

import pytest

from repro.bgq import MIRA, MIRA_SMALL, MachineSpec
from repro.dataset import MiraDataset, validate_dataset
from repro.experiments import all_experiments, run_experiment
from repro.scheduler import WorkloadParams


class TestScaledParams:
    def test_ladder_fits_machine(self):
        params = WorkloadParams.scaled_to(MIRA_SMALL)
        assert max(params.node_counts) <= MIRA_SMALL.n_nodes
        assert min(params.node_counts) == MIRA_SMALL.nodes_per_midplane

    def test_weights_renormalized(self):
        params = WorkloadParams.scaled_to(MIRA_SMALL)
        assert sum(params.node_weights) == pytest.approx(1.0)

    def test_arrival_scales_with_capacity(self):
        small = WorkloadParams.scaled_to(MIRA_SMALL)
        assert small.arrival_rate_per_day < WorkloadParams().arrival_rate_per_day

    def test_arrival_never_zero(self):
        tiny = MachineSpec(
            name="Tiny", rack_rows=1, rack_columns=1,
            midplanes_per_rack=2, node_boards_per_midplane=2,
            nodes_per_node_board=4,
        )
        params = WorkloadParams.scaled_to(tiny)
        assert params.arrival_rate_per_day >= 1.0

    def test_overrides_respected(self):
        params = WorkloadParams.scaled_to(MIRA_SMALL, n_users=12)
        assert params.n_users == 12

    def test_mira_scaled_matches_defaults_ladder(self):
        params = WorkloadParams.scaled_to(MIRA)
        assert max(params.node_counts) == MIRA.n_nodes


class TestSmallMachineEndToEnd:
    @pytest.fixture(scope="class")
    def dataset(self):
        return MiraDataset.synthesize(n_days=40.0, seed=4, spec=MIRA_SMALL)

    def test_validates(self, dataset):
        assert all(v == "ok" for v in validate_dataset(dataset).values())

    def test_jobs_within_machine(self, dataset):
        assert (dataset.jobs["allocated_nodes"] <= MIRA_SMALL.n_nodes).all()
        assert (
            dataset.jobs["first_midplane"] + dataset.jobs["n_midplanes"]
            <= MIRA_SMALL.n_midplanes
        ).all()

    def test_every_experiment_runs(self, dataset):
        # Small-population experiments may hit legitimate small-sample
        # errors (distribution fits need >=50 failures per family, the
        # prediction split needs >=10 test jobs); everything else must run.
        skippable = {"e04", "e18"}
        for experiment_id in all_experiments():
            if experiment_id in skippable:
                continue
            result = run_experiment(experiment_id, dataset)
            assert result.tables

    def test_roundtrip_preserves_spec(self, dataset, tmp_path):
        dataset.save(tmp_path / "small")
        loaded = MiraDataset.load(tmp_path / "small")
        assert loaded.spec == MIRA_SMALL
        assert loaded.jobs.n_rows == dataset.jobs.n_rows
