"""Integration tests for dataset synthesis, persistence, validation."""

import dataclasses

import numpy as np
import pytest

from repro.bgq import MIRA
from repro.dataset import MiraDataset, validate_dataset
from repro.errors import DatasetError
from repro.table import Table


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=20.0, seed=7)


class TestSynthesize:
    def test_all_logs_populated(self, dataset):
        assert dataset.ras.n_rows > 0
        assert dataset.jobs.n_rows > 0
        assert dataset.tasks.n_rows >= dataset.jobs.n_rows
        assert 0 < dataset.io.n_rows < dataset.jobs.n_rows

    def test_summary_keys(self, dataset):
        summary = dataset.summary()
        assert summary["n_jobs"] == dataset.jobs.n_rows
        assert summary["n_failed_jobs"] > 0
        assert 0.1 < summary["failure_rate"] < 0.45
        assert summary["total_core_hours"] > 0
        assert (
            summary["n_ras_info"] + summary["n_ras_warn"] + summary["n_ras_fatal"]
            == summary["n_ras_events"]
        )

    def test_validates(self, dataset):
        report = validate_dataset(dataset)
        assert all(v == "ok" for v in report.values())

    def test_block_annotation(self, dataset):
        annotated = dataset.ras.filter(dataset.ras["block"] != "")
        assert annotated.n_rows > 0
        job_blocks = set(dataset.jobs["block"].tolist())
        assert set(annotated.unique("block")) <= job_blocks

    def test_fatal_slice(self, dataset):
        fatal = dataset.fatal_events()
        assert fatal.n_rows == dataset.summary()["n_ras_fatal"]
        assert set(fatal.unique("severity")) == {"FATAL"}

    def test_failed_slice(self, dataset):
        failed = dataset.failed_jobs()
        assert failed.n_rows == dataset.summary()["n_failed_jobs"]
        assert (failed["exit_status"] != 0).all()

    def test_deterministic(self):
        a = MiraDataset.synthesize(n_days=3.0, seed=9)
        b = MiraDataset.synthesize(n_days=3.0, seed=9)
        assert a.jobs == b.jobs
        assert a.ras == b.ras

    def test_system_failures_recorded(self, dataset):
        system = dataset.jobs.filter(dataset.jobs["origin"] == "system")
        # 20 days at 0.44 incidents/day on a ~2/3-busy machine: expect a few.
        assert system.n_rows >= 1
        assert (system["exit_status"] == 137).all()


class TestPersistence:
    def test_roundtrip(self, tmp_path, dataset):
        dataset.save(tmp_path / "ds")
        loaded = MiraDataset.load(tmp_path / "ds")
        assert loaded.jobs.n_rows == dataset.jobs.n_rows
        assert loaded.ras.n_rows == dataset.ras.n_rows
        assert loaded.spec.n_nodes == MIRA.n_nodes
        assert loaded.n_days == dataset.n_days
        assert len(loaded.incidents) == len(dataset.incidents)
        assert loaded.summary() == dataset.summary()

    def test_loaded_dataset_validates(self, tmp_path, dataset):
        dataset.save(tmp_path / "ds")
        validate_dataset(MiraDataset.load(tmp_path / "ds"))

    def test_missing_file_rejected(self, tmp_path, dataset):
        dataset.save(tmp_path / "ds")
        (tmp_path / "ds" / "jobs.csv").unlink()
        with pytest.raises(DatasetError, match="missing"):
            MiraDataset.load(tmp_path / "ds")

    def test_load_nonexistent_dir(self, tmp_path):
        with pytest.raises(DatasetError):
            MiraDataset.load(tmp_path / "nope")


class TestValidatorCatchesCorruption:
    def test_orphan_task(self, dataset):
        corrupted = dataclasses.replace(
            dataset,
            tasks=dataset.tasks.with_column(
                "job_id", np.full(dataset.tasks.n_rows, 10**9)
            ),
        )
        with pytest.raises(DatasetError, match="unknown jobs"):
            validate_dataset(corrupted)

    def test_task_outside_window(self, dataset):
        corrupted = dataclasses.replace(
            dataset,
            tasks=dataset.tasks.with_column(
                "end_time", dataset.tasks["end_time"] + 10**9
            ),
        )
        with pytest.raises(DatasetError, match="end after"):
            validate_dataset(corrupted)

    def test_overlapping_jobs(self, dataset):
        jobs = dataset.jobs
        first_two = jobs.head(2)
        forced = Table.concat(
            [
                first_two.with_column("first_midplane", [0, 0]).with_column(
                    "n_midplanes", [1, 1]
                ).with_column("start_time", [0.0, 0.0]).with_column(
                    "end_time", [100.0, 100.0]
                ).with_column("submit_time", [0.0, 0.0]),
                jobs.take(np.arange(2, jobs.n_rows)),
            ]
        )
        corrupted = dataclasses.replace(dataset, jobs=forced)
        with pytest.raises(DatasetError, match="overlap"):
            validate_dataset(corrupted)

    def test_duplicate_io_profile(self, dataset):
        doubled = Table.concat([dataset.io, dataset.io.head(1)])
        corrupted = dataclasses.replace(dataset, io=doubled)
        with pytest.raises(DatasetError, match="duplicate"):
            validate_dataset(corrupted)

    def test_incident_mismatch(self, dataset):
        corrupted = dataclasses.replace(
            dataset,
            ras=dataset.ras.filter(dataset.ras["severity"] != "FATAL"),
        )
        with pytest.raises(DatasetError, match="ground truth"):
            validate_dataset(corrupted)
