"""Columnar dataset cache: hits, invalidation, and poisoning guards."""

import pytest

import repro.dataset.cache as cache_mod
import repro.dataset.mira as mira_mod
from repro.dataset import MiraDataset
from repro.table import read_csv


@pytest.fixture()
def synth_cache_dir(tmp_path, monkeypatch):
    """Point the synthesis cache at a throwaway directory."""
    directory = tmp_path / "synth-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
    return directory


@pytest.fixture()
def dataset_dir(tmp_path, synth_cache_dir):
    directory = tmp_path / "ds"
    MiraDataset.synthesize(n_days=3.0, seed=11, cache=False).save(directory)
    return directory


class _CsvSpy:
    """Counts how many CSVs a load actually parsed (0 == cache hit)."""

    def __init__(self, monkeypatch):
        self.calls = 0

        def spy(path, **kwargs):
            self.calls += 1
            return read_csv(path, **kwargs)

        monkeypatch.setattr(mira_mod, "read_csv", spy)


class TestDirectoryCache:
    def test_second_load_hits_cache(self, dataset_dir, monkeypatch):
        spy = _CsvSpy(monkeypatch)
        first = MiraDataset.load(dataset_dir)
        assert spy.calls == 4  # cold: all four logs parsed
        cache_files = list((dataset_dir / ".repro-cache").glob("*.npz"))
        assert len(cache_files) == 1
        second = MiraDataset.load(dataset_dir)
        assert spy.calls == 4  # warm: no parsing at all
        for attr in ("ras", "jobs", "tasks", "io"):
            assert getattr(first, attr) == getattr(second, attr)
        assert first.incidents == second.incidents
        assert (first.spec, first.n_days, first.seed) == (
            second.spec,
            second.n_days,
            second.seed,
        )

    def test_edit_invalidates_fingerprint(self, dataset_dir, monkeypatch):
        MiraDataset.load(dataset_dir)
        old_entry = next((dataset_dir / ".repro-cache").glob("*.npz"))
        jobs_csv = dataset_dir / "jobs.csv"
        lines = jobs_csv.read_text().splitlines()
        jobs_csv.write_text("\n".join(lines[:-1]) + "\n")  # drop last job
        spy = _CsvSpy(monkeypatch)
        reloaded = MiraDataset.load(dataset_dir)
        assert spy.calls == 4  # miss: content changed
        assert reloaded.jobs.n_rows == len(lines) - 2
        # the stale entry was pruned and replaced by the new fingerprint
        entries = list((dataset_dir / ".repro-cache").glob("*.npz"))
        assert len(entries) == 1 and entries[0] != old_entry

    def test_schema_bump_invalidates(self, dataset_dir, monkeypatch):
        MiraDataset.load(dataset_dir)
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", 999_999)
        spy = _CsvSpy(monkeypatch)
        MiraDataset.load(dataset_dir)
        assert spy.calls == 4  # miss: schema version participates in the key

    def test_refresh_cache_reparses_and_overwrites(self, dataset_dir, monkeypatch):
        MiraDataset.load(dataset_dir)
        entry = next((dataset_dir / ".repro-cache").glob("*.npz"))
        before = entry.stat().st_mtime_ns
        spy = _CsvSpy(monkeypatch)
        MiraDataset.load(dataset_dir, refresh_cache=True)
        assert spy.calls == 4
        assert entry.stat().st_mtime_ns > before

    def test_no_cache_never_writes(self, dataset_dir, monkeypatch):
        spy = _CsvSpy(monkeypatch)
        MiraDataset.load(dataset_dir, cache=False)
        MiraDataset.load(dataset_dir, cache=False)
        assert spy.calls == 8
        assert not (dataset_dir / ".repro-cache").exists()

    def test_corrupt_entry_is_a_miss_not_an_error(self, dataset_dir):
        loaded = MiraDataset.load(dataset_dir)
        entry = next((dataset_dir / ".repro-cache").glob("*.npz"))
        entry.write_bytes(b"definitely not an npz archive")
        again = MiraDataset.load(dataset_dir)
        assert again.jobs == loaded.jobs


class TestLenientCache:
    def test_dirty_lenient_load_does_not_poison_cache(self, dataset_dir, monkeypatch):
        with (dataset_dir / "ras.csv").open("a") as handle:
            handle.write("garbled,row\n")
        degraded = MiraDataset.load(dataset_dir, lenient=True)
        assert degraded.ingestion and degraded.ingestion.n_quarantined == 1
        # nothing was cached: a later load must parse again
        spy = _CsvSpy(monkeypatch)
        MiraDataset.load(dataset_dir, lenient=True)
        assert spy.calls == 4
        cache_dir = dataset_dir / ".repro-cache"
        assert not cache_dir.exists() or not list(cache_dir.glob("*.npz"))

    def test_clean_lenient_load_is_cached_and_keeps_report(self, dataset_dir):
        first = MiraDataset.load(dataset_dir, lenient=True)
        assert first.ingestion is not None and not first.ingestion
        second = MiraDataset.load(dataset_dir, lenient=True)
        # the cache hit still reports lenient semantics: an empty report
        assert second.ingestion is not None and not second.ingestion
        assert first.ras == second.ras

    def test_strict_hit_after_lenient_store(self, dataset_dir):
        MiraDataset.load(dataset_dir, lenient=True)  # clean -> cached
        strict = MiraDataset.load(dataset_dir)
        assert strict.ingestion is None


class TestSynthesisCache:
    def test_synthesis_round_trips_through_cache(self, synth_cache_dir):
        cold = MiraDataset.synthesize(n_days=2.0, seed=5)
        entries = list(synth_cache_dir.glob("synth-*.npz"))
        assert len(entries) == 1
        warm = MiraDataset.synthesize(n_days=2.0, seed=5)
        for attr in ("ras", "jobs", "tasks", "io"):
            assert getattr(cold, attr) == getattr(warm, attr)
        assert cold.incidents == warm.incidents
        assert warm.ingestion is None

    def test_different_keys_coexist(self, synth_cache_dir):
        MiraDataset.synthesize(n_days=2.0, seed=5)
        MiraDataset.synthesize(n_days=2.0, seed=6)
        assert len(list(synth_cache_dir.glob("synth-*.npz"))) == 2

    def test_custom_params_bypass_cache(self, synth_cache_dir):
        from repro.scheduler import WorkloadParams

        MiraDataset.synthesize(
            n_days=2.0, seed=5, workload_params=WorkloadParams()
        )
        assert not list(synth_cache_dir.glob("synth-*.npz"))

    def test_refresh_cache_regenerates(self, synth_cache_dir):
        MiraDataset.synthesize(n_days=2.0, seed=5)
        entry = next(synth_cache_dir.glob("synth-*.npz"))
        before = entry.stat().st_mtime_ns
        MiraDataset.synthesize(n_days=2.0, seed=5, refresh_cache=True)
        assert entry.stat().st_mtime_ns > before


class TestFingerprint:
    def test_content_addressed_not_mtime_addressed(self, dataset_dir):
        import os

        fingerprint = cache_mod.fingerprint_directory(dataset_dir)
        stat = (dataset_dir / "ras.csv").stat()
        os.utime(dataset_dir / "ras.csv", ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))
        assert cache_mod.fingerprint_directory(dataset_dir) == fingerprint

    def test_any_source_file_participates(self, dataset_dir):
        fingerprint = cache_mod.fingerprint_directory(dataset_dir)
        (dataset_dir / "incidents.jsonl").write_text("")
        assert cache_mod.fingerprint_directory(dataset_dir) != fingerprint
