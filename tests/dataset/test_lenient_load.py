"""Lenient dataset loading: missing sources, broken metadata, and the
degradation report."""

import pytest

from repro.dataset import MiraDataset, validate_dataset
from repro.errors import DatasetError


@pytest.fixture()
def saved(tmp_path):
    MiraDataset.synthesize(n_days=4.0, seed=9).save(tmp_path / "ds")
    return tmp_path / "ds"


class TestMissingSources:
    def test_missing_io_degrades_to_empty(self, saved):
        (saved / "io.csv").unlink()
        dataset = MiraDataset.load(saved, lenient=True)
        assert dataset.io.n_rows == 0
        assert dataset.io.column_names  # typed empty table, not zero-column
        assert dataset.ingestion.degraded == {"io": "missing io.csv"}

    def test_missing_meta_refuses_to_guess_spec(self, saved):
        (saved / "meta.jsonl").unlink()
        with pytest.raises(DatasetError, match="assume_mira"):
            MiraDataset.load(saved, lenient=True)

    def test_missing_meta_estimates_span_with_assume_mira(self, saved):
        (saved / "meta.jsonl").unlink()
        dataset = MiraDataset.load(saved, lenient=True, assume_mira=True)
        assert "meta" in dataset.ingestion.degraded
        assert 0 < dataset.n_days <= 5.0  # estimated from log extents
        assert dataset.spec.name == "Mira"  # opted-in fallback spec

    def test_corrupt_meta_refuses_to_guess_spec(self, saved):
        (saved / "meta.jsonl").write_text("{not json\n")
        with pytest.raises(DatasetError, match="assume_mira"):
            MiraDataset.load(saved, lenient=True)

    def test_corrupt_meta_degrades_with_assume_mira(self, saved):
        (saved / "meta.jsonl").write_text("{not json\n")
        dataset = MiraDataset.load(saved, lenient=True, assume_mira=True)
        assert "meta" in dataset.ingestion.degraded

    def test_corrupt_incidents_degrade(self, saved):
        (saved / "incidents.jsonl").write_text("{broken\n")
        dataset = MiraDataset.load(saved, lenient=True)
        assert dataset.incidents == []
        assert "incidents" in dataset.ingestion.degraded

    def test_empty_directory_still_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(DatasetError, match="no dataset files"):
            MiraDataset.load(empty, lenient=True)

    def test_nonexistent_directory_fails(self, tmp_path):
        with pytest.raises(DatasetError, match="not a dataset directory"):
            MiraDataset.load(tmp_path / "nope", lenient=True)


class TestCleanRoundTrip:
    def test_clean_dataset_loads_without_report_entries(self, saved):
        dataset = MiraDataset.load(saved, lenient=True)
        assert not dataset.ingestion  # empty report is falsy
        strict = MiraDataset.load(saved)
        assert strict.ingestion is None
        assert dataset.ras == strict.ras
        assert dataset.jobs == strict.jobs

    def test_lenient_validate_reports_degraded_sources(self, saved):
        (saved / "tasks.csv").unlink()
        dataset = MiraDataset.load(saved, lenient=True)
        report = validate_dataset(dataset, lenient=True)
        assert report["source:tasks"].startswith("degraded")
        assert report["occupancy"] == "ok"
