"""Unit tests for the exit-status taxonomy."""

import numpy as np
import pytest

from repro.core import (
    ExitFamily,
    classify_column,
    classify_exit_status,
    family_breakdown,
    is_user_family,
)
from repro.table import Table


class TestClassify:
    @pytest.mark.parametrize(
        "status,family",
        [
            (0, ExitFamily.SUCCESS),
            (139, ExitFamily.SEGFAULT),
            (11, ExitFamily.SEGFAULT),
            (134, ExitFamily.ABORT),
            (6, ExitFamily.ABORT),
            (1, ExitFamily.APP_ERROR),
            (255, ExitFamily.APP_ERROR),
            (2, ExitFamily.CONFIG),
            (127, ExitFamily.CONFIG),
            (143, ExitFamily.TIMEOUT),
            (137, ExitFamily.SYSTEM_KILL),
            (42, ExitFamily.OTHER),
        ],
    )
    def test_mapping(self, status, family):
        assert classify_exit_status(status) is family

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            classify_exit_status(256)
        with pytest.raises(ValueError):
            classify_exit_status(-1)

    def test_classify_column(self):
        out = classify_column(np.array([0, 139, 137]))
        assert out.tolist() == ["success", "segfault", "system_kill"]

    def test_user_families(self):
        assert is_user_family(ExitFamily.SEGFAULT)
        assert is_user_family(ExitFamily.TIMEOUT)
        assert not is_user_family(ExitFamily.SYSTEM_KILL)
        assert not is_user_family(ExitFamily.SUCCESS)


class TestFamilyBreakdown:
    def test_counts_and_shares(self):
        jobs = Table({"exit_status": [0, 0, 0, 139, 134, 1, 137]})
        table = family_breakdown(jobs)
        rows = {r["family"]: r for r in table.to_rows()}
        assert rows["success"]["count"] == 3
        assert rows["success"]["share"] == pytest.approx(3 / 7)
        assert np.isnan(rows["success"]["failure_share"])
        assert rows["segfault"]["failure_share"] == pytest.approx(1 / 4)

    def test_counts_sum(self):
        jobs = Table({"exit_status": [0, 1, 2, 139, 139, 143]})
        table = family_breakdown(jobs)
        assert table["count"].sum() == 6
