"""Unit tests for the I/O throughput-by-scale analysis."""

import pytest

from repro.core.io_behavior import io_throughput_by_scale
from repro.dataset import MiraDataset


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=40.0, seed=71)


class TestThroughputByScale:
    def test_one_row_per_size(self, dataset):
        table = io_throughput_by_scale(dataset.io, dataset.jobs)
        sizes = set(table["allocated_nodes"].tolist())
        covered = {
            r["allocated_nodes"]
            for r in dataset.jobs.join(
                dataset.io.select(["job_id"]), on="job_id"
            ).to_rows()
        }
        assert sizes == covered

    def test_positive_values(self, dataset):
        table = io_throughput_by_scale(dataset.io, dataset.jobs)
        assert (table["median_throughput_mbs"] > 0).all()
        assert (table["median_bytes_per_node"] > 0).all()

    def test_larger_jobs_higher_throughput(self, dataset):
        """Aggregate throughput grows with scale (more nodes moving data)."""
        table = io_throughput_by_scale(dataset.io, dataset.jobs).sort_by(
            "allocated_nodes"
        )
        populated = table.filter(table["n"] >= 10)
        if populated.n_rows >= 2:
            assert (
                populated["median_throughput_mbs"][-1]
                > populated["median_throughput_mbs"][0]
            )

    def test_empty_join_rejected(self, dataset):
        empty = dataset.jobs.filter(dataset.jobs["job_id"] < 0)
        with pytest.raises(ValueError):
            io_throughput_by_scale(dataset.io, empty)
