"""Unit and integration tests for reliability and locality analyses."""

import numpy as np
import pytest
from repro.bgq.machine import MIRA

from repro.core import (
    availability,
    counts_by_midplane,
    default_pipeline,
    hot_midplanes,
    job_interruption_mtti,
    locality_metrics,
    mtti_from_clusters,
)
from repro.dataset import MiraDataset
from repro.table import Table


def _clusters(timestamps, location="R00-M0"):
    return Table(
        {
            "first_timestamp": [float(t) for t in timestamps],
            "last_timestamp": [float(t) for t in timestamps],
            "msg_id": ["00010006"] * len(timestamps),
            "location": [location] * len(timestamps),
            "message": ["m"] * len(timestamps),
            "n_events": [1] * len(timestamps),
        }
    )


class TestMtti:
    def test_basic(self):
        report = mtti_from_clusters(_clusters([0, 86_400, 172_800]), span_days=30)
        assert report.n_interruptions == 3
        assert report.mtti_days == pytest.approx(10.0)

    def test_no_interruptions(self):
        report = mtti_from_clusters(_clusters([]), span_days=10)
        assert report.mtti_days == float("inf")

    def test_inter_arrival(self):
        report = mtti_from_clusters(_clusters([0, 86_400, 3 * 86_400]), span_days=10)
        assert report.inter_arrival_days().tolist() == [1.0, 2.0]

    def test_bad_span(self):
        with pytest.raises(ValueError):
            mtti_from_clusters(_clusters([0]), span_days=0)

    def test_availability(self):
        report = mtti_from_clusters(_clusters([0, 86_400]), span_days=10)
        # 2 interruptions x 4h repair = 8h downtime over 10 days.
        assert availability(report, repair_hours_per_interruption=4.0) == pytest.approx(
            1 - (8 / 24) / 10
        )

    def test_availability_bad_repair(self):
        report = mtti_from_clusters(_clusters([0]), span_days=1)
        with pytest.raises(ValueError):
            availability(report, repair_hours_per_interruption=-1)


class TestJobInterruptionMtti:
    def test_only_job_hits_count(self):
        jobs = Table(
            {
                "job_id": [1],
                "start_time": [0.0],
                "end_time": [100.0],
                "first_midplane": [0],
                "n_midplanes": [1],
            }
        )
        clusters = _clusters([50, 5000])  # second is after the job ended
        report = job_interruption_mtti(clusters, jobs, span_days=10, spec=MIRA)
        assert report.n_interruptions == 1
        assert report.mtti_days == pytest.approx(10.0)

    def test_empty_clusters(self):
        jobs = Table(
            {
                "job_id": [1],
                "start_time": [0.0],
                "end_time": [100.0],
                "first_midplane": [0],
                "n_midplanes": [1],
            }
        )
        report = job_interruption_mtti(_clusters([]), jobs, span_days=10, spec=MIRA)
        assert report.n_interruptions == 0


class TestLocalityMetrics:
    def test_uniform_counts(self):
        metrics = locality_metrics(np.full(96, 5))
        assert metrics["gini"] == pytest.approx(0.0, abs=1e-9)
        assert metrics["normalized_entropy"] == pytest.approx(1.0)

    def test_concentrated_counts(self):
        counts = np.zeros(96)
        counts[3] = 100
        metrics = locality_metrics(counts)
        assert metrics["top1_share"] == 1.0
        assert metrics["gini"] > 0.9
        assert metrics["n_locations_hit"] == 1

    def test_all_zero(self):
        metrics = locality_metrics(np.zeros(96))
        assert metrics["n_locations_hit"] == 0
        assert metrics["normalized_entropy"] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            locality_metrics(np.array([]))


class TestEndToEndReliability:
    @pytest.fixture(scope="class")
    def dataset(self):
        return MiraDataset.synthesize(n_days=90.0, seed=44)

    @pytest.fixture(scope="class")
    def filtered(self, dataset):
        return default_pipeline(spec=dataset.spec).run(dataset.fatal_events()).clusters

    def test_system_mtti_near_incident_rate(self, dataset, filtered):
        report = mtti_from_clusters(filtered, span_days=dataset.n_days)
        # Raw incident rate is 0.44/day -> system MTTI ~2.3 days.
        assert 1.2 < report.mtti_days < 4.5

    def test_job_mtti_in_paper_band(self, dataset, filtered):
        report = job_interruption_mtti(
            filtered, dataset.jobs, span_days=dataset.n_days, spec=dataset.spec
        )
        # The paper's headline: ~3.5 days between job interruptions.
        assert 2.0 < report.mtti_days < 7.0

    def test_job_mtti_matches_system_failures(self, dataset, filtered):
        """Filtered job-affecting clusters should approximate the number
        of system-killed jobs."""
        report = job_interruption_mtti(
            filtered, dataset.jobs, span_days=dataset.n_days, spec=dataset.spec
        )
        n_system = dataset.jobs.filter(dataset.jobs["origin"] == "system").n_rows
        assert abs(report.n_interruptions - n_system) <= max(3, 0.4 * n_system)

    def test_fatal_locality_strong(self, dataset):
        counts = counts_by_midplane(dataset.fatal_events(), dataset.spec)
        metrics = locality_metrics(counts)
        assert metrics["gini"] > 0.5
        assert metrics["top10pct_share"] > 0.3

    def test_hot_midplanes_table(self, dataset):
        table = hot_midplanes(dataset.fatal_events(), dataset.spec, k=5)
        assert table.n_rows == 5
        counts = table["n_events"]
        assert (counts[:-1] >= counts[1:]).all()
        assert table["share"].sum() <= 1.0 + 1e-9
