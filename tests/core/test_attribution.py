"""Unit and integration tests for RAS↔job attribution."""

import numpy as np
import pytest
from repro.bgq.machine import MIRA

from repro.core import (
    NO_JOB,
    attribute_failures,
    attribution_summary,
    event_midplanes,
    events_per_user,
    map_events_to_jobs,
)
from repro.dataset import MiraDataset
from repro.table import Table


def _jobs(rows):
    """rows: (job_id, user, start, end, first_midplane, n_midplanes, exit)."""
    return Table(
        {
            "job_id": [r[0] for r in rows],
            "user": [r[1] for r in rows],
            "start_time": [float(r[2]) for r in rows],
            "end_time": [float(r[3]) for r in rows],
            "first_midplane": [r[4] for r in rows],
            "n_midplanes": [r[5] for r in rows],
            "exit_status": [r[6] for r in rows],
            "core_hours": [(r[3] - r[2]) * r[5] * 512 * 16 / 3600 for r in rows],
        }
    )


def _events(rows):
    """rows: (timestamp, location)."""
    return Table(
        {
            "timestamp": [float(r[0]) for r in rows],
            "location": [r[1] for r in rows],
        }
    )


class TestEventMidplanes:
    def test_midplane_level(self):
        assert event_midplanes(["R00-M1"], MIRA) == [(1,)]

    def test_card_level(self):
        assert event_midplanes(["R01-M0-N00-J00"], MIRA) == [(2,)]

    def test_rack_level_covers_both(self):
        assert event_midplanes(["R01"], MIRA) == [(2, 3)]

    def test_memoization_consistency(self):
        out = event_midplanes(["R00-M0", "R00-M0", "R00-M1"], MIRA)
        assert out == [(0,), (0,), (1,)]


class TestMapEventsToJobs:
    def test_hit_inside_window_and_block(self):
        jobs = _jobs([(7, "a", 100, 200, 0, 2, 0)])
        events = _events([(150, "R00-M1-N03-J05")])
        assert map_events_to_jobs(events, jobs, MIRA).tolist() == [7]

    def test_miss_wrong_midplane(self):
        jobs = _jobs([(7, "a", 100, 200, 0, 1, 0)])
        events = _events([(150, "R05-M0")])
        assert map_events_to_jobs(events, jobs, MIRA).tolist() == [NO_JOB]

    def test_miss_outside_window(self):
        jobs = _jobs([(7, "a", 100, 200, 0, 1, 0)])
        events = _events([(250, "R00-M0"), (50, "R00-M0")])
        assert map_events_to_jobs(events, jobs, MIRA).tolist() == [NO_JOB, NO_JOB]

    def test_boundary_semantics(self):
        """Start-inclusive, end-exclusive."""
        jobs = _jobs([(7, "a", 100, 200, 0, 1, 0)])
        events = _events([(100, "R00-M0"), (200, "R00-M0")])
        assert map_events_to_jobs(events, jobs, MIRA).tolist() == [7, NO_JOB]

    def test_sequential_jobs_same_midplane(self):
        jobs = _jobs([(1, "a", 0, 100, 0, 1, 0), (2, "b", 100, 200, 0, 1, 0)])
        events = _events([(50, "R00-M0"), (150, "R00-M0")])
        assert map_events_to_jobs(events, jobs, MIRA).tolist() == [1, 2]

    def test_rack_event_charged_to_running_job(self):
        jobs = _jobs([(3, "a", 0, 100, 1, 1, 0)])  # R00-M1 only
        events = _events([(50, "R00")])
        assert map_events_to_jobs(events, jobs, MIRA).tolist() == [3]

    def test_empty_jobs(self):
        events = _events([(1.0, "R00-M0")])
        assert map_events_to_jobs(events, _jobs([]), MIRA).tolist() == [NO_JOB]


class TestAttributeFailures:
    def test_system_vs_user_split(self):
        jobs = _jobs(
            [
                (1, "a", 0, 100, 0, 1, 137),  # hit by event below
                (2, "b", 0, 100, 5, 1, 139),  # user failure
                (3, "c", 0, 100, 10, 1, 0),  # success, excluded
            ]
        )
        fatal = _events([(50, "R00-M0")])
        attributed = attribute_failures(jobs, fatal, MIRA)
        assert attributed.n_rows == 2
        by_id = {r["job_id"]: r["attributed"] for r in attributed.to_rows()}
        assert by_id == {1: "system", 2: "user"}

    def test_summary(self):
        jobs = _jobs([(1, "a", 0, 100, 0, 1, 137), (2, "b", 0, 100, 5, 1, 139)])
        fatal = _events([(50, "R00-M0")])
        summary = attribution_summary(attribute_failures(jobs, fatal, MIRA))
        assert summary["n_failed"] == 2
        assert summary["n_system"] == 1
        assert summary["user_share"] == pytest.approx(0.5)

    def test_no_failures(self):
        jobs = _jobs([(1, "a", 0, 100, 0, 1, 0)])
        summary = attribution_summary(attribute_failures(jobs, _events([]), MIRA))
        assert summary["n_failed"] == 0
        assert np.isnan(summary["user_share"])


class TestEndToEndAttribution:
    @pytest.fixture(scope="class")
    def dataset(self):
        return MiraDataset.synthesize(n_days=40.0, seed=21)

    def test_matches_ground_truth(self, dataset):
        """The RAS-join attribution must recover the simulator's origin
        labels (high precision/recall, not necessarily perfect — an
        incident burst may spill past one job)."""
        attributed = attribute_failures(dataset.jobs, dataset.fatal_events(), dataset.spec)
        truth = {
            r["job_id"]: r["origin"] for r in dataset.failed_jobs().to_rows()
        }
        tp = fp = fn = 0
        for row in attributed.to_rows():
            is_system = row["attributed"] == "system"
            truly_system = truth[row["job_id"]] == "system"
            tp += is_system and truly_system
            fp += is_system and not truly_system
            fn += (not is_system) and truly_system
        assert fn == 0  # every true system failure is detected
        precision = tp / max(tp + fp, 1)
        assert precision > 0.6

    def test_user_share_dominates(self, dataset):
        summary = attribution_summary(
            attribute_failures(dataset.jobs, dataset.fatal_events(), dataset.spec)
        )
        assert summary["user_share"] > 0.95

    def test_events_per_user_correlation(self, dataset):
        per_user, correlations = events_per_user(
            dataset.ras, dataset.jobs, dataset.spec
        )
        assert per_user.n_rows > 10
        assert correlations["spearman"] > 0.3
        assert per_user["n_events"].sum() > 0
