"""Unit tests for the takeaway scorecard machinery."""

import pytest

from repro.core.takeaways import Takeaway, compute_takeaways, takeaways_to_table
from repro.dataset import MiraDataset


@pytest.fixture(scope="module")
def takeaways():
    dataset = MiraDataset.synthesize(n_days=100.0, seed=111)
    return compute_takeaways(dataset)


class TestStructure:
    def test_exactly_22(self, takeaways):
        assert len(takeaways) == 22

    def test_ids_sequential(self, takeaways):
        assert [t.takeaway_id for t in takeaways] == [
            f"T{i:02d}" for i in range(1, 23)
        ]

    def test_every_claim_has_measurement(self, takeaways):
        for takeaway in takeaways:
            assert isinstance(takeaway, Takeaway)
            assert takeaway.claim
            assert takeaway.measured
            assert isinstance(takeaway.holds, bool)

    def test_core_claims_hold_at_moderate_scale(self, takeaways):
        """The non-marginal takeaways must hold even on a 100-day trace."""
        must_hold = {"T01", "T02", "T10", "T16", "T17", "T18", "T19"}
        holding = {t.takeaway_id for t in takeaways if t.holds}
        assert must_hold <= holding

    def test_table_rendering(self, takeaways):
        table = takeaways_to_table(takeaways)
        assert table.n_rows == 22
        assert set(table.column_names) == {"id", "claim", "measured", "holds"}
        assert set(table["holds"].tolist()) <= {0, 1}
