"""Unit tests for distribution fitting and model selection."""

import numpy as np
import pytest

from repro.core.fitting import (
    CANDIDATE_MODELS,
    best_fit,
    cdf_comparison,
    fit_all,
    fits_to_table,
    get_model,
    qq_points,
)
from repro.errors import FitError


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(12)


class TestModels:
    def test_candidate_names(self):
        names = {m.name for m in CANDIDATE_MODELS}
        assert names == {
            "weibull", "pareto", "invgauss", "exponential", "erlang", "lognormal",
        }

    def test_get_model_unknown(self):
        with pytest.raises(FitError, match="unknown model"):
            get_model("cauchy")

    def test_fit_requires_positive(self, rng):
        with pytest.raises(FitError, match="positive"):
            get_model("weibull").fit(np.array([1.0, -2.0] * 10))

    def test_fit_requires_enough_points(self):
        with pytest.raises(FitError, match="at least 8"):
            get_model("weibull").fit(np.array([1.0, 2.0]))

    def test_fitted_cdf_monotone(self, rng):
        sample = rng.weibull(1.2, 500) * 100
        fitted = get_model("weibull").fit(sample)
        xs = np.linspace(1, 500, 50)
        cdf = fitted.cdf(xs)
        assert (np.diff(cdf) >= 0).all()
        assert 0 <= cdf[0] <= cdf[-1] <= 1

    def test_information_criteria(self, rng):
        sample = rng.exponential(100, 200)
        fitted = get_model("exponential").fit(sample)
        assert fitted.aic() == pytest.approx(
            2 * 1 - 2 * fitted.log_likelihood
        )
        assert fitted.bic(200) == pytest.approx(
            1 * np.log(200) - 2 * fitted.log_likelihood
        )


class TestRecovery:
    """The selection machinery must recover planted families (the property
    E04 relies on)."""

    def test_weibull_recovered(self, rng):
        sample = 3000 * rng.weibull(0.7, 4000)
        assert best_fit(sample).model_name == "weibull"

    def test_pareto_recovered(self, rng):
        sample = 300 * (1 + rng.pareto(1.6, 4000))
        assert best_fit(sample).model_name == "pareto"

    def test_invgauss_recovered(self, rng):
        sample = rng.wald(4000, 2500, 4000)
        assert best_fit(sample).model_name == "invgauss"

    def test_exponential_recovered_under_bic(self, rng):
        sample = rng.exponential(400, 4000)
        winner = best_fit(sample, criterion="bic").model_name
        assert winner == "exponential"

    def test_erlang_recovered(self, rng):
        sample = rng.gamma(3, 400, 4000)
        winner = best_fit(sample, criterion="bic").model_name
        assert winner in ("erlang", "exponential")
        assert winner == "erlang"

    def test_lognormal_recovered(self, rng):
        sample = rng.lognormal(5.0, 1.5, 4000)
        assert best_fit(sample).model_name == "lognormal"


class TestFitAll:
    def test_sorted_by_ks(self, rng):
        reports = fit_all(rng.exponential(10, 500))
        stats = [r.ks_statistic for r in reports]
        assert stats == sorted(stats)

    def test_table_rendering(self, rng):
        table = fits_to_table(fit_all(rng.exponential(10, 500)))
        assert table.n_rows >= 4
        assert "ks_statistic" in table

    def test_bad_criterion(self, rng):
        with pytest.raises(ValueError):
            best_fit(rng.exponential(10, 100), criterion="rmse")

    def test_unfittable_sample(self):
        with pytest.raises(FitError):
            fit_all(np.array([1.0]))


class TestEmpirical:
    def test_cdf_comparison_shapes(self, rng):
        sample = rng.weibull(1.0, 300) * 50
        fitted = get_model("weibull").fit(sample)
        xs, emp, mod = cdf_comparison(sample, fitted, n_points=64)
        assert len(xs) == len(emp) == len(mod) == 64
        assert abs(emp[-1] - 1.0) < 1e-9
        assert (np.abs(emp - mod) < 0.2).mean() > 0.9  # decent agreement

    def test_cdf_comparison_empty(self, rng):
        fitted = get_model("weibull").fit(rng.weibull(1.0, 100) + 0.1)
        with pytest.raises(ValueError):
            cdf_comparison([], fitted)

    def test_qq_near_diagonal_for_good_fit(self, rng):
        sample = rng.exponential(100, 2000)
        fitted = get_model("exponential").fit(sample)
        emp_q, mod_q = qq_points(sample, fitted, n_points=20)
        # Bulk quantiles should agree within 15%.
        middle = slice(2, 16)
        ratio = emp_q[middle] / mod_q[middle]
        assert (np.abs(ratio - 1) < 0.15).all()
