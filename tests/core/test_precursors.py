"""Unit tests for the WARN→FATAL precursor analysis."""

import pytest

from repro.bgq import Level
from repro.bgq.machine import MIRA
from repro.core.precursors import alarm_quality, precursor_coverage
from repro.table import Table


def _warns(rows):
    """rows: (timestamp, location)."""
    return Table(
        {
            "timestamp": [float(r[0]) for r in rows],
            "location": [r[1] for r in rows],
        }
    )


def _clusters(rows):
    """rows: (first_timestamp, location)."""
    return Table(
        {
            "first_timestamp": [float(r[0]) for r in rows],
            "last_timestamp": [float(r[0]) for r in rows],
            "msg_id": ["00010006"] * len(rows),
            "location": [r[1] for r in rows],
            "message": ["m"] * len(rows),
            "n_events": [1] * len(rows),
        }
    )


class TestCoverage:
    def test_covered_when_warn_precedes_same_midplane(self):
        warns = _warns([(100, "R00-M0-N02-J05")])
        clusters = _clusters([(500, "R00-M0-N07-J01")])
        metrics, leads = precursor_coverage(warns, clusters, lookback_seconds=1000, spec=MIRA)
        assert metrics["coverage"] == 1.0
        assert leads.tolist() == [400.0]

    def test_not_covered_other_midplane(self):
        warns = _warns([(100, "R00-M1")])
        clusters = _clusters([(500, "R00-M0")])
        metrics, _ = precursor_coverage(warns, clusters, lookback_seconds=1000, spec=MIRA)
        assert metrics["coverage"] == 0.0

    def test_not_covered_outside_lookback(self):
        warns = _warns([(100, "R00-M0")])
        clusters = _clusters([(50_000, "R00-M0")])
        metrics, _ = precursor_coverage(warns, clusters, lookback_seconds=1000, spec=MIRA)
        assert metrics["coverage"] == 0.0

    def test_warn_after_fatal_does_not_count(self):
        warns = _warns([(900, "R00-M0")])
        clusters = _clusters([(500, "R00-M0")])
        metrics, _ = precursor_coverage(warns, clusters, lookback_seconds=1000, spec=MIRA)
        assert metrics["coverage"] == 0.0

    def test_rack_level_grouping(self):
        warns = _warns([(100, "R00-M1")])
        clusters = _clusters([(500, "R00-M0")])
        metrics, _ = precursor_coverage(
            warns, clusters, lookback_seconds=1000, level=Level.RACK, spec=MIRA
        )
        assert metrics["coverage"] == 1.0

    def test_bad_lookback(self):
        with pytest.raises(ValueError):
            precursor_coverage(_warns([]), _clusters([(1, "R00")]), lookback_seconds=0, spec=MIRA)

    def test_no_clusters_rejected(self):
        with pytest.raises(ValueError):
            precursor_coverage(_warns([]), _clusters([]), lookback_seconds=10, spec=MIRA)


class TestAlarmQuality:
    def test_perfect_alarm(self):
        warns = _warns([(100, "R00-M0")])
        clusters = _clusters([(500, "R00-M0")])
        quality = alarm_quality(warns, clusters, horizon_seconds=1000, spec=MIRA)
        assert quality["precision"] == 1.0
        assert quality["recall"] == 1.0

    def test_false_alarms_dilute_precision(self):
        warns = _warns([(100, "R00-M0"), (100, "R10-M0"), (100, "R11-M1")])
        clusters = _clusters([(500, "R00-M0")])
        quality = alarm_quality(warns, clusters, horizon_seconds=1000, spec=MIRA)
        assert quality["precision"] == pytest.approx(1 / 3)
        assert quality["recall"] == 1.0

    def test_missed_fatal_hurts_recall(self):
        warns = _warns([(100, "R00-M0")])
        clusters = _clusters([(500, "R00-M0"), (500, "R20-M1")])
        quality = alarm_quality(warns, clusters, horizon_seconds=1000, spec=MIRA)
        assert quality["recall"] == pytest.approx(0.5)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            alarm_quality(_warns([]), _clusters([(1, "R00")]), horizon_seconds=-1, spec=MIRA)
