"""Property-based tests (hypothesis) for the filtering stages.

The invariants: event mass is conserved through every stage, output
cluster counts never exceed input counts, time ordering holds, and the
stages are idempotent at fixpoint.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from repro.bgq.machine import MIRA

from repro.core.filtering import (
    events_to_clusters,
    similarity_filter,
    spatial_filter,
    temporal_filter,
)
from repro.table import Table

MSG_IDS = ("00010006", "00010005", "00020004")
LOCATIONS = (
    "R00-M0-N00-J00",
    "R00-M0-N03-J10",
    "R00-M1-N00-J00",
    "R17-M0-N05-J12",
)
MESSAGES = (
    "uncorrectable DDR memory error at addr=0x{:03x}",
    "unrecoverable machine check in core rank={:03d}",
    "torus link failure, wrap of dimension lane={:03d}",
)


@st.composite
def event_tables(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    timestamps = sorted(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=100_000, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    rows = {"timestamp": [], "msg_id": [], "location": [], "message": []}
    for i, ts in enumerate(timestamps):
        kind = draw(st.integers(0, len(MSG_IDS) - 1))
        rows["timestamp"].append(ts)
        rows["msg_id"].append(MSG_IDS[kind])
        rows["location"].append(draw(st.sampled_from(LOCATIONS)))
        rows["message"].append(MESSAGES[kind].format(i))
    return Table(rows)


WINDOWS = st.floats(min_value=1.0, max_value=50_000.0, allow_nan=False)


@settings(max_examples=40, deadline=None)
@given(events=event_tables(), window=WINDOWS)
def test_temporal_conserves_mass(events, window):
    out = temporal_filter(events_to_clusters(events), window)
    assert out["n_events"].sum() == events.n_rows
    assert out.n_rows <= events.n_rows


@settings(max_examples=40, deadline=None)
@given(events=event_tables(), window=WINDOWS)
def test_spatial_conserves_mass(events, window):
    out = spatial_filter(events_to_clusters(events), window, spec=MIRA)
    assert out["n_events"].sum() == events.n_rows


@settings(max_examples=40, deadline=None)
@given(
    events=event_tables(),
    window=WINDOWS,
    threshold=st.floats(min_value=0.0, max_value=1.0),
)
def test_similarity_conserves_mass(events, window, threshold):
    out = similarity_filter(events_to_clusters(events), window, threshold)
    assert out["n_events"].sum() == events.n_rows


@settings(max_examples=40, deadline=None)
@given(events=event_tables(), window=WINDOWS)
def test_stages_sorted_and_span_valid(events, window):
    for stage in (
        lambda t: temporal_filter(t, window),
        lambda t: spatial_filter(t, window, spec=MIRA),
        lambda t: similarity_filter(t, window, 0.5),
    ):
        out = stage(events_to_clusters(events))
        firsts = out["first_timestamp"]
        lasts = out["last_timestamp"]
        assert (firsts[1:] >= firsts[:-1]).all()
        assert (lasts >= firsts).all()


@settings(max_examples=30, deadline=None)
@given(events=event_tables(), window=WINDOWS)
def test_temporal_idempotent(events, window):
    once = temporal_filter(events_to_clusters(events), window)
    twice = temporal_filter(once, window)
    # Re-filtering cannot split clusters; count stays the same and mass
    # is still conserved (merges may still occur when a run's span is
    # covered by the window).
    assert twice.n_rows <= once.n_rows
    assert twice["n_events"].sum() == events.n_rows


@settings(max_examples=30, deadline=None)
@given(events=event_tables())
def test_wider_window_never_more_clusters(events):
    narrow = temporal_filter(events_to_clusters(events), 10.0)
    wide = temporal_filter(events_to_clusters(events), 10_000.0)
    assert wide.n_rows <= narrow.n_rows


@settings(max_examples=30, deadline=None)
@given(events=event_tables(), window=WINDOWS)
def test_higher_threshold_never_fewer_clusters(events, window):
    loose = similarity_filter(events_to_clusters(events), window, 0.1)
    strict = similarity_filter(events_to_clusters(events), window, 0.9)
    assert strict.n_rows >= loose.n_rows
