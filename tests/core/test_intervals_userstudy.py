"""Unit tests for interruption-interval fitting and the user study."""

import numpy as np
import pytest

from repro.core.intervals import fit_interruption_intervals, interruption_intervals
from repro.core.userstudy import failure_repetition, failure_streaks, learning_curve
from repro.errors import FitError
from repro.table import Table


def _clusters(timestamps):
    return Table(
        {
            "first_timestamp": [float(t) for t in timestamps],
            "last_timestamp": [float(t) for t in timestamps],
            "msg_id": ["00010006"] * len(timestamps),
            "location": ["R00-M0"] * len(timestamps),
            "message": ["m"] * len(timestamps),
            "n_events": [1] * len(timestamps),
        }
    )


def _jobs(user_sequences):
    """user_sequences: {user: [exit_status, ...]} submitted in order."""
    rows = {"user": [], "submit_time": [], "exit_status": []}
    t = 0.0
    for user, statuses in user_sequences.items():
        for status in statuses:
            rows["user"].append(user)
            rows["submit_time"].append(t)
            rows["exit_status"].append(status)
            t += 10.0
    return Table(rows)


class TestIntervals:
    def test_gaps_in_days(self):
        clusters = _clusters([0, 86_400, 3 * 86_400])
        assert interruption_intervals(clusters).tolist() == [1.0, 2.0]

    def test_unsorted_input_handled(self):
        clusters = _clusters([3 * 86_400, 0, 86_400])
        assert interruption_intervals(clusters).tolist() == [1.0, 2.0]

    def test_too_few(self):
        with pytest.raises(ValueError):
            interruption_intervals(_clusters([0]))

    def test_fit_recovers_exponential(self):
        rng = np.random.default_rng(0)
        times = np.cumsum(rng.exponential(2.0 * 86_400, 400))
        reports = fit_interruption_intervals(_clusters(times))
        bic_winner = min(reports, key=lambda r: r.bic)
        assert bic_winner.model_name in ("exponential", "erlang")

    def test_fit_too_few_intervals(self):
        with pytest.raises(FitError, match="intervals"):
            fit_interruption_intervals(_clusters([0, 86_400, 2 * 86_400]))


class TestRepetition:
    def test_deterministic_sequences(self):
        jobs = _jobs({"a": [0, 0, 1, 1, 0], "b": [1, 1, 1]})
        result = failure_repetition(jobs)
        # transitions a: 0->0, 0->1, 1->1, 1->0 ; b: 1->1, 1->1
        assert result["n_after_fail"] == 4
        assert result["n_after_success"] == 2
        assert result["p_fail_after_fail"] == pytest.approx(3 / 4)
        assert result["p_fail_after_success"] == pytest.approx(1 / 2)

    def test_heterogeneity_inflates_repetition(self):
        """Two users with different constant rates give factor > 1 even
        with zero within-user autocorrelation."""
        rng = np.random.default_rng(1)
        jobs = _jobs(
            {
                "safe": list((rng.random(400) < 0.05).astype(int)),
                "risky": list((rng.random(400) < 0.8).astype(int)),
            }
        )
        result = failure_repetition(jobs)
        assert result["repetition_factor"] > 2.0

    def test_no_pairs_rejected(self):
        jobs = _jobs({"a": [0], "b": [1]})
        with pytest.raises(ValueError):
            failure_repetition(jobs)


class TestStreaks:
    def test_counts(self):
        jobs = _jobs({"a": [1, 1, 0, 1], "b": [1, 1, 1]})
        table = failure_streaks(jobs)
        by_length = dict(zip(table["length"].tolist(), table["count"].tolist()))
        assert by_length[2] == 1  # a's leading pair
        assert by_length[1] == 1  # a's trailing single
        assert by_length[3] == 1  # b

    def test_fold_long_streaks(self):
        jobs = _jobs({"a": [1] * 30})
        table = failure_streaks(jobs, max_length=5)
        assert table.filter(table["length"] == 5)["count"][0] == 1

    def test_total_failures_accounted(self):
        rng = np.random.default_rng(2)
        jobs = _jobs({"u": list((rng.random(200) < 0.3).astype(int))})
        table = failure_streaks(jobs, max_length=200)
        total_from_streaks = int((table["length"] * table["count"]).sum())
        assert total_from_streaks == int((jobs["exit_status"] != 0).sum())


class TestLearningCurve:
    def test_declining_user(self):
        # First half fails, second half succeeds.
        jobs = _jobs({"a": [1] * 20 + [0] * 20})
        curve = learning_curve(jobs, n_bins=2, min_jobs=10)
        assert curve["failure_rate"][0] == 1.0
        assert curve["failure_rate"][1] == 0.0

    def test_short_users_excluded(self):
        jobs = _jobs({"a": [1] * 5, "b": [0] * 40})
        curve = learning_curve(jobs, n_bins=2, min_jobs=20)
        assert curve["n_jobs"].sum() == 40

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            learning_curve(_jobs({"a": [0] * 30}), n_bins=1)
