"""Machine-spec threading: no analysis kernel may silently assume Mira.

The cross-system backends (:mod:`repro.adapters`) feed non-Mira
geometries through the exact same kernels, so every ``repro.core``
entry point must *require* its ``MachineSpec`` — a ``spec=MIRA``
default would silently mis-map locations the moment a google or
mlcluster table flowed through.
"""

import inspect

import pytest

from repro.bgq import Level
from repro.bgq.machine import MIRA, MIRA_SMALL, MachineSpec
from repro.core.attribution import attribute_failures, map_events_to_jobs
from repro.core.filtering import default_pipeline
from repro.core.reliability import job_interruption_mtti
from repro.dataset import MiraDataset

MODULES = [
    "repro.core.attribution",
    "repro.core.reliability",
    "repro.core.locality",
    "repro.core.precursors",
    "repro.core.filtering.pipeline",
    "repro.core.filtering.spatial",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_no_public_entry_point_defaults_its_spec(module_name):
    module = __import__(module_name, fromlist=["__all__"])
    checked = 0
    for symbol in module.__all__:
        obj = getattr(module, symbol)
        if not callable(obj):
            continue
        target = obj.__init__ if inspect.isclass(obj) else obj
        try:
            signature = inspect.signature(target)
        except (TypeError, ValueError):  # pragma: no cover - builtins
            continue
        for parameter in signature.parameters.values():
            assert not isinstance(parameter.default, MachineSpec), (
                f"{module_name}.{symbol} defaults {parameter.name} to a "
                "MachineSpec; the spec must be threaded from dataset.spec"
            )
            checked += 1
    assert checked, f"{module_name} exported nothing with parameters"


class TestSpecIsActuallyUsed:
    """A non-Mira spec must change the answers, not just be accepted."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return MiraDataset.synthesize(n_days=6.0, seed=3, spec=MIRA_SMALL)

    def test_kernels_run_with_non_mira_spec(self, dataset):
        events = dataset.fatal_events()
        mapped = map_events_to_jobs(events, dataset.jobs, dataset.spec)
        assert mapped.shape[0] == events.n_rows
        attributed = attribute_failures(dataset.jobs, events, dataset.spec)
        assert attributed.n_rows == int((dataset.jobs["exit_status"] != 0).sum())
        clusters = default_pipeline(spec=dataset.spec).run(events).clusters
        estimate = job_interruption_mtti(
            clusters, dataset.jobs, dataset.n_days, dataset.spec
        )
        assert estimate.mtti_days != 0

    def test_missing_spec_is_a_type_error(self, dataset):
        events = dataset.fatal_events()
        with pytest.raises(TypeError):
            attribute_failures(dataset.jobs, events)
        with pytest.raises(TypeError):
            default_pipeline(spatial_level=Level.MIDPLANE)

    def test_wrong_spec_changes_the_location_mapping(self, dataset):
        from repro.core.locality import counts_by_midplane

        events = dataset.fatal_events()
        # Same events, different geometry: the midplane index space must
        # come from the spec that was passed, not from a Mira default.
        assert dataset.spec != MIRA
        small = counts_by_midplane(events, dataset.spec)
        mira = counts_by_midplane(events, MIRA)
        assert small.shape[0] == dataset.spec.n_midplanes
        assert mira.shape[0] == MIRA.n_midplanes
        assert small.shape != mira.shape
