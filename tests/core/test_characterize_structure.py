"""Unit and integration tests for characterization, structure, correlation,
and I/O analyses."""

import numpy as np
import pytest

from repro.core import (
    failing_task_position,
    failure_concentration,
    failure_correlations,
    failure_rate_by_bins,
    failure_rate_by_category,
    failure_rate_by_task_count,
    io_by_outcome,
    io_volume_vs_corehours,
    node_count_bins,
    runtime_summary,
    task_count_bins,
    top_failing,
)
from repro.dataset import MiraDataset
from repro.table import Table


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=45.0, seed=55)


@pytest.fixture
def tiny_jobs():
    return Table(
        {
            "job_id": [1, 2, 3, 4, 5, 6],
            "user": ["a", "a", "a", "b", "b", "c"],
            "project": ["p", "p", "q", "q", "q", "q"],
            "queue": ["s", "s", "l", "l", "s", "s"],
            "exit_status": [0, 139, 139, 0, 0, 1],
            "allocated_nodes": [512, 512, 1024, 2048, 512, 4096],
            "core_hours": [10.0, 20.0, 40.0, 80.0, 15.0, 160.0],
            "n_tasks": [1, 1, 4, 2, 1, 8],
            "requested_walltime": [3600.0] * 6,
            "start_time": [0.0] * 6,
            "end_time": [100.0, 50.0, 200.0, 400.0, 120.0, 90.0],
        }
    )


class TestFailureRateByCategory:
    def test_per_user(self, tiny_jobs):
        table = failure_rate_by_category(tiny_jobs, "user").sort_by("user")
        rows = {r["user"]: r for r in table.to_rows()}
        assert rows["a"]["n_jobs"] == 3
        assert rows["a"]["n_failed"] == 2
        assert rows["a"]["failure_rate"] == pytest.approx(2 / 3)
        assert rows["b"]["failure_rate"] == 0.0

    def test_sorted_by_volume(self, tiny_jobs):
        table = failure_rate_by_category(tiny_jobs, "user")
        assert table["n_jobs"].tolist() == sorted(table["n_jobs"].tolist(), reverse=True)


class TestFailureRateByBins:
    def test_counts_conserved(self, tiny_jobs):
        table = failure_rate_by_bins(tiny_jobs, "core_hours", n_bins=4)
        assert table["n_jobs"].sum() == 6
        assert table["n_failed"].sum() == 3

    def test_rejects_nonpositive(self, tiny_jobs):
        bad = tiny_jobs.with_column("core_hours", [0.0, 1, 2, 3, 4, 5])
        with pytest.raises(ValueError):
            failure_rate_by_bins(bad, "core_hours")

    def test_node_count_bins(self, tiny_jobs):
        table = node_count_bins(tiny_jobs)
        assert table["allocated_nodes"].tolist() == [512, 1024, 2048, 4096]


class TestTopFailingConcentration:
    def test_top_failing(self, tiny_jobs):
        table = top_failing(tiny_jobs, "user", k=2)
        assert table.row(0)["user"] == "a"
        assert table.row(0)["n_failed"] == 2
        assert table.row(0)["failure_share"] == pytest.approx(2 / 3)

    def test_concentration_metrics(self, tiny_jobs):
        metrics = failure_concentration(tiny_jobs, "user")
        assert metrics["n_values"] == 3
        assert metrics["n_values_with_failures"] == 2
        assert 0 < metrics["gini"] <= 1

    def test_no_failures_rejected(self, tiny_jobs):
        ok = tiny_jobs.filter(tiny_jobs["exit_status"] == 0)
        with pytest.raises(ValueError):
            failure_concentration(ok, "user")


class TestRuntimeSummary:
    def test_two_rows(self, tiny_jobs):
        table = runtime_summary(tiny_jobs)
        assert set(table["outcome"]) == {"success", "failed"}
        assert table["n"].sum() == 6


class TestStructure:
    def test_task_count_bins(self, tiny_jobs):
        table = task_count_bins(tiny_jobs)
        assert table["n_jobs"].sum() == 6
        by_label = {r["bin_label"]: r for r in table.to_rows()}
        assert by_label["1"]["n_jobs"] == 3

    def test_failure_rate_ratio(self, tiny_jobs):
        _, ratio = failure_rate_by_task_count(tiny_jobs)
        # single-task: 1/3 fail; multi-task: 2/3 fail.
        assert ratio == pytest.approx(2.0)

    def test_failing_task_position(self):
        tasks = Table(
            {
                "task_id": [0, 1, 2, 3],
                "job_id": [9, 9, 9, 9],
                "task_index": [0, 1, 2, 3],
                "start_time": [0.0, 1.0, 2.0, 3.0],
                "end_time": [1.0, 2.0, 3.0, 4.0],
                "n_nodes": [512] * 4,
                "exit_status": [0, 0, 0, 139],
            }
        )
        table = failing_task_position(tasks)
        rows = {r["position_bin"]: r["n"] for r in table.to_rows()}
        assert rows["75-100%"] == 1

    def test_failing_task_position_empty(self):
        tasks = Table(
            {
                "task_id": [0],
                "job_id": [1],
                "task_index": [0],
                "start_time": [0.0],
                "end_time": [1.0],
                "n_nodes": [512],
                "exit_status": [0],
            }
        )
        assert failing_task_position(tasks).n_rows == 0


class TestCorrelations:
    def test_structure_of_output(self, tiny_jobs):
        table = failure_correlations(tiny_jobs)
        methods = set(table["method"])
        assert methods == {"pearson", "spearman", "cramers_v"}
        assert (np.abs(table["value"]) <= 1.0 + 1e-9).all()

    def test_too_few_jobs(self, tiny_jobs):
        with pytest.raises(ValueError):
            failure_correlations(tiny_jobs.head(2))

    def test_scale_correlation_positive_on_synthetic(self, dataset):
        table = failure_correlations(dataset.jobs)
        rows = {
            (r["attribute"], r["method"]): r["value"] for r in table.to_rows()
        }
        assert rows[("allocated_nodes", "spearman")] > 0.02
        assert rows[("user", "cramers_v")] > 0.2


class TestScaleAndUserEffects:
    def test_failure_rate_grows_with_scale(self, dataset):
        table = node_count_bins(dataset.jobs)
        rates = table["failure_rate"]
        sizes = table["allocated_nodes"]
        # Weighted trend: largest sizes fail more than smallest.
        small = rates[sizes <= 1024].mean()
        large = rates[sizes >= 8192].mean()
        assert large > small

    def test_failures_concentrated_on_users(self, dataset):
        metrics = failure_concentration(dataset.jobs, "user")
        assert metrics["gini"] > 0.5
        assert metrics["top10pct_share"] > 0.3


class TestIoBehavior:
    def test_failed_jobs_write_less_per_corehour(self, dataset):
        table, ks = io_by_outcome(dataset.io, dataset.jobs)
        rows = {r["outcome"]: r for r in table.to_rows()}
        assert rows["failed"]["median_write_per_ch"] < rows["success"]["median_write_per_ch"]
        assert ks["p_value"] < 0.01  # distributions clearly differ

    def test_volume_grows_with_corehours(self, dataset):
        table = io_volume_vs_corehours(dataset.io, dataset.jobs)
        medians = table["median_bytes"]
        assert medians[-1] > medians[0]

    def test_empty_join_rejected(self, dataset):
        empty_jobs = dataset.jobs.filter(dataset.jobs["job_id"] < 0)
        with pytest.raises(ValueError):
            io_by_outcome(dataset.io, empty_jobs)


class TestWasteByFamily:
    def test_shares_sum_to_one(self, dataset):
        from repro.core.characterize import wasted_core_hours_by_family

        table = wasted_core_hours_by_family(dataset.jobs)
        assert table["share_of_waste"].sum() == pytest.approx(1.0)
        assert (table["wasted_core_hours"][:-1] >= table["wasted_core_hours"][1:]).all()

    def test_totals_match_failed_corehours(self, dataset):
        from repro.core.characterize import wasted_core_hours_by_family

        table = wasted_core_hours_by_family(dataset.jobs)
        failed = dataset.jobs.filter(dataset.jobs["exit_status"] != 0)
        assert table["wasted_core_hours"].sum() == pytest.approx(
            float(failed["core_hours"].sum())
        )
        assert table["n_failed"].sum() == failed.n_rows

    def test_no_failures_rejected(self, dataset):
        from repro.core.characterize import wasted_core_hours_by_family

        ok = dataset.jobs.filter(dataset.jobs["exit_status"] == 0)
        with pytest.raises(ValueError):
            wasted_core_hours_by_family(ok)


class TestWalltimeAccuracy:
    def test_two_outcome_rows(self, dataset):
        from repro.core.characterize import walltime_accuracy

        table = walltime_accuracy(dataset.jobs)
        assert set(table["outcome"]) == {"success", "failed"}
        assert table["n"].sum() == dataset.jobs.n_rows

    def test_ratios_bounded(self, dataset):
        from repro.core.characterize import walltime_accuracy

        table = walltime_accuracy(dataset.jobs)
        assert (table["median"] <= 1.0 + 1e-6).all()
        assert (table["median"] > 0).all()

    def test_failed_jobs_use_less_of_request(self, dataset):
        from repro.core.characterize import walltime_accuracy

        rows = {r["outcome"]: r for r in walltime_accuracy(dataset.jobs).to_rows()}
        assert rows["failed"]["median"] < rows["success"]["median"]
        assert rows["failed"]["share_under_10pct"] > rows["success"]["share_under_10pct"]
