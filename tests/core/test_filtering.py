"""Unit and integration tests for the event-filtering stages."""

import pytest

from repro.bgq import Level
from repro.bgq.machine import MIRA
from repro.core.filtering import (
    default_pipeline,
    events_to_clusters,
    jaccard,
    similarity_filter,
    spatial_filter,
    temporal_filter,
    tokenize,
)
from repro.dataset import MiraDataset
from repro.table import Table


def _events(rows):
    """rows: (timestamp, msg_id, location, message)."""
    return Table(
        {
            "timestamp": [float(r[0]) for r in rows],
            "msg_id": [r[1] for r in rows],
            "location": [r[2] for r in rows],
            "message": [r[3] for r in rows],
        }
    )


MSG = "uncorrectable DDR memory error at addr=0x{:06x}"


class TestTemporal:
    def test_burst_collapses(self):
        events = _events(
            [(t, "00010006", "R00-M0-N00-J00", MSG.format(t)) for t in (0, 10, 20, 30)]
        )
        out = temporal_filter(events_to_clusters(events), window_seconds=60)
        assert out.n_rows == 1
        assert out["n_events"][0] == 4
        assert out["first_timestamp"][0] == 0.0
        assert out["last_timestamp"][0] == 30.0

    def test_gap_splits(self):
        events = _events(
            [(0, "00010006", "R00-M0-N00-J00", MSG.format(1)),
             (10_000, "00010006", "R00-M0-N00-J00", MSG.format(2))]
        )
        out = temporal_filter(events_to_clusters(events), window_seconds=60)
        assert out.n_rows == 2

    def test_different_locations_not_merged(self):
        events = _events(
            [(0, "00010006", "R00-M0-N00-J00", MSG.format(1)),
             (1, "00010006", "R00-M0-N00-J01", MSG.format(2))]
        )
        out = temporal_filter(events_to_clusters(events), window_seconds=60)
        assert out.n_rows == 2

    def test_different_msg_ids_not_merged(self):
        events = _events(
            [(0, "00010006", "R00-M0-N00-J00", MSG.format(1)),
             (1, "00010005", "R00-M0-N00-J00", "machine check in core rank=3")]
        )
        out = temporal_filter(events_to_clusters(events), window_seconds=60)
        assert out.n_rows == 2

    def test_event_count_conserved(self):
        events = _events(
            [(t, "00010006", "R00-M0-N00-J00", MSG.format(t)) for t in range(0, 500, 7)]
        )
        out = temporal_filter(events_to_clusters(events), window_seconds=10)
        assert out["n_events"].sum() == events.n_rows

    def test_empty_input(self):
        out = temporal_filter(events_to_clusters(_events([])), 60)
        assert out.n_rows == 0

    def test_bad_window(self):
        with pytest.raises(ValueError):
            temporal_filter(events_to_clusters(_events([])), 0)


class TestSpatial:
    def test_fanout_within_midplane_merges(self):
        events = _events(
            [(0, "00010006", "R00-M0-N00-J00", MSG.format(1)),
             (5, "00010006", "R00-M0-N07-J12", MSG.format(2)),
             (9, "00010006", "R00-M0-N02-J03", MSG.format(3))]
        )
        out = spatial_filter(events_to_clusters(events), window_seconds=60, spec=MIRA)
        assert out.n_rows == 1
        assert out["n_events"][0] == 3
        assert out["location"][0] == "R00-M0"  # lifted to the midplane

    def test_other_midplane_not_merged(self):
        events = _events(
            [(0, "00010006", "R00-M0-N00-J00", MSG.format(1)),
             (5, "00010006", "R17-M1-N00-J00", MSG.format(2))]
        )
        out = spatial_filter(events_to_clusters(events), window_seconds=60, spec=MIRA)
        assert out.n_rows == 2

    def test_rack_level_grouping(self):
        events = _events(
            [(0, "00010006", "R00-M0-N00-J00", MSG.format(1)),
             (5, "00010006", "R00-M1-N00-J00", MSG.format(2))]
        )
        midplane = spatial_filter(events_to_clusters(events), 60, level=Level.MIDPLANE, spec=MIRA)
        rack = spatial_filter(events_to_clusters(events), 60, level=Level.RACK, spec=MIRA)
        assert midplane.n_rows == 2
        assert rack.n_rows == 1
        assert rack["location"][0] == "R00"

    def test_coarse_location_kept(self):
        # A rack-level event cannot descend to midplane level; it groups
        # at its own level.
        events = _events([(0, "00040003", "R05", "bulk power module failure unit=2")])
        out = spatial_filter(events_to_clusters(events), 60, spec=MIRA)
        assert out.n_rows == 1
        assert out["location"][0] == "R05"

    def test_count_conserved(self):
        events = _events(
            [(t, "00010006", f"R00-M0-N{t % 16:02d}-J00", MSG.format(t))
             for t in range(0, 100, 3)]
        )
        out = spatial_filter(events_to_clusters(events), window_seconds=10, spec=MIRA)
        assert out["n_events"].sum() == events.n_rows


class TestSimilarity:
    def test_tokenize_drops_payload(self):
        a = tokenize(MSG.format(1))
        b = tokenize(MSG.format(999_999))
        assert a == b

    def test_jaccard_bounds(self):
        assert jaccard(frozenset(), frozenset()) == 1.0
        assert jaccard(frozenset({"a"}), frozenset()) == 0.0
        assert jaccard(frozenset({"a", "b"}), frozenset({"b", "c"})) == pytest.approx(1 / 3)

    def test_similar_messages_merge_across_locations(self):
        events = _events(
            [(0, "00010006", "R00-M0-N00-J00", MSG.format(1)),
             (30, "00010006", "R20-M1-N05-J09", MSG.format(2))]
        )
        out = similarity_filter(events_to_clusters(events), 60, threshold=0.5)
        assert out.n_rows == 1

    def test_dissimilar_messages_stay_separate(self):
        events = _events(
            [(0, "00010006", "R00-M0-N00-J00", MSG.format(1)),
             (30, "00040003", "R05", "bulk power module failure unit=2")]
        )
        out = similarity_filter(events_to_clusters(events), 60, threshold=0.5)
        assert out.n_rows == 2

    def test_window_closes_clusters(self):
        events = _events(
            [(0, "00010006", "R00-M0-N00-J00", MSG.format(1)),
             (10_000, "00010006", "R00-M0-N00-J00", MSG.format(2))]
        )
        out = similarity_filter(events_to_clusters(events), 60, threshold=0.5)
        assert out.n_rows == 2

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            similarity_filter(events_to_clusters(_events([])), 60, threshold=1.5)

    def test_count_conserved(self):
        events = _events(
            [(t, "00010006", "R00-M0-N00-J00", MSG.format(t)) for t in range(0, 300, 5)]
        )
        out = similarity_filter(events_to_clusters(events), 60, 0.5)
        assert out["n_events"].sum() == events.n_rows


class TestPipeline:
    @pytest.fixture(scope="class")
    def dataset(self):
        return MiraDataset.synthesize(n_days=60.0, seed=33)

    def test_recovers_ground_truth_incidents(self, dataset):
        outcome = default_pipeline(spec=dataset.spec).run(dataset.fatal_events())
        truth = len(dataset.incidents)
        # Filtering should land within a small factor of the truth.
        assert 0.7 * truth <= outcome.n_clusters <= 1.3 * truth

    def test_stage_counts_monotone(self, dataset):
        outcome = default_pipeline(spec=dataset.spec).run(dataset.fatal_events())
        counts = [c for _, c in outcome.stage_counts]
        assert counts == sorted(counts, reverse=True)

    def test_total_reduction_substantial(self, dataset):
        outcome = default_pipeline(spec=dataset.spec).run(dataset.fatal_events())
        assert outcome.total_reduction > 5

    def test_event_count_conserved(self, dataset):
        fatal = dataset.fatal_events()
        outcome = default_pipeline(spec=dataset.spec).run(fatal)
        assert outcome.clusters["n_events"].sum() == fatal.n_rows

    def test_reduction_factors(self, dataset):
        outcome = default_pipeline(spec=dataset.spec).run(dataset.fatal_events())
        factors = outcome.reduction_factors()
        assert [name for name, _ in factors] == ["temporal", "spatial", "similarity"]
        assert all(f >= 1.0 for _, f in factors)

    def test_empty_pipeline_rejected(self):
        from repro.core.filtering import FilterPipeline

        with pytest.raises(ValueError):
            FilterPipeline([])
