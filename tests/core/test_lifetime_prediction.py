"""Unit and integration tests for the lifetime and prediction extensions."""

import numpy as np
import pytest

from repro.core.lifetime import (
    epoch_summary,
    failure_rate_changepoints,
    failure_rate_trend,
)
from repro.core.prediction import (
    LogisticPredictor,
    UserHistoryPredictor,
    auc_score,
    build_features,
    evaluate_predictors,
)
from repro.dataset import MiraDataset
from repro.scheduler import WorkloadParams
from repro.table import Table


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=120.0, seed=66)


class TestEpochSummary:
    def test_partition_of_jobs(self, dataset):
        epochs = epoch_summary(dataset, epoch_days=30.0)
        assert epochs["jobs"].sum() == dataset.jobs.n_rows
        assert epochs["failed"].sum() == dataset.failed_jobs().n_rows
        assert epochs.n_rows == 4

    def test_rates_bounded(self, dataset):
        epochs = epoch_summary(dataset, epoch_days=30.0)
        rates = epochs["failure_rate"]
        assert ((rates >= 0) & (rates <= 1)).all()

    def test_bad_epoch_length(self, dataset):
        with pytest.raises(ValueError):
            epoch_summary(dataset, epoch_days=0.0)


class TestTrend:
    def test_stationary_workload_weak_trend(self, dataset):
        trend = failure_rate_trend(dataset, epoch_days=20.0)
        assert abs(trend["spearman"]) < 0.95  # no engineered drift
        assert trend["n_epochs"] == 6

    def test_too_few_epochs(self, dataset):
        with pytest.raises(ValueError, match="3 populated epochs"):
            failure_rate_trend(dataset, epoch_days=120.0)


class TestChangepoints:
    def test_stationary_no_changepoints(self, dataset):
        assert failure_rate_changepoints(dataset, epoch_days=10.0) == []

    def test_detects_injected_regime_shift(self, dataset):
        """Doubling the failure indicator in the second half of the trace
        must produce a detected changepoint."""
        jobs = dataset.jobs
        midpoint = dataset.n_days * 86_400.0 / 2
        late = jobs["submit_time"] > midpoint
        rng = np.random.default_rng(0)
        # Force extra failures late: flip half the late successes to 1.
        flip = late & (jobs["exit_status"] == 0) & (rng.random(jobs.n_rows) < 0.5)
        statuses = np.where(flip, 1, jobs["exit_status"])
        import dataclasses

        shifted = dataclasses.replace(
            dataset, jobs=jobs.with_column("exit_status", statuses)
        )
        found = failure_rate_changepoints(shifted, epoch_days=5.0)
        assert found
        # The changepoint lands near the midpoint epoch (12 of 24).
        assert any(8 <= c.index <= 16 for c in found)
        assert all(c.shift > 0 for c in found if 8 <= c.index <= 16)


class TestFeatures:
    def test_shapes(self, dataset):
        x, y = build_features(dataset.jobs)
        assert x.shape == (dataset.jobs.n_rows, 5)
        assert set(np.unique(y)) <= {0.0, 1.0}

    def test_no_leakage_first_job_prior(self):
        jobs = Table(
            {
                "job_id": [1, 2, 3],
                "user": ["u", "u", "u"],
                "submit_time": [0.0, 10.0, 20.0],
                "exit_status": [1, 1, 0],
                "allocated_nodes": [512] * 3,
                "requested_walltime": [3600.0] * 3,
                "n_tasks": [1] * 3,
            }
        )
        x, _ = build_features(jobs, smoothing=2.0)
        # First job: prior only (2 * 0.25 / 2 = 0.25).
        assert x[0, 0] == pytest.approx(0.25)
        # Second job: one previous failure -> (1 + 0.5) / 3.
        assert x[1, 0] == pytest.approx(1.5 / 3)
        # Third: two previous failures -> (2 + 0.5) / 4.
        assert x[2, 0] == pytest.approx(2.5 / 4)

    def test_history_feature_monotone_in_failures(self, dataset):
        x, y = build_features(dataset.jobs)
        assert 0.0 <= x[:, 0].min() and x[:, 0].max() <= 1.0


class TestAuc:
    def test_perfect_separation(self):
        assert auc_score(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_random_is_half(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert abs(auc_score(y, scores) - 0.5) < 0.05

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            auc_score(np.zeros(10), np.random.default_rng(0).random(10))


class TestPredictors:
    def test_logistic_learns_synthetic_rule(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, (2000, 5))
        logits = 2.0 * x[:, 0] - 1.5 * x[:, 2]
        y = (rng.random(2000) < 1 / (1 + np.exp(-logits))).astype(float)
        model = LogisticPredictor().fit(x[:1500], y[:1500])
        assert auc_score(y[1500:], model.predict_proba(x[1500:])) > 0.8

    def test_logistic_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            LogisticPredictor().predict_proba(np.zeros((2, 5)))

    def test_logistic_empty_rejected(self):
        with pytest.raises(ValueError):
            LogisticPredictor().fit(np.zeros((0, 5)), np.zeros(0))

    def test_user_history_passthrough(self):
        x = np.array([[0.3, 1, 9, 8, 0], [0.7, 2, 9, 8, 0]])
        assert UserHistoryPredictor().fit(x, np.array([0, 1])).predict_proba(x).tolist() == [0.3, 0.7]


class TestEvaluate:
    def test_both_predictors_beat_coin_flip(self, dataset):
        table = evaluate_predictors(dataset.jobs)
        assert table.n_rows == 2
        assert (table["auc"] > 0.7).all()
        assert (table["brier"] < 0.25).all()

    def test_bad_fraction(self, dataset):
        with pytest.raises(ValueError):
            evaluate_predictors(dataset.jobs, train_fraction=0.99)

    def test_too_few_jobs(self, dataset):
        with pytest.raises(ValueError, match="at least 10"):
            evaluate_predictors(dataset.jobs.head(12))
