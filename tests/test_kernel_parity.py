"""Golden-parity suite for the vectorized analytics kernels.

Each pre-rewrite implementation is kept here verbatim as a
``_reference_*`` function; every test asserts the vectorized kernel in
``src/`` produces **value-identical** output on the seeded 120-day
dataset plus empty-table and single-group edge cases.  If a future
optimization changes any numeric result, these tests are the tripwire.
"""

from bisect import bisect_right

import numpy as np
import pytest

from repro.bgq.location import Location
from repro.bgq.machine import MIRA
from repro.core.attribution import (
    NO_JOB,
    attribute_failures,
    event_midplanes,
    map_events_to_jobs,
)
from repro.core.exitcodes import classify_column, classify_exit_status
from repro.dataset import MiraDataset
from repro.stats.bootstrap import bootstrap_ci
from repro.stats.changepoint import cusum_statistic, detect_changepoints
from repro.table import Table

PARITY_DAYS = float(__import__("os").environ.get("REPRO_PARITY_DAYS", "120"))


@pytest.fixture(scope="module")
def dataset():
    return MiraDataset.synthesize(n_days=PARITY_DAYS, seed=2019)


# ---------------------------------------------------------------------------
# reference implementations (pre-vectorization, kept verbatim)
# ---------------------------------------------------------------------------


def _reference_event_midplanes(locations, spec=MIRA):
    cache = {}
    out = []
    for code in locations:
        hit = cache.get(code)
        if hit is None:
            loc = Location.parse(code, spec)
            if loc.midplane is not None:
                hit = (loc.midplane_index(spec),)
            else:
                rack = spec.rack_index(loc.rack)
                base = rack * spec.midplanes_per_rack
                hit = tuple(range(base, base + spec.midplanes_per_rack))
            cache[code] = hit
        out.append(hit)
    return out


class _ReferenceJobIntervalIndex:
    def __init__(self, jobs, spec):
        per_midplane = {}
        starts = jobs["start_time"]
        ends = jobs["end_time"]
        firsts = jobs["first_midplane"]
        counts = jobs["n_midplanes"]
        ids = jobs["job_id"]
        for i in range(jobs.n_rows):
            for midplane in range(int(firsts[i]), int(firsts[i]) + int(counts[i])):
                per_midplane.setdefault(midplane, []).append(
                    (float(starts[i]), float(ends[i]), int(ids[i]))
                )
        self._starts = {}
        self._intervals = {}
        for midplane, intervals in per_midplane.items():
            intervals.sort()
            self._intervals[midplane] = intervals
            self._starts[midplane] = [iv[0] for iv in intervals]

    def lookup(self, midplane, timestamp):
        starts = self._starts.get(midplane)
        if not starts:
            return NO_JOB
        index = bisect_right(starts, timestamp) - 1
        if index < 0:
            return NO_JOB
        start, end, job_id = self._intervals[midplane][index]
        return job_id if start <= timestamp < end else NO_JOB


def _reference_map_events_to_jobs(ras, jobs, spec=MIRA):
    index = _ReferenceJobIntervalIndex(jobs, spec)
    midplane_sets = _reference_event_midplanes(ras["location"], spec)
    timestamps = ras["timestamp"]
    out = np.full(ras.n_rows, NO_JOB, dtype=np.int64)
    for i, (midplanes, timestamp) in enumerate(zip(midplane_sets, timestamps)):
        for midplane in midplanes:
            job_id = index.lookup(midplane, float(timestamp))
            if job_id != NO_JOB:
                out[i] = job_id
                break
    return out


def _reference_attributed_column(failed, mapped):
    hit_jobs = set(int(j) for j in mapped if j != NO_JOB)
    return np.array(
        [
            "system" if int(job_id) in hit_jobs else "user"
            for job_id in failed["job_id"]
        ],
        dtype=object,
    )


def _reference_bootstrap_estimates(sample, statistic, n_resamples=1000, seed=0):
    arr = np.asarray(sample, dtype=np.float64)
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples, dtype=np.float64)
    for i in range(n_resamples):
        resample = arr[rng.integers(0, arr.size, size=arr.size)]
        estimates[i] = statistic(resample)
    return estimates


def _reference_cusum_statistic(series):
    x = np.asarray(series, dtype=np.float64)
    n = x.size
    if n < 4:
        raise ValueError(f"need at least 4 points, got {n}")
    best_index, best_stat = -1, 0.0
    total = x.sum()
    cumulative = np.cumsum(x)
    overall_std = x.std(ddof=1)
    if overall_std == 0:
        return n // 2, 0.0
    for split in range(2, n - 1):
        left_mean = cumulative[split - 1] / split
        right_mean = (total - cumulative[split - 1]) / (n - split)
        pooled = overall_std * np.sqrt(1.0 / split + 1.0 / (n - split))
        stat = abs(left_mean - right_mean) / pooled
        if stat > best_stat:
            best_index, best_stat = split, stat
    return best_index, float(best_stat)


def _reference_significant(series, stat, n_permutations, seed, alpha):
    rng = np.random.default_rng(seed)
    exceed = 0
    for _ in range(n_permutations):
        _, permuted_stat = _reference_cusum_statistic(rng.permutation(series))
        exceed += permuted_stat >= stat
    return exceed / n_permutations < alpha


def _reference_classify_column(statuses):
    return np.array(
        [classify_exit_status(int(s)).value for s in statuses], dtype=object
    )


def _reference_group_apply(table, key, func):
    """Mask-scan group iteration, as GroupBy.apply did pre-rewrite."""
    gb = table.group_by(key)
    results = []
    for gid in range(gb._n_groups):
        mask = gb._group_ids == gid
        results.append(func(table.filter(mask)))
    return results


def _reference_group_median(table, key, column):
    gb = table.group_by(key)
    out = []
    for gid in range(gb._n_groups):
        out.append(float(np.median(table.filter(gb._group_ids == gid)[column])))
    return out


# ---------------------------------------------------------------------------
# attribution join
# ---------------------------------------------------------------------------


class TestAttributionParity:
    def test_map_events_to_jobs_full_trace(self, dataset):
        new = map_events_to_jobs(dataset.ras, dataset.jobs, dataset.spec)
        old = _reference_map_events_to_jobs(dataset.ras, dataset.jobs, dataset.spec)
        assert np.array_equal(new, old)

    def test_map_fatal_events_to_failed_jobs(self, dataset):
        failed = dataset.jobs.filter(dataset.jobs["exit_status"] != 0)
        fatal = dataset.fatal_events()
        new = map_events_to_jobs(fatal, failed, dataset.spec)
        old = _reference_map_events_to_jobs(fatal, failed, dataset.spec)
        assert np.array_equal(new, old)

    def test_event_midplanes_full_trace(self, dataset):
        locations = dataset.ras["location"]
        assert event_midplanes(locations, dataset.spec) == (
            _reference_event_midplanes(locations, dataset.spec)
        )

    def test_attributed_column(self, dataset):
        failed = dataset.jobs.filter(dataset.jobs["exit_status"] != 0)
        fatal = dataset.fatal_events()
        mapped = map_events_to_jobs(fatal, failed, dataset.spec)
        attributed = attribute_failures(dataset.jobs, fatal, dataset.spec)
        expected = _reference_attributed_column(failed, mapped)
        assert attributed["attributed"].tolist() == expected.tolist()
        assert attributed["attributed"].dtype.kind == "O"

    def test_empty_events(self, dataset):
        empty = Table({"timestamp": np.empty(0), "location": np.empty(0, object)})
        assert map_events_to_jobs(empty, dataset.jobs, dataset.spec).tolist() == []

    def test_empty_jobs(self, dataset):
        events = dataset.ras.head(50)
        empty_jobs = dataset.jobs.filter(np.zeros(dataset.jobs.n_rows, dtype=bool))
        new = map_events_to_jobs(events, empty_jobs, dataset.spec)
        old = _reference_map_events_to_jobs(events, empty_jobs, dataset.spec)
        assert np.array_equal(new, old)
        assert (new == NO_JOB).all()

    def test_single_job(self, dataset):
        one_job = dataset.jobs.head(1)
        new = map_events_to_jobs(dataset.ras, one_job, dataset.spec)
        old = _reference_map_events_to_jobs(dataset.ras, one_job, dataset.spec)
        assert np.array_equal(new, old)

    def test_boundary_timestamps_match_bisection(self):
        """Queries exactly on start/end boundaries keep bisect semantics."""
        jobs = Table(
            {
                "job_id": [1, 2],
                "start_time": [100.0, 200.0],
                "end_time": [200.0, 300.0],
                "first_midplane": [0, 0],
                "n_midplanes": [1, 1],
                "exit_status": [0, 0],
            }
        )
        events = Table(
            {
                "timestamp": [99.999, 100.0, 199.999, 200.0, 300.0],
                "location": ["R00-M0"] * 5,
            }
        )
        new = map_events_to_jobs(events, jobs, MIRA)
        old = _reference_map_events_to_jobs(events, jobs, MIRA)
        assert np.array_equal(new, old)
        assert new.tolist() == [NO_JOB, 1, 1, 2, NO_JOB]


# ---------------------------------------------------------------------------
# bootstrap
# ---------------------------------------------------------------------------


class TestBootstrapParity:
    def _sample(self, dataset):
        failed = dataset.jobs.filter(dataset.jobs["exit_status"] != 0)
        return (failed["exit_status"] == 137).astype(np.float64)

    @pytest.mark.parametrize("statistic", [np.mean, np.median])
    def test_axis_aware_statistics(self, dataset, statistic):
        sample = self._sample(dataset)
        result = bootstrap_ci(sample, statistic, seed=0)
        estimates = _reference_bootstrap_estimates(sample, statistic, seed=0)
        low, high = np.quantile(estimates, [0.025, 0.975])
        assert result.low == float(low)
        assert result.high == float(high)
        assert result.estimate == float(statistic(sample))

    def test_non_vectorizable_callable(self, dataset):
        sample = self._sample(dataset)[:500]
        stat = lambda values: float(np.sort(values)[len(values) // 3])  # noqa: E731
        result = bootstrap_ci(sample, stat, seed=3, n_resamples=200)
        estimates = _reference_bootstrap_estimates(
            sample, stat, n_resamples=200, seed=3
        )
        low, high = np.quantile(estimates, [0.025, 0.975])
        assert result.low == float(low)
        assert result.high == float(high)

    def test_tiny_memory_budget_chunks_are_invisible(self, dataset):
        sample = self._sample(dataset)[:300]
        full = bootstrap_ci(sample, np.mean, seed=1, n_resamples=100)
        chunked = bootstrap_ci(
            sample, np.mean, seed=1, n_resamples=100, memory_budget=4096
        )
        assert (full.low, full.high) == (chunked.low, chunked.high)

    def test_single_element_sample(self):
        result = bootstrap_ci(np.array([4.0]), np.mean, seed=0, n_resamples=50)
        assert result.low == result.high == result.estimate == 4.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]), np.mean)


# ---------------------------------------------------------------------------
# changepoint
# ---------------------------------------------------------------------------


class TestChangepointParity:
    def test_cusum_statistic_on_lifetime_series(self, dataset):
        from repro.core.lifetime import epoch_summary

        epochs = epoch_summary(dataset, epoch_days=7.0)
        series = np.asarray(epochs["failure_rate"], dtype=np.float64)
        assert cusum_statistic(series) == _reference_cusum_statistic(series)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cusum_statistic_random_series(self, seed):
        rng = np.random.default_rng(seed)
        series = rng.normal(size=60)
        series[30:] += rng.uniform(0, 3)
        assert cusum_statistic(series) == _reference_cusum_statistic(series)

    def test_cusum_constant_series(self):
        series = np.full(12, 3.5)
        assert cusum_statistic(series) == _reference_cusum_statistic(series) == (6, 0.0)

    def test_cusum_minimum_length(self):
        series = np.array([0.0, 0.0, 5.0, 5.0])
        assert cusum_statistic(series) == _reference_cusum_statistic(series)
        with pytest.raises(ValueError):
            cusum_statistic(np.array([1.0, 2.0, 3.0]))

    @pytest.mark.parametrize("seed", [0, 7])
    def test_detect_changepoints_matches_reference_decisions(self, seed):
        """detect_changepoints output is identical because the batched
        permutation null consumes the RNG stream exactly like the loop."""
        rng = np.random.default_rng(seed)
        series = np.concatenate(
            [rng.normal(1, 0.3, 24), rng.normal(3, 0.3, 24), rng.normal(0.5, 0.3, 24)]
        )
        found = detect_changepoints(series, seed=seed)
        assert [c.index for c in found]  # the shifts are found
        reference = _reference_detect_changepoints(series, seed=seed)
        assert [(c.index, c.statistic, c.mean_before, c.mean_after) for c in found] == [
            (c.index, c.statistic, c.mean_before, c.mean_after) for c in reference
        ]


def _reference_detect_changepoints(
    series, max_changepoints=3, alpha=0.01, n_permutations=200, min_segment=4, seed=0
):
    from repro.stats.changepoint import Changepoint

    x = np.asarray(series, dtype=np.float64)
    found = []
    segments = [(0, x.size)]
    while segments and len(found) < max_changepoints:
        best = None
        for start, end in segments:
            if end - start < 2 * min_segment:
                continue
            split, stat = _reference_cusum_statistic(x[start:end])
            if best is None or stat > best[3]:
                best = (start, end, start + split, stat)
        if best is None:
            break
        start, end, index, stat = best
        segments.remove((start, end))
        if not _reference_significant(x[start:end], stat, n_permutations, seed, alpha):
            continue
        found.append(
            Changepoint(
                index=index,
                statistic=stat,
                mean_before=float(x[start:index].mean()),
                mean_after=float(x[index:end].mean()),
            )
        )
        segments.append((start, index))
        segments.append((index, end))
    return sorted(found, key=lambda c: c.index)


# ---------------------------------------------------------------------------
# exit-status classification
# ---------------------------------------------------------------------------


class TestClassifyParity:
    def test_full_trace(self, dataset):
        statuses = dataset.jobs["exit_status"]
        assert classify_column(statuses).tolist() == (
            _reference_classify_column(statuses).tolist()
        )

    def test_empty(self):
        out = classify_column(np.empty(0, dtype=np.int64))
        assert out.tolist() == [] and out.dtype.kind == "O"

    def test_single(self):
        assert classify_column(np.array([137])).tolist() == ["system_kill"]


# ---------------------------------------------------------------------------
# group-by iteration and aggregation
# ---------------------------------------------------------------------------


class TestGroupByParity:
    def test_apply_matches_mask_scan(self, dataset):
        jobs = dataset.jobs
        new = jobs.group_by("user").apply(lambda t: float(t["core_hours"].sum()))
        old = _reference_group_apply(
            jobs, "user", lambda t: float(t["core_hours"].sum())
        )
        assert new == old

    def test_apply_preserves_row_order_within_group(self, dataset):
        jobs = dataset.jobs
        new = jobs.group_by("user").apply(lambda t: t["job_id"].tolist())
        old = _reference_group_apply(jobs, "user", lambda t: t["job_id"].tolist())
        assert new == old

    def test_groups_iteration(self, dataset):
        jobs = dataset.jobs.head(2000)
        gb_rows = {
            key["user"]: sub["job_id"].tolist()
            for key, sub in jobs.group_by("user").groups()
        }
        old = dict(
            zip(
                jobs.group_by("user")._key_values["user"].tolist(),
                _reference_group_apply(jobs, "user", lambda t: t["job_id"].tolist()),
            )
        )
        assert gb_rows == old

    def test_median_agg_matches_np_median(self, dataset):
        jobs = dataset.jobs
        new = jobs.group_by("user").agg(core_hours="median")
        old = _reference_group_median(jobs, "user", "core_hours")
        assert new["core_hours_median"].tolist() == old

    def test_median_with_nan_group(self):
        t = Table({"k": ["a", "a", "b"], "v": [1.0, np.nan, 2.0]})
        medians = t.group_by("k").agg(v="median").sort_by("k")["v_median"]
        assert np.isnan(medians[0]) and medians[1] == 2.0

    def test_single_group(self):
        t = Table({"k": ["x", "x", "x"], "v": [3.0, 1.0, 2.0]})
        agg = t.group_by("k").agg(v="median")
        assert agg["v_median"].tolist() == [2.0]
        assert t.group_by("k").apply(lambda s: s.n_rows) == [3]

    def test_empty_table(self):
        t = Table({"k": np.empty(0, dtype=object), "v": np.empty(0)})
        gb = t.group_by("k")
        assert gb.n_groups == 0
        assert gb.apply(lambda s: s.n_rows) == []
        assert list(gb.groups()) == []
        assert gb.agg(v="sum").n_rows == 0


# ---------------------------------------------------------------------------
# chunked streaming kernels (REPRO_CHUNK_ROWS)
# ---------------------------------------------------------------------------


class TestChunkedParity:
    """The streaming kernels must be value-identical to the single-pass
    ones: bit-identical for order-independent aggregations and the
    attribution join, allclose for float reductions whose partial sums
    add in a different order."""

    CHUNK = "257"  # prime, never divides the row count evenly

    def _agg_pair(self, monkeypatch, table, key, column, agg_name):
        monkeypatch.delenv("REPRO_CHUNK_ROWS", raising=False)
        whole = table.group_by(key).agg({column: agg_name})
        monkeypatch.setenv("REPRO_CHUNK_ROWS", self.CHUNK)
        chunked = table.group_by(key).agg({column: agg_name})
        return whole, chunked

    @pytest.mark.parametrize("agg_name", ["min", "max", "nancount"])
    def test_exact_aggregations(self, dataset, monkeypatch, agg_name):
        whole, chunked = self._agg_pair(
            monkeypatch, dataset.jobs, "user", "core_hours", agg_name
        )
        for name in whole.column_names:
            assert np.array_equal(
                np.asarray(whole[name]), np.asarray(chunked[name])
            ), name

    @pytest.mark.parametrize("agg_name", ["sum", "mean", "std"])
    def test_float_aggregations_allclose(self, dataset, monkeypatch, agg_name):
        whole, chunked = self._agg_pair(
            monkeypatch, dataset.jobs, "user", "core_hours", agg_name
        )
        assert whole["user"].tolist() == chunked["user"].tolist()
        assert whole["count"].tolist() == chunked["count"].tolist()
        assert np.allclose(
            whole[f"core_hours_{agg_name}"],
            chunked[f"core_hours_{agg_name}"],
            rtol=1e-12,
            equal_nan=True,
        )

    @pytest.mark.parametrize("agg_name", ["min", "max", "nancount"])
    def test_nan_groups_survive_chunking(self, monkeypatch, agg_name):
        rng = np.random.default_rng(7)
        values = rng.normal(size=1000)
        values[rng.integers(0, 1000, size=90)] = np.nan
        t = Table({"k": rng.integers(0, 9, size=1000), "v": values})
        whole, chunked = self._agg_pair(monkeypatch, t, "k", "v", agg_name)
        for name in whole.column_names:
            assert np.array_equal(
                np.asarray(whole[name]),
                np.asarray(chunked[name]),
                equal_nan=True,
            ), name

    def test_median_falls_back_to_single_pass(self, dataset, monkeypatch):
        """Median needs a global sort, so it is intentionally absent from
        STREAMING_AGGREGATIONS and must stay bit-identical regardless."""
        from repro.table.groupby import STREAMING_AGGREGATIONS

        assert "median" not in STREAMING_AGGREGATIONS
        whole, chunked = self._agg_pair(
            monkeypatch, dataset.jobs, "user", "core_hours", "median"
        )
        assert np.array_equal(whole["core_hours_median"], chunked["core_hours_median"])

    def test_attribution_join_bit_identical(self, dataset, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK_ROWS", raising=False)
        whole = map_events_to_jobs(dataset.ras, dataset.jobs, dataset.spec)
        monkeypatch.setenv("REPRO_CHUNK_ROWS", self.CHUNK)
        chunked = map_events_to_jobs(dataset.ras, dataset.jobs, dataset.spec)
        assert np.array_equal(whole, chunked)

    def test_chunk_size_larger_than_table_is_single_pass(self, monkeypatch):
        t = Table({"k": ["a", "b", "a"], "v": [1.0, 2.0, 3.0]})
        monkeypatch.setenv("REPRO_CHUNK_ROWS", "1000000")
        agg = t.group_by("k").agg(v="sum")
        assert agg.sort_by("k")["v_sum"].tolist() == [4.0, 2.0]

    def test_invalid_chunk_env_rejected(self, monkeypatch):
        from repro.util.chunking import chunk_rows

        monkeypatch.setenv("REPRO_CHUNK_ROWS", "lots")
        with pytest.raises(ValueError, match="not an integer"):
            chunk_rows()
        monkeypatch.setenv("REPRO_CHUNK_ROWS", "-5")
        with pytest.raises(ValueError, match=">= 0"):
            chunk_rows()
