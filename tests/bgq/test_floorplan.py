"""Unit tests for the ASCII machine-floor heatmap."""

import numpy as np
import pytest

from repro.bgq import INTENSITY_RAMP, MIRA, MIRA_SMALL, render_midplane_heatmap


class TestHeatmap:
    def test_all_zero_is_blank(self):
        text = render_midplane_heatmap(np.zeros(MIRA.n_midplanes))
        body = [l for l in text.splitlines() if l.startswith("row")]
        assert len(body) == MIRA.rack_rows
        for line in body:
            cells = line.split(" ", 2)[2]
            assert set(cells) <= {" "}

    def test_peak_is_at_max_ramp(self):
        values = np.zeros(MIRA.n_midplanes)
        values[0] = 100.0
        text = render_midplane_heatmap(values)
        first_row = [l for l in text.splitlines() if l.startswith("row 0")][0]
        assert INTENSITY_RAMP[-1] in first_row

    def test_nonzero_never_blank(self):
        values = np.full(MIRA.n_midplanes, 1e-6)
        values[0] = 1.0
        text = render_midplane_heatmap(values)
        rows = [l for l in text.splitlines() if l.startswith("row")]
        cells = "".join(r.split(" ", 2)[2].replace(" ", "") for r in rows)
        # Cells are either intensity chars; tiny values must render at
        # least level 1 ('.'), never blank.
        assert len(cells) == MIRA.n_midplanes
        assert " " not in cells

    def test_title_and_legend(self):
        text = render_midplane_heatmap(np.zeros(MIRA.n_midplanes), title="T")
        assert text.splitlines()[0] == "T"
        assert "ramp" in text.splitlines()[-1]

    def test_small_spec_layout(self):
        text = render_midplane_heatmap(
            np.arange(MIRA_SMALL.n_midplanes, dtype=float), spec=MIRA_SMALL
        )
        rows = [l for l in text.splitlines() if l.startswith("row")]
        assert len(rows) == 1  # one rack row

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="midplane values"):
            render_midplane_heatmap(np.zeros(10))
