"""Property-based tests (hypothesis) for the BG/Q machine model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgq import (
    MIRA,
    MIRA_SMALL,
    Location,
    PartitionAllocator,
    TorusTopology,
    allowed_block_sizes,
)

node_indices = st.integers(min_value=0, max_value=MIRA.n_nodes - 1)
midplane_indices = st.integers(min_value=0, max_value=MIRA.n_midplanes - 1)


@given(index=node_indices)
def test_location_node_roundtrip(index):
    assert Location.from_node_index(index).node_index() == index


@given(index=midplane_indices)
def test_location_midplane_roundtrip(index):
    assert Location.from_midplane_index(index).midplane_index() == index


@given(index=node_indices)
def test_location_code_reparse(index):
    loc = Location.from_node_index(index)
    assert Location.parse(loc.code) == loc


@given(index=node_indices)
def test_ancestor_contains(index):
    loc = Location.from_node_index(index)
    rack = loc.ancestor(type(loc.level).RACK)
    assert rack.contains(loc)


@settings(max_examples=30)
@given(a=node_indices, b=node_indices)
def test_torus_metric_axioms(a, b):
    torus = TorusTopology(MIRA)
    d = torus.distance(a, b)
    assert d >= 0
    assert (d == 0) == (a == b)
    assert d == torus.distance(b, a)
    # Metric bounded by the sum of half-dimensions.
    assert d <= sum(dim // 2 for dim in torus.dims)


@settings(max_examples=25)
@given(index=node_indices)
def test_torus_roundtrip(index):
    torus = TorusTopology(MIRA)
    assert torus.coords_to_node(torus.node_coords(index)) == index


@settings(max_examples=20, deadline=None)
@given(
    requests=st.lists(
        st.sampled_from([512, 1024, 2048, 4096, 8192, 12288, 24576]),
        min_size=0,
        max_size=30,
    ),
    release_choices=st.lists(st.integers(min_value=0, max_value=10**6), max_size=30),
)
def test_allocator_invariants_under_churn(requests, release_choices):
    """Blocks never overlap, the busy count is exact, and released
    capacity is reusable — under arbitrary allocate/release orderings."""
    allocator = PartitionAllocator(MIRA)
    live = []
    release_iter = iter(release_choices)
    for nodes in requests:
        block = allocator.allocate(nodes)
        if block is not None:
            live.append(block)
            assert block.first_midplane % block.n_midplanes == 0  # aligned
        choice = next(release_iter, None)
        if live and choice is not None and choice % 3 == 0:
            allocator.release(live.pop(choice % len(live)))
        occupied = [m for b in live for m in b.midplane_indices]
        assert len(occupied) == len(set(occupied))
        assert allocator.busy_midplanes == len(occupied)


@given(nodes=st.integers(min_value=1, max_value=MIRA.n_nodes))
def test_block_size_rounding_sound(nodes):
    allocator = PartitionAllocator(MIRA)
    size = allocator.block_midplanes_for(nodes)
    assert size in allowed_block_sizes(MIRA)
    assert size * MIRA.nodes_per_midplane >= nodes
    # Minimality: no smaller allowed size fits.
    smaller = [s for s in allowed_block_sizes(MIRA) if s < size]
    if smaller:
        assert max(smaller) * MIRA.nodes_per_midplane < nodes


@settings(max_examples=20)
@given(index=st.integers(min_value=0, max_value=MIRA_SMALL.n_nodes - 1))
def test_small_machine_roundtrips(index):
    torus = TorusTopology(MIRA_SMALL)
    assert torus.coords_to_node(torus.node_coords(index)) == index
    loc = Location.from_node_index(index, MIRA_SMALL)
    assert loc.node_index(MIRA_SMALL) == index
