"""Unit tests for the machine spec and location codes."""

import pytest

from repro.bgq import MIRA, MIRA_SMALL, Level, Location, MachineSpec
from repro.errors import LocationError


class TestMachineSpec:
    def test_mira_headline_counts(self):
        assert MIRA.n_racks == 48
        assert MIRA.n_midplanes == 96
        assert MIRA.nodes_per_midplane == 512
        assert MIRA.n_nodes == 49_152
        assert MIRA.n_cores == 786_432

    def test_small_counts(self):
        assert MIRA_SMALL.n_nodes == 256
        assert MIRA_SMALL.n_midplanes == 8

    def test_rack_name_hex(self):
        assert MIRA.rack_name(0) == "R00"
        assert MIRA.rack_name(15) == "R0F"
        assert MIRA.rack_name(16) == "R10"
        assert MIRA.rack_name(47) == "R2F"

    def test_rack_name_out_of_range(self):
        with pytest.raises(ValueError):
            MIRA.rack_name(48)

    def test_rack_index_roundtrip(self):
        for i in range(MIRA.n_racks):
            assert MIRA.rack_index(MIRA.rack_name(i)) == i

    def test_rack_index_malformed(self):
        for bad in ("X00", "R0", "R0G", "R300"):
            with pytest.raises(ValueError):
                MIRA.rack_index(bad)

    def test_rack_index_outside_machine(self):
        with pytest.raises(ValueError):
            MIRA_SMALL.rack_index("R10")  # only one row

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(rack_rows=0)
        with pytest.raises(ValueError):
            MachineSpec(rack_columns=17)


class TestLocationParse:
    def test_full_hierarchy(self):
        loc = Location.parse("R17-M0-N05-J12")
        assert loc.rack == "R17"
        assert loc.midplane == 0
        assert loc.node_board == 5
        assert loc.compute_card == 12
        assert loc.level is Level.COMPUTE_CARD

    def test_core_level(self):
        loc = Location.parse("R00-M1-N15-J31-C15")
        assert loc.core == 15
        assert loc.level is Level.CORE

    def test_rack_only(self):
        assert Location.parse("R2F").level is Level.RACK

    def test_midplane_only(self):
        assert Location.parse("R00-M1").level is Level.MIDPLANE

    def test_roundtrip_code(self):
        for code in ("R00", "R13-M1", "R2A-M0-N09", "R01-M1-N00-J07"):
            assert Location.parse(code).code == code

    def test_malformed(self):
        for bad in ("", "R0", "R000", "17-M0", "R17-M2-N00", "R17-M0-N16", "R17-M0-N00-J32"):
            with pytest.raises(LocationError):
                Location.parse(bad)

    def test_skipped_level_rejected(self):
        with pytest.raises(LocationError, match="skips"):
            Location.parse("R17-N05")

    def test_rack_outside_machine(self):
        with pytest.raises(LocationError):
            Location.parse("R30")  # rows are 0..2

    def test_validate_against_small_spec(self):
        with pytest.raises(LocationError):
            Location.parse("R05", spec=MIRA_SMALL)  # only 4 columns
        with pytest.raises(LocationError):
            Location.parse("R00-M0-N04", spec=MIRA_SMALL)  # only 4 node boards


class TestLocationNavigation:
    def test_ancestor(self):
        loc = Location.parse("R17-M0-N05-J12")
        assert loc.ancestor(Level.MIDPLANE).code == "R17-M0"
        assert loc.ancestor(Level.RACK).code == "R17"
        assert loc.ancestor(Level.COMPUTE_CARD) == loc

    def test_ancestor_finer_rejected(self):
        with pytest.raises(LocationError):
            Location.parse("R17-M0").ancestor(Level.COMPUTE_CARD)

    def test_parent_chain(self):
        loc = Location.parse("R17-M0-N05-J12")
        assert loc.parent().code == "R17-M0-N05"
        assert loc.parent().parent().code == "R17-M0"

    def test_rack_has_no_parent(self):
        with pytest.raises(LocationError):
            Location.parse("R00").parent()

    def test_contains(self):
        rack = Location.parse("R17")
        node = Location.parse("R17-M0-N05-J12")
        assert rack.contains(node)
        assert rack.contains(rack)
        assert not node.contains(rack)
        assert not Location.parse("R18").contains(node)


class TestLocationIndices:
    def test_midplane_index_layout(self):
        assert Location.parse("R00-M0").midplane_index() == 0
        assert Location.parse("R00-M1").midplane_index() == 1
        assert Location.parse("R01-M0").midplane_index() == 2
        assert Location.parse("R2F-M1").midplane_index() == 95

    def test_midplane_index_requires_midplane(self):
        with pytest.raises(LocationError):
            Location.parse("R00").midplane_index()

    def test_midplane_roundtrip(self):
        for i in range(0, MIRA.n_midplanes, 7):
            assert Location.from_midplane_index(i).midplane_index() == i

    def test_midplane_index_bounds(self):
        with pytest.raises(LocationError):
            Location.from_midplane_index(96)

    def test_node_index_roundtrip(self):
        for i in (0, 1, 511, 512, 49_151, 30_000):
            loc = Location.from_node_index(i)
            assert loc.node_index() == i
            assert loc.level is Level.COMPUTE_CARD

    def test_node_index_requires_card(self):
        with pytest.raises(LocationError):
            Location.parse("R00-M0").node_index()

    def test_node_index_bounds(self):
        with pytest.raises(LocationError):
            Location.from_node_index(49_152)

    def test_small_spec_indices(self):
        loc = Location.from_node_index(255, spec=MIRA_SMALL)
        assert loc.node_index(MIRA_SMALL) == 255

    def test_ordering_is_total(self):
        codes = ["R01-M0", "R00-M1", "R00-M0"]
        locs = sorted(Location.parse(c) for c in codes)
        assert [l.code for l in locs] == ["R00-M0", "R00-M1", "R01-M0"]

    def test_mixed_level_ordering(self):
        # Coarser codes sort before their own descendants.
        locs = [
            Location.parse(c)
            for c in ("R01", "R00-M1", "R00", "R00-M0-N03", "R00-M0")
        ]
        ordered = [l.code for l in sorted(locs)]
        assert ordered == ["R00", "R00-M0", "R00-M0-N03", "R00-M1", "R01"]
