"""Unit tests for torus topology and the partition allocator."""

import numpy as np
import pytest

from repro.bgq import (
    MIRA,
    MIRA_SMALL,
    PartitionAllocator,
    TorusTopology,
    allowed_block_sizes,
    balanced_dims,
)
from repro.errors import AllocationError


class TestBalancedDims:
    def test_mira_midplane_grid(self):
        assert balanced_dims(96, 4) == (2, 3, 4, 4)

    def test_mira_inner(self):
        assert balanced_dims(256, 4) == (4, 4, 4, 4)

    def test_product_preserved(self):
        for n in (1, 2, 8, 96, 100, 360):
            dims = balanced_dims(n, 4)
            assert int(np.prod(dims)) == n

    def test_invalid(self):
        with pytest.raises(ValueError):
            balanced_dims(0, 4)


class TestTorus:
    def test_mira_dims(self):
        torus = TorusTopology(MIRA)
        assert torus.dims == (8, 12, 16, 16, 2)
        assert int(np.prod(torus.dims)) == MIRA.n_nodes
        assert torus.midplane_dims == (4, 4, 4, 4, 2)

    def test_small_dims_product(self):
        torus = TorusTopology(MIRA_SMALL)
        assert int(np.prod(torus.dims)) == MIRA_SMALL.n_nodes

    def test_coords_roundtrip(self):
        torus = TorusTopology(MIRA)
        for node in (0, 1, 511, 512, 49_151, 12_345):
            assert torus.coords_to_node(torus.node_coords(node)) == node

    def test_coords_roundtrip_exhaustive_small(self):
        torus = TorusTopology(MIRA_SMALL)
        for node in range(MIRA_SMALL.n_nodes):
            assert torus.coords_to_node(torus.node_coords(node)) == node

    def test_coords_unique_small(self):
        torus = TorusTopology(MIRA_SMALL)
        coords = {torus.node_coords(n) for n in range(MIRA_SMALL.n_nodes)}
        assert len(coords) == MIRA_SMALL.n_nodes

    def test_distance_symmetric_and_identity(self):
        torus = TorusTopology(MIRA)
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b = rng.integers(0, MIRA.n_nodes, 2)
            assert torus.distance(a, a) == 0
            assert torus.distance(a, b) == torus.distance(b, a)

    def test_distance_triangle_inequality(self):
        torus = TorusTopology(MIRA_SMALL)
        rng = np.random.default_rng(1)
        for _ in range(100):
            a, b, c = rng.integers(0, MIRA_SMALL.n_nodes, 3)
            assert torus.distance(a, c) <= torus.distance(a, b) + torus.distance(b, c)

    def test_wraparound(self):
        torus = TorusTopology(MIRA)
        # Two nodes at opposite ends of the A dimension are 1 hop apart.
        a = torus.coords_to_node((0, 0, 0, 0, 0))
        b = torus.coords_to_node((7, 0, 0, 0, 0))
        assert torus.distance(a, b) == 1

    def test_neighbors_are_at_distance_one(self):
        torus = TorusTopology(MIRA)
        node = 12_345
        neighbors = torus.neighbors(node)
        assert 1 <= len(neighbors) <= 10
        for neighbor in neighbors:
            assert torus.distance(node, neighbor) == 1

    def test_same_midplane_corner_distance(self):
        torus = TorusTopology(MIRA)
        # Nodes 0 and 511 sit at opposite corners of midplane 0's
        # 4x4x4x4x2 block; the global torus does not wrap at midplane
        # boundaries, so the distance is 3+3+3+3+1 = 13 hops.
        assert torus.distance(0, 511) == 13

    def test_graph_small_machine(self):
        torus = TorusTopology(MIRA_SMALL)
        g = torus.graph()
        assert g.number_of_nodes() == MIRA_SMALL.n_nodes
        degrees = [d for _, d in g.degree()]
        assert max(degrees) <= 10

    def test_graph_refused_for_mira(self):
        with pytest.raises(ValueError, match="4096"):
            TorusTopology(MIRA).graph()

    def test_bad_node_index(self):
        torus = TorusTopology(MIRA)
        with pytest.raises(ValueError):
            torus.node_coords(MIRA.n_nodes)
        with pytest.raises(ValueError):
            torus.coords_to_node((99, 0, 0, 0, 0))


class TestAllowedSizes:
    def test_mira_sizes(self):
        assert allowed_block_sizes(MIRA) == [1, 2, 4, 8, 16, 24, 32, 48, 64, 96]

    def test_small_sizes(self):
        assert allowed_block_sizes(MIRA_SMALL) == [1, 2, 4, 8]


class TestAllocator:
    def test_min_allocation_is_one_midplane(self):
        alloc = PartitionAllocator(MIRA)
        block = alloc.allocate(13)
        assert block is not None
        assert block.n_midplanes == 1
        assert block.n_nodes == 512

    def test_round_up_to_allowed_size(self):
        alloc = PartitionAllocator(MIRA)
        assert alloc.block_midplanes_for(512) == 1
        assert alloc.block_midplanes_for(513) == 2
        assert alloc.block_midplanes_for(2048) == 4
        assert alloc.block_midplanes_for(9000) == 24
        assert alloc.block_midplanes_for(20_000) == 48
        assert alloc.block_midplanes_for(30_000) == 64

    def test_too_large_rejected(self):
        alloc = PartitionAllocator(MIRA)
        with pytest.raises(AllocationError):
            alloc.block_midplanes_for(49_153)
        with pytest.raises(AllocationError):
            alloc.block_midplanes_for(0)

    def test_alignment(self):
        alloc = PartitionAllocator(MIRA)
        alloc.allocate(512)  # occupies midplane 0
        block = alloc.allocate(1024)  # needs 2-aligned start -> midplane 2
        assert block.first_midplane == 2

    def test_full_machine(self):
        alloc = PartitionAllocator(MIRA)
        block = alloc.allocate(49_152)
        assert block.n_midplanes == 96
        assert alloc.allocate(512) is None

    def test_half_machine_anchoring(self):
        alloc = PartitionAllocator(MIRA)
        first = alloc.allocate(24_576)
        second = alloc.allocate(24_576)
        assert first.first_midplane == 0
        assert second.first_midplane == 48
        assert alloc.allocate(512) is None

    def test_release_then_reallocate(self):
        alloc = PartitionAllocator(MIRA)
        block = alloc.allocate(49_152)
        alloc.release(block)
        assert alloc.busy_midplanes == 0
        assert alloc.allocate(49_152) is not None

    def test_double_release_rejected(self):
        alloc = PartitionAllocator(MIRA)
        block = alloc.allocate(512)
        alloc.release(block)
        with pytest.raises(AllocationError):
            alloc.release(block)

    def test_no_overlap_under_churn(self):
        rng = np.random.default_rng(2)
        alloc = PartitionAllocator(MIRA)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.4:
                alloc.release(live.pop(rng.integers(0, len(live))))
            else:
                nodes = int(rng.choice([512, 1024, 2048, 4096, 8192]))
                block = alloc.allocate(nodes)
                if block is not None:
                    live.append(block)
            occupied = [m for b in live for m in b.midplane_indices]
            assert len(occupied) == len(set(occupied))
            assert alloc.busy_midplanes == len(occupied)

    def test_block_name_and_locations(self):
        alloc = PartitionAllocator(MIRA)
        block = alloc.allocate(1024)
        assert block.name == "MIRA-R00-M0-R00-M1-1024"
        assert [l.code for l in block.locations] == ["R00-M0", "R00-M1"]
        assert block.contains_midplane(0) and not block.contains_midplane(2)

    def test_utilization(self):
        alloc = PartitionAllocator(MIRA)
        alloc.allocate(24_576)
        assert alloc.utilization() == pytest.approx(0.5)
        assert alloc.free_midplanes == 48
        assert len(alloc.active_blocks) == 1
