"""Legacy-editable-install shim: environments without the `wheel` package
cannot build PEP 660 editable wheels, so `pip install -e . --no-use-pep517
--no-build-isolation` falls back to `setup.py develop` via this file.
All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
