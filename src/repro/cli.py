"""Command-line interface.

Five entry points (installed as console scripts):

- ``repro-gen``      — synthesize a dataset and write it to a directory
- ``repro-analyze``  — run one experiment against a dataset directory
- ``repro-report``   — render the full study report for a dataset
- ``repro-validate`` — schema + cross-log validation of a dataset directory
- ``repro-chaos``    — corrupt a dataset directory for resilience drills

``repro-analyze``, ``repro-report``, and ``repro-validate`` accept
``--days``/``--seed`` to synthesize a dataset on the fly when no
directory is given, and ``--lenient``/``--max-bad-rows`` to load a
dirty directory through the quarantining ingestion path instead of
failing on the first bad record.

Dataset loads and parameter-free syntheses are served from the
columnar ``.npz`` cache (:mod:`repro.dataset.cache`); ``--no-cache``
bypasses it and ``--refresh-cache`` rebuilds the entry.
``repro-report`` additionally fans the experiment suite out across
``--jobs`` worker processes and can record per-experiment timings
(``--timings``) and a machine-readable perf trajectory
(``--bench-json``).
"""

from __future__ import annotations

import argparse
import sys

from repro.dataset import MiraDataset, validate_dataset
from repro.errors import ReproError

__all__ = [
    "main_gen",
    "main_analyze",
    "main_report",
    "main_validate",
    "main_chaos",
]


def _add_synth_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--days", type=float, default=90.0, help="observation span in days"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")


def _add_lenient_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="quarantine bad rows and degrade missing sources instead of failing",
    )
    parser.add_argument(
        "--max-bad-rows",
        type=int,
        default=None,
        help="abort a lenient load after this many quarantined rows",
    )


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the columnar dataset cache entirely",
    )
    parser.add_argument(
        "--refresh-cache",
        action="store_true",
        help="ignore any cached entry and rebuild it from source",
    )


def _load_or_synthesize(args) -> MiraDataset:
    cache = not getattr(args, "no_cache", False)
    refresh = getattr(args, "refresh_cache", False)
    if getattr(args, "dataset", None):
        return MiraDataset.load(
            args.dataset,
            lenient=getattr(args, "lenient", False),
            max_bad_rows=getattr(args, "max_bad_rows", None),
            cache=cache,
            refresh_cache=refresh,
        )
    return MiraDataset.synthesize(
        n_days=args.days, seed=args.seed, cache=cache, refresh_cache=refresh
    )


def main_gen(argv: list[str] | None = None) -> int:
    """Generate a synthetic Mira dataset and save it."""
    parser = argparse.ArgumentParser(
        prog="repro-gen", description=main_gen.__doc__
    )
    parser.add_argument("output", help="directory to write the dataset into")
    _add_synth_args(parser)
    _add_cache_args(parser)
    parser.add_argument(
        "--no-validate", action="store_true", help="skip cross-log validation"
    )
    args = parser.parse_args(argv)
    dataset = MiraDataset.synthesize(
        n_days=args.days,
        seed=args.seed,
        cache=not args.no_cache,
        refresh_cache=args.refresh_cache,
    )
    if not args.no_validate:
        validate_dataset(dataset)
    dataset.save(args.output)
    summary = dataset.summary()
    print(
        f"wrote {args.output}: {summary['n_jobs']} jobs, "
        f"{summary['n_ras_events']} RAS events, "
        f"{summary['total_core_hours'] / 1e9:.3f}B core-hours"
    )
    return 0


def main_analyze(argv: list[str] | None = None) -> int:
    """Run one experiment (e01..e21) and print its tables."""
    from repro.experiments import all_experiments, run_experiment

    parser = argparse.ArgumentParser(
        prog="repro-analyze", description=main_analyze.__doc__
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id; one of {', '.join(all_experiments())}",
    )
    parser.add_argument(
        "--dataset", help="dataset directory (from repro-gen); else synthesize"
    )
    _add_synth_args(parser)
    _add_lenient_args(parser)
    _add_cache_args(parser)
    parser.add_argument("--max-rows", type=int, default=25)
    parser.add_argument(
        "--output",
        help="also export the result as Markdown + CSVs into this directory",
    )
    args = parser.parse_args(argv)
    if args.experiment not in all_experiments():
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"known: {', '.join(all_experiments())}"
        )
    try:
        dataset = _load_or_synthesize(args)
        result = run_experiment(args.experiment, dataset)
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    print(result.to_text(max_rows=args.max_rows))
    if args.output:
        from repro.experiments import export_result

        written = export_result(result, args.output)
        print(f"exported {len(written)} files to {args.output}")
    return 0


def main_report(argv: list[str] | None = None) -> int:
    """Render the full study report (all experiments + takeaways)."""
    import os

    from repro.core.report import render_report
    from repro.experiments.engine import (
        bench_record,
        profile_lines,
        run_suite,
        write_bench_json,
    )

    parser = argparse.ArgumentParser(
        prog="repro-report", description=main_report.__doc__
    )
    parser.add_argument(
        "--dataset", help="dataset directory (from repro-gen); else synthesize"
    )
    _add_synth_args(parser)
    _add_lenient_args(parser)
    _add_cache_args(parser)
    parser.add_argument(
        "--experiments",
        nargs="*",
        default=None,
        help="subset of experiment ids (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=os.cpu_count() or 1,
        help="worker processes for the experiment suite (default: CPU count)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="append a per-experiment wall-time / peak-RSS section",
    )
    parser.add_argument(
        "--bench-json",
        metavar="PATH",
        help="write the suite's timing record as machine-readable JSON",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="append per-experiment cProfile top-20 cumulative hotspots "
        "(re-runs the suite in-process under the profiler)",
    )
    parser.add_argument(
        "--output",
        help="also export every experiment as Markdown + CSVs into this directory",
    )
    args = parser.parse_args(argv)
    try:
        dataset = _load_or_synthesize(args)
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    suite = run_suite(dataset, args.experiments, jobs=args.jobs)
    print(render_report(dataset, suite=suite, timings=args.timings))
    if args.profile:
        print("\nPROFILE (cProfile, top 20 by cumulative time)")
        print("\n".join(profile_lines(dataset, args.experiments)))
    if args.bench_json:
        write_bench_json(args.bench_json, bench_record(suite, dataset))
    if args.output:
        from repro.experiments import export_all

        written = export_all(dataset, args.output, experiment_ids=args.experiments)
        print(f"exported {len(written)} files to {args.output}")
    return 0


def main_validate(argv: list[str] | None = None) -> int:
    """Validate a dataset directory (schemas + cross-log invariants)."""
    parser = argparse.ArgumentParser(
        prog="repro-validate", description=main_validate.__doc__
    )
    parser.add_argument(
        "dataset",
        nargs="?",
        default=None,
        help="dataset directory (from repro-gen or exports); else synthesize",
    )
    _add_synth_args(parser)
    _add_lenient_args(parser)
    _add_cache_args(parser)
    args = parser.parse_args(argv)
    try:
        dataset = _load_or_synthesize(args)
        report = validate_dataset(dataset, lenient=args.lenient)
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    for check, status in report.items():
        print(f"  {check}: {status}")
    summary = dataset.summary()
    print(
        f"OK: {summary['n_jobs']} jobs / {summary['n_ras_events']} RAS events / "
        f"{summary['n_tasks']} tasks / {summary['n_io_profiles']} I/O profiles"
    )
    return 0


def main_chaos(argv: list[str] | None = None) -> int:
    """Corrupt a saved dataset directory, reproducibly, for drills."""
    from repro.faults import ALL_FAULTS, FaultPlan

    parser = argparse.ArgumentParser(
        prog="repro-chaos", description=main_chaos.__doc__
    )
    parser.add_argument(
        "dataset", nargs="?", default=None, help="dataset directory to corrupt in place"
    )
    parser.add_argument(
        "--faults",
        nargs="*",
        default=None,
        help=f"faults to inject, in order (default: all of {', '.join(ALL_FAULTS)})",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--rate",
        type=float,
        default=0.02,
        help="fraction of rows each row-level fault corrupts",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available faults and exit"
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in ALL_FAULTS:
            print(name)
        return 0
    if not args.dataset:
        parser.error("dataset directory required unless --list is given")
    try:
        plan = FaultPlan(
            faults=tuple(args.faults) if args.faults else ALL_FAULTS,
            seed=args.seed,
            rate=args.rate,
        )
        records = plan.inject(args.dataset)
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    for record in records:
        detail = f" ({record.detail})" if record.detail else ""
        print(f"  {record.fault}: {record.path}, {record.n_rows} rows{detail}")
    print(f"injected {len(records)} faults into {args.dataset} (seed {args.seed})")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_report())
