"""Command-line interface.

Five entry points (installed as console scripts):

- ``repro-gen``      — synthesize a dataset and write it to a directory
- ``repro-analyze``  — run one experiment against a dataset directory
- ``repro-report``   — render the full study report for a dataset
- ``repro-validate`` — schema + cross-log validation of a dataset directory
- ``repro-chaos``    — corrupt a dataset directory for resilience drills

``repro-analyze``, ``repro-report``, and ``repro-validate`` accept
``--days``/``--seed`` to synthesize a dataset on the fly when no
directory is given, and ``--lenient``/``--max-bad-rows`` to load a
dirty directory through the quarantining ingestion path instead of
failing on the first bad record.

Dataset loads and parameter-free syntheses are served from the
columnar ``.npz`` cache (:mod:`repro.dataset.cache`); ``--no-cache``
bypasses it and ``--refresh-cache`` rebuilds the entry.
``repro-report`` additionally fans the experiment suite out across
``--jobs`` worker processes under crash-safe supervision: every run
gets a journaled run directory (``--run-dir``/``--run-id``), each
experiment a wall-time budget (``--timeout``) and a worker-death retry
budget (``--retries``/``--backoff``), SIGINT/SIGTERM shut down
gracefully with a resumable run ID, and ``--resume <run-id>`` replays
the journal and runs only what is missing (see ``docs/robustness.md``).
It can also record per-experiment timings (``--timings``), a
machine-readable perf trajectory (``--bench-json``), and a structured
span trace (``--trace``, written to ``trace.jsonl`` in the run
directory and inspected with the ``repro-trace`` entry point from
:mod:`repro.obs.cli`).
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.dataset import MiraDataset, validate_dataset
from repro.errors import JournalError, ReproError

__all__ = [
    "main_gen",
    "main_analyze",
    "main_report",
    "main_validate",
    "main_chaos",
]


def _add_synth_args(parser: argparse.ArgumentParser) -> None:
    from repro.adapters import all_backend_names

    parser.add_argument(
        "--days", type=float, default=90.0, help="observation span in days"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="fleet replication factor: synthesize N systems' worth of "
        "load on an N-fold machine (synthesis only; 1 = plain Mira)",
    )
    parser.add_argument(
        "--backend",
        choices=all_backend_names(),
        default="mira",
        help="trace backend to synthesize from (synthesis only; "
        "see docs/backends.md)",
    )


def _add_lenient_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="quarantine bad rows and degrade missing sources instead of failing",
    )
    parser.add_argument(
        "--max-bad-rows",
        type=int,
        default=None,
        help="abort a lenient load after this many quarantined rows",
    )
    parser.add_argument(
        "--assume-mira",
        action="store_true",
        help="with --lenient: load a dataset whose meta.jsonl is missing "
        "or unreadable by assuming the Mira machine geometry, instead of "
        "refusing to guess",
    )


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the columnar dataset cache entirely",
    )
    parser.add_argument(
        "--refresh-cache",
        action="store_true",
        help="ignore any cached entry and rebuild it from source",
    )
    parser.add_argument(
        "--mode",
        choices=("ram", "mmap"),
        default="ram",
        help="dataset residency: 'mmap' serves read-only memory-mapped "
        "columns from a shared arena (O(1) RAM load, zero-copy workers)",
    )


def _load_or_synthesize(args) -> MiraDataset:
    cache = not getattr(args, "no_cache", False)
    refresh = getattr(args, "refresh_cache", False)
    mode = getattr(args, "mode", "ram")
    if mode == "mmap" and not cache:
        raise ReproError("--mode mmap needs the dataset cache; drop --no-cache")
    if getattr(args, "dataset", None):
        return MiraDataset.load(
            args.dataset,
            lenient=getattr(args, "lenient", False),
            max_bad_rows=getattr(args, "max_bad_rows", None),
            assume_mira=getattr(args, "assume_mira", False),
            cache=cache,
            refresh_cache=refresh,
            mode=mode,
        )
    return MiraDataset.synthesize(
        n_days=args.days,
        seed=args.seed,
        cache=cache,
        refresh_cache=refresh,
        mode=mode,
        scale=getattr(args, "scale", 1),
        backend=getattr(args, "backend", "mira"),
    )


def main_gen(argv: list[str] | None = None) -> int:
    """Generate a synthetic Mira dataset and save it."""
    parser = argparse.ArgumentParser(
        prog="repro-gen", description=main_gen.__doc__
    )
    parser.add_argument("output", help="directory to write the dataset into")
    _add_synth_args(parser)
    _add_cache_args(parser)
    parser.add_argument(
        "--no-validate", action="store_true", help="skip cross-log validation"
    )
    args = parser.parse_args(argv)
    dataset = MiraDataset.synthesize(
        n_days=args.days,
        seed=args.seed,
        cache=not args.no_cache,
        refresh_cache=args.refresh_cache,
        scale=args.scale,
        backend=args.backend,
    )
    if not args.no_validate:
        validate_dataset(dataset)
    dataset.save(args.output)
    summary = dataset.summary()
    print(
        f"wrote {args.output}: {summary['n_jobs']} jobs, "
        f"{summary['n_ras_events']} RAS events, "
        f"{summary['total_core_hours'] / 1e9:.3f}B core-hours"
    )
    return 0


def main_analyze(argv: list[str] | None = None) -> int:
    """Run one experiment (e01..e22) and print its tables."""
    from repro.experiments import all_experiments, run_experiment

    parser = argparse.ArgumentParser(
        prog="repro-analyze", description=main_analyze.__doc__
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id; one of {', '.join(all_experiments())}",
    )
    parser.add_argument(
        "--dataset", help="dataset directory (from repro-gen); else synthesize"
    )
    _add_synth_args(parser)
    _add_lenient_args(parser)
    _add_cache_args(parser)
    parser.add_argument("--max-rows", type=int, default=25)
    parser.add_argument(
        "--output",
        help="also export the result as Markdown + CSVs into this directory",
    )
    args = parser.parse_args(argv)
    if args.experiment not in all_experiments():
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"known: {', '.join(all_experiments())}"
        )
    try:
        dataset = _load_or_synthesize(args)
        result = run_experiment(args.experiment, dataset)
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    print(result.to_text(max_rows=args.max_rows))
    if args.output:
        from repro.experiments import export_result

        written = export_result(result, args.output)
        print(f"exported {len(written)} files to {args.output}")
    return 0


def _raise_keyboard_interrupt(signum, frame):
    raise KeyboardInterrupt()


def main_report(argv: list[str] | None = None) -> int:
    """Render the full study report (all experiments + takeaways)."""
    import os
    from pathlib import Path

    from repro.core.report import render_report
    from repro.dataset.cache import fingerprint_for_run
    from repro.experiments.engine import (
        bench_record,
        profile_lines,
        run_suite,
        write_bench_json,
    )
    from repro.experiments.journal import RunJournal, default_runs_dir
    from repro.util.atomic import atomic_write_text

    parser = argparse.ArgumentParser(
        prog="repro-report",
        description=main_report.__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0    report rendered, no experiment errored\n"
            "  1    invalid input, or >=1 experiment errored "
            "(--allow-errors downgrades this to 0)\n"
            "  2    bad command line\n"
            "  130  interrupted (SIGINT/SIGTERM); finished experiments are\n"
            "       journaled — rerun with --resume RUN_ID to finish the rest"
        ),
    )
    parser.add_argument(
        "--dataset", help="dataset directory (from repro-gen); else synthesize"
    )
    _add_synth_args(parser)
    _add_lenient_args(parser)
    _add_cache_args(parser)
    parser.add_argument(
        "--experiments",
        nargs="*",
        default=None,
        help="subset of experiment ids (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=os.cpu_count() or 1,
        help="worker processes for the experiment suite (default: CPU count)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-experiment wall-time budget; an experiment exceeding it "
        "becomes an error outcome (default: unlimited)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-dispatches of an experiment whose worker died (default: 2)",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base delay between re-dispatch rounds, doubled each round "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="root for journaled run directories "
        "(default: $REPRO_RUNS_DIR or results/runs)",
    )
    parser.add_argument(
        "--run-id",
        default=None,
        help="explicit run ID (default: generated timestamp-suffix ID)",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="do not journal this run (it will not be resumable)",
    )
    parser.add_argument(
        "--resume",
        metavar="RUN_ID",
        help="resume a journaled run: replay its completed experiments and "
        "run only what is missing (dataset flags are taken from the journal)",
    )
    parser.add_argument(
        "--allow-errors",
        action="store_true",
        help="exit 0 even when experiments errored (they are still "
        "reported in the INGESTION & FAILURES section)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="append a per-experiment wall-time / peak-RSS section",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record structured spans/counters to trace.jsonl in the run "
        "directory (implies --timings; inspect with repro-trace)",
    )
    parser.add_argument(
        "--bench-json",
        metavar="PATH",
        help="write the suite's timing record as machine-readable JSON",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="append per-experiment cProfile top-20 cumulative hotspots "
        "(re-runs the suite in-process under the profiler)",
    )
    parser.add_argument(
        "--output",
        help="also export every experiment as Markdown + CSVs into this directory",
    )
    args = parser.parse_args(argv)
    if args.resume and args.no_journal:
        parser.error("--resume and --no-journal are mutually exclusive")
    if args.trace and args.no_journal:
        parser.error("--trace needs a run directory; drop --no-journal")
    runs_root = Path(args.run_dir) if args.run_dir else default_runs_dir()

    recorder = None
    if args.trace:
        try:
            from repro.obs import trace as obs_trace
        except ImportError:
            print(
                "warning: repro.obs unavailable; running without --trace",
                file=sys.stderr,
            )
            args.trace = False
        else:
            recorder = obs_trace.install(obs_trace.TraceRecorder())

    journal = None
    completed = None
    experiment_ids = args.experiments
    timeout, retries, backoff = args.timeout, args.retries, args.backoff
    try:
        if args.resume:
            journal, state = RunJournal.resume(runs_root, args.resume)
            config = state.config
            # The journal's config pins what the run *is* (dataset
            # identity, experiment set, supervision budgets); only
            # execution knobs (--jobs, cache flags) follow the CLI.
            replay_args = argparse.Namespace(
                dataset=config.get("dataset"),
                days=config.get("days", 90.0),
                seed=config.get("seed", 0),
                scale=config.get("scale", 1),
                backend=config.get("backend", "mira"),
                lenient=config.get("lenient", False),
                max_bad_rows=config.get("max_bad_rows"),
                assume_mira=config.get("assume_mira", False),
                no_cache=args.no_cache,
                refresh_cache=args.refresh_cache,
                mode=args.mode,
            )
            dataset = _load_or_synthesize(replay_args)
            fingerprint = fingerprint_for_run(
                replay_args.dataset,
                replay_args.days,
                replay_args.seed,
                scale=replay_args.scale,
                backend=replay_args.backend,
            )
            if fingerprint != state.fingerprint:
                raise JournalError(
                    f"run {args.resume!r} was journaled against a different "
                    "dataset (fingerprint mismatch); refusing to mix results"
                )
            experiment_ids = config.get("experiments")
            timeout = config.get("timeout")
            retries = config.get("retries", retries)
            backoff = config.get("backoff", backoff)
            completed = state.outcomes
        else:
            dataset = _load_or_synthesize(args)
            fingerprint = fingerprint_for_run(
                args.dataset,
                args.days,
                args.seed,
                scale=args.scale,
                backend=args.backend,
            )
            if not args.no_journal:
                journal = RunJournal.start(
                    runs_root,
                    fingerprint=fingerprint,
                    run_id=args.run_id,
                    config={
                        "dataset": args.dataset or None,
                        "days": args.days,
                        "seed": args.seed,
                        "scale": args.scale,
                        "backend": args.backend,
                        "lenient": args.lenient,
                        "max_bad_rows": args.max_bad_rows,
                        "assume_mira": args.assume_mira,
                        "experiments": args.experiments,
                        "jobs": args.jobs,
                        "timeout": args.timeout,
                        "retries": args.retries,
                        "backoff": args.backoff,
                    },
                )
    except (ReproError, OSError) as error:
        print(f"INVALID: {error}")
        if recorder is not None:
            obs_trace.uninstall()
        return 1

    # SIGTERM gets the same graceful path as Ctrl-C: cancel what has
    # not started, keep what finished, leave a resumable journal.
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    try:
        suite = run_suite(
            dataset,
            experiment_ids,
            jobs=args.jobs,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            completed=completed,
            on_outcome=journal.append_outcome if journal else None,
            trace=args.trace,
        )
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)

    if suite.interrupted:
        if journal:
            journal.append_end("interrupted", suite.total_seconds)
            if recorder is not None:
                # A partial trace still shows where the time went.
                obs_trace.uninstall()
                recorder.write(
                    journal.directory / "trace.jsonl", run_id=journal.run_id
                )
            print(
                f"interrupted: {len(suite.outcomes)} experiment(s) journaled; "
                f"finish with: repro-report --resume {journal.run_id}",
                file=sys.stderr,
            )
        else:
            print(
                "interrupted: run was not journaled (--no-journal), "
                "partial results were discarded",
                file=sys.stderr,
            )
        return 130

    text = render_report(
        dataset, suite=suite, timings=args.timings or args.trace
    )
    print(text)
    if journal:
        journal.append_end("complete", suite.total_seconds)
        atomic_write_text(journal.report_path, text + "\n")
        if recorder is not None:
            obs_trace.uninstall()
            recorder.write(
                journal.directory / "trace.jsonl", run_id=journal.run_id
            )
        print(
            f"run {journal.run_id}: journal + report in {journal.directory}",
            file=sys.stderr,
        )
    if args.profile:
        print("\nPROFILE (cProfile, top 20 by cumulative time)")
        print("\n".join(profile_lines(dataset, experiment_ids)))
    if args.bench_json:
        write_bench_json(args.bench_json, bench_record(suite, dataset))
    if args.output:
        from repro.experiments import export_all

        written = export_all(dataset, args.output, experiment_ids=experiment_ids)
        print(f"exported {len(written)} files to {args.output}")
    errored = [o.experiment_id for o in suite.outcomes if o.status == "error"]
    if errored and not args.allow_errors:
        print(
            f"{len(errored)} experiment(s) errored ({', '.join(errored)}); "
            "exiting 1 (--allow-errors to override)",
            file=sys.stderr,
        )
        return 1
    return 0


def main_validate(argv: list[str] | None = None) -> int:
    """Validate a dataset directory (schemas + cross-log invariants)."""
    parser = argparse.ArgumentParser(
        prog="repro-validate", description=main_validate.__doc__
    )
    parser.add_argument(
        "dataset",
        nargs="?",
        default=None,
        help="dataset directory (from repro-gen or exports); else synthesize",
    )
    _add_synth_args(parser)
    _add_lenient_args(parser)
    _add_cache_args(parser)
    args = parser.parse_args(argv)
    try:
        dataset = _load_or_synthesize(args)
        report = validate_dataset(dataset, lenient=args.lenient)
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    for check, status in report.items():
        print(f"  {check}: {status}")
    summary = dataset.summary()
    print(
        f"OK: {summary['n_jobs']} jobs / {summary['n_ras_events']} RAS events / "
        f"{summary['n_tasks']} tasks / {summary['n_io_profiles']} I/O profiles"
    )
    return 0


def main_chaos(argv: list[str] | None = None) -> int:
    """Corrupt a saved dataset directory, reproducibly, for drills."""
    from repro.faults import (
        ALL_FAULTS,
        PROCESS_FAULT_ENV,
        PROCESS_FAULTS,
        STREAM_FAULTS,
        FaultPlan,
        ProcessFaultPlan,
        StreamFeeder,
    )

    parser = argparse.ArgumentParser(
        prog="repro-chaos", description=main_chaos.__doc__
    )
    parser.add_argument(
        "dataset", nargs="?", default=None, help="dataset directory to corrupt in place"
    )
    parser.add_argument(
        "--faults",
        nargs="*",
        default=None,
        help=f"faults to inject, in order (default: all of {', '.join(ALL_FAULTS)})",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--rate",
        type=float,
        default=0.02,
        help="fraction of rows each row-level fault corrupts",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available faults and exit"
    )
    parser.add_argument(
        "--process-faults",
        metavar="SPEC",
        help="validate a process-level fault spec (kind:experiment[:amount], "
        "';'-joined; kinds: " + ", ".join(PROCESS_FAULTS) + ") and print the "
        "environment assignment that arms it for repro-report, e.g. "
        "env $(repro-chaos --process-faults kill_worker:e03) repro-report --jobs 4",
    )
    parser.add_argument(
        "--stream-from",
        metavar="SOURCE",
        help="replay SOURCE dataset dir as a chaos-armed append-only feed "
        "into the positional directory (for repro-tail drills); progress "
        "persists in .feeder-state.json, so repeated invocations continue "
        "the same feed",
    )
    parser.add_argument(
        "--stream-steps",
        type=int,
        default=None,
        help="append rounds per invocation (default: run until exhausted)",
    )
    parser.add_argument(
        "--stream-chunk-rows",
        type=int,
        default=200,
        help="rows appended per source per round (default 200)",
    )
    parser.add_argument(
        "--stream-faults",
        nargs="*",
        default=None,
        help="stream faults to arm (default: none — pure append); "
        f"available: {', '.join(STREAM_FAULTS)}",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in ALL_FAULTS:
            print(name)
        for name in PROCESS_FAULTS:
            print(f"{name} (process-level)")
        for name in STREAM_FAULTS:
            print(f"{name} (stream-level)")
        return 0
    if args.stream_from:
        if not args.dataset:
            parser.error("--stream-from needs the positional feed directory")
        try:
            feeder = StreamFeeder(
                args.stream_from,
                args.dataset,
                seed=args.seed,
                chunk_rows=args.stream_chunk_rows,
                faults=tuple(args.stream_faults or ()),
                rate=args.rate,
            )
            summary = feeder.run(steps=args.stream_steps)
        except ReproError as error:
            print(f"INVALID: {error}")
            return 1
        for fired in summary["faults"]:
            print(f"  {fired}")
        print(
            f"fed {summary['wrote']} rows in {summary['steps']} steps "
            f"into {args.dataset} (seed {args.seed}, "
            f"done={summary['done']})"
        )
        return 0
    if args.process_faults:
        try:
            plan = ProcessFaultPlan.parse(args.process_faults)
        except ReproError as error:
            print(f"INVALID: {error}")
            return 1
        print(f"{PROCESS_FAULT_ENV}={plan.spec()}")
        return 0
    if not args.dataset:
        parser.error(
            "dataset directory required unless --list or --process-faults is given"
        )
    try:
        plan = FaultPlan(
            faults=tuple(args.faults) if args.faults else ALL_FAULTS,
            seed=args.seed,
            rate=args.rate,
        )
        records = plan.inject(args.dataset)
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    for record in records:
        detail = f" ({record.detail})" if record.detail else ""
        print(f"  {record.fault}: {record.path}, {record.n_rows} rows{detail}")
    print(f"injected {len(records)} faults into {args.dataset} (seed {args.seed})")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_report())
