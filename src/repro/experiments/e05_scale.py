"""E05 — Failure rate versus job scale.

Paper reference (abstract): job failures are correlated with job
execution structure including *scale*.  The experiment computes the
failure rate per allocation size on the node-count ladder and the
rank correlation between size and the failure indicator.
"""

from __future__ import annotations

from repro.core import failure_correlations, node_count_bins
from repro.dataset import MiraDataset
from repro.stats import spearman

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e05", "Failure rate vs job scale (allocation size)")
def run(dataset: MiraDataset) -> ExperimentResult:
    """Failure rate per node-count rung plus the scale correlation."""
    jobs = dataset.jobs
    bins = node_count_bins(jobs)
    failed = (jobs["exit_status"] != 0).astype(float)
    correlation = spearman(jobs["allocated_nodes"].astype(float), failed)
    # Aggregate the size ladder into small (<=1024) and large (>=8192)
    # groups: the topmost rungs individually hold too few jobs for a
    # stable per-rung rate.
    sizes = bins["allocated_nodes"]
    small_mask = sizes <= 1024
    large_mask = sizes >= 8192
    small_rate = float(
        bins["n_failed"][small_mask].sum() / max(bins["n_jobs"][small_mask].sum(), 1)
    )
    large_rate = float(
        bins["n_failed"][large_mask].sum() / max(bins["n_jobs"][large_mask].sum(), 1)
    )
    return ExperimentResult(
        experiment_id="e05",
        title="Failure rate vs scale",
        tables={"by_size": bins, "attribute_correlations": failure_correlations(jobs)},
        metrics={
            "spearman_size_vs_failure": correlation,
            "rate_small_jobs": small_rate,
            "rate_large_jobs": large_rate,
            "large_over_small": large_rate / small_rate if small_rate else float("inf"),
        },
        notes=(
            "Paper: failures correlate with scale. The series is the "
            "failure-rate-vs-size curve a bar figure would plot."
        ),
    )
