"""E01 — Dataset overview table.

Paper reference (abstract): 2001 days of observation, over 32.44
billion core-hours, hundreds of thousands of jobs, four joined data
sources.  This experiment regenerates the study-overview table:
totals per log, severity composition, and machine utilization.
"""

from __future__ import annotations

from repro.dataset import MiraDataset
from repro.table import Table

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e01", "Dataset overview (observation span, volumes, utilization)")
def run(dataset: MiraDataset) -> ExperimentResult:
    """Compute the overview row for one dataset."""
    summary = dataset.summary()
    capacity_core_hours = dataset.spec.n_cores * 24.0 * dataset.n_days
    utilization = summary["total_core_hours"] / capacity_core_hours
    overview = Table(
        {
            "quantity": [
                "observation_days",
                "jobs",
                "failed_jobs",
                "users",
                "projects",
                "core_hours_billions",
                "machine_utilization",
                "ras_events",
                "ras_fatal",
                "tasks",
                "io_profiles",
            ],
            "value": [
                float(summary["n_days"]),
                float(summary["n_jobs"]),
                float(summary["n_failed_jobs"]),
                float(summary["n_users"]),
                float(summary["n_projects"]),
                summary["total_core_hours"] / 1e9,
                utilization,
                float(summary["n_ras_events"]),
                float(summary["n_ras_fatal"]),
                float(summary["n_tasks"]),
                float(summary["n_io_profiles"]),
            ],
        }
    )
    severity = dataset.ras.value_counts("severity")
    return ExperimentResult(
        experiment_id="e01",
        title="Dataset overview",
        tables={"overview": overview, "severity_counts": severity},
        metrics={
            "n_jobs": summary["n_jobs"],
            "n_failed_jobs": summary["n_failed_jobs"],
            "core_hours_billions": summary["total_core_hours"] / 1e9,
            "utilization": utilization,
        },
        notes=(
            "Paper: 2001 days, >32.44B core-hours, ~10^5 failures. "
            "Synthetic trace reproduces the composition at the configured span."
        ),
    )
