"""E03 — User- vs system-caused failure attribution.

Paper reference (abstract): "a large majority (99.4%) of which are due
to user behavior".  The experiment attributes every failed job by
joining the FATAL RAS stream against job executions, and scores the
attribution against the synthesis ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.core import attribute_failures, attribution_summary
from repro.dataset import MiraDataset
from repro.stats import bootstrap_ci
from repro.table import Table

from .base import ExperimentResult, register

__all__ = ["run"]

PAPER_USER_SHARE = 0.994


@register("e03", "Failure attribution: user vs system caused", requires=('ras',))
def run(dataset: MiraDataset) -> ExperimentResult:
    """Attribute failures and compare to ground truth and the paper."""
    attributed = attribute_failures(dataset.jobs, dataset.fatal_events(), dataset.spec)
    summary = attribution_summary(attributed)

    truth = dataset.failed_jobs()
    n_true_system = int((truth["origin"] == "system").sum())
    breakdown = Table(
        {
            "source": ["ras_join", "ras_join", "ground_truth", "ground_truth"],
            "cause": ["user", "system", "user", "system"],
            "n_failures": [
                summary["n_user"],
                summary["n_system"],
                summary["n_failed"] - n_true_system,
                n_true_system,
            ],
        }
    )
    is_user = (attributed["attributed"] == "user").astype(np.float64)
    ci = bootstrap_ci(is_user, np.mean, seed=0) if len(is_user) else None
    return ExperimentResult(
        experiment_id="e03",
        title="Failure attribution",
        tables={"breakdown": breakdown},
        metrics={
            "n_failed": summary["n_failed"],
            "user_share": summary["user_share"],
            "user_share_ci_low": ci.low if ci else float("nan"),
            "user_share_ci_high": ci.high if ci else float("nan"),
            "system_share": summary["system_share"],
            "paper_user_share": PAPER_USER_SHARE,
            "ground_truth_system": n_true_system,
        },
        notes=(
            f"Paper: {PAPER_USER_SHARE:.1%} of failures are user-caused. "
            "Measured share comes from the RAS time+location join, with the "
            "simulator's origin labels as ground truth."
        ),
    )
