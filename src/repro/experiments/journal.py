"""Crash-safe run journal: every ``repro-report`` invocation survives a kill.

A *run* is one report invocation.  It owns a directory,
``<runs-root>/<run-id>/``, holding:

- ``journal.jsonl`` — an append-only JSONL journal.  The first record
  (``kind: "run"``) pins the run ID, toolkit version, dataset
  fingerprint, and full config; each completed experiment appends one
  ``kind: "outcome"`` record (including its serialized
  :class:`~repro.experiments.base.ExperimentResult`, so a resumed run
  can re-render the report without re-running anything); a trailing
  ``kind: "end"`` record marks completion.  Every append is flushed
  and fsynced, so a SIGKILL loses at most the experiment in flight —
  never finished work.
- ``report.txt`` — the rendered report, written atomically on
  completion.

Resume (``repro-report --resume <run-id>``) replays the journal: the
dataset fingerprint is validated against the journaled one (a changed
dataset refuses to resume rather than silently mixing results), the
journaled outcomes are rehydrated, and only the missing experiments
run.  Because experiment results are deterministic and the journal
round-trips them exactly (dtype-tagged columns, repr-exact floats),
the resumed report is byte-identical to an uninterrupted run.

A torn final line — the signature of a crash mid-append — is detected
and ignored on replay.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import JournalError
from repro.table import Table

from .base import ExperimentResult
from .engine import ExperimentOutcome

__all__ = [
    "JOURNAL_SCHEMA",
    "RUNS_DIR_ENV",
    "RunJournal",
    "RunState",
    "default_runs_dir",
    "new_run_id",
    "outcome_to_record",
    "outcome_from_record",
    "result_to_json",
    "result_from_json",
]

#: Bump when the journal record layout changes; resume refuses other
#: versions rather than guessing.
JOURNAL_SCHEMA = 1

#: Environment override for the default runs root (CLI flag wins).
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

_DEFAULT_RUNS_DIR = os.path.join("results", "runs")
_JOURNAL_NAME = "journal.jsonl"
_REPORT_NAME = "report.txt"

_KIND_DTYPES = {
    "f": np.float64,
    "i": np.int64,
    "u": np.uint64,
    "b": np.bool_,
}


def default_runs_dir() -> Path:
    """Runs root: ``$REPRO_RUNS_DIR`` or ``results/runs``."""
    return Path(os.environ.get(RUNS_DIR_ENV) or _DEFAULT_RUNS_DIR)


#: Monotonic per-process sequence folded into run IDs; randomness alone
#: (a 24-bit tail) collides with ~11% probability at 2000 IDs/second.
_RUN_ID_SEQUENCE = itertools.count()


def new_run_id() -> str:
    """A sortable, collision-safe run ID.

    UTC timestamp for sortability, then the minting PID and a
    process-local sequence number that make collisions structurally
    impossible rather than merely unlikely: IDs from one process
    differ in the sequence, IDs from concurrent processes differ in
    the PID, and the random tail covers the remaining case of a
    recycled PID landing in the same second.
    """
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    seq = next(_RUN_ID_SEQUENCE)
    return f"{stamp}-p{os.getpid():x}s{seq:x}-{uuid.uuid4().hex[:6]}"


# ----------------------------------------------------------------------
# result serialization (exact round-trip)
# ----------------------------------------------------------------------


def _scalar_to_json(value):
    """Narrow numpy scalars to their Python equivalents for JSON."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (float, np.floating)):
        # json round-trips Python floats exactly (shortest-repr), and
        # emits NaN/Infinity tokens the loader accepts.
        return float(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    return value


def _table_to_json(table: Table) -> dict:
    """Serialize a table with dtype kinds so reloads are value-identical."""
    names = table.column_names
    return {
        "names": names,
        "kinds": [table[name].dtype.kind for name in names],
        "values": [table[name].tolist() for name in names],
    }


def _table_from_json(payload: dict) -> Table:
    data: dict[str, np.ndarray] = {}
    for name, kind, values in zip(
        payload["names"], payload["kinds"], payload["values"]
    ):
        if kind == "O":
            data[name] = np.array([str(v) for v in values], dtype=object)
        else:
            data[name] = np.asarray(values, dtype=_KIND_DTYPES.get(kind))
    return Table(data)


def _result_to_json(result: ExperimentResult | None) -> dict | None:
    if result is None:
        return None
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "notes": result.notes,
        "degraded": result.degraded,
        "metrics": {
            key: _scalar_to_json(value) for key, value in result.metrics.items()
        },
        "tables": {
            name: _table_to_json(table) for name, table in result.tables.items()
        },
    }


def _result_from_json(payload: dict | None) -> ExperimentResult | None:
    if payload is None:
        return None
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        notes=payload["notes"],
        degraded=payload["degraded"],
        metrics=dict(payload["metrics"]),
        tables={
            name: _table_from_json(table)
            for name, table in payload["tables"].items()
        },
    )


# Public names for the exact-round-trip result codecs: the query
# server's wire protocol reuses them so a replayed response rehydrates
# into the same ExperimentResult a journal replay would.
def result_to_json(result: ExperimentResult | None) -> dict | None:
    """Serialize an :class:`ExperimentResult` to its journal JSON form."""
    return _result_to_json(result)


def result_from_json(payload: dict | None) -> ExperimentResult | None:
    """Rehydrate a result serialized by :func:`result_to_json`."""
    return _result_from_json(payload)


def outcome_to_record(outcome: ExperimentOutcome) -> dict:
    """Serialize one outcome as a journal record.

    ``rss_scope`` is journaled only when it is not the default
    ``"worker"`` — worker-pool journals keep their pre-scope byte
    layout, and trace spans are never journaled at all (they belong to
    ``trace.jsonl``).
    """
    record = {
        "kind": "outcome",
        "experiment_id": outcome.experiment_id,
        "status": outcome.status,
        "message": outcome.message,
        "seconds": outcome.seconds,
        "max_rss_kb": outcome.max_rss_kb,
        "attempt": outcome.attempt,
    }
    if outcome.rss_scope != "worker":
        record["rss_scope"] = outcome.rss_scope
    record["result"] = _result_to_json(outcome.result)
    return record


def outcome_from_record(record: dict) -> ExperimentOutcome:
    """Rehydrate an outcome journaled by :func:`outcome_to_record`."""
    return ExperimentOutcome(
        experiment_id=record["experiment_id"],
        status=record["status"],
        result=_result_from_json(record.get("result")),
        message=record["message"],
        seconds=record["seconds"],
        max_rss_kb=record["max_rss_kb"],
        attempt=record.get("attempt", 1),
        rss_scope=record.get("rss_scope", "worker"),
    )


# ----------------------------------------------------------------------
# the journal itself
# ----------------------------------------------------------------------


@dataclass
class RunState:
    """A journal replayed into memory (the ``--resume`` input)."""

    run_id: str
    fingerprint: str
    config: dict
    outcomes: dict[str, ExperimentOutcome] = field(default_factory=dict)
    complete: bool = False


class RunJournal:
    """Append-only journal for one run directory.

    Create with :meth:`start` (new run) or :meth:`resume` (existing
    run); both return a journal whose :meth:`append_outcome` /
    :meth:`append_end` flush and fsync each record, so a crash at any
    point loses at most the record being written.
    """

    def __init__(self, directory: str | Path, run_id: str):
        self.directory = Path(directory)
        self.run_id = run_id

    @property
    def path(self) -> Path:
        """The ``journal.jsonl`` path."""
        return self.directory / _JOURNAL_NAME

    @property
    def report_path(self) -> Path:
        """Where the rendered report is stored on completion."""
        return self.directory / _REPORT_NAME

    @classmethod
    def start(
        cls,
        runs_root: str | Path,
        *,
        fingerprint: str,
        config: Mapping,
        run_id: str | None = None,
    ) -> "RunJournal":
        """Create a fresh run directory and write the header record.

        Raises
        ------
        JournalError
            When ``run_id`` is given and that run already exists.
        """
        from repro import __version__

        run_id = run_id or new_run_id()
        journal = cls(Path(runs_root) / run_id, run_id)
        if journal.path.exists():
            raise JournalError(
                f"run {run_id!r} already exists at {journal.path}; "
                "use --resume or pick another --run-id"
            )
        journal.directory.mkdir(parents=True, exist_ok=True)
        journal._append(
            {
                "kind": "run",
                "schema": JOURNAL_SCHEMA,
                "run_id": run_id,
                "toolkit_version": __version__,
                "fingerprint": fingerprint,
                "config": dict(config),
            }
        )
        return journal

    @classmethod
    def resume(
        cls, runs_root: str | Path, run_id: str
    ) -> tuple["RunJournal", RunState]:
        """Replay an existing run's journal.

        Skips undecodable lines (a torn tail from a crash mid-append)
        and deduplicates outcomes by experiment ID (first wins — the
        engine never legitimately journals one twice).

        Raises
        ------
        JournalError
            When the run does not exist, the journal has no valid
            header, or it was written by an incompatible schema.
        """
        journal = cls(Path(runs_root) / run_id, run_id)
        if not journal.path.exists():
            raise JournalError(
                f"no journal for run {run_id!r} under {Path(runs_root)}"
            )
        records: list[dict] = []
        for line in journal.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail from a crash mid-append
        if not records or records[0].get("kind") != "run":
            raise JournalError(f"{journal.path}: not a run journal")
        header = records[0]
        if header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"{journal.path}: journal schema {header.get('schema')!r} != "
                f"{JOURNAL_SCHEMA}"
            )
        state = RunState(
            run_id=run_id,
            fingerprint=header.get("fingerprint", ""),
            config=header.get("config", {}),
        )
        for record in records[1:]:
            kind = record.get("kind")
            if kind == "outcome":
                try:
                    outcome = outcome_from_record(record)
                except (KeyError, TypeError, ValueError):
                    continue  # a damaged record is re-run, not trusted
                state.outcomes.setdefault(outcome.experiment_id, outcome)
            elif kind == "end" and record.get("status") == "complete":
                state.complete = True
        return journal, state

    def append_outcome(self, outcome: ExperimentOutcome) -> None:
        """Journal one completed experiment (flushed + fsynced)."""
        self._append(outcome_to_record(outcome))

    def append_event(self, event: str, **fields) -> None:
        """Journal a labelled lifecycle event (flushed + fsynced).

        Long-lived daemons (``repro-serve``) use these to record
        listening/drain/shutdown milestones.  ``kind: "event"``
        records are ignored by :meth:`resume`, so an event-bearing
        journal stays replayable.
        """
        record: dict = {"kind": "event", "event": event}
        record.update(fields)
        self._append(record)

    def append_end(self, status: str, total_seconds: float) -> None:
        """Journal the run's end (``"complete"`` or ``"interrupted"``)."""
        self._append(
            {
                "kind": "end",
                "status": status,
                "total_seconds": round(total_seconds, 6),
            }
        )

    def _append(self, record: dict) -> None:
        # No sort_keys: dict insertion order IS data here — a result's
        # metrics/tables render in definition order, and a resumed report
        # must reproduce that order byte-for-byte.
        line = json.dumps(record)
        with self.path.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
