"""E14 — Correlation of RAS exposure with users and core-hours.

Paper reference (abstract): "The RAS events affecting job executions
exhibit a high correlation with users and core-hours."  The experiment
maps every RAS event to the job (and hence user) it affected and
correlates per-user event exposure with per-user core-hours.
"""

from __future__ import annotations

from repro.core import events_per_user
from repro.dataset import MiraDataset

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e14", "RAS exposure vs users and core-hours", requires=('ras',))
def run(dataset: MiraDataset, top_k: int = 10) -> ExperimentResult:
    """Per-user RAS exposure and its correlation with core-hours."""
    per_user, correlations = events_per_user(
        dataset.ras, dataset.jobs, dataset.spec
    )
    exposed = per_user.filter(per_user["n_events"] > 0)
    top = per_user.sort_by("n_events", reverse=True).head(top_k)
    return ExperimentResult(
        experiment_id="e14",
        title="RAS exposure vs users/core-hours",
        tables={"top_exposed_users": top},
        metrics={
            "pearson": correlations["pearson"],
            "spearman": correlations["spearman"],
            "n_users": per_user.n_rows,
            "n_users_exposed": exposed.n_rows,
        },
        notes=(
            "Paper: users consuming more core-hours encounter more RAS "
            "events — exposure is volume-driven, not user-behaviour-driven."
        ),
    )
