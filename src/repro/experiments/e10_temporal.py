"""E10 — Temporal patterns of jobs and events.

Paper reference: the long-horizon characterization figures — monthly
volumes over the observation span, plus diurnal and weekly submission
patterns.  The experiment emits the three time series.
"""

from __future__ import annotations

import numpy as np

from repro.dataset import MiraDataset
from repro.table import Table

from .base import ExperimentResult, register

__all__ = ["run"]

SECONDS_PER_DAY = 86_400.0


def _monthly(dataset: MiraDataset) -> Table:
    month_days = 30.0
    n_months = max(1, int(np.ceil(dataset.n_days / month_days)))
    job_month = (dataset.jobs["submit_time"] / (month_days * SECONDS_PER_DAY)).astype(int)
    event_month = (dataset.ras["timestamp"] / (month_days * SECONDS_PER_DAY)).astype(int)
    fatal = dataset.fatal_events()
    fatal_month = (fatal["timestamp"] / (month_days * SECONDS_PER_DAY)).astype(int)
    return Table(
        {
            "month": list(range(n_months)),
            "jobs": np.bincount(np.clip(job_month, 0, n_months - 1), minlength=n_months),
            "events": np.bincount(np.clip(event_month, 0, n_months - 1), minlength=n_months),
            "fatal_events": np.bincount(
                np.clip(fatal_month, 0, n_months - 1), minlength=n_months
            ),
        }
    )


def _hourly(jobs: Table) -> Table:
    hours = ((jobs["submit_time"] / 3600.0) % 24).astype(int)
    return Table(
        {"hour": list(range(24)), "submissions": np.bincount(hours, minlength=24)}
    )


def _weekday(jobs: Table) -> Table:
    days = ((jobs["submit_time"] / SECONDS_PER_DAY).astype(int)) % 7
    return Table(
        {
            "weekday": list(range(7)),
            "submissions": np.bincount(days, minlength=7),
        }
    )


@register("e10", "Temporal patterns: monthly, diurnal, weekly", requires=('ras',))
def run(dataset: MiraDataset) -> ExperimentResult:
    """Monthly/diurnal/weekly volume series."""
    hourly = _hourly(dataset.jobs)
    weekday = _weekday(dataset.jobs)
    submissions = hourly["submissions"]
    day = submissions[9:18].mean()
    night = submissions[0:6].mean()
    weekday_mean = weekday["submissions"][:5].mean()
    weekend_mean = weekday["submissions"][5:].mean()
    return ExperimentResult(
        experiment_id="e10",
        title="Temporal patterns",
        tables={
            "monthly": _monthly(dataset),
            "hourly_submissions": hourly,
            "weekday_submissions": weekday,
        },
        metrics={
            "day_night_ratio": float(day / night) if night else float("inf"),
            "weekday_weekend_ratio": (
                float(weekday_mean / weekend_mean) if weekend_mean else float("inf")
            ),
        },
        notes=(
            "Paper: submissions follow human work cycles; event volumes "
            "vary over the machine's life."
        ),
    )
