"""E18 (extension) — failure predictability at submission time.

Operationalizes the paper's proactive-management motivation: if
failures correlate with users, scale and structure, a predictor over
submit-time features should beat the coin flip by a wide margin.
Evaluates the user-history baseline and a logistic model under a
chronological split.
"""

from __future__ import annotations

from repro.core.prediction import evaluate_predictors
from repro.dataset import MiraDataset

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e18", "Failure predictability from submit-time features")
def run(dataset: MiraDataset, train_fraction: float = 0.7) -> ExperimentResult:
    """Chronological-split evaluation of the failure predictors."""
    table = evaluate_predictors(dataset.jobs, train_fraction=train_fraction)
    by_name = {r["predictor"]: r for r in table.to_rows()}
    return ExperimentResult(
        experiment_id="e18",
        title="Failure predictability",
        tables={"predictors": table},
        metrics={
            "auc_user_history": by_name["user_history"]["auc"],
            "auc_logistic": by_name["logistic"]["auc"],
            "logistic_gain_over_history": (
                by_name["logistic"]["auc"] - by_name["user_history"]["auc"]
            ),
        },
        notes=(
            "Extension: the paper's failure correlations restated as a "
            "submit-time prediction task (AUC 0.5 = coin flip)."
        ),
    )
