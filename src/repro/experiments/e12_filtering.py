"""E12 — Event-filtering ablation (raw → temporal → spatial → similarity).

Paper reference (abstract): "our similarity-based event-filtering
analysis".  The experiment runs the three-stage pipeline, reports the
per-stage cluster counts and reduction factors, and scores the final
cluster count against the synthesis ground truth (the incident list).
"""

from __future__ import annotations

from repro.core import default_pipeline
from repro.dataset import MiraDataset
from repro.table import Table

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e12", "Event-filtering ablation (per-stage reduction)", requires=('ras',))
def run(
    dataset: MiraDataset,
    window_seconds: float = 3600.0,
    threshold: float = 0.5,
) -> ExperimentResult:
    """Run the filtering pipeline and report per-stage compression."""
    fatal = dataset.fatal_events()
    outcome = default_pipeline(
        temporal_window=window_seconds,
        spatial_window=window_seconds,
        similarity_window=window_seconds,
        similarity_threshold=threshold,
        spec=dataset.spec,
    ).run(fatal)
    stages = Table(
        {
            "stage": [name for name, _ in outcome.stage_counts],
            "clusters": [count for _, count in outcome.stage_counts],
        }
    )
    truth = len(dataset.incidents)
    recovered = outcome.n_clusters
    return ExperimentResult(
        experiment_id="e12",
        title="Event-filtering ablation",
        tables={"stages": stages},
        metrics={
            "raw_fatal_events": fatal.n_rows,
            "final_clusters": recovered,
            "total_reduction": outcome.total_reduction,
            "ground_truth_incidents": truth,
            "recovery_error": (
                abs(recovered - truth) / truth if truth else float("nan")
            ),
        },
        notes=(
            "Paper: raw fatal records overcount real faults by orders of "
            "magnitude; filtering recovers the physical incident count."
        ),
    )
