"""E22 — Cross-system comparison: do the Mira findings transfer?

Extension beyond the paper.  The paper's headline results — 99.4% of
failed jobs are user-caused, job-interruption MTTI ≈ 3.5 days, failure
rate grows with job scale — are measured on one machine.  This
experiment synthesizes a matched-span trace from every registered
trace backend (:mod:`repro.adapters`), runs the *same* attribution,
filtering, and MTTI kernels on each, and renders a side-by-side table
with a per-finding verdict.

Expected picture: the user-dominance finding transfers to the other
CPU systems (Google cells and Mistral both report >95% job-level
causes) but *not* to GPU training clusters, where hardware is the
dominant interrupter again; the multi-day MTTI is Mira-specific — it
shrinks with machine failure intensity; the scale correlation is the
most portable finding of the three.
"""

from __future__ import annotations

import numpy as np

from repro.core.attribution import attribute_failures, attribution_summary
from repro.core.exitcodes import classify_exit_status
from repro.core.filtering import default_pipeline
from repro.core.reliability import job_interruption_mtti
from repro.dataset import MiraDataset
from repro.table import Table

from .base import ExperimentResult, register

__all__ = ["run"]

PAPER_USER_SHARE = 0.994
PAPER_MTTI_DAYS = 3.5

#: A backend "reproduces" the user-dominance finding when user causes
#: still account for at least this share of failed jobs.
USER_DOMINANCE_THRESHOLD = 0.9
#: The multi-day-MTTI finding transfers when the measured MTTI is
#: within this factor of the paper's 3.5 days.
MTTI_TRANSFER_FACTOR = 2.0
#: Size-ladder rungs with fewer jobs than this are too noisy to enter
#: the scale correlation.
MIN_JOBS_PER_RUNG = 30


def _scale_correlation(jobs: Table) -> float:
    """Pearson correlation of log2(job size) vs per-size failure rate."""
    if jobs.n_rows == 0:
        return float("nan")
    nodes = np.asarray(jobs["allocated_nodes"], dtype=np.float64)
    failed = np.asarray(jobs["exit_status"]) != 0
    sizes, rates = [], []
    for size in np.unique(nodes):
        mask = nodes == size
        if int(mask.sum()) < MIN_JOBS_PER_RUNG:
            continue
        sizes.append(np.log2(size))
        rates.append(float(failed[mask].mean()))
    if len(sizes) < 3 or len(set(rates)) == 1:
        return float("nan")
    return float(np.corrcoef(sizes, rates)[0, 1])


def _dominant_family(jobs: Table) -> tuple[str, float]:
    """Most common exit family among user-caused failures, with share."""
    failed = jobs.filter(jobs["exit_status"] != 0)
    user = failed.filter(failed["origin"] == "user")
    if user.n_rows == 0:
        return "none", float("nan")
    counts: dict[str, int] = {}
    for status in user["exit_status"].tolist():
        family = classify_exit_status(int(status)).name
        counts[family] = counts.get(family, 0) + 1
    family, count = max(counts.items(), key=lambda kv: kv[1])
    return family, count / user.n_rows


def _measure(dataset: MiraDataset) -> dict:
    """One backend's row of the comparison table."""
    jobs = dataset.jobs
    summary = attribution_summary(
        attribute_failures(jobs, dataset.fatal_events(), dataset.spec)
    )
    clusters = default_pipeline(spec=dataset.spec).run(dataset.fatal_events()).clusters
    jobwise = job_interruption_mtti(
        clusters, jobs, dataset.n_days, dataset.spec
    )
    n_failed = int((jobs["exit_status"] != 0).sum()) if jobs.n_rows else 0
    family, family_share = _dominant_family(jobs)
    return {
        "n_jobs": jobs.n_rows,
        "failure_rate": n_failed / jobs.n_rows if jobs.n_rows else float("nan"),
        "user_share": summary["user_share"],
        "system_share": summary["system_share"],
        "job_mtti_days": jobwise.mtti_days,
        "dominant_family": family,
        "dominant_family_share": family_share,
        "scale_correlation": _scale_correlation(jobs),
    }


@register("e22", "Cross-system comparison of the Mira findings", requires=("ras",))
def run(
    dataset: MiraDataset,
    comparison_days: float | None = None,
    backends: tuple[str, ...] | None = None,
) -> ExperimentResult:
    """Measure the Mira findings on every trace backend, side by side.

    The input dataset fixes the comparison span (capped at 60 days to
    keep the sweep cheap) and seed; each backend is synthesized at that
    matched span so rates and MTTIs are comparable.  The input
    dataset's own backend reuses it directly when the spans line up,
    so ``repro-report --backend google`` does not synthesize google
    twice.
    """
    from repro.adapters import all_backend_names, get_backend

    days = comparison_days if comparison_days else min(dataset.n_days, 60.0)
    seed = dataset.seed if dataset.seed >= 0 else 0
    names = tuple(backends) if backends else all_backend_names()

    columns: dict[str, list] = {
        "backend": [],
        "machine": [],
        "n_jobs": [],
        "failure_rate": [],
        "user_share": [],
        "published_user_share": [],
        "job_mtti_days": [],
        "published_mtti_days": [],
        "dominant_family": [],
        "scale_correlation": [],
    }
    verdict_cols: dict[str, list] = {
        "backend": [],
        "user_dominance_transfers": [],
        "multiday_mtti_transfers": [],
        "scale_correlation_transfers": [],
    }
    measured: dict[str, dict] = {}
    for name in names:
        backend = get_backend(name)
        if (
            name == dataset.backend
            and dataset.n_days == days
            and dataset.seed == seed
        ):
            source = dataset
        else:
            source = MiraDataset.synthesize(days, seed=seed, backend=name)
        row = _measure(source)
        measured[name] = row
        columns["backend"].append(name)
        columns["machine"].append(backend.spec.name)
        columns["n_jobs"].append(row["n_jobs"])
        columns["failure_rate"].append(row["failure_rate"])
        columns["user_share"].append(row["user_share"])
        columns["published_user_share"].append(backend.published.user_share)
        columns["job_mtti_days"].append(row["job_mtti_days"])
        columns["published_mtti_days"].append(backend.published.mtti_days)
        columns["dominant_family"].append(row["dominant_family"])
        columns["scale_correlation"].append(row["scale_correlation"])

        mtti = row["job_mtti_days"]
        verdict_cols["backend"].append(name)
        verdict_cols["user_dominance_transfers"].append(
            "yes" if row["user_share"] >= USER_DOMINANCE_THRESHOLD else "no"
        )
        verdict_cols["multiday_mtti_transfers"].append(
            "yes"
            if np.isfinite(mtti)
            and PAPER_MTTI_DAYS / MTTI_TRANSFER_FACTOR
            <= mtti
            <= PAPER_MTTI_DAYS * MTTI_TRANSFER_FACTOR
            else "no"
        )
        verdict_cols["scale_correlation_transfers"].append(
            "yes" if row["scale_correlation"] > 0 else "no"
        )

    transfers_user = [
        n for n in names if measured[n]["user_share"] >= USER_DOMINANCE_THRESHOLD
    ]
    notes = (
        f"Matched {days:.0f}-day traces, seed {seed}. "
        f"User dominance (paper: {PAPER_USER_SHARE:.1%}) holds on "
        f"{len(transfers_user)}/{len(names)} systems "
        f"({', '.join(transfers_user) or 'none'}); "
        f"the multi-day MTTI (paper: {PAPER_MTTI_DAYS} d) is machine-"
        "specific — it tracks failure intensity, not a universal constant."
    )
    metrics: dict[str, float] = {
        "n_backends": float(len(names)),
        "n_user_dominant": float(len(transfers_user)),
    }
    for name in names:
        metrics[f"{name}_user_share"] = measured[name]["user_share"]
        metrics[f"{name}_job_mtti_days"] = measured[name]["job_mtti_days"]
    return ExperimentResult(
        experiment_id="e22",
        title="Cross-system comparison of the Mira findings",
        tables={
            "cross_system": Table(columns),
            "verdicts": Table(verdict_cols),
        },
        metrics=metrics,
        notes=notes,
    )
