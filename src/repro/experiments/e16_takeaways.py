"""E16 — The paper's 22 takeaways, recomputed end-to-end.

Paper reference (abstract): "We present 22 valuable takeaways based on
our in-depth analysis."  The experiment evaluates all 22 reconstructed
takeaways against the dataset and reports how many hold.
"""

from __future__ import annotations

from repro.core.takeaways import compute_takeaways, takeaways_to_table
from repro.dataset import MiraDataset

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e16", "The 22 takeaways, recomputed", requires=("ras", "tasks", "io"))
def run(dataset: MiraDataset) -> ExperimentResult:
    """Evaluate all takeaways and summarize the pass rate."""
    takeaways = compute_takeaways(dataset)
    n_hold = sum(t.holds for t in takeaways)
    return ExperimentResult(
        experiment_id="e16",
        title="22 takeaways",
        tables={"takeaways": takeaways_to_table(takeaways)},
        metrics={
            "n_takeaways": len(takeaways),
            "n_holding": n_hold,
            "hold_rate": n_hold / len(takeaways),
        },
        notes="Each takeaway is a checkable reconstruction of a paper claim.",
    )
