"""E09 — RAS log composition: severity by component and category.

Paper reference: the RAS-log characterization tables (severity mix per
reporting component and hardware category).  The experiment regenerates
the two cross-tabulations.
"""

from __future__ import annotations

from repro.dataset import MiraDataset
from repro.table import Table

from .base import ExperimentResult, register

__all__ = ["run"]


def _crosstab(ras: Table, key: str) -> Table:
    grouped = ras.group_by(key, "severity").size()
    # Pivot to one row per key with INFO/WARN/FATAL columns.
    severities = ("INFO", "WARN", "FATAL")
    keys = sorted(set(grouped[key].tolist()))
    counts = {k: {s: 0 for s in severities} for k in keys}
    for row in grouped.to_rows():
        counts[row[key]][row["severity"]] = row["count"]
    return Table(
        {
            key: keys,
            "info": [counts[k]["INFO"] for k in keys],
            "warn": [counts[k]["WARN"] for k in keys],
            "fatal": [counts[k]["FATAL"] for k in keys],
            "total": [sum(counts[k].values()) for k in keys],
        }
    ).sort_by("total", reverse=True)


@register("e09", "RAS composition: severity by component and category", requires=('ras',))
def run(dataset: MiraDataset) -> ExperimentResult:
    """Severity cross-tabs of the RAS stream."""
    by_component = _crosstab(dataset.ras, "component")
    by_category = _crosstab(dataset.ras, "category")
    summary = dataset.summary()
    total = max(summary["n_ras_events"], 1)
    return ExperimentResult(
        experiment_id="e09",
        title="RAS log composition",
        tables={"by_component": by_component, "by_category": by_category},
        metrics={
            "n_events": summary["n_ras_events"],
            "info_share": summary["n_ras_info"] / total,
            "warn_share": summary["n_ras_warn"] / total,
            "fatal_share": summary["n_ras_fatal"] / total,
        },
        notes=(
            "Paper: INFO dominates the stream; FATAL events are rare but "
            "cluster on specific components/categories."
        ),
    )
