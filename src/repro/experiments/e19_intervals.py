"""E19 (extension) — best-fit distribution of interruption intervals.

Covers the abstract's parenthetical: "execution length *(or
interruption interval)*" best-fit analysis.  The gaps between filtered
fatal clusters are fitted against the full candidate set.  The
synthetic incident process is homogeneous Poisson, so the exponential
(Erlang k=1) family should win — which doubles as a correctness check
of the whole generator→filter→fit chain.
"""

from __future__ import annotations

from repro.core import default_pipeline
from repro.core.fitting import fits_to_table
from repro.core.intervals import fit_interruption_intervals, interruption_intervals
from repro.dataset import MiraDataset

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e19", "Best-fit distribution of interruption intervals", requires=('ras',))
def run(dataset: MiraDataset) -> ExperimentResult:
    """Fit candidates to inter-interruption gaps."""
    clusters = default_pipeline(spec=dataset.spec).run(dataset.fatal_events()).clusters
    reports = fit_interruption_intervals(clusters)
    gaps = interruption_intervals(clusters)
    bic_winner = min(reports, key=lambda r: r.bic)
    expected = {"exponential", "erlang"}
    return ExperimentResult(
        experiment_id="e19",
        title="Interruption-interval distribution",
        tables={"fits": fits_to_table(reports)},
        metrics={
            "n_intervals": int(gaps.size),
            "mean_interval_days": float(gaps.mean()),
            "bic_winner_in_expected_family": int(bic_winner.model_name in expected),
        },
        notes=(
            "Paper: interruption intervals also follow one of the candidate "
            "families. The synthetic fault process is Poisson, so the "
            "Erlang/exponential family should win here. "
            f"KS winner: {reports[0].model_name}; BIC winner: {bic_winner.model_name}."
        ),
    )
