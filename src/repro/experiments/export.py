"""Exporting experiment results to files.

Turns :class:`~repro.experiments.base.ExperimentResult` objects into a
directory of artifacts: a Markdown summary per experiment plus one CSV
per table — the formats downstream pipelines (papers, dashboards)
actually ingest.
"""

from __future__ import annotations

from pathlib import Path

from repro.table import Table, write_csv
from repro.util.atomic import atomic_write_text

from .base import ExperimentResult

__all__ = ["result_to_markdown", "export_result", "export_all"]


def _markdown_table(table: Table, max_rows: int = 50) -> str:
    names = table.column_names
    if not names:
        return "*(empty table)*"
    lines = [
        "| " + " | ".join(names) + " |",
        "| " + " | ".join("---" for _ in names) + " |",
    ]
    for row in table.head(max_rows).to_rows():
        cells = [
            f"{value:.6g}" if isinstance(value, float) else str(value)
            for value in row.values()
        ]
        lines.append("| " + " | ".join(cells) + " |")
    if table.n_rows > max_rows:
        lines.append(f"*… {table.n_rows - max_rows} more rows*")
    return "\n".join(lines)


def result_to_markdown(result: ExperimentResult, max_rows: int = 50) -> str:
    """Render one result as a Markdown document."""
    parts = [f"# {result.experiment_id.upper()} — {result.title}", ""]
    if result.notes:
        parts += [result.notes, ""]
    if result.metrics:
        parts.append("## Metrics")
        parts.append("")
        parts.append("| metric | value |")
        parts.append("| --- | --- |")
        for key, value in result.metrics.items():
            rendered = f"{value:.6g}" if isinstance(value, float) else str(value)
            parts.append(f"| {key} | {rendered} |")
        parts.append("")
    for name, table in result.tables.items():
        parts.append(f"## {name}")
        parts.append("")
        parts.append(_markdown_table(table, max_rows))
        parts.append("")
    return "\n".join(parts)


def export_result(result: ExperimentResult, directory: str | Path) -> list[Path]:
    """Write ``<id>.md`` plus ``<id>_<table>.csv`` files; returns paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    md_path = directory / f"{result.experiment_id}.md"
    atomic_write_text(md_path, result_to_markdown(result))
    written.append(md_path)
    for name, table in result.tables.items():
        csv_path = directory / f"{result.experiment_id}_{name}.csv"
        write_csv(table, csv_path)
        written.append(csv_path)
    return written


def export_all(
    dataset, directory: str | Path, experiment_ids: list[str] | None = None
) -> list[Path]:
    """Run experiments (all by default) and export each; returns paths."""
    from . import all_experiments, run_experiment

    from repro.errors import ReproError

    ids = experiment_ids if experiment_ids is not None else list(all_experiments())
    written: list[Path] = []
    for experiment_id in ids:
        try:
            result = run_experiment(experiment_id, dataset)
        except (ReproError, ValueError):
            # Experiments starved by a small trace are skipped; the
            # report path records the reason, the export simply omits it.
            continue
        written.extend(export_result(result, directory))
    return written
