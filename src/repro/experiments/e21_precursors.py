"""E21 (extension) — WARN precursors of fatal events.

Measures whether fatal incidents announce themselves: the fraction of
filtered fatal clusters preceded by a WARN at the same midplane
(coverage), the lead-time distribution, and the precision/recall of the
naive "WARN ⇒ fatal soon" alarm.  The generator plants precursors for
half the incidents by design, so coverage well above the chance level —
and calibrated lead times — validate the chain end-to-end.
"""

from __future__ import annotations

import numpy as np

from repro.core import default_pipeline
from repro.core.precursors import alarm_quality, precursor_coverage
from repro.dataset import MiraDataset
from repro.table import Table

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e21", "WARN precursors of fatal events", requires=('ras',))
def run(dataset: MiraDataset, lookback_seconds: float = 7200.0) -> ExperimentResult:
    """Coverage, lead times, and alarm quality of WARN precursors."""
    warns = dataset.ras.filter(dataset.ras["severity"] == "WARN")
    clusters = default_pipeline(spec=dataset.spec).run(dataset.fatal_events()).clusters
    coverage, leads = precursor_coverage(
        warns, clusters, lookback_seconds, spec=dataset.spec
    )
    quality = alarm_quality(warns, clusters, lookback_seconds, spec=dataset.spec)
    truth_rate = (
        float(np.mean([i.had_precursor for i in dataset.incidents]))
        if dataset.incidents
        else float("nan")
    )
    if leads.size:
        edges = np.array([0, 600, 1800, 3600, 7200, np.inf])
        labels = ["<10min", "10-30min", "30-60min", "1-2h", ">2h"]
        indices = np.clip(np.digitize(leads, edges) - 1, 0, 4)
        histogram = Table(
            {"lead_time": labels, "count": np.bincount(indices, minlength=5)}
        )
    else:
        histogram = Table({"lead_time": [], "count": []})
    return ExperimentResult(
        experiment_id="e21",
        title="WARN precursors",
        tables={"lead_time_histogram": histogram},
        metrics={
            "coverage": coverage["coverage"],
            "ground_truth_precursor_rate": truth_rate,
            "median_lead_seconds": coverage["median_lead_seconds"],
            "alarm_precision": quality["precision"],
            "alarm_recall": quality["recall"],
        },
        notes=(
            "Coverage above the planted ground-truth rate includes chance "
            "coincidences with background WARN traffic; precision shows why "
            "naive WARN alarms overwhelm operators."
        ),
    )
