"""E15 — I/O behaviour of failed versus successful jobs.

Paper reference (abstract): the joint analysis includes "the I/O
behavior log".  The experiment contrasts the Darshan-style profiles of
failed and successful jobs and reports the volume-vs-core-hours curve.
"""

from __future__ import annotations

from repro.core import io_by_outcome, io_volume_vs_corehours
from repro.core.io_behavior import io_throughput_by_scale
from repro.dataset import MiraDataset

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e15", "I/O behaviour: failed vs successful jobs", requires=('io',))
def run(dataset: MiraDataset, n_bins: int = 6) -> ExperimentResult:
    """Failed-vs-success I/O contrast plus the volume scaling curve."""
    by_outcome, ks = io_by_outcome(dataset.io, dataset.jobs)
    scaling = io_volume_vs_corehours(dataset.io, dataset.jobs, n_bins=n_bins)
    throughput = io_throughput_by_scale(dataset.io, dataset.jobs)
    rows = {r["outcome"]: r for r in by_outcome.to_rows()}
    contrast = (
        rows["success"]["median_write_per_ch"]
        / max(rows["failed"]["median_write_per_ch"], 1e-9)
    )
    return ExperimentResult(
        experiment_id="e15",
        title="I/O behaviour by outcome",
        tables={
            "by_outcome": by_outcome,
            "volume_vs_corehours": scaling,
            "throughput_by_scale": throughput,
        },
        metrics={
            "write_per_ch_success_over_failed": contrast,
            "ks_statistic": ks["ks_statistic"],
            "ks_p_value": ks["p_value"],
            "coverage": dataset.io.n_rows / max(dataset.jobs.n_rows, 1),
        },
        notes=(
            "Paper: failed jobs leave less output behind per unit of "
            "compute — they die before writing results."
        ),
    )
