"""Supervised parallel experiment engine.

Runs a set of independent experiments against one dataset, optionally
across a :class:`~concurrent.futures.ProcessPoolExecutor`, while
preserving two invariants the report renderer depends on:

- **Deterministic ordering** — outcomes come back in the exact order
  the experiment IDs were requested, regardless of which worker
  finished first.
- **Failure isolation** — one crashing experiment becomes a recorded
  outcome (``skipped`` for expected data-starvation errors, ``error``
  for everything else), never an aborted suite.

On top of those, :func:`run_suite` supervises the pool the way a batch
scheduler supervises jobs:

- a per-experiment **timeout** is enforced inside the worker via
  ``SIGALRM`` (an experiment that exceeds it becomes an ``error``
  outcome), with a supervisor-side stall detector as backstop: when no
  experiment completes for roughly twice the timeout, the wedged
  workers are killed and their experiments re-dispatched;
- a **worker death** (``BrokenProcessPool``) re-dispatches *only the
  experiments without a recorded outcome* to a fresh pool, with
  bounded retries and exponential backoff — completed work is never
  discarded and never re-run.  Retries run isolated (one pool per
  experiment) so a repeat offender cannot take healthy experiments
  down with it, and a pool that breaks because the dataset cannot be
  pickled across the process boundary falls back to the in-process
  sequential path instead;
- **graceful shutdown** — ``KeyboardInterrupt`` (SIGINT, or SIGTERM
  mapped to it by the CLI) kills outstanding workers, keeps every
  outcome already collected, and returns a partial
  :class:`SuiteResult` with ``interrupted=True`` so the caller can
  journal it and offer a resume;
- **crash-safe journaling** — every freshly computed outcome is pushed
  through the ``on_outcome`` callback the moment it is collected, and
  ``completed`` outcomes replayed from a journal are returned verbatim
  without re-running their experiments.

Every outcome carries wall-time, peak-RSS, and the attempt number that
produced it, and :func:`write_bench_json` serializes a suite into the
machine-readable ``BENCH_pipeline.json`` perf-trajectory format the
benchmark harness and CI consume.
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Callable, Mapping

from repro.errors import FaultError, ReproError
from repro.util.atomic import atomic_write_text
from repro.util.deadline import DeadlineExceeded, deadline

from .base import ExperimentResult

try:  # tracing is optional: without repro.obs the suite runs untraced
    from repro.obs import trace as _obs
except ImportError:  # pragma: no cover - exercised by the obs-less drill
    _obs = None


class _SpanOff:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def note(self, **attrs):
        return None


_SPAN_OFF = _SpanOff()


def _trace_span(name, **attrs):
    if _obs is None:
        return _SPAN_OFF
    return _obs.span(name, **attrs)


__all__ = [
    "ExperimentOutcome",
    "SuiteResult",
    "run_suite",
    "profile_lines",
    "bench_record",
    "write_bench_json",
]


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's fate: its result or why it has none.

    ``status`` is ``"ok"`` (``result`` is set), ``"skipped"`` (an
    expected :class:`~repro.errors.ReproError`/:class:`ValueError`,
    e.g. a small trace starving an analysis; ``message`` is ``str(error)``)
    or ``"error"`` (an isolated crash, a timeout, or a worker lost
    beyond its retry budget; ``message`` says which).
    ``max_rss_kb`` is a peak resident set from ``getrusage``,
    normalized to KiB on every platform (Linux reports KiB natively,
    macOS reports bytes).  ``rss_scope`` says what that peak covers:
    ``"worker"`` — the pool worker process that ran this experiment —
    or ``"process"`` — the whole supervisor, when the experiment ran
    in-process (``jobs=1`` or the unpicklable-dataset fallback), where
    the number is a shared monotonic high-water mark, *not* this
    experiment's own footprint.  ``attempt`` is the dispatch number
    that produced this outcome (``2`` means the first worker died and
    the retry succeeded).  ``spans`` carries trace spans recorded in
    the worker when the suite ran with tracing on; the supervisor
    merges them into the active recorder and they are never journaled.
    """

    experiment_id: str
    status: str
    result: ExperimentResult | None
    message: str
    seconds: float
    max_rss_kb: int
    attempt: int = 1
    rss_scope: str = "worker"
    spans: tuple = ()


@dataclass(frozen=True)
class SuiteResult:
    """All outcomes of one suite run, in requested order.

    ``interrupted`` is True when the run was cut short (SIGINT/SIGTERM)
    and ``outcomes`` holds only what finished before the interrupt.
    """

    outcomes: tuple[ExperimentOutcome, ...]
    jobs: int
    total_seconds: float
    interrupted: bool = False

    @cached_property
    def _by_id(self) -> dict[str, ExperimentOutcome]:
        return {outcome.experiment_id: outcome for outcome in self.outcomes}

    def outcome(self, experiment_id: str) -> ExperimentOutcome:
        """O(1) lookup of one experiment's outcome by ID."""
        try:
            return self._by_id[experiment_id]
        except KeyError:
            raise KeyError(f"no outcome for {experiment_id!r}") from None


# Dataset shared with pool workers via the initializer, so it is pickled
# once per worker instead of once per submitted experiment.
_WORKER_DATASET = None


def _init_worker(dataset) -> None:
    global _WORKER_DATASET
    _WORKER_DATASET = dataset


def _peak_rss_kb() -> int:
    """Peak resident set of this process in KiB, on every platform.

    ``getrusage`` reports ``ru_maxrss`` in KiB on Linux but in *bytes*
    on macOS — normalizing at the one call site keeps every journal,
    bench record, and report comparable across platforms.
    """
    raw = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        return raw // 1024
    return raw


def _run_one(
    experiment_id: str,
    dataset=None,
    timeout: float | None = None,
    attempt: int = 1,
    trace: bool = False,
) -> ExperimentOutcome:
    """Run one experiment with isolation, timing, and RSS accounting.

    ``dataset=None`` means "running inside a pool worker" (the dataset
    arrives via the initializer); that distinction also fixes the RSS
    scope — a worker's ``ru_maxrss`` is (approximately) this
    experiment's own peak, while in-process it is the whole
    supervisor's shared high-water mark and is labelled as such.  With
    ``trace=True`` in a worker, a process-local recorder captures the
    experiment's spans and ships them back on the outcome; in-process,
    spans flow straight into the supervisor's active recorder.
    """
    from repro.experiments import run_experiment
    from repro.faults.plan import apply_process_faults

    in_process = dataset is not None
    if dataset is None:
        dataset = _WORKER_DATASET
    recorder = None
    if trace and _obs is not None:
        if not in_process:
            # Always start fresh in a worker: under the fork start
            # method the child inherits the supervisor's recorder, and
            # spans added to that copy would be silently discarded.
            recorder = _obs.install(_obs.TraceRecorder())
        elif _obs.active() is None:
            recorder = _obs.install(_obs.TraceRecorder())
    started = time.perf_counter()
    try:
        with deadline(timeout):
            with _trace_span("experiment", id=experiment_id, attempt=attempt):
                # Deterministic chaos (kill/hang/slow) fires here, inside
                # the timeout window, so drills exercise the same
                # supervision paths real failures would.
                apply_process_faults(experiment_id, attempt)
                result = run_experiment(experiment_id, dataset)
        status, message = "ok", ""
    except DeadlineExceeded:
        result, status = None, "error"
        message = f"timeout: exceeded {timeout:g}s"
    except FaultError as error:
        # A misspelled REPRO_PROCESS_FAULTS spec must surface, not be
        # mistaken for a data-starved skip.
        result, status, message = None, "error", repr(error)
    except (ReproError, ValueError) as error:
        # Small traces legitimately starve some experiments (too few
        # failures per family, too few interruption intervals, ...).
        result, status, message = None, "skipped", str(error)
    except Exception as error:  # noqa: BLE001 - isolate experiment crashes
        result, status, message = None, "error", repr(error)
    spans: tuple = ()
    if recorder is not None:
        _obs.uninstall()
        spans = tuple(recorder.spans)
    return ExperimentOutcome(
        experiment_id=experiment_id,
        status=status,
        result=result,
        message=message,
        seconds=time.perf_counter() - started,
        max_rss_kb=_peak_rss_kb(),
        attempt=attempt,
        rss_scope="process" if in_process else "worker",
        spans=spans,
    )


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """Forcibly end a pool's worker processes (stall/interrupt path)."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.kill()
        except OSError:
            pass


def _drain(futures, timeout: float | None, record) -> str:
    """Collect outcomes as futures finish; returns how the round ended.

    ``"ok"`` — every future resolved; ``"broken"`` — a worker died
    (results collected up to that point are kept); ``"stalled"`` — no
    future completed within the grace window (only possible with a
    timeout set), meaning a worker is wedged beyond what the in-worker
    alarm can interrupt.
    """
    grace = None if timeout is None else timeout * 2.0 + 1.0
    not_done = set(futures)
    broken = False
    while not_done:
        done, not_done = wait(not_done, timeout=grace, return_when=FIRST_COMPLETED)
        if not done:
            return "stalled"
        for future in done:
            try:
                record(future.result())
            except BrokenProcessPool:
                broken = True
        if broken:
            return "broken"
    return "ok"


def _dispatch_round(
    dataset,
    ids: list[str],
    jobs: int,
    timeout: float | None,
    attempts: Mapping[str, int],
    record: Callable[[ExperimentOutcome], None],
    trace: bool = False,
) -> None:
    """Submit ``ids`` to one fresh pool and drain it.

    A broken or stalled pool ends the round early with its workers
    killed; whatever completed first is already recorded.
    """
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(ids)),
            initializer=_init_worker,
            initargs=(dataset,),
        ) as pool:
            futures = [
                pool.submit(_run_one, eid, None, timeout, attempts[eid], trace)
                for eid in ids
            ]
            try:
                ended = _drain(futures, timeout, record)
            except KeyboardInterrupt:
                # Don't let pool.__exit__ wait on running workers;
                # in-flight experiments are simply re-run on resume.
                _kill_pool_workers(pool)
                raise
            if ended == "stalled":
                _kill_pool_workers(pool)
    except BrokenProcessPool:
        pass


class _NullWriter:
    """A write-only sink: lets ``pickle.dump`` run without buffering the
    stream, so probing picklability costs no memory."""

    def write(self, data) -> int:
        return len(data)


def _can_pickle(obj) -> bool:
    """Whether ``obj`` can cross the process boundary.

    Objects exposing ``pickle_probe()`` (:class:`MiraDataset` does) are
    probed through that cheap surrogate instead of being serialized
    whole — the probe carries every pickling hazard (spec, reports,
    column dtypes, table descriptors) at O(columns) cost, which matters
    because this check runs on the failure path where the full dataset
    may be gigabytes.  Either way the stream goes to a null sink, never
    into a bytes object.
    """
    import pickle

    probe = getattr(obj, "pickle_probe", None)
    try:
        pickle.dump(probe() if callable(probe) else obj, _NullWriter())
    except Exception:  # noqa: BLE001 - any failure means "cannot cross"
        return False
    return True


def _run_supervised(
    dataset,
    pending: list[str],
    *,
    jobs: int,
    timeout: float | None,
    retries: int,
    backoff: float,
    record: Callable[[ExperimentOutcome], None],
    recorded: Callable[[str], bool],
    trace: bool = False,
) -> None:
    """Dispatch ``pending`` across pools until done or retries exhaust.

    Each round submits every still-unfinished experiment to a fresh
    pool.  A broken or stalled round loses only the experiments without
    a recorded outcome; those are re-dispatched (up to ``1 + retries``
    total attempts each, sleeping ``backoff * 2**(round-1)`` between
    rounds) while completed outcomes are kept.  Retry rounds run each
    survivor in its *own* single-worker pool so a poison experiment
    that keeps killing its process cannot take other experiments'
    in-flight work down with it again.  An experiment whose every
    attempt died is recorded as an ``error`` outcome, and a pool that
    breaks because the dataset cannot cross the process boundary at
    all (nothing ever completed *and* the dataset does not pickle)
    falls back to the in-process sequential path.
    """
    attempts = dict.fromkeys(pending, 0)
    ever_recorded = False
    isolate = False
    round_index = 0
    while pending:
        round_index += 1
        for experiment_id in pending:
            attempts[experiment_id] += 1
        if isolate:
            for experiment_id in pending:
                _dispatch_round(
                    dataset, [experiment_id], 1, timeout, attempts, record,
                    trace,
                )
        else:
            _dispatch_round(
                dataset, pending, jobs, timeout, attempts, record, trace
            )
        survivors = [eid for eid in pending if not recorded(eid)]
        if not survivors:
            return
        # Survivors mean a worker died or stalled mid-round: from here
        # on, never let one experiment's process share a pool with
        # another's retry.
        isolate = True
        ever_recorded = ever_recorded or len(survivors) < len(pending)
        if not ever_recorded and not _can_pickle(dataset):
            # Nothing has ever come back from a worker and the dataset
            # cannot cross the process boundary: the pool itself is
            # unusable.  Run the remainder in-process.
            for experiment_id in survivors:
                record(
                    _run_one(
                        experiment_id, dataset, timeout,
                        attempts[experiment_id], trace,
                    )
                )
            return
        still_pending = []
        for experiment_id in survivors:
            if attempts[experiment_id] >= 1 + retries:
                record(
                    ExperimentOutcome(
                        experiment_id=experiment_id,
                        status="error",
                        result=None,
                        message=(
                            "worker lost (process died or hung) after "
                            f"{attempts[experiment_id]} attempt(s)"
                        ),
                        seconds=0.0,
                        max_rss_kb=0,
                        attempt=attempts[experiment_id],
                    )
                )
            else:
                still_pending.append(experiment_id)
        pending = still_pending
        if pending:
            time.sleep(backoff * 2 ** (round_index - 1))


def run_suite(
    dataset,
    experiment_ids: list[str] | None = None,
    *,
    jobs: int | None = None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.5,
    completed: Mapping[str, ExperimentOutcome] | None = None,
    on_outcome: Callable[[ExperimentOutcome], None] | None = None,
    trace: bool = False,
) -> SuiteResult:
    """Run experiments (default: all registered) against ``dataset``.

    ``jobs`` caps worker processes (default ``os.cpu_count()``); 1 runs
    everything in-process.  The worker count never exceeds the number
    of experiments.  ``timeout`` bounds each experiment's wall time
    (``None`` = unlimited); ``retries``/``backoff`` govern re-dispatch
    after worker deaths (see :func:`_run_supervised`).  ``completed``
    supplies already-journaled outcomes to replay instead of re-running
    (the ``--resume`` path), and ``on_outcome`` is invoked once per
    *freshly computed* outcome, in completion order, so a journal can
    be flushed as the suite progresses.  ``trace`` asks workers to
    record per-experiment spans; the supervisor merges shipped spans
    into its active :mod:`repro.obs` recorder as outcomes arrive (a
    no-op when the obs package is unavailable or no recorder is
    installed).

    Raises
    ------
    ValueError
        On ``jobs < 1``, ``retries < 0``, or duplicate experiment IDs.
    """
    from repro.experiments import all_experiments

    ids = (
        list(experiment_ids)
        if experiment_ids is not None
        else list(all_experiments())
    )
    duplicates = sorted(eid for eid, n in Counter(ids).items() if n > 1)
    if duplicates:
        raise ValueError(f"duplicate experiment id(s): {duplicates}")
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    jobs = min(jobs, max(len(ids), 1))

    done: dict[str, ExperimentOutcome] = {}
    if completed:
        for experiment_id in ids:
            if experiment_id in completed:
                done[experiment_id] = completed[experiment_id]

    def record(outcome: ExperimentOutcome) -> None:
        if outcome.experiment_id in done:
            return
        done[outcome.experiment_id] = outcome
        if outcome.spans and _obs is not None:
            recorder = _obs.active()
            if recorder is not None:
                recorder.absorb(outcome.spans)
        if on_outcome is not None:
            on_outcome(outcome)

    pending = [eid for eid in ids if eid not in done]
    started = time.perf_counter()
    interrupted = False
    try:
        if jobs == 1:
            for experiment_id in pending:
                record(_run_one(experiment_id, dataset, timeout, trace=trace))
        elif pending:
            _run_supervised(
                dataset,
                pending,
                jobs=jobs,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                record=record,
                recorded=done.__contains__,
                trace=trace,
            )
    except KeyboardInterrupt:
        interrupted = True
    return SuiteResult(
        outcomes=tuple(done[eid] for eid in ids if eid in done),
        jobs=jobs,
        total_seconds=time.perf_counter() - started,
        interrupted=interrupted,
    )


def timing_lines(suite: SuiteResult) -> list[str]:
    """Human-readable per-experiment timing block for the report."""
    lines = [
        f"suite: {len(suite.outcomes)} experiments in "
        f"{suite.total_seconds:.3f}s with {suite.jobs} job(s)"
    ]
    for outcome in suite.outcomes:
        # A process-scoped peak is the whole supervisor's high-water
        # mark, not this experiment's own footprint — label it so the
        # numbers are not misread as per-experiment attribution.
        scope = "" if outcome.rss_scope == "worker" else " (process-wide)"
        lines.append(
            f"{outcome.experiment_id}: {outcome.seconds:.3f}s  "
            f"peak-rss {outcome.max_rss_kb / 1024:.1f} MiB{scope}  "
            f"[{outcome.status}]"
        )
    return lines


def profile_lines(
    dataset,
    experiment_ids: list[str] | None = None,
    top: int = 20,
) -> list[str]:
    """Per-experiment cProfile hotspots, top-``top`` by cumulative time.

    Runs each experiment in-process under ``cProfile`` (profiling and
    worker pools don't mix) and returns a readable block per experiment
    — the starting point for the next round of kernel optimization.
    Expected data-starvation errors are reported, not raised, mirroring
    :func:`run_suite`'s isolation.
    """
    import cProfile
    import io
    import pstats

    from repro.experiments import all_experiments, run_experiment

    ids = (
        list(experiment_ids)
        if experiment_ids is not None
        else list(all_experiments())
    )
    lines: list[str] = []
    for experiment_id in ids:
        profiler = cProfile.Profile()
        status = "ok"
        profiler.enable()
        try:
            run_experiment(experiment_id, dataset)
        except (ReproError, ValueError) as error:
            status = f"skipped: {error}"
        except Exception as error:  # noqa: BLE001 - keep profiling the rest
            status = f"error: {error!r}"
        finally:
            profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats("cumulative").print_stats(top)
        lines.append(f"--- {experiment_id} [{status}] ---")
        # Drop the pstats preamble; keep the header row and entries.
        body = stream.getvalue().splitlines()
        keep = [
            line
            for line in body
            if line.strip()
            and not line.lstrip().startswith(("Ordered by", "List reduced"))
            and "function calls" not in line
        ]
        lines.extend(keep)
        lines.append("")
    return lines


def bench_record(
    suite: SuiteResult,
    dataset=None,
    stages: dict | None = None,
) -> dict:
    """Assemble the ``BENCH_pipeline.json`` record for one suite run.

    ``stages`` carries pipeline-level timings (cold/warm load, ingest
    rates) measured by the caller; the per-experiment section comes
    from the suite itself.
    """
    from repro import __version__

    record: dict = {
        "schema": 1,
        "toolkit_version": __version__,
        "suite": {
            "jobs": suite.jobs,
            "total_seconds": round(suite.total_seconds, 6),
            "n_experiments": len(suite.outcomes),
        },
        "experiments": [
            {
                "id": outcome.experiment_id,
                "status": outcome.status,
                "seconds": round(outcome.seconds, 6),
                "max_rss_kb": outcome.max_rss_kb,
                "rss_scope": outcome.rss_scope,
            }
            for outcome in suite.outcomes
        ],
    }
    if dataset is not None:
        record["dataset"] = {
            "n_days": dataset.n_days,
            "seed": dataset.seed,
            "n_jobs": dataset.jobs.n_rows,
            "n_ras_events": dataset.ras.n_rows,
            "n_tasks": dataset.tasks.n_rows,
            "n_io_profiles": dataset.io.n_rows,
        }
    if stages:
        record["stages"] = stages
    return record


def write_bench_json(path: str | Path, record: dict) -> Path:
    """Write a bench record as pretty-printed JSON, atomically."""
    return atomic_write_text(
        path, json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
