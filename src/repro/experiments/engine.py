"""Parallel experiment engine.

Runs a set of independent experiments against one dataset, optionally
across a :class:`~concurrent.futures.ProcessPoolExecutor`, while
preserving two invariants the report renderer depends on:

- **Deterministic ordering** — outcomes come back in the exact order
  the experiment IDs were requested, regardless of which worker
  finished first.
- **Failure isolation** — one crashing experiment becomes a recorded
  outcome (``skipped`` for expected data-starvation errors, ``error``
  for everything else), never an aborted suite.  A worker process dying
  outright degrades the whole suite to an in-process sequential rerun
  rather than losing results.

Every outcome carries wall-time and peak-RSS measurements, and
:func:`write_bench_json` serializes a suite into the machine-readable
``BENCH_pipeline.json`` perf-trajectory format the benchmark harness
and CI consume.
"""

from __future__ import annotations

import json
import os
import resource
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError

from .base import ExperimentResult

__all__ = [
    "ExperimentOutcome",
    "SuiteResult",
    "run_suite",
    "profile_lines",
    "bench_record",
    "write_bench_json",
]


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's fate: its result or why it has none.

    ``status`` is ``"ok"`` (``result`` is set), ``"skipped"`` (an
    expected :class:`~repro.errors.ReproError`/:class:`ValueError`,
    e.g. a small trace starving an analysis; ``message`` is ``str(error)``)
    or ``"error"`` (an isolated crash; ``message`` is ``repr(error)``).
    ``max_rss_kb`` is the running process's peak resident set in KiB as
    reported by ``getrusage`` — per-worker under a process pool, shared
    and monotonic when the suite runs in-process.
    """

    experiment_id: str
    status: str
    result: ExperimentResult | None
    message: str
    seconds: float
    max_rss_kb: int


@dataclass(frozen=True)
class SuiteResult:
    """All outcomes of one suite run, in requested order."""

    outcomes: tuple[ExperimentOutcome, ...]
    jobs: int
    total_seconds: float

    def outcome(self, experiment_id: str) -> ExperimentOutcome:
        for outcome in self.outcomes:
            if outcome.experiment_id == experiment_id:
                return outcome
        raise KeyError(f"no outcome for {experiment_id!r}")


# Dataset shared with pool workers via the initializer, so it is pickled
# once per worker instead of once per submitted experiment.
_WORKER_DATASET = None


def _init_worker(dataset) -> None:
    global _WORKER_DATASET
    _WORKER_DATASET = dataset


def _run_one(experiment_id: str, dataset=None) -> ExperimentOutcome:
    """Run one experiment with isolation, timing, and RSS accounting."""
    from repro.experiments import run_experiment

    if dataset is None:
        dataset = _WORKER_DATASET
    started = time.perf_counter()
    try:
        result = run_experiment(experiment_id, dataset)
        status, message = "ok", ""
    except (ReproError, ValueError) as error:
        # Small traces legitimately starve some experiments (too few
        # failures per family, too few interruption intervals, ...).
        result, status, message = None, "skipped", str(error)
    except Exception as error:  # noqa: BLE001 - isolate experiment crashes
        result, status, message = None, "error", repr(error)
    return ExperimentOutcome(
        experiment_id=experiment_id,
        status=status,
        result=result,
        message=message,
        seconds=time.perf_counter() - started,
        max_rss_kb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    )


def run_suite(
    dataset,
    experiment_ids: list[str] | None = None,
    *,
    jobs: int | None = None,
) -> SuiteResult:
    """Run experiments (default: all registered) against ``dataset``.

    ``jobs`` caps worker processes (default ``os.cpu_count()``); 1 runs
    everything in-process.  The worker count never exceeds the number
    of experiments, and a broken pool (worker killed, unpicklable
    dataset) falls back to the sequential path so the suite still
    completes with identical outcomes.
    """
    from repro.experiments import all_experiments

    ids = (
        list(experiment_ids)
        if experiment_ids is not None
        else list(all_experiments())
    )
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, max(len(ids), 1))
    started = time.perf_counter()
    if jobs == 1:
        outcomes = [_run_one(experiment_id, dataset) for experiment_id in ids]
    else:
        try:
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_worker,
                initargs=(dataset,),
            ) as pool:
                futures = {eid: pool.submit(_run_one, eid) for eid in ids}
                outcomes = [futures[eid].result() for eid in ids]
        except BrokenProcessPool:
            outcomes = [_run_one(experiment_id, dataset) for experiment_id in ids]
    return SuiteResult(
        outcomes=tuple(outcomes),
        jobs=jobs,
        total_seconds=time.perf_counter() - started,
    )


def timing_lines(suite: SuiteResult) -> list[str]:
    """Human-readable per-experiment timing block for the report."""
    lines = [
        f"suite: {len(suite.outcomes)} experiments in "
        f"{suite.total_seconds:.3f}s with {suite.jobs} job(s)"
    ]
    for outcome in suite.outcomes:
        lines.append(
            f"{outcome.experiment_id}: {outcome.seconds:.3f}s  "
            f"peak-rss {outcome.max_rss_kb / 1024:.1f} MiB  [{outcome.status}]"
        )
    return lines


def profile_lines(
    dataset,
    experiment_ids: list[str] | None = None,
    top: int = 20,
) -> list[str]:
    """Per-experiment cProfile hotspots, top-``top`` by cumulative time.

    Runs each experiment in-process under ``cProfile`` (profiling and
    worker pools don't mix) and returns a readable block per experiment
    — the starting point for the next round of kernel optimization.
    Expected data-starvation errors are reported, not raised, mirroring
    :func:`run_suite`'s isolation.
    """
    import cProfile
    import io
    import pstats

    from repro.experiments import all_experiments, run_experiment

    ids = (
        list(experiment_ids)
        if experiment_ids is not None
        else list(all_experiments())
    )
    lines: list[str] = []
    for experiment_id in ids:
        profiler = cProfile.Profile()
        status = "ok"
        profiler.enable()
        try:
            run_experiment(experiment_id, dataset)
        except (ReproError, ValueError) as error:
            status = f"skipped: {error}"
        except Exception as error:  # noqa: BLE001 - keep profiling the rest
            status = f"error: {error!r}"
        finally:
            profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats("cumulative").print_stats(top)
        lines.append(f"--- {experiment_id} [{status}] ---")
        # Drop the pstats preamble; keep the header row and entries.
        body = stream.getvalue().splitlines()
        keep = [
            line
            for line in body
            if line.strip()
            and not line.lstrip().startswith(("Ordered by", "List reduced"))
            and "function calls" not in line
        ]
        lines.extend(keep)
        lines.append("")
    return lines


def bench_record(
    suite: SuiteResult,
    dataset=None,
    stages: dict | None = None,
) -> dict:
    """Assemble the ``BENCH_pipeline.json`` record for one suite run.

    ``stages`` carries pipeline-level timings (cold/warm load, ingest
    rates) measured by the caller; the per-experiment section comes
    from the suite itself.
    """
    from repro import __version__

    record: dict = {
        "schema": 1,
        "toolkit_version": __version__,
        "suite": {
            "jobs": suite.jobs,
            "total_seconds": round(suite.total_seconds, 6),
            "n_experiments": len(suite.outcomes),
        },
        "experiments": [
            {
                "id": outcome.experiment_id,
                "status": outcome.status,
                "seconds": round(outcome.seconds, 6),
                "max_rss_kb": outcome.max_rss_kb,
            }
            for outcome in suite.outcomes
        ],
    }
    if dataset is not None:
        record["dataset"] = {
            "n_days": dataset.n_days,
            "seed": dataset.seed,
            "n_jobs": dataset.jobs.n_rows,
            "n_ras_events": dataset.ras.n_rows,
            "n_tasks": dataset.tasks.n_rows,
            "n_io_profiles": dataset.io.n_rows,
        }
    if stages:
        record["stages"] = stages
    return record


def write_bench_json(path: str | Path, record: dict) -> Path:
    """Write a bench record as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
