"""Experiment framework: uniform result type and registry.

Each experiment module exposes ``run(dataset, **params) ->
ExperimentResult``; the registry maps experiment IDs (``e01`` ...
``e16``) to those functions so the CLI and the benchmark harness can
drive them generically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.table import Table

__all__ = [
    "ExperimentResult",
    "register",
    "get_experiment",
    "experiment_entry",
    "all_experiments",
]


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment run.

    ``tables`` holds the data series a figure would plot (or a table's
    rows); ``metrics`` holds headline scalars; ``notes`` carries the
    comparison against the paper's claim.
    """

    experiment_id: str
    title: str
    tables: Mapping[str, Table]
    metrics: Mapping[str, float]
    notes: str = ""
    #: True when a required data source was missing/empty and the
    #: experiment returned an explanatory stub instead of running.
    degraded: bool = False

    def to_text(self, max_rows: int = 25) -> str:
        """Render the result for terminal output."""
        marker = " [DEGRADED]" if self.degraded else ""
        lines = [f"== {self.experiment_id.upper()}: {self.title} =={marker}"]
        if self.notes:
            lines.append(self.notes)
        if self.metrics:
            lines.append("-- metrics --")
            for key, value in self.metrics.items():
                if isinstance(value, float):
                    lines.append(f"  {key}: {value:.6g}")
                else:
                    lines.append(f"  {key}: {value}")
        for name, table in self.tables.items():
            lines.append(f"-- {name} ({table.n_rows} rows) --")
            lines.append(table.to_text(max_rows=max_rows))
        return "\n".join(lines)


_REGISTRY: dict[str, tuple[str, Callable, tuple[str, ...]]] = {}


def register(experiment_id: str, title: str, requires: tuple[str, ...] = ()):
    """Decorator registering an experiment ``run`` function.

    ``requires`` names the dataset sources (``"ras"``, ``"tasks"``,
    ``"io"``) the experiment cannot run without; when one is empty the
    runner returns a degraded stub result instead of calling ``func``.
    The job log is implicit — every experiment needs it.
    """

    def decorator(func: Callable):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id}")
        _REGISTRY[experiment_id] = (title, func, tuple(requires))
        return func

    return decorator


def experiment_entry(experiment_id: str) -> tuple[str, Callable, tuple[str, ...]]:
    """Look up an experiment's (title, run function, required sources)."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def get_experiment(experiment_id: str) -> Callable:
    """Look up an experiment's run function by ID."""
    return experiment_entry(experiment_id)[1]


def all_experiments() -> dict[str, str]:
    """Mapping of experiment ID to title."""
    return {eid: title for eid, (title, _, _) in sorted(_REGISTRY.items())}
