"""E17 (extension) — machine-life phases over the observation span.

The paper's title frames the study as the machine's 2K-day *life*;
this extension experiment reports the per-epoch failure-rate series,
its trend, and detected regime changepoints.  The synthetic workload is
stationary by construction, so the expected outcome on default data is
"no spurious changepoints" — injected regime shifts are exercised in
the test suite.
"""

from __future__ import annotations

from repro.core.lifetime import (
    epoch_summary,
    failure_rate_changepoints,
    failure_rate_trend,
)
from repro.dataset import MiraDataset
from repro.table import Table

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e17", "Machine-life phases: epoch trends and changepoints")
def run(dataset: MiraDataset, epoch_days: float = 90.0) -> ExperimentResult:
    """Epoch series, trend, and changepoints of the failure rate."""
    # Short traces get proportionally shorter epochs so a trend (>= 6
    # epochs) is always computable.
    epoch_days = max(1.0, min(epoch_days, dataset.n_days / 6.0))
    epochs = epoch_summary(dataset, epoch_days=epoch_days)
    trend = failure_rate_trend(dataset, epoch_days=epoch_days)
    changepoints = failure_rate_changepoints(dataset)
    cp_table = Table(
        {
            "index": [c.index for c in changepoints],
            "statistic": [c.statistic for c in changepoints],
            "mean_before": [c.mean_before for c in changepoints],
            "mean_after": [c.mean_after for c in changepoints],
        }
    )
    return ExperimentResult(
        experiment_id="e17",
        title="Machine-life phases",
        tables={"epochs": epochs, "changepoints": cp_table},
        metrics={
            "trend_spearman": trend["spearman"],
            "first_epoch_rate": trend["first_epoch_rate"],
            "last_epoch_rate": trend["last_epoch_rate"],
            "n_changepoints": len(changepoints),
        },
        notes=(
            "Extension: epoch-level reliability over the machine's life. "
            "The stationary synthetic trace should show no regime shifts."
        ),
    )
