"""E08 — Job execution structure (tasks per job) versus failures.

Paper reference (abstract): failures correlate with "job execution
structure (number of tasks, scale, and core-hours)".  The experiment
bins jobs by intended task count, contrasts single- vs multi-task
failure rates, and locates the failing task within ensembles.
"""

from __future__ import annotations

from repro.core import failing_task_position, failure_rate_by_task_count
from repro.core.characterize import walltime_accuracy
from repro.dataset import MiraDataset

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e08", "Job execution structure: tasks per job vs failure", requires=('tasks',))
def run(dataset: MiraDataset) -> ExperimentResult:
    """Failure rate per task-count bin plus failing-task positions."""
    bins, ratio = failure_rate_by_task_count(dataset.jobs)
    positions = failing_task_position(dataset.tasks)
    return ExperimentResult(
        experiment_id="e08",
        title="Execution structure vs failure",
        tables={
            "task_bins": bins,
            "failing_position": positions,
            "walltime_accuracy": walltime_accuracy(dataset.jobs),
        },
        metrics={
            "multi_over_single_rate": ratio,
            "n_bins": bins.n_rows,
        },
        notes=(
            "Paper: failure rate depends on the number of tasks a job "
            "launches; ensembles abort part-way through."
        ),
    )
