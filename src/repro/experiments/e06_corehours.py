"""E06 — Failure rate versus core-hours.

Paper reference (abstract): job failures are correlated with
core-hours.  Binning uses the *requested* core-hours (allocated nodes x
cores x requested walltime): the job's magnitude as submitted.  Binning
by charged core-hours would be confounded — failed jobs end early, so
their charged core-hours are mechanically lower, reversing the sign.
"""

from __future__ import annotations

from repro.core import failure_rate_by_bins
from repro.core.characterize import wasted_core_hours_by_family
from repro.dataset import MiraDataset
from repro.stats import spearman

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e06", "Failure rate vs core-hours")
def run(dataset: MiraDataset, n_bins: int = 8) -> ExperimentResult:
    """Failure rate per requested-core-hour bin and wasted share."""
    jobs = dataset.jobs
    requested_ch = (
        jobs["allocated_nodes"]
        * dataset.spec.cores_per_node
        * jobs["requested_walltime"]
        / 3600.0
    )
    jobs = jobs.with_column("requested_core_hours", requested_ch)
    bins = failure_rate_by_bins(jobs, "requested_core_hours", n_bins=n_bins)
    failed_mask = jobs["exit_status"] != 0
    wasted = float(jobs.filter(failed_mask)["core_hours"].sum())
    total = float(jobs["core_hours"].sum())
    correlation = spearman(requested_ch, failed_mask.astype(float))
    waste = wasted_core_hours_by_family(jobs)
    return ExperimentResult(
        experiment_id="e06",
        title="Failure rate vs core-hours",
        tables={"by_corehours": bins, "waste_by_family": waste},
        metrics={
            "spearman_corehours_vs_failure": correlation,
            "wasted_core_hours_billions": wasted / 1e9,
            "wasted_share": wasted / total if total else float("nan"),
        },
        notes=(
            "Paper: failures correlate with core-hours; failed capability "
            "jobs waste disproportionate machine time."
        ),
    )
