"""E07 — Failures by user and project.

Paper reference (abstract): "job failures are correlated with multiple
metrics and attributes, such as users/projects".  The experiment
reports the top failing users/projects and concentration metrics
(Gini, top-percentile shares) showing a few users own most failures.
"""

from __future__ import annotations

from repro.core import failure_concentration, top_failing
from repro.dataset import MiraDataset

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e07", "Failures by user and project (concentration)")
def run(dataset: MiraDataset, top_k: int = 10) -> ExperimentResult:
    """Top failing users/projects plus concentration metrics."""
    jobs = dataset.jobs
    users = top_failing(jobs, "user", k=top_k)
    projects = top_failing(jobs, "project", k=top_k)
    user_conc = failure_concentration(jobs, "user")
    project_conc = failure_concentration(jobs, "project")
    return ExperimentResult(
        experiment_id="e07",
        title="Failures by user/project",
        tables={"top_users": users, "top_projects": projects},
        metrics={
            "user_gini": user_conc["gini"],
            "user_top10pct_share": user_conc["top10pct_share"],
            "project_gini": project_conc["gini"],
            "project_top10pct_share": project_conc["top10pct_share"],
            "top10_users_failure_share": float(users["failure_share"].sum()),
        },
        notes=(
            "Paper: failures concentrate on few users/projects. Gini and "
            "top-decile shares quantify the concentration."
        ),
    )
