"""E20 (extension) — user behavioral dynamics behind the failures.

With 99.4 % of failures attributed to user behaviour, the natural
follow-up is how that behaviour unfolds: are failures bursty
(debug-resubmit cycles and persistent high-failure users), and do users
improve with experience?  On synthetic data the repetition factor
measures pure user heterogeneity (the workload has no within-user
autocorrelation); on a real trace the same code additionally captures
genuine resubmit streaks.
"""

from __future__ import annotations

from repro.core.userstudy import failure_repetition, failure_streaks, learning_curve
from repro.dataset import MiraDataset

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e20", "User behaviour: failure repetition and learning")
def run(dataset: MiraDataset) -> ExperimentResult:
    """Repetition factor, streak distribution, and learning curve."""
    repetition = failure_repetition(dataset.jobs)
    streaks = failure_streaks(dataset.jobs)
    curve = learning_curve(dataset.jobs)
    populated = curve.filter(curve["n_jobs"] > 0)
    learning_delta = (
        float(populated["failure_rate"][-1] - populated["failure_rate"][0])
        if populated.n_rows >= 2
        else float("nan")
    )
    return ExperimentResult(
        experiment_id="e20",
        title="User failure dynamics",
        tables={"streaks": streaks, "learning_curve": curve},
        metrics={
            "p_fail_after_fail": repetition["p_fail_after_fail"],
            "p_fail_after_success": repetition["p_fail_after_success"],
            "repetition_factor": repetition["repetition_factor"],
            "learning_delta": learning_delta,
        },
        notes=(
            "A repetition factor >> 1 means failures cluster on a job's "
            "predecessor failing — user heterogeneity plus (on real data) "
            "debug-resubmit cycles. learning_delta < 0 would mean users "
            "improve with experience."
        ),
    )
