"""E02 — Exit-status breakdown of all jobs.

Paper reference (abstract): "99,245 job failures are reported in the
job-scheduling log".  This experiment regenerates the exit-status
figure: counts per raw status, per family, and the overall failure
rate.
"""

from __future__ import annotations

from repro.core import family_breakdown
from repro.dataset import MiraDataset

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e02", "Exit-status breakdown (counts per status and family)")
def run(dataset: MiraDataset, top_k: int = 15) -> ExperimentResult:
    """Count jobs per exit status and per exit family."""
    jobs = dataset.jobs
    per_status = jobs.value_counts("exit_status").head(top_k)
    per_family = family_breakdown(jobs)
    n_failed = int((jobs["exit_status"] != 0).sum())
    return ExperimentResult(
        experiment_id="e02",
        title="Exit-status breakdown",
        tables={"per_status": per_status, "per_family": per_family},
        metrics={
            "n_jobs": jobs.n_rows,
            "n_failed": n_failed,
            "failure_rate": n_failed / jobs.n_rows if jobs.n_rows else float("nan"),
        },
        notes=(
            "Paper: 99,245 failures in the scheduling log. The family table "
            "maps raw statuses onto the paper's error types."
        ),
    )
