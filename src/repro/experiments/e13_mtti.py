"""E13 — Mean time to interruption after similarity filtering.

Paper reference (abstract): "In terms of the failed jobs, our
similarity-based event-filtering analysis indicates that the mean time
to interruption is about 3.5 days."  The experiment computes both the
system MTTI (all filtered clusters) and the job-interruption MTTI
(clusters that hit a running job), with a sensitivity sweep over the
similarity threshold.
"""

from __future__ import annotations

import numpy as np

from repro.core import default_pipeline, job_interruption_mtti, mtti_from_clusters
from repro.dataset import MiraDataset
from repro.stats import bootstrap_ci
from repro.table import Table

from .base import ExperimentResult, register

__all__ = ["run"]

PAPER_MTTI_DAYS = 3.5


@register("e13", "MTTI after similarity filtering (+threshold sweep)", requires=('ras',))
def run(
    dataset: MiraDataset,
    thresholds: tuple[float, ...] = (0.3, 0.5, 0.7, 0.9),
) -> ExperimentResult:
    """MTTI at the default operating point plus a threshold sweep."""
    fatal = dataset.fatal_events()
    rows = {
        "threshold": [], "clusters": [], "system_mtti_days": [],
        "job_interruptions": [], "job_mtti_days": [],
    }
    default_job_mtti = float("nan")
    ci_low = ci_high = float("nan")
    for threshold in thresholds:
        outcome = default_pipeline(
            similarity_threshold=threshold, spec=dataset.spec
        ).run(fatal)
        system = mtti_from_clusters(outcome.clusters, dataset.n_days)
        jobwise = job_interruption_mtti(
            outcome.clusters, dataset.jobs, dataset.n_days, dataset.spec
        )
        rows["threshold"].append(threshold)
        rows["clusters"].append(system.n_interruptions)
        rows["system_mtti_days"].append(system.mtti_days)
        rows["job_interruptions"].append(jobwise.n_interruptions)
        rows["job_mtti_days"].append(jobwise.mtti_days)
        if threshold == 0.5:
            default_job_mtti = jobwise.mtti_days
            gaps = jobwise.inter_arrival_days()
            if gaps.size >= 2:
                ci = bootstrap_ci(gaps, np.mean, seed=0)
                ci_low, ci_high = ci.low, ci.high
    sweep = Table(rows)
    return ExperimentResult(
        experiment_id="e13",
        title="MTTI after filtering",
        tables={"threshold_sweep": sweep},
        metrics={
            "job_mtti_days_at_default": default_job_mtti,
            "job_mtti_ci_low": ci_low,
            "job_mtti_ci_high": ci_high,
            "paper_mtti_days": PAPER_MTTI_DAYS,
        },
        notes=(
            f"Paper: job-interruption MTTI ~{PAPER_MTTI_DAYS} days. The sweep "
            "shows the operating-point plateau of the similarity threshold."
        ),
    )
