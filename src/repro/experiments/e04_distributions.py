"""E04 — Best-fitting distributions of failed-job execution length.

Paper reference (abstract): "The best-fitting distributions of a failed
job's execution length ... include Weibull, Pareto, inverse Gaussian,
and Erlang/exponential, depending on the types of errors (i.e., exit
codes)."  Per exit family, the experiment fits every candidate and
reports the KS and BIC winners; the paper-expected family per exit code
is checked against the BIC winner (BIC is parsimony-aware and
distinguishes exponential from shape≈1 Weibull).
"""

from __future__ import annotations

import numpy as np

from repro.core import ExitFamily, classify_column
from repro.core.fitting import fit_all
from repro.dataset import MiraDataset
from repro.errors import FitError
from repro.table import Table

from .base import ExperimentResult, register

__all__ = ["run", "PAPER_EXPECTED_FAMILY"]

PAPER_EXPECTED_FAMILY = {
    ExitFamily.SEGFAULT.value: "weibull",
    ExitFamily.ABORT.value: "pareto",
    ExitFamily.APP_ERROR.value: "invgauss",
    ExitFamily.CONFIG.value: ("erlang", "exponential"),
}
"""The paper's per-error-type best-fit families."""


@register("e04", "Best-fit execution-length distribution per exit family")
def run(dataset: MiraDataset, min_sample: int = 50) -> ExperimentResult:
    """Fit candidates per exit family and score against the paper."""
    jobs = dataset.jobs
    failed = jobs.filter(jobs["exit_status"] != 0)
    runtime = failed["end_time"] - failed["start_time"]
    families = classify_column(failed["exit_status"])
    annotated = failed.with_column("runtime", runtime).with_column("family", families)

    rows = {
        "family": [], "n": [], "ks_winner": [], "ks_statistic": [],
        "bic_winner": [], "paper_expected": [], "matches_paper": [],
    }
    matches = 0
    checked = 0
    for family_value, expected in PAPER_EXPECTED_FAMILY.items():
        sub = annotated.filter(annotated["family"] == family_value)
        if sub.n_rows < min_sample:
            continue
        sample = np.asarray(sub["runtime"], dtype=np.float64)
        sample = sample[sample > 0]
        try:
            reports = fit_all(sample)
        except FitError:
            continue
        ks_winner = reports[0]
        bic_winner = min(reports, key=lambda r: r.bic)
        expected_set = (expected,) if isinstance(expected, str) else expected
        hit = bic_winner.model_name in expected_set
        checked += 1
        matches += hit
        rows["family"].append(family_value)
        rows["n"].append(sub.n_rows)
        rows["ks_winner"].append(ks_winner.model_name)
        rows["ks_statistic"].append(ks_winner.ks_statistic)
        rows["bic_winner"].append(bic_winner.model_name)
        rows["paper_expected"].append("/".join(expected_set))
        rows["matches_paper"].append(int(hit))
    return ExperimentResult(
        experiment_id="e04",
        title="Best-fit distributions per exit family",
        tables={"fits": Table(rows)},
        metrics={
            "families_checked": checked,
            "families_matching_paper": matches,
            "match_rate": matches / checked if checked else float("nan"),
        },
        notes=(
            "Paper: Weibull (segfault), Pareto (abort), inverse Gaussian "
            "(app error), Erlang/exponential (config) best-fit the failed "
            "execution lengths. Matching is scored on the BIC winner."
        ),
    )
