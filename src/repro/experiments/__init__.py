"""Experiment suite: one module per reconstructed paper table/figure.

Importing this package registers all experiments; run one with::

    from repro.experiments import run_experiment
    result = run_experiment("e13", dataset)
"""

from . import (  # noqa: F401  (import for registration side effect)
    e01_overview,
    e02_exit_status,
    e03_attribution,
    e04_distributions,
    e05_scale,
    e06_corehours,
    e07_users,
    e08_structure,
    e09_ras_breakdown,
    e10_temporal,
    e11_locality,
    e12_filtering,
    e13_mtti,
    e14_ras_correlation,
    e15_io,
    e16_takeaways,
    e17_lifetime,
    e18_prediction,
    e19_intervals,
    e20_user_behavior,
    e21_precursors,
)
from .base import ExperimentResult, all_experiments, get_experiment
from .export import export_all, export_result, result_to_markdown

__all__ = [
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "run_experiment",
    "result_to_markdown",
    "export_result",
    "export_all",
]


def run_experiment(experiment_id: str, dataset, **params) -> ExperimentResult:
    """Run one experiment by ID against a dataset."""
    return get_experiment(experiment_id)(dataset, **params)
