"""Experiment suite: one module per reconstructed paper table/figure.

Importing this package registers all experiments; run one with::

    from repro.experiments import run_experiment
    result = run_experiment("e13", dataset)
"""

from . import (  # noqa: F401  (import for registration side effect)
    e01_overview,
    e02_exit_status,
    e03_attribution,
    e04_distributions,
    e05_scale,
    e06_corehours,
    e07_users,
    e08_structure,
    e09_ras_breakdown,
    e10_temporal,
    e11_locality,
    e12_filtering,
    e13_mtti,
    e14_ras_correlation,
    e15_io,
    e16_takeaways,
    e17_lifetime,
    e18_prediction,
    e19_intervals,
    e20_user_behavior,
    e21_precursors,
    e22_cross_system,
)
from .base import ExperimentResult, all_experiments, experiment_entry, get_experiment
from .engine import ExperimentOutcome, SuiteResult, run_suite, write_bench_json
from .export import export_all, export_result, result_to_markdown
from .journal import RunJournal, RunState, default_runs_dir, new_run_id

__all__ = [
    "ExperimentResult",
    "ExperimentOutcome",
    "SuiteResult",
    "RunJournal",
    "RunState",
    "all_experiments",
    "get_experiment",
    "experiment_entry",
    "run_experiment",
    "run_suite",
    "write_bench_json",
    "default_runs_dir",
    "new_run_id",
    "result_to_markdown",
    "export_result",
    "export_all",
]


def run_experiment(experiment_id: str, dataset, **params) -> ExperimentResult:
    """Run one experiment by ID against a dataset.

    When a source the experiment requires (declared via
    ``register(..., requires=...)``) is missing or empty — e.g. a
    lenient load degraded the Darshan log — a stub result with
    ``degraded=True`` and an explanatory note is returned instead of
    crashing the experiment.
    """
    title, func, requires = experiment_entry(experiment_id)
    missing = [
        source
        for source in requires
        if getattr(dataset, source, None) is None
        or getattr(dataset, source).n_rows == 0
    ]
    if missing:
        return ExperimentResult(
            experiment_id=experiment_id,
            title=title,
            tables={},
            metrics={},
            notes=(
                f"DEGRADED: required source(s) {', '.join(missing)} missing "
                "or empty; analysis skipped."
            ),
            degraded=True,
        )
    return func(dataset, **params)
