"""E11 — Spatial locality of fatal events.

Paper reference (abstract): RAS events "have a strong locality
feature".  The experiment emits the per-midplane fatal-count series
(the heatmap data), the hot-midplane table, and concentration metrics.
"""

from __future__ import annotations

import numpy as np

from repro.bgq.floorplan import render_midplane_heatmap
from repro.bgq.location import Location
from repro.core import counts_by_midplane, hot_midplanes, locality_metrics
from repro.dataset import MiraDataset
from repro.table import Table

from .base import ExperimentResult, register

__all__ = ["run"]


@register("e11", "Spatial locality of fatal events", requires=('ras',))
def run(dataset: MiraDataset, top_k: int = 10) -> ExperimentResult:
    """Per-midplane fatal counts plus concentration metrics."""
    fatal = dataset.fatal_events()
    counts = counts_by_midplane(fatal, dataset.spec)
    metrics = locality_metrics(counts)
    heatmap = Table(
        {
            "midplane": [
                Location.from_midplane_index(i, dataset.spec).code
                for i in range(dataset.spec.n_midplanes)
            ],
            "fatal_events": counts,
        }
    )
    return ExperimentResult(
        experiment_id="e11",
        title="Fatal-event locality",
        tables={
            "heatmap": heatmap,
            "hot_midplanes": hot_midplanes(fatal, dataset.spec, k=top_k),
        },
        metrics={
            "gini": metrics["gini"],
            "top1_share": metrics["top1_share"],
            "top10pct_share": metrics["top10pct_share"],
            "normalized_entropy": metrics["normalized_entropy"],
            "n_midplanes_hit": metrics["n_locations_hit"],
        },
        notes=(
            "Paper: strong locality — a small set of midplanes hosts a "
            "disproportionate share of fatal events.\n"
            + render_midplane_heatmap(
                counts, dataset.spec, title="machine floor (FATAL events):"
            )
        ),
    )
