"""Task (``runjob``) execution records.

On BG/Q a Cobalt *job* is a script that launches one or more physical
execution *tasks* via ``runjob``; the task log records each launch with
its own exit status.  The paper correlates job failures with this
execution structure (number of tasks).  Our model runs a job's tasks
sequentially inside the job's time window — production Mira also
allowed concurrent sub-block tasks, a refinement the analyses do not
depend on (they consume task counts and exit statuses only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.table import Table

__all__ = ["TaskRecord", "tasks_to_table", "TASK_COLUMNS", "TASK_SCHEMA"]

TASK_COLUMNS = [
    "task_id",
    "job_id",
    "task_index",
    "start_time",
    "end_time",
    "n_nodes",
    "exit_status",
]
"""Canonical column order of a task log table."""

TASK_SCHEMA: dict[str, type] = {
    "task_id": int,
    "job_id": int,
    "task_index": int,
    "start_time": float,
    "end_time": float,
    "n_nodes": int,
    "exit_status": int,
}
"""Column name → python type (drives empty tables and lenient coercion)."""


@dataclass(frozen=True)
class TaskRecord:
    """One ``runjob`` invocation."""

    task_id: int
    job_id: int
    task_index: int
    start_time: float
    end_time: float
    n_nodes: int
    exit_status: int

    def __post_init__(self):
        if self.start_time > self.end_time:
            raise ValueError(
                f"task {self.task_id}: start {self.start_time} after end {self.end_time}"
            )
        if self.task_index < 0:
            raise ValueError(f"task {self.task_id}: negative index")
        if not 0 <= self.exit_status <= 255:
            raise ValueError(f"task {self.task_id}: exit status {self.exit_status}")

    @property
    def runtime(self) -> float:
        """Task execution length in seconds."""
        return self.end_time - self.start_time

    @property
    def failed(self) -> bool:
        """True for any non-zero exit status."""
        return self.exit_status != 0


def tasks_to_table(tasks: Sequence[TaskRecord]) -> Table:
    """Pack task records into the canonical task table (by task_id)."""
    ordered = sorted(tasks, key=lambda t: t.task_id)
    return Table(
        {
            "task_id": [t.task_id for t in ordered],
            "job_id": [t.job_id for t in ordered],
            "task_index": [t.task_index for t in ordered],
            "start_time": [t.start_time for t in ordered],
            "end_time": [t.end_time for t in ordered],
            "n_nodes": [t.n_nodes for t in ordered],
            "exit_status": [t.exit_status for t in ordered],
        }
    )
