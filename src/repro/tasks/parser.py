"""Parsing and schema validation of on-disk task (runjob) logs.

The seed toolkit only ever synthesized task logs; loading a dataset
from disk took ``tasks.csv`` on faith.  This parser closes that gap
with the same two-mode contract as the RAS and job parsers: strict
raises :class:`~repro.errors.ParseError`, lenient (a
:class:`~repro.ingest.ParseReport` argument) quarantines bad rows.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ParseError
from repro.ingest import ParseReport, coerce_numeric_rows
from repro.table import Table, read_csv

from .runjob import TASK_COLUMNS, TASK_SCHEMA

__all__ = ["load_task_log", "validate_task_table"]


def _validate_strict(table: Table) -> Table:
    if (table["start_time"] > table["end_time"]).any():
        raise ParseError("task table has end_time before start_time")
    if (table["task_index"] < 0).any():
        raise ParseError("task table has negative task indices")
    statuses = table["exit_status"]
    if (statuses < 0).any() or (statuses > 255).any():
        raise ParseError("task table has exit statuses outside [0, 255]")
    if len(set(table["task_id"].tolist())) != table.n_rows:
        raise ParseError("task table has duplicate task ids")
    return table


def _validate_lenient(table: Table, report: ParseReport, source: str) -> Table:
    columns, keep = coerce_numeric_rows(table, TASK_SCHEMA, report, source)
    status = columns["exit_status"]
    checks = [
        (keep & (columns["start_time"] > columns["end_time"]),
         "end_time before start_time"),
        (keep & (columns["task_index"] < 0), "negative task index"),
        (keep & ((status < 0) | (status > 255)), "exit status outside [0, 255]"),
    ]
    for bad, reason in checks:
        for i in np.nonzero(bad)[0]:
            report.quarantine(source, int(i), reason)
            keep[i] = False
    seen: set[int] = set()
    task_ids = columns["task_id"]
    for i in np.nonzero(keep)[0]:
        tid = int(task_ids[i])
        if tid in seen:
            report.quarantine(source, int(i), f"duplicate task_id {tid}")
            keep[i] = False
        else:
            seen.add(tid)
    for name, values in columns.items():
        table = table.with_column(name, values)
    table = table.filter(keep)
    for name, pytype in TASK_SCHEMA.items():
        if pytype is int:
            table = table.with_column(name, table[name].astype(np.int64))
    return table


def validate_task_table(
    table: Table,
    *,
    report: ParseReport | None = None,
    source: str = "tasks",
) -> Table:
    """Validate schema and basic invariants of a task table; returns it.

    Raises
    ------
    ParseError
        Strict mode: on missing columns, inverted time windows, negative
        task indices, out-of-range exit statuses, or duplicate task IDs.
        Lenient mode: only on missing columns.
    """
    missing = [c for c in TASK_COLUMNS if c not in table]
    if missing:
        raise ParseError(f"task table missing columns {missing}")
    if table.n_rows == 0:
        return table
    if report is None:
        return _validate_strict(table)
    return _validate_lenient(table, report, source)


def load_task_log(path: str | Path, *, report: ParseReport | None = None) -> Table:
    """Read and validate a task CSV log (lenient when ``report`` given)."""
    table = read_csv(path, report=report, source="tasks")
    if table.n_rows == 0 and not table.column_names:
        raise ParseError(f"{path}: empty task log")
    return validate_task_table(table, report=report)
