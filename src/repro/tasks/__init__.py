"""Task (runjob) log substrate."""

from .generator import TaskLogGenerator, TaskLogParams
from .runjob import TASK_COLUMNS, TaskRecord, tasks_to_table

__all__ = [
    "TaskRecord",
    "TASK_COLUMNS",
    "tasks_to_table",
    "TaskLogGenerator",
    "TaskLogParams",
]
