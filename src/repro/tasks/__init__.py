"""Task (runjob) log substrate."""

from .generator import TaskLogGenerator, TaskLogParams
from .parser import load_task_log, validate_task_table
from .runjob import TASK_COLUMNS, TASK_SCHEMA, TaskRecord, tasks_to_table

__all__ = [
    "TaskRecord",
    "TASK_COLUMNS",
    "TASK_SCHEMA",
    "tasks_to_table",
    "TaskLogGenerator",
    "TaskLogParams",
    "load_task_log",
    "validate_task_table",
]
