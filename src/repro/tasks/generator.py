"""Task-log generation from completed jobs.

Splits each job's execution window into its ``n_tasks`` sequential
``runjob`` invocations.  Durations follow a Dirichlet split (tasks of
one ensemble differ in length but sum to the job's runtime); small
inter-task gaps model script overhead.  Exit-status semantics: every
task of a successful job exits 0; for a failed job the *last executed*
task carries the job's exit status, and tasks that never ran (the
script aborted the ensemble) are not logged — which is why the observed
task count can be lower than the intended one for failed ensembles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scheduler.jobs import JobRecord

from .runjob import TaskRecord

__all__ = ["TaskLogParams", "TaskLogGenerator"]


@dataclass(frozen=True)
class TaskLogParams:
    """Shape knobs of the task split."""

    gap_fraction: float = 0.02  # share of the window lost to script overhead
    dirichlet_alpha: float = 2.0  # evenness of the split (higher = more even)
    failed_truncation: float = 0.6  # mean fraction of tasks run before a failure

    def __post_init__(self):
        if not 0.0 <= self.gap_fraction < 0.5:
            raise ValueError("gap_fraction must be in [0, 0.5)")
        if self.dirichlet_alpha <= 0:
            raise ValueError("dirichlet_alpha must be positive")
        if not 0.0 < self.failed_truncation <= 1.0:
            raise ValueError("failed_truncation must be in (0, 1]")


class TaskLogGenerator:
    """Seeded task-log generator."""

    def __init__(self, params: TaskLogParams | None = None, seed: int = 0):
        self.params = params or TaskLogParams()
        self._rng = np.random.default_rng(seed)

    def generate(self, jobs: list[JobRecord]) -> list[TaskRecord]:
        """Produce the task log for the given completed jobs."""
        tasks: list[TaskRecord] = []
        task_id = 0
        for job in sorted(jobs, key=lambda j: j.job_id):
            for record in self._split_job(job, task_id):
                tasks.append(record)
                task_id += 1
        return tasks

    def _split_job(self, job: JobRecord, next_task_id: int) -> list[TaskRecord]:
        p = self.params
        n_intended = max(job.n_tasks, 1)
        if job.failed and n_intended > 1:
            # The ensemble aborted partway through.
            n_run = int(
                np.clip(
                    self._rng.binomial(n_intended, p.failed_truncation), 1, n_intended
                )
            )
        else:
            n_run = n_intended

        window = job.runtime * (1.0 - p.gap_fraction)
        gap_total = job.runtime - window
        gap = gap_total / (n_run + 1)
        if n_run == 1:
            shares = np.array([1.0])
        else:
            shares = self._rng.dirichlet(np.full(n_run, p.dirichlet_alpha))
        durations = shares * window

        records = []
        cursor = job.start_time + gap
        for index in range(n_run):
            start = cursor
            end = start + float(durations[index])
            cursor = end + gap
            is_last = index == n_run - 1
            status = job.exit_status if (is_last and job.failed) else 0
            records.append(
                TaskRecord(
                    task_id=next_task_id + index,
                    job_id=job.job_id,
                    task_index=index,
                    start_time=start,
                    end_time=min(end, job.end_time),
                    n_nodes=job.requested_nodes,
                    exit_status=status,
                )
            )
        return records
