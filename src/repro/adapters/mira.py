"""The Mira backend: the paper's system, and the historical default.

Both parameter factories return ``None`` — the dataset synthesizer then
uses the module defaults of :class:`~repro.scheduler.workload.WorkloadParams`
and :class:`~repro.ras.generator.RasGeneratorParams`, which keeps every
``backend="mira"`` synthesis bit-identical to the pre-backend toolkit
(same RNG streams, same cache fingerprints).
"""

from __future__ import annotations

from repro.bgq.machine import MIRA
from repro.ras.catalog import default_catalog

from .base import PublishedCalibration, TraceBackend, register_backend

__all__ = ["MIRA_BACKEND"]

MIRA_BACKEND = register_backend(
    TraceBackend(
        name="mira",
        title="Mira (IBM Blue Gene/Q, ALCF)",
        spec=MIRA,
        published=PublishedCalibration(
            user_share=0.994,
            mtti_days=3.5,
            failure_rate=0.25,
            source=(
                "Di et al., DSN'19 — Characterizing and Understanding HPC "
                "Job Failures over the 2K-day Life of IBM BlueGene/Q System"
            ),
        ),
        catalog_factory=default_catalog,
        workload_factory=lambda: None,
        ras_factory=lambda: None,
    )
)
