"""Pluggable trace backends for cross-system studies.

Importing this package registers the built-in backends — ``mira`` (the
paper's system and the default path), ``google``, ``mistral``, and
``mlcluster`` — each a calibrated synthetic source feeding the common
columnar tables.  See ``docs/backends.md`` for the adapter contract and
calibration sources.
"""

from __future__ import annotations

from .base import (
    PublishedCalibration,
    TraceBackend,
    all_backend_names,
    all_backends,
    get_backend,
    midplane_ladder,
    register_backend,
)

# Import order fixes registration (and hence CLI listing) order.
from .mira import MIRA_BACKEND
from .google import GOOGLE_BACKEND
from .mistral import MISTRAL_BACKEND
from .mlcluster import MLCLUSTER_BACKEND

__all__ = [
    "PublishedCalibration",
    "TraceBackend",
    "register_backend",
    "get_backend",
    "all_backend_names",
    "all_backends",
    "midplane_ladder",
    "MIRA_BACKEND",
    "GOOGLE_BACKEND",
    "MISTRAL_BACKEND",
    "MLCLUSTER_BACKEND",
]
