"""Google cluster-trace backend.

Calibrated to the published characterizations of the Google cluster
workload traces (Bappy et al. 2023, and the Borg trace literature they
build on): very high job throughput of predominantly *small* jobs,
short runtimes, a large failure share driven by job-level (user) causes
— evictions, task crashes, config mistakes — and machine-level faults
that are individually frequent but rarely the cause of a given job's
failure.

The geometry is a Borg-cell-sized machine expressed in the BG/Q
location grammar (the kernels pivot on ``MachineSpec``, not on Mira's
numbers): ~12k nodes in 96 racks.  "Midplanes" here model failure
domains (racks' power/network halves), which is what the locality and
attribution joins actually need.
"""

from __future__ import annotations

import numpy as np

from repro.bgq.components import Category, Component
from repro.bgq.machine import MachineSpec
from repro.ras.catalog import Catalog, CatalogEntry
from repro.ras.generator import RasGeneratorParams
from repro.ras.severity import Severity
from repro.scheduler.workload import WorkloadParams

from .base import (
    PublishedCalibration,
    TraceBackend,
    midplane_ladder,
    register_backend,
)

__all__ = ["GOOGLE", "GOOGLE_BACKEND", "google_catalog"]

GOOGLE = MachineSpec(
    name="GoogleCell",
    rack_rows=6,
    rack_columns=16,
    midplanes_per_rack=2,
    node_boards_per_midplane=16,
    nodes_per_node_board=4,
    cores_per_node=8,
)
"""A Borg-cell-scale machine: 12,288 nodes, 98,304 cores."""


def _entry(msg_id, component, category, severity, template, weight=1.0, interrupts=False):
    return CatalogEntry(
        msg_id=msg_id,
        component=component,
        category=category,
        severity=severity,
        template=template,
        weight=weight,
        interrupts_jobs=interrupts,
    )


def google_catalog() -> Catalog:
    """Cluster-manager flavoured catalog (message ids ``01xxxxxx``)."""
    C, G, S = Component, Category, Severity
    return Catalog(
        [
            # ---- SCHEDULER: cluster manager (0101xxxx) -----------------
            _entry("01010001", C.SCHEDULER, G.JOB, S.INFO,
                   "task scheduled on machine {detail}", 45.0),
            _entry("01010002", C.SCHEDULER, G.JOB, S.INFO,
                   "task finished, resources reclaimed {detail}", 45.0),
            _entry("01010003", C.SCHEDULER, G.JOB, S.WARN,
                   "task evicted for higher-priority work {detail}", 10.0),
            _entry("01010004", C.SCHEDULER, G.JOB, S.WARN,
                   "task rescheduled after machine drain {detail}", 4.0),
            _entry("01010005", C.SCHEDULER, G.SOFTWARE, S.FATAL,
                   "cell scheduler lost machine lease {detail}", 0.5, interrupts=True),
            # ---- NODE: per-machine health agent (0102xxxx) -------------
            _entry("01020001", C.NODE, G.PROCESSOR, S.INFO,
                   "machine health probe ok {detail}", 30.0),
            _entry("01020002", C.NODE, G.DDR, S.WARN,
                   "correctable memory errors above baseline {detail}", 6.0),
            _entry("01020003", C.NODE, G.PROCESSOR, S.FATAL,
                   "machine check exception, node removed {detail}", 1.0, interrupts=True),
            _entry("01020004", C.NODE, G.DDR, S.FATAL,
                   "uncorrectable DIMM failure on machine {detail}", 0.8, interrupts=True),
            _entry("01020005", C.NODE, G.SOFTWARE, S.FATAL,
                   "kernel panic, machine rebooting {detail}", 0.9, interrupts=True),
            _entry("01020006", C.NODE, G.PROCESSOR, S.WARN,
                   "thermal throttling engaged {detail}", 3.0),
            # ---- RUNTIME: container layer (0103xxxx) -------------------
            _entry("01030001", C.RUNTIME, G.SOFTWARE, S.INFO,
                   "container image pulled {detail}", 25.0),
            _entry("01030002", C.RUNTIME, G.SOFTWARE, S.WARN,
                   "container OOM-killed, limit enforced {detail}", 8.0),
            _entry("01030003", C.RUNTIME, G.SOFTWARE, S.FATAL,
                   "containerd unresponsive on machine {detail}", 0.4, interrupts=True),
            # ---- STORAGE (0104xxxx) ------------------------------------
            _entry("01040001", C.STORAGE, G.FILESYSTEM, S.INFO,
                   "chunkserver heartbeat {detail}", 20.0),
            _entry("01040002", C.STORAGE, G.FILESYSTEM, S.WARN,
                   "chunkserver slow reads {detail}", 5.0),
            _entry("01040003", C.STORAGE, G.FILESYSTEM, S.FATAL,
                   "local disk failed, machine draining {detail}", 0.7, interrupts=True),
            # ---- FABRIC: datacenter network (0105xxxx) -----------------
            _entry("01050001", C.FABRIC, G.NETWORK, S.INFO,
                   "ToR switch telemetry {detail}", 15.0),
            _entry("01050002", C.FABRIC, G.NETWORK, S.WARN,
                   "packet discards rising on uplink {detail}", 4.0),
            _entry("01050003", C.FABRIC, G.NETWORK, S.FATAL,
                   "ToR switch failure, rack unreachable {detail}", 0.3, interrupts=True),
            # ---- power domain (0106xxxx) -------------------------------
            _entry("01060001", C.MC, G.BULK_POWER, S.WARN,
                   "power domain load imbalance {detail}", 2.0),
            _entry("01060002", C.MC, G.BULK_POWER, S.FATAL,
                   "power domain breaker trip {detail}", 0.2, interrupts=True),
        ]
    )


def google_workload() -> WorkloadParams:
    """Borg-like workload: huge arrival rate of small, short jobs."""
    counts, weights = midplane_ladder(
        GOOGLE,
        midplanes=(1, 2, 4, 8, 16, 32),
        weights=(0.50, 0.25, 0.13, 0.07, 0.03, 0.02),
    )
    return WorkloadParams(
        n_users=1500,
        n_projects=600,
        arrival_rate_per_day=220.0,
        zipf_exponent=1.1,
        base_fail_alpha=0.85,
        base_fail_beta=2.4,
        scale_fail_boost=0.22,
        task_fail_boost=0.10,
        size_affinity_fail_boost=0.6,
        timeout_share=0.08,
        ensemble_probability=0.45,
        ensemble_mean_tasks=8.0,
        runtime_log_mean=float(np.log(0.5 * 3600.0)),
        runtime_log_sigma=1.2,
        node_counts=counts,
        node_weights=weights,
        family_prior=(0.20, 0.12, 0.53, 0.15),
    )


def google_ras() -> RasGeneratorParams:
    """Frequent machine-level faults: individually small blast radius."""
    return RasGeneratorParams(
        info_rate_per_day=400.0,
        warn_rate_per_day=150.0,
        incident_rate_per_day=2.2,
        burst_log_mean=1.6,
        burst_log_sigma=1.0,
        fanout_probability=0.15,
        locality_sigma=0.9,
        precursor_probability=0.35,
    )


GOOGLE_BACKEND = register_backend(
    TraceBackend(
        name="google",
        title="Google cluster traces (Borg cell)",
        spec=GOOGLE,
        published=PublishedCalibration(
            user_share=0.97,
            mtti_days=1.2,
            failure_rate=0.35,
            source=(
                "Bappy et al. 2023 (arXiv:2308.02358) — failure "
                "characterization of the Google cluster traces"
            ),
        ),
        catalog_factory=google_catalog,
        workload_factory=google_workload,
        ras_factory=google_ras,
    )
)
