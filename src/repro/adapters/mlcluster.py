"""ML training-cluster backend (GPU superpod).

Calibrated to the published characterization of large ML training
infrastructure (Kokolis et al., arXiv:2410.21680, Meta's Llama-training
clusters, plus the ByteDance/MLaaS literature): gang-scheduled
multi-node training jobs where *hardware* matters again — GPU ECC/XID
errors, NVLink/fabric flaps, and host failures interrupt long synchronous
jobs, so the system-caused share of failures is an order of magnitude
above any CPU system and the job-interruption MTTI is measured in hours,
not days.

Geometry: 24 racks × 2 "midplanes" (scalable units) × 64 hosts ≈ 3,072
hosts; ``cores_per_node=8`` models the 8 accelerators per host.
"""

from __future__ import annotations

import numpy as np

from repro.bgq.components import Category, Component
from repro.bgq.machine import MachineSpec
from repro.ras.catalog import Catalog, CatalogEntry
from repro.ras.generator import RasGeneratorParams
from repro.ras.severity import Severity
from repro.scheduler.workload import WorkloadParams

from .base import (
    PublishedCalibration,
    TraceBackend,
    midplane_ladder,
    register_backend,
)

__all__ = ["MLCLUSTER", "MLCLUSTER_BACKEND", "mlcluster_catalog"]

MLCLUSTER = MachineSpec(
    name="MLCluster",
    rack_rows=2,
    rack_columns=12,
    midplanes_per_rack=2,
    node_boards_per_midplane=8,
    nodes_per_node_board=8,
    cores_per_node=8,
)
"""A GPU-superpod-scale machine: 3,072 hosts, 24,576 accelerators."""


def _entry(msg_id, component, category, severity, template, weight=1.0, interrupts=False):
    return CatalogEntry(
        msg_id=msg_id,
        component=component,
        category=category,
        severity=severity,
        template=template,
        weight=weight,
        interrupts_jobs=interrupts,
    )


def mlcluster_catalog() -> Catalog:
    """GPU-fleet flavoured catalog (message ids ``03xxxxxx``)."""
    C, G, S = Component, Category, Severity
    return Catalog(
        [
            # ---- GPU: driver/XID stack (0301xxxx) ----------------------
            _entry("03010001", C.GPU, G.GPU, S.INFO,
                   "accelerator telemetry sample {detail}", 35.0),
            _entry("03010002", C.GPU, G.GPU, S.WARN,
                   "GPU ECC corrected errors rising {detail}", 8.0),
            _entry("03010003", C.GPU, G.GPU, S.FATAL,
                   "GPU XID uncorrectable ECC error, device lost {detail}",
                   2.0, interrupts=True),
            _entry("03010004", C.GPU, G.GPU, S.FATAL,
                   "GPU fell off the bus {detail}", 1.2, interrupts=True),
            _entry("03010005", C.GPU, G.GPU, S.WARN,
                   "GPU thermal slowdown engaged {detail}", 5.0),
            # ---- FABRIC: NVLink/IB backend network (0302xxxx) ----------
            _entry("03020001", C.FABRIC, G.NETWORK, S.INFO,
                   "NCCL ring established {detail}", 20.0),
            _entry("03020002", C.FABRIC, G.NETWORK, S.WARN,
                   "NVLink replay errors detected {detail}", 6.0),
            _entry("03020003", C.FABRIC, G.NETWORK, S.FATAL,
                   "backend fabric link flap, collective timed out {detail}",
                   1.5, interrupts=True),
            # ---- NODE: host health (0303xxxx) --------------------------
            _entry("03030001", C.NODE, G.PROCESSOR, S.INFO,
                   "host health probe ok {detail}", 20.0),
            _entry("03030002", C.NODE, G.DDR, S.WARN,
                   "host corrected DIMM errors {detail}", 4.0),
            _entry("03030003", C.NODE, G.PROCESSOR, S.FATAL,
                   "host hang, gang member unreachable {detail}", 1.0, interrupts=True),
            # ---- SCHEDULER: training orchestrator (0304xxxx) -----------
            _entry("03040001", C.SCHEDULER, G.JOB, S.INFO,
                   "training job gang-scheduled {detail}", 25.0),
            _entry("03040002", C.SCHEDULER, G.JOB, S.WARN,
                   "checkpoint-restore initiated after interruption {detail}", 6.0),
            _entry("03040003", C.SCHEDULER, G.SOFTWARE, S.FATAL,
                   "orchestrator preempted gang for hardware remediation {detail}",
                   0.8, interrupts=True),
            # ---- STORAGE: checkpoint store (0305xxxx) ------------------
            _entry("03050001", C.STORAGE, G.FILESYSTEM, S.WARN,
                   "checkpoint write latency degraded {detail}", 5.0),
            _entry("03050002", C.STORAGE, G.FILESYSTEM, S.FATAL,
                   "checkpoint store unavailable {detail}", 0.5, interrupts=True),
        ]
    )


def mlcluster_workload() -> WorkloadParams:
    """Gang-scheduled training: fewer, larger, longer jobs."""
    counts, weights = midplane_ladder(
        MLCLUSTER,
        midplanes=(1, 2, 4, 8, 16, 32),
        weights=(0.14, 0.18, 0.24, 0.24, 0.14, 0.06),
    )
    return WorkloadParams(
        n_users=180,
        n_projects=60,
        arrival_rate_per_day=22.0,
        zipf_exponent=0.85,
        base_fail_alpha=0.6,
        base_fail_beta=3.0,
        scale_fail_boost=0.16,
        task_fail_boost=0.10,
        size_affinity_fail_boost=0.6,
        timeout_share=0.06,
        ensemble_probability=0.25,
        ensemble_mean_tasks=4.0,
        runtime_log_mean=float(np.log(3.0 * 3600.0)),
        runtime_log_sigma=0.9,
        node_counts=counts,
        node_weights=weights,
        family_prior=(0.32, 0.38, 0.22, 0.08),
    )


def mlcluster_ras() -> RasGeneratorParams:
    """Frequent hardware incidents: GPU/fabric faults dominate."""
    return RasGeneratorParams(
        info_rate_per_day=350.0,
        warn_rate_per_day=120.0,
        incident_rate_per_day=9.0,
        burst_log_mean=1.8,
        burst_log_sigma=1.1,
        fanout_probability=0.30,
        locality_sigma=1.0,
        precursor_probability=0.55,
    )


MLCLUSTER_BACKEND = register_backend(
    TraceBackend(
        name="mlcluster",
        title="ML training cluster (GPU superpod)",
        spec=MLCLUSTER,
        published=PublishedCalibration(
            user_share=0.60,
            mtti_days=0.3,
            failure_rate=0.40,
            source=(
                "Kokolis et al. (arXiv:2410.21680) — revisiting reliability "
                "in large-scale ML training clusters (Meta)"
            ),
        ),
        catalog_factory=mlcluster_catalog,
        workload_factory=mlcluster_workload,
        ras_factory=mlcluster_ras,
    )
)
