"""Trace-backend contract and registry.

A *backend* describes one source system whose failure behavior the
toolkit can synthesize into the common four-log columnar tables: its
machine geometry (a :class:`~repro.bgq.machine.MachineSpec`, so the
location grammar and all attribution/locality kernels work unchanged),
its RAS message catalog, calibrated generator parameters, and the
published headline numbers the synthesis targets.  The ``mira`` backend
is the paper's system and the historical default path; the others are
calibrated to published studies of comparable systems (see
``docs/backends.md`` for sources and the adapter contract).

Backends register themselves on import of :mod:`repro.adapters`;
resolve one with :func:`get_backend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bgq.machine import MachineSpec
from repro.errors import BackendError
from repro.ras.catalog import Catalog
from repro.ras.generator import RasGeneratorParams
from repro.scheduler.workload import DEFAULT_NODE_WEIGHTS, WorkloadParams

__all__ = [
    "PublishedCalibration",
    "TraceBackend",
    "register_backend",
    "get_backend",
    "all_backend_names",
    "all_backends",
    "midplane_ladder",
]


@dataclass(frozen=True)
class PublishedCalibration:
    """Headline numbers from the study a backend is calibrated against.

    These are the targets the synthetic generator aims for, carried
    along so cross-system experiments (e22) can print measured-vs-
    published side by side.  ``user_share`` is the fraction of failed
    jobs attributed to user causes; ``mtti_days`` the job-interruption
    mean time to interruption; ``failure_rate`` the fraction of jobs
    that fail.
    """

    user_share: float
    mtti_days: float
    failure_rate: float
    source: str

    def __post_init__(self):
        if not 0.0 <= self.user_share <= 1.0:
            raise ValueError("user_share must be in [0, 1]")
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if self.mtti_days <= 0:
            raise ValueError("mtti_days must be positive")


@dataclass(frozen=True)
class TraceBackend:
    """One source system feeding the common columnar tables.

    ``workload_factory``/``ras_factory`` return the calibrated generator
    parameters, or ``None`` to mean "use the module defaults" (the mira
    backend does this so its synthesis path stays bit-identical to the
    pre-backend toolkit).  Factories are called per synthesis so a
    mutable :class:`~repro.ras.catalog.Catalog` is never shared.
    """

    name: str
    title: str
    spec: MachineSpec
    published: PublishedCalibration
    catalog_factory: Callable[[], Catalog]
    workload_factory: Callable[[], WorkloadParams | None]
    ras_factory: Callable[[], RasGeneratorParams | None]

    def catalog(self) -> Catalog:
        """The backend's RAS message catalog."""
        return self.catalog_factory()

    def workload_params(self) -> WorkloadParams | None:
        """Calibrated workload parameters (``None`` = module defaults)."""
        return self.workload_factory()

    def ras_params(self) -> RasGeneratorParams | None:
        """Calibrated RAS-stream parameters (``None`` = module defaults)."""
        return self.ras_factory()


_BACKENDS: dict[str, TraceBackend] = {}


def register_backend(backend: TraceBackend) -> TraceBackend:
    """Register a backend under its name (import-time side effect)."""
    if backend.name in _BACKENDS:
        raise BackendError(f"duplicate backend name {backend.name!r}")
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> TraceBackend:
    """Resolve a backend by name.

    Raises
    ------
    BackendError
        For names no registered backend answers to.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown trace backend {name!r}; known: {', '.join(_BACKENDS)}"
        ) from None


def all_backend_names() -> tuple[str, ...]:
    """Registered backend names, in registration order (mira first)."""
    return tuple(_BACKENDS)


def all_backends() -> tuple[TraceBackend, ...]:
    """All registered backends, in registration order."""
    return tuple(_BACKENDS.values())


def midplane_ladder(
    spec: MachineSpec,
    midplanes: tuple[int, ...],
    weights: tuple[float, ...] | None = None,
) -> tuple[tuple[int, ...], tuple[float, ...]]:
    """A job-size ladder as midplane multiples of ``spec``.

    Rungs exceeding the machine are dropped and the weight profile is
    renormalized onto the surviving rungs, exactly like
    :meth:`WorkloadParams.scaled_to` does for its default ladder —
    backends just pick their own rung shape and weight skew.
    """
    profile = weights if weights is not None else DEFAULT_NODE_WEIGHTS
    counts = []
    for rung in midplanes:
        nodes = rung * spec.nodes_per_midplane
        if nodes > spec.n_nodes:
            break
        counts.append(nodes)
    if not counts:
        counts = [spec.n_nodes]
    kept = list(profile[: len(counts)])
    total = sum(kept)
    if total <= 0:
        raise ValueError("ladder weights must have positive mass")
    normalized = tuple(w / total for w in kept)
    # Absorb float round-off into the last rung so the sum is exact.
    normalized = normalized[:-1] + (1.0 - sum(normalized[:-1]),)
    return tuple(counts), normalized
