"""Mistral (DKRZ) HPC backend.

Calibrated to the published log study of the Mistral supercomputer at
the German Climate Computing Center (Zasadziński et al.,
arXiv:1801.07624): a mid-size bullx/Slurm cluster running climate
workloads — long-running, moderately sized MPI jobs, a *low* overall
failure rate dominated by user-side configuration and application
errors, and comparatively rare hardware incidents (hence a
job-interruption MTTI between Mira's and a hyperscale cell's).

Geometry: 33 racks of 100 nodes each (two 50-node "midplanes" — the
Slurm topology switch groups), 36 cores per node ≈ the real machine's
~3,300 nodes / ~100k cores.
"""

from __future__ import annotations

import numpy as np

from repro.bgq.components import Category, Component
from repro.bgq.machine import MachineSpec
from repro.ras.catalog import Catalog, CatalogEntry
from repro.ras.generator import RasGeneratorParams
from repro.ras.severity import Severity
from repro.scheduler.workload import WorkloadParams

from .base import (
    PublishedCalibration,
    TraceBackend,
    midplane_ladder,
    register_backend,
)

__all__ = ["MISTRAL", "MISTRAL_BACKEND", "mistral_catalog"]

MISTRAL = MachineSpec(
    name="Mistral",
    rack_rows=3,
    rack_columns=11,
    midplanes_per_rack=2,
    node_boards_per_midplane=10,
    nodes_per_node_board=5,
    cores_per_node=36,
)
"""A bullx-cluster-scale machine: 3,300 nodes, 118,800 cores."""


def _entry(msg_id, component, category, severity, template, weight=1.0, interrupts=False):
    return CatalogEntry(
        msg_id=msg_id,
        component=component,
        category=category,
        severity=severity,
        template=template,
        weight=weight,
        interrupts_jobs=interrupts,
    )


def mistral_catalog() -> Catalog:
    """Slurm/syslog flavoured catalog (message ids ``02xxxxxx``)."""
    C, G, S = Component, Category, Severity
    return Catalog(
        [
            # ---- SCHEDULER: Slurm (0201xxxx) ---------------------------
            _entry("02010001", C.SCHEDULER, G.JOB, S.INFO,
                   "sbatch job allocated nodes {detail}", 40.0),
            _entry("02010002", C.SCHEDULER, G.JOB, S.INFO,
                   "job epilog complete {detail}", 40.0),
            _entry("02010003", C.SCHEDULER, G.JOB, S.WARN,
                   "node set DRAINING by health check {detail}", 5.0),
            _entry("02010004", C.SCHEDULER, G.SOFTWARE, S.FATAL,
                   "slurmctld lost contact with node, job requeue-hold {detail}",
                   0.6, interrupts=True),
            # ---- NODE: syslog / BMC (0202xxxx) -------------------------
            _entry("02020001", C.NODE, G.PROCESSOR, S.INFO,
                   "node health check passed {detail}", 25.0),
            _entry("02020002", C.NODE, G.DDR, S.WARN,
                   "EDAC corrected memory errors {detail}", 7.0),
            _entry("02020003", C.NODE, G.DDR, S.FATAL,
                   "EDAC uncorrectable error, panic {detail}", 1.0, interrupts=True),
            _entry("02020004", C.NODE, G.PROCESSOR, S.FATAL,
                   "MCE hardware error, node down {detail}", 0.8, interrupts=True),
            _entry("02020005", C.NODE, G.SOFTWARE, S.WARN,
                   "OOM killer invoked on compute node {detail}", 6.0),
            # ---- STORAGE: Lustre (0203xxxx) ----------------------------
            _entry("02030001", C.STORAGE, G.FILESYSTEM, S.INFO,
                   "lustre client reconnected {detail}", 20.0),
            _entry("02030002", C.STORAGE, G.FILESYSTEM, S.WARN,
                   "lustre slow IO, request queue deep {detail}", 8.0),
            _entry("02030003", C.STORAGE, G.FILESYSTEM, S.FATAL,
                   "OST unavailable, client evicted {detail}", 1.2, interrupts=True),
            # ---- FABRIC: InfiniBand (0204xxxx) -------------------------
            _entry("02040001", C.FABRIC, G.NETWORK, S.INFO,
                   "IB port counters sampled {detail}", 15.0),
            _entry("02040002", C.FABRIC, G.NETWORK, S.WARN,
                   "IB symbol errors above threshold {detail}", 4.0),
            _entry("02040003", C.FABRIC, G.NETWORK, S.FATAL,
                   "IB link down, switch reroute failed {detail}", 0.5, interrupts=True),
            # ---- facility (0205xxxx) -----------------------------------
            _entry("02050001", C.MC, G.COOLANT, S.WARN,
                   "rack coolant temperature high {detail}", 2.0),
            _entry("02050002", C.MC, G.BULK_POWER, S.FATAL,
                   "rack PDU failure {detail}", 0.2, interrupts=True),
        ]
    )


def mistral_workload() -> WorkloadParams:
    """Climate workloads: long, mid-size jobs; low failure propensity."""
    counts, weights = midplane_ladder(
        MISTRAL,
        midplanes=(1, 2, 4, 8, 16, 32, 64),
        weights=(0.30, 0.24, 0.18, 0.12, 0.08, 0.05, 0.03),
    )
    return WorkloadParams(
        n_users=450,
        n_projects=160,
        arrival_rate_per_day=60.0,
        zipf_exponent=0.9,
        base_fail_alpha=0.4,
        base_fail_beta=4.2,
        scale_fail_boost=0.12,
        task_fail_boost=0.10,
        size_affinity_fail_boost=0.5,
        timeout_share=0.10,
        ensemble_probability=0.35,
        ensemble_mean_tasks=5.0,
        runtime_log_mean=float(np.log(1.5 * 3600.0)),
        runtime_log_sigma=1.0,
        node_counts=counts,
        node_weights=weights,
        family_prior=(0.15, 0.10, 0.25, 0.50),
    )


def mistral_ras() -> RasGeneratorParams:
    """Rare hardware incidents; Lustre-heavy warning background."""
    return RasGeneratorParams(
        info_rate_per_day=200.0,
        warn_rate_per_day=90.0,
        incident_rate_per_day=1.3,
        burst_log_mean=2.0,
        burst_log_sigma=1.2,
        fanout_probability=0.25,
        locality_sigma=1.0,
        precursor_probability=0.45,
    )


MISTRAL_BACKEND = register_backend(
    TraceBackend(
        name="mistral",
        title="Mistral (bullx/Slurm, DKRZ)",
        spec=MISTRAL,
        published=PublishedCalibration(
            user_share=0.96,
            mtti_days=2.0,
            failure_rate=0.12,
            source=(
                "Zasadziński et al. (arXiv:1801.07624) — log-based failure "
                "analysis of the Mistral supercomputer at DKRZ"
            ),
        ),
        catalog_factory=mistral_catalog,
        workload_factory=mistral_workload,
        ras_factory=mistral_ras,
    )
)
