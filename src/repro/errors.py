"""Exception hierarchy for the repro toolkit.

Every exception the public API raises deliberately derives from
:class:`ReproError`, so callers can catch toolkit failures without
swallowing programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "LocationError",
    "AllocationError",
    "CatalogError",
    "BackendError",
    "ParseError",
    "QuarantineOverflowError",
    "ColumnTypeError",
    "DatasetError",
    "FitError",
    "FaultError",
    "JournalError",
    "StreamError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all toolkit errors."""


class LocationError(ReproError):
    """An invalid BG/Q location code or component path."""


class AllocationError(ReproError):
    """A partition request the machine cannot satisfy."""


class CatalogError(ReproError):
    """An unknown RAS message ID or malformed catalog entry."""


class BackendError(ReproError):
    """An unknown trace backend name or a malformed backend definition."""


class ParseError(ReproError, ValueError):
    """A log line or file that does not match the expected schema.

    Also a :class:`ValueError`, so generic callers that treat malformed
    input as a value problem keep working.
    """


class QuarantineOverflowError(ParseError):
    """Lenient parsing quarantined more rows than ``max_bad_rows`` allows.

    Distinct from :class:`ParseError` so resilient loaders can degrade a
    structurally broken source yet still abort when the data is mostly
    garbage.
    """


class ColumnTypeError(ReproError, TypeError):
    """A column whose values cannot be serialized losslessly.

    Raised at *write* time — e.g. an object-dtype column holding
    non-string values headed for an ``.npz`` bundle or a columnar
    arena, both of which store strings only (``allow_pickle`` stays
    off on read, so anything else would silently round-trip through
    ``str()``).  Also a :class:`TypeError`, because the problem is the
    value's type, not its content.
    """


class DatasetError(ReproError):
    """A cross-log inconsistency or missing dataset component."""


class FitError(ReproError):
    """A distribution fit that cannot be computed for the given sample."""


class FaultError(ReproError):
    """An invalid fault-injection plan (unknown fault, bad target)."""


class JournalError(ReproError):
    """A run journal that is missing, malformed, or does not match the
    dataset it is being resumed against."""


class StreamError(ReproError):
    """A streaming-ingestion failure the tailer cannot absorb.

    Transient I/O problems are retried and rotation/truncation are
    handled in-band; this class covers the rest — misconfiguration,
    an unreadable feed directory, or a pipeline invariant violation.
    """


class CheckpointError(StreamError):
    """A stream checkpoint that is missing, corrupt, or from a
    different feed/schema than the pipeline being resumed."""
