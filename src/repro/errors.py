"""Exception hierarchy for the repro toolkit.

Every exception the public API raises deliberately derives from
:class:`ReproError`, so callers can catch toolkit failures without
swallowing programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "LocationError",
    "AllocationError",
    "CatalogError",
    "ParseError",
    "DatasetError",
    "FitError",
]


class ReproError(Exception):
    """Base class for all toolkit errors."""


class LocationError(ReproError):
    """An invalid BG/Q location code or component path."""


class AllocationError(ReproError):
    """A partition request the machine cannot satisfy."""


class CatalogError(ReproError):
    """An unknown RAS message ID or malformed catalog entry."""


class ParseError(ReproError):
    """A log line or file that does not match the expected schema."""


class DatasetError(ReproError):
    """A cross-log inconsistency or missing dataset component."""


class FitError(ReproError):
    """A distribution fit that cannot be computed for the given sample."""
