"""Machine specification for IBM Blue Gene/Q systems.

The default :data:`MIRA` spec matches the system studied in the paper:
48 racks, two midplanes per rack, 16 node boards per midplane, 32
compute cards (nodes) per node board, 16 cores per node — 49,152 nodes
and 786,432 cores in total.  All other modules derive counts from a
``MachineSpec`` rather than hard-coding Mira's numbers so scaled-down
machines can be used in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "MIRA", "MIRA_SMALL"]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a BG/Q machine.

    Racks are named ``R`` plus two hex digits (row digit, column digit),
    following the BG/Q convention (Mira: R00..R2F in 3 rows of 16).
    """

    name: str = "Mira"
    rack_rows: int = 3
    rack_columns: int = 16
    midplanes_per_rack: int = 2
    node_boards_per_midplane: int = 16
    nodes_per_node_board: int = 32
    cores_per_node: int = 16

    def __post_init__(self):
        for field in (
            "rack_rows",
            "rack_columns",
            "midplanes_per_rack",
            "node_boards_per_midplane",
            "nodes_per_node_board",
            "cores_per_node",
        ):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1")
        if self.rack_columns > 16:
            raise ValueError("rack_columns > 16 breaks hex rack naming")

    @property
    def n_racks(self) -> int:
        """Total rack count."""
        return self.rack_rows * self.rack_columns

    @property
    def n_midplanes(self) -> int:
        """Total midplane count (Mira: 96)."""
        return self.n_racks * self.midplanes_per_rack

    @property
    def nodes_per_midplane(self) -> int:
        """Nodes in one midplane (Mira: 512)."""
        return self.node_boards_per_midplane * self.nodes_per_node_board

    @property
    def n_nodes(self) -> int:
        """Total compute-node count (Mira: 49,152)."""
        return self.n_midplanes * self.nodes_per_midplane

    @property
    def n_cores(self) -> int:
        """Total core count (Mira: 786,432)."""
        return self.n_nodes * self.cores_per_node

    def rack_name(self, index: int) -> str:
        """Name of the rack at linear ``index`` (row-major), e.g. ``'R1A'``."""
        if not 0 <= index < self.n_racks:
            raise ValueError(f"rack index {index} out of range [0, {self.n_racks})")
        row, column = divmod(index, self.rack_columns)
        return f"R{row:X}{column:X}"

    def rack_index(self, name: str) -> int:
        """Inverse of :meth:`rack_name`."""
        if len(name) != 3 or name[0] != "R":
            raise ValueError(f"malformed rack name {name!r}")
        try:
            row = int(name[1], 16)
            column = int(name[2], 16)
        except ValueError:
            raise ValueError(f"malformed rack name {name!r}") from None
        if row >= self.rack_rows or column >= self.rack_columns:
            raise ValueError(f"rack {name!r} outside {self.name} ({self.rack_rows}x{self.rack_columns})")
        return row * self.rack_columns + column


MIRA = MachineSpec()
"""The production Mira configuration (49,152 nodes)."""

MIRA_SMALL = MachineSpec(
    name="MiraSmall",
    rack_rows=1,
    rack_columns=4,
    midplanes_per_rack=2,
    node_boards_per_midplane=4,
    nodes_per_node_board=8,
    cores_per_node=16,
)
"""A 256-node scale model with the same hierarchy, for fast tests."""
