"""BG/Q physical location codes.

RAS events carry a hierarchical location string identifying the failing
hardware, e.g. ``R17-M0-N05-J12`` = rack R17, midplane 0, node board 5,
compute card 12.  This module parses, validates, formats and navigates
those codes; every spatial analysis (locality, event→job joins, spatial
filtering) goes through :class:`Location`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from repro.errors import LocationError

from .machine import MIRA, MachineSpec

__all__ = ["Level", "Location"]


class Level(Enum):
    """Granularity of a location code, ordered coarse → fine."""

    RACK = 1
    MIDPLANE = 2
    NODE_BOARD = 3
    COMPUTE_CARD = 4
    CORE = 5

    def __lt__(self, other: "Level") -> bool:
        return self.value < other.value

    def __le__(self, other: "Level") -> bool:
        return self.value <= other.value


_LOCATION_RE = re.compile(
    r"^R(?P<rack>[0-9A-F]{2})"
    r"(?:-M(?P<midplane>\d))?"
    r"(?:-N(?P<node_board>\d{2}))?"
    r"(?:-J(?P<compute_card>\d{2}))?"
    r"(?:-C(?P<core>\d{2}))?$"
)


@dataclass(frozen=True)
class Location:
    """A parsed, validated location code.

    Finer fields are ``None`` when the code stops at a coarser level
    (e.g. a rack-level power event has only ``rack`` set).  Locations
    order hierarchically with coarser codes before their descendants
    (``R00 < R00-M0 < R00-M1 < R01``).
    """

    rack: str
    midplane: int | None = None
    node_board: int | None = None
    compute_card: int | None = None
    core: int | None = None

    def _sort_key(self) -> tuple:
        missing = -1  # sorts a coarse code before everything inside it
        return (
            self.rack,
            self.midplane if self.midplane is not None else missing,
            self.node_board if self.node_board is not None else missing,
            self.compute_card if self.compute_card is not None else missing,
            self.core if self.core is not None else missing,
        )

    def __lt__(self, other: "Location") -> bool:
        if not isinstance(other, Location):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, code: str, spec: MachineSpec = MIRA) -> "Location":
        """Parse a location string, validating each level against ``spec``.

        Raises
        ------
        LocationError
            On malformed syntax, skipped levels, or out-of-range fields.
        """
        match = _LOCATION_RE.match(code)
        if not match:
            raise LocationError(f"malformed location code {code!r}")
        fields = match.groupdict()
        rack = "R" + fields["rack"]
        midplane = int(fields["midplane"]) if fields["midplane"] is not None else None
        node_board = (
            int(fields["node_board"]) if fields["node_board"] is not None else None
        )
        compute_card = (
            int(fields["compute_card"]) if fields["compute_card"] is not None else None
        )
        core = int(fields["core"]) if fields["core"] is not None else None
        levels = [midplane, node_board, compute_card, core]
        seen_none = False
        for value in levels:
            if value is None:
                seen_none = True
            elif seen_none:
                raise LocationError(f"location {code!r} skips a hierarchy level")
        loc = cls(rack, midplane, node_board, compute_card, core)
        loc.validate(spec)
        return loc

    def validate(self, spec: MachineSpec = MIRA) -> None:
        """Check every populated field against the machine spec."""
        try:
            spec.rack_index(self.rack)
        except ValueError as exc:
            raise LocationError(str(exc)) from None
        checks = [
            (self.midplane, spec.midplanes_per_rack, "midplane"),
            (self.node_board, spec.node_boards_per_midplane, "node board"),
            (self.compute_card, spec.nodes_per_node_board, "compute card"),
            (self.core, spec.cores_per_node, "core"),
        ]
        for value, bound, label in checks:
            if value is not None and not 0 <= value < bound:
                raise LocationError(
                    f"{label} {value} out of range [0, {bound}) in {self.code}"
                )

    # ------------------------------------------------------------------
    # rendering / navigation
    # ------------------------------------------------------------------

    @property
    def code(self) -> str:
        """The canonical string form."""
        parts = [self.rack]
        if self.midplane is not None:
            parts.append(f"M{self.midplane}")
        if self.node_board is not None:
            parts.append(f"N{self.node_board:02d}")
        if self.compute_card is not None:
            parts.append(f"J{self.compute_card:02d}")
        if self.core is not None:
            parts.append(f"C{self.core:02d}")
        return "-".join(parts)

    def __str__(self) -> str:
        return self.code

    @property
    def level(self) -> Level:
        """The finest populated level of this code."""
        if self.core is not None:
            return Level.CORE
        if self.compute_card is not None:
            return Level.COMPUTE_CARD
        if self.node_board is not None:
            return Level.NODE_BOARD
        if self.midplane is not None:
            return Level.MIDPLANE
        return Level.RACK

    def ancestor(self, level: Level) -> "Location":
        """The enclosing location at a coarser (or equal) level.

        Raises
        ------
        LocationError
            If asked for a level finer than this location has.
        """
        if level > self.level:
            raise LocationError(
                f"{self.code} is at {self.level.name}, cannot descend to {level.name}"
            )
        return Location(
            rack=self.rack,
            midplane=self.midplane if level >= Level.MIDPLANE else None,
            node_board=self.node_board if level >= Level.NODE_BOARD else None,
            compute_card=self.compute_card if level >= Level.COMPUTE_CARD else None,
            core=self.core if level >= Level.CORE else None,
        )

    def parent(self) -> "Location":
        """One level coarser; racks have no parent."""
        if self.level is Level.RACK:
            raise LocationError(f"rack {self.code} has no parent")
        return self.ancestor(Level(self.level.value - 1))

    def contains(self, other: "Location") -> bool:
        """True when ``other`` is this location or inside it."""
        if other.level < self.level:
            return False
        return other.ancestor(self.level) == self

    # ------------------------------------------------------------------
    # linear indices (for numpy-friendly spatial analysis)
    # ------------------------------------------------------------------

    def midplane_index(self, spec: MachineSpec = MIRA) -> int:
        """Global midplane index in [0, spec.n_midplanes).

        Raises
        ------
        LocationError
            For rack-level codes that do not identify a midplane.
        """
        if self.midplane is None:
            raise LocationError(f"{self.code} has no midplane component")
        return spec.rack_index(self.rack) * spec.midplanes_per_rack + self.midplane

    def node_index(self, spec: MachineSpec = MIRA) -> int:
        """Global node index in [0, spec.n_nodes) for compute-card codes."""
        if self.compute_card is None:
            raise LocationError(f"{self.code} does not identify a single node")
        within = self.node_board * spec.nodes_per_node_board + self.compute_card
        return self.midplane_index(spec) * spec.nodes_per_midplane + within

    @classmethod
    def from_midplane_index(cls, index: int, spec: MachineSpec = MIRA) -> "Location":
        """Midplane-level location for a global midplane index."""
        if not 0 <= index < spec.n_midplanes:
            raise LocationError(
                f"midplane index {index} out of range [0, {spec.n_midplanes})"
            )
        rack, midplane = divmod(index, spec.midplanes_per_rack)
        return cls(rack=spec.rack_name(rack), midplane=midplane)

    @classmethod
    def from_node_index(cls, index: int, spec: MachineSpec = MIRA) -> "Location":
        """Compute-card-level location for a global node index."""
        if not 0 <= index < spec.n_nodes:
            raise LocationError(f"node index {index} out of range [0, {spec.n_nodes})")
        midplane_index, within = divmod(index, spec.nodes_per_midplane)
        node_board, compute_card = divmod(within, spec.nodes_per_node_board)
        base = cls.from_midplane_index(midplane_index, spec)
        return cls(
            rack=base.rack,
            midplane=base.midplane,
            node_board=node_board,
            compute_card=compute_card,
        )
