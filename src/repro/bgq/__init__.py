"""BG/Q machine model: specs, locations, torus topology, partitions."""

from .floorplan import INTENSITY_RAMP, render_midplane_heatmap
from .components import CATEGORY_LEVELS, Category, Component, category_level
from .location import Level, Location
from .machine import MIRA, MIRA_SMALL, MachineSpec
from .partitions import Block, PartitionAllocator, allowed_block_sizes
from .topology import TorusTopology, balanced_dims

__all__ = [
    "MachineSpec",
    "MIRA",
    "MIRA_SMALL",
    "Level",
    "Location",
    "TorusTopology",
    "balanced_dims",
    "Block",
    "PartitionAllocator",
    "allowed_block_sizes",
    "render_midplane_heatmap",
    "INTENSITY_RAMP",
    "Component",
    "Category",
    "CATEGORY_LEVELS",
    "category_level",
]
