"""Hardware/software component taxonomy for RAS events.

Each RAS message in the catalog is attributed to a reporting component
(the BG/Q control-system subsystems) and a hardware category, and occurs
at a characteristic location granularity.  The taxonomy here follows the
component/category vocabulary of the BG/Q RAS book as used in the paper:
components like CNK (compute-node kernel), MC (machine controller),
MMCS (control system), BAREMETAL/FIRMWARE, DIAGS, and categories like
DDR, Processor, Network/Torus, PCI, power (BPD) and cooling.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .location import Level

__all__ = ["Component", "Category", "CATEGORY_LEVELS", "category_level"]


class Component(Enum):
    """RAS reporting component (who detected/raised the event).

    The first group is the BG/Q control-system vocabulary used by the
    paper; the second group generalizes it for non-Mira trace backends
    (:mod:`repro.adapters`), whose logs attribute events to cluster
    managers, node agents, fabrics, storage, and accelerators instead.
    """

    CNK = "CNK"  # compute node kernel
    MC = "MC"  # machine controller
    MMCS = "MMCS"  # midplane monitoring and control system
    FIRMWARE = "FIRMWARE"
    BAREMETAL = "BAREMETAL"
    DIAGS = "DIAGS"
    CTRLNET = "CTRLNET"  # control network
    MUDM = "MUDM"  # messaging unit device driver
    # Cross-system components (non-Mira backends).
    SCHEDULER = "SCHEDULER"  # cluster manager / batch scheduler
    NODE = "NODE"  # per-node health agent
    RUNTIME = "RUNTIME"  # user-space runtime / container layer
    STORAGE = "STORAGE"  # parallel/distributed filesystem
    FABRIC = "FABRIC"  # interconnect fabric manager
    GPU = "GPU"  # accelerator driver/stack


class Category(Enum):
    """Hardware/software category the event concerns."""

    DDR = "DDR"  # memory subsystem
    PROCESSOR = "Processor"
    TORUS = "Torus"  # 5D network
    OPTICS = "Optics"  # optical links between midplanes
    PCI = "PCI"
    NODE_BOARD = "NodeBoard"
    SERVICE_CARD = "ServiceCard"
    BULK_POWER = "BulkPower"
    COOLANT = "Coolant"
    CLOCK = "Clock"
    SOFTWARE = "Software"  # kernel/control-system software
    JOB = "Job"  # job-lifecycle events raised by the control system
    # Cross-system categories (non-Mira backends).
    NETWORK = "Network"  # generic interconnect (non-torus fabrics)
    GPU = "GPU"  # accelerator hardware (ECC, XID, thermal)
    FILESYSTEM = "Filesystem"  # storage-side faults


CATEGORY_LEVELS: dict[Category, Level] = {
    Category.DDR: Level.COMPUTE_CARD,
    Category.PROCESSOR: Level.COMPUTE_CARD,
    Category.TORUS: Level.COMPUTE_CARD,
    Category.OPTICS: Level.MIDPLANE,
    Category.PCI: Level.NODE_BOARD,
    Category.NODE_BOARD: Level.NODE_BOARD,
    Category.SERVICE_CARD: Level.MIDPLANE,
    Category.BULK_POWER: Level.RACK,
    Category.COOLANT: Level.RACK,
    Category.CLOCK: Level.RACK,
    Category.SOFTWARE: Level.COMPUTE_CARD,
    Category.JOB: Level.MIDPLANE,
    Category.NETWORK: Level.MIDPLANE,
    Category.GPU: Level.COMPUTE_CARD,
    Category.FILESYSTEM: Level.MIDPLANE,
}
"""The location granularity at which each category's events occur."""


def category_level(category: Category) -> Level:
    """Location granularity for a category (defaulting to compute card)."""
    return CATEGORY_LEVELS.get(category, Level.COMPUTE_CARD)


@dataclass(frozen=True)
class ComponentProfile:
    """Static profile pairing a component with the categories it raises."""

    component: Component
    categories: tuple[Category, ...]


COMPONENT_PROFILES: tuple[ComponentProfile, ...] = (
    ComponentProfile(Component.CNK, (Category.SOFTWARE, Category.DDR, Category.PROCESSOR, Category.JOB)),
    ComponentProfile(Component.MC, (Category.BULK_POWER, Category.COOLANT, Category.CLOCK, Category.SERVICE_CARD)),
    ComponentProfile(Component.MMCS, (Category.JOB, Category.SOFTWARE, Category.NODE_BOARD)),
    ComponentProfile(Component.FIRMWARE, (Category.DDR, Category.PROCESSOR, Category.TORUS)),
    ComponentProfile(Component.BAREMETAL, (Category.PCI, Category.NODE_BOARD)),
    ComponentProfile(Component.DIAGS, (Category.DDR, Category.TORUS, Category.OPTICS)),
    ComponentProfile(Component.CTRLNET, (Category.OPTICS, Category.CLOCK)),
    ComponentProfile(Component.MUDM, (Category.TORUS, Category.OPTICS)),
)
