"""5D torus topology of a BG/Q machine.

Blue Gene/Q arranges compute nodes in a five-dimensional torus
(A, B, C, D, E); Mira's full-machine torus is 8 x 12 x 16 x 16 x 2.
Each midplane is itself a 4 x 4 x 4 x 4 x 2 sub-torus and midplanes tile
the machine in a 2 x 3 x 4 x 4 grid.  For scaled-down specs the same
construction is applied with balanced factorizations, so the hierarchy
(node-in-midplane, midplane-in-machine) is preserved at any size.

The torus is what gives RAS locality analysis its geometry: distances
between failing nodes, and neighborhoods of a fault, are torus metrics.
"""

from __future__ import annotations

from functools import lru_cache

import networkx as nx
import numpy as np

from .machine import MIRA, MachineSpec

__all__ = ["TorusTopology", "balanced_dims"]


def balanced_dims(n: int, k: int) -> tuple[int, ...]:
    """Factor ``n`` into ``k`` near-equal integer factors (sorted ascending).

    Prime factors are assigned greedily, largest first, to the currently
    smallest dimension; this yields (2, 3, 4, 4) for Mira's 96 midplanes
    and (4, 4, 4, 4) for the 256 node-pairs of a midplane.
    """
    if n < 1 or k < 1:
        raise ValueError(f"need n >= 1 and k >= 1, got n={n}, k={k}")
    primes: list[int] = []
    remaining = n
    factor = 2
    while factor * factor <= remaining:
        while remaining % factor == 0:
            primes.append(factor)
            remaining //= factor
        factor += 1
    if remaining > 1:
        primes.append(remaining)
    dims = [1] * k
    for prime in sorted(primes, reverse=True):
        dims[int(np.argmin(dims))] *= prime
    return tuple(sorted(dims))


class TorusTopology:
    """Coordinate system and metric of the machine's 5D torus."""

    def __init__(self, spec: MachineSpec = MIRA):
        self.spec = spec
        if spec.nodes_per_midplane % 2 != 0:
            raise ValueError("nodes_per_midplane must be even (E dimension is 2)")
        self.midplane_grid = balanced_dims(spec.n_midplanes, 4)
        inner = balanced_dims(spec.nodes_per_midplane // 2, 4)
        self.midplane_dims = inner + (2,)
        self.dims = tuple(
            g * d for g, d in zip(self.midplane_grid, self.midplane_dims[:4])
        ) + (2,)

    # ------------------------------------------------------------------
    # coordinate mapping
    # ------------------------------------------------------------------

    def midplane_coords(self, midplane_index: int) -> tuple[int, int, int, int]:
        """Grid position of a midplane within the machine."""
        if not 0 <= midplane_index < self.spec.n_midplanes:
            raise ValueError(f"midplane index {midplane_index} out of range")
        coords = []
        rest = midplane_index
        for dim in reversed(self.midplane_grid):
            rest, coord = divmod(rest, dim)
            coords.append(coord)
        return tuple(reversed(coords))

    def node_coords(self, node_index: int) -> tuple[int, int, int, int, int]:
        """Full-machine (A, B, C, D, E) coordinates of a node."""
        if not 0 <= node_index < self.spec.n_nodes:
            raise ValueError(f"node index {node_index} out of range")
        midplane_index, within = divmod(node_index, self.spec.nodes_per_midplane)
        grid = self.midplane_coords(midplane_index)
        inner = []
        rest = within
        for dim in reversed(self.midplane_dims):
            rest, coord = divmod(rest, dim)
            inner.append(coord)
        inner = list(reversed(inner))
        outer = [
            g * d + w for g, d, w in zip(grid, self.midplane_dims[:4], inner[:4])
        ]
        return tuple(outer) + (inner[4],)

    def coords_to_node(self, coords: tuple[int, int, int, int, int]) -> int:
        """Inverse of :meth:`node_coords`."""
        if len(coords) != 5:
            raise ValueError("expected 5 coordinates")
        for coord, dim in zip(coords, self.dims):
            if not 0 <= coord < dim:
                raise ValueError(f"coordinate {coords} outside torus {self.dims}")
        grid = []
        inner = []
        for coord, inner_dim in zip(coords[:4], self.midplane_dims[:4]):
            g, w = divmod(coord, inner_dim)
            grid.append(g)
            inner.append(w)
        inner.append(coords[4])
        midplane_index = 0
        for g, dim in zip(grid, self.midplane_grid):
            midplane_index = midplane_index * dim + g
        within = 0
        for w, dim in zip(inner, self.midplane_dims):
            within = within * dim + w
        return midplane_index * self.spec.nodes_per_midplane + within

    # ------------------------------------------------------------------
    # metric
    # ------------------------------------------------------------------

    def distance(self, node_a: int, node_b: int) -> int:
        """Hop distance on the torus (wraparound Manhattan metric)."""
        a = self.node_coords(node_a)
        b = self.node_coords(node_b)
        total = 0
        for ca, cb, dim in zip(a, b, self.dims):
            straight = abs(ca - cb)
            total += min(straight, dim - straight)
        return total

    def neighbors(self, node_index: int) -> list[int]:
        """The (up to 10) torus neighbors of a node, deduplicated for
        degenerate dimensions of size <= 2."""
        coords = self.node_coords(node_index)
        seen = set()
        out = []
        for axis, dim in enumerate(self.dims):
            if dim == 1:
                continue
            for step in (-1, 1):
                shifted = list(coords)
                shifted[axis] = (coords[axis] + step) % dim
                neighbor = self.coords_to_node(tuple(shifted))
                if neighbor != node_index and neighbor not in seen:
                    seen.add(neighbor)
                    out.append(neighbor)
        return out

    @lru_cache(maxsize=4)
    def graph(self) -> nx.Graph:
        """The torus as a networkx graph (small machines only).

        Raises
        ------
        ValueError
            For machines above 4096 nodes, where materializing the graph
            would be wasteful; use :meth:`distance` directly instead.
        """
        if self.spec.n_nodes > 4096:
            raise ValueError(
                f"{self.spec.name} has {self.spec.n_nodes} nodes; "
                "graph() is limited to 4096"
            )
        g = nx.Graph()
        g.add_nodes_from(range(self.spec.n_nodes))
        for node in range(self.spec.n_nodes):
            for neighbor in self.neighbors(node):
                g.add_edge(node, neighbor)
        return g
