"""Partition (block) allocation over midplanes.

Cobalt schedules Mira jobs onto *blocks*: aligned groups of midplanes
whose sizes are 512, 1024, 2048, 4096, 8192, 16384, 24576, or 49152
nodes (1, 2, 4, 8, 16, 32, 48, or 96 midplanes).  The minimum
allocation is one midplane, so a 13-node job still occupies 512 nodes —
a property several of the paper's core-hour analyses depend on.

:class:`PartitionAllocator` is a buddy-style allocator over the
machine's midplane array: a block of size ``s`` midplanes must start at
a multiple of ``s`` (half- and full-machine blocks anchored at 0/half),
which guarantees blocks either nest or are disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocationError

from .location import Location
from .machine import MIRA, MachineSpec

__all__ = ["Block", "PartitionAllocator", "allowed_block_sizes"]


def allowed_block_sizes(spec: MachineSpec = MIRA) -> list[int]:
    """Allocatable block sizes in midplanes, ascending.

    Mira exposed blocks of 512, 1024, 2048, 4096, 8192, 12288, 16384,
    24576, 32768 and 49152 nodes — i.e. 1, 2, 4, 8, 16, 24, 32, 48, 64
    and 96 midplanes: every power of two that fits, plus the 3x2^k
    "row" blocks (24, 48, 96) the rack geometry allows.
    """
    total = spec.n_midplanes
    sizes = set()
    size = 1
    while size <= total:
        sizes.add(size)
        if size >= 8 and 3 * size <= total:
            sizes.add(3 * size)
        size *= 2
    sizes.add(total)
    return sorted(sizes)


@dataclass(frozen=True)
class Block:
    """An allocated block of contiguous midplanes."""

    name: str
    first_midplane: int
    n_midplanes: int
    spec: MachineSpec = field(default=MIRA, repr=False, compare=False)

    @property
    def n_nodes(self) -> int:
        """Compute nodes in the block."""
        return self.n_midplanes * self.spec.nodes_per_midplane

    @property
    def midplane_indices(self) -> range:
        """Global midplane indices covered by this block."""
        return range(self.first_midplane, self.first_midplane + self.n_midplanes)

    @property
    def locations(self) -> list[Location]:
        """Midplane-level locations covered by this block."""
        return [
            Location.from_midplane_index(i, self.spec) for i in self.midplane_indices
        ]

    def contains_midplane(self, midplane_index: int) -> bool:
        """True when the global midplane index lies in this block."""
        return self.first_midplane <= midplane_index < self.first_midplane + self.n_midplanes


class PartitionAllocator:
    """Buddy-style allocator of midplane blocks.

    The allocator tracks a busy bitmap over midplanes.  ``allocate``
    rounds the node request up to the next allowed block size and
    returns the lowest-addressed aligned free block, mimicking a
    deterministic first-fit policy.
    """

    def __init__(self, spec: MachineSpec = MIRA):
        self.spec = spec
        self._n_midplanes = spec.n_midplanes
        self._nodes_per_midplane = spec.nodes_per_midplane
        self._busy = np.zeros(spec.n_midplanes, dtype=bool)
        self._n_busy = 0
        self._sizes = allowed_block_sizes(spec)
        self._size_cache: dict[int, int] = {}
        self._active: dict[str, Block] = {}

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------

    def block_midplanes_for(self, n_nodes: int) -> int:
        """Midplanes needed for an ``n_nodes`` request (rounded up to an
        allowed block size; sub-midplane requests get one midplane).

        Raises
        ------
        AllocationError
            If the request exceeds the machine.
        """
        cached = self._size_cache.get(n_nodes)
        if cached is not None:
            return cached
        if n_nodes < 1:
            raise AllocationError(f"cannot allocate {n_nodes} nodes")
        needed = -(-n_nodes // self._nodes_per_midplane)  # ceil division
        for size in self._sizes:
            if size >= needed:
                self._size_cache[n_nodes] = size
                return size
        raise AllocationError(
            f"request for {n_nodes} nodes exceeds {self.spec.name} "
            f"({self.spec.n_nodes} nodes)"
        )

    def _aligned_starts(self, size: int) -> range:
        # A size-s block must start at a multiple of s; this guarantees
        # any two blocks either nest or are disjoint (buddy property).
        return range(0, self.spec.n_midplanes - size + 1, size)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def allocate(self, n_nodes: int) -> Block | None:
        """Allocate a block for ``n_nodes`` nodes; None when nothing fits
        right now (caller queues and retries)."""
        size = self.block_midplanes_for(n_nodes)
        if size > self._n_midplanes - self._n_busy:
            return None
        for start in self._aligned_starts(size):
            window = self._busy[start : start + size]
            if not window.any():
                self._busy[start : start + size] = True
                self._n_busy += size
                block = self._make_block(start, size)
                self._active[block.name] = block
                return block
        return None

    def release(self, block: Block) -> None:
        """Return a block's midplanes to the free pool.

        Raises
        ------
        AllocationError
            If the block is not currently allocated (double release).
        """
        if block.name not in self._active:
            raise AllocationError(f"block {block.name} is not allocated")
        del self._active[block.name]
        self._busy[block.first_midplane : block.first_midplane + block.n_midplanes] = False
        self._n_busy -= block.n_midplanes

    def _make_block(self, start: int, size: int) -> Block:
        first = Location.from_midplane_index(start, self.spec)
        last = Location.from_midplane_index(start + size - 1, self.spec)
        nodes = size * self.spec.nodes_per_midplane
        name = f"{self.spec.name.upper()}-{first.code}-{last.code}-{nodes}"
        return Block(
            name=name, first_midplane=start, n_midplanes=size, spec=self.spec
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def busy_midplanes(self) -> int:
        """Number of currently allocated midplanes."""
        return self._n_busy

    @property
    def free_midplanes(self) -> int:
        """Number of currently free midplanes."""
        return self._n_midplanes - self._n_busy

    @property
    def active_blocks(self) -> list[Block]:
        """Currently allocated blocks."""
        return list(self._active.values())

    def utilization(self) -> float:
        """Fraction of midplanes allocated."""
        return self.busy_midplanes / self.spec.n_midplanes
