"""ASCII machine-floor rendering.

Renders per-midplane quantities (fatal-event counts, utilization) as a
machine-floor heatmap in plain text — the terminal stand-in for the
paper's locality heatmap figures.  Racks are laid out in their physical
rows/columns; each rack cell shows one intensity character per
midplane.
"""

from __future__ import annotations

import numpy as np

from .machine import MIRA, MachineSpec

__all__ = ["render_midplane_heatmap", "INTENSITY_RAMP"]

INTENSITY_RAMP = " .:-=+*#%@"
"""Ten intensity levels, blank = zero, '@' = maximum."""


def render_midplane_heatmap(
    values,
    spec: MachineSpec = MIRA,
    title: str | None = None,
) -> str:
    """Render per-midplane values as a rack-grid heatmap.

    ``values`` must have one entry per global midplane index.  Values
    are scaled linearly into the intensity ramp with the zero level
    reserved for exact zeros.

    Raises
    ------
    ValueError
        If the value vector length does not match the machine.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (spec.n_midplanes,):
        raise ValueError(
            f"expected {spec.n_midplanes} midplane values, got {values.shape}"
        )
    peak = values.max()
    levels = np.zeros(spec.n_midplanes, dtype=int)
    if peak > 0:
        positive = values > 0
        scaled = values / peak * (len(INTENSITY_RAMP) - 2)
        levels[positive] = 1 + scaled[positive].astype(int)
        levels = np.minimum(levels, len(INTENSITY_RAMP) - 1)

    lines = []
    if title:
        lines.append(title)
    header = "      " + " ".join(
        f"{column:X} " for column in range(spec.rack_columns)
    )
    lines.append(header)
    for row in range(spec.rack_rows):
        cells = []
        for column in range(spec.rack_columns):
            rack_index = row * spec.rack_columns + column
            base = rack_index * spec.midplanes_per_rack
            chars = "".join(
                INTENSITY_RAMP[levels[base + m]]
                for m in range(spec.midplanes_per_rack)
            )
            cells.append(chars)
        lines.append(f"row {row:X} " + " ".join(cells))
    lines.append(
        f"(each cell = one rack, {spec.midplanes_per_rack} chars = midplanes; "
        f"ramp '{INTENSITY_RAMP}' scaled to max {peak:g})"
    )
    return "\n".join(lines)
