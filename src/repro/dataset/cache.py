"""Content-addressed columnar cache for :class:`~repro.dataset.mira.MiraDataset`.

Parsing the four CSV logs (plus validation) dominates ``repro-report``
wall time; synthesis dominates when no dataset directory is given.
This module caches the fully-assembled dataset as a compressed ``.npz``
bundle (see :mod:`repro.table.npzio`) keyed by a *fingerprint*:

- **Directory loads** — SHA-256 over the dataset schema version, the
  toolkit version, and every source file's name, size, and content
  hash.  Any edit to any source file changes the fingerprint, so a
  stale entry can never be served (``touch`` alone does not invalidate:
  the fingerprint is content-addressed, not mtime-addressed).
- **Synthesis** — SHA-256 over the schema version, toolkit version,
  machine-spec fields, ``n_days``, and ``seed``.  Only parameter-free
  syntheses are cached; custom generator params bypass the cache
  entirely rather than risk a collision.

Entries live in ``<dataset_dir>/.repro-cache/`` for directory loads and
in ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) for syntheses.
Storing is best-effort — a read-only filesystem degrades to uncached
operation, never to an error — and lenient loads that quarantined or
degraded anything are **never** stored, so a damaged dataset cannot
poison the cache for a later repaired load.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Mapping

from repro.bgq.machine import MIRA, MachineSpec
from repro.errors import ParseError
from repro.table import Table, attach_arena, read_npz, write_npz
from repro.table.arena import prune_stale_temps, write_arena

try:  # tracing is optional: without repro.obs the cache runs untraced
    from repro.obs.trace import add as trace_add
    from repro.obs.trace import span as trace_span
except ImportError:  # pragma: no cover - exercised by the obs-less drill

    class _SpanOff:
        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            return False

        def note(self, **attrs):
            return None

    _SPAN_OFF = _SpanOff()

    def trace_span(name, **attrs):
        return _SPAN_OFF

    def trace_add(name, value=1):
        return None


__all__ = [
    "SCHEMA_VERSION",
    "default_cache_dir",
    "fingerprint_directory",
    "fingerprint_synthesis",
    "fingerprint_for_run",
    "dataset_cache_path",
    "synthesis_cache_path",
    "dataset_arena_path",
    "synthesis_arena_path",
    "load_cached_bundle",
    "store_bundle",
    "load_arena",
    "store_arena",
]

#: Bump whenever the dataset schemas or the cached-bundle layout change;
#: old entries then miss on fingerprint and are pruned on the next store.
#: v2: bundle meta carries the trace backend name.
SCHEMA_VERSION = 2

#: Files that participate in a dataset directory's fingerprint (the
#: cache subdirectory itself never does).
FINGERPRINT_FILES = (
    "ras.csv",
    "jobs.csv",
    "tasks.csv",
    "io.csv",
    "meta.jsonl",
    "incidents.jsonl",
)

_CACHE_SUBDIR = ".repro-cache"


def default_cache_dir() -> Path:
    """Cache directory for synthesis entries (``$REPRO_CACHE_DIR`` wins)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def _versioned_hasher() -> "hashlib._Hash":
    from repro import __version__

    digest = hashlib.sha256()
    digest.update(f"schema={SCHEMA_VERSION};repro={__version__};".encode())
    return digest


def fingerprint_directory(directory: str | Path) -> str:
    """Content fingerprint of a dataset directory's source files."""
    directory = Path(directory)
    digest = _versioned_hasher()
    for name in FINGERPRINT_FILES:
        path = directory / name
        if not path.exists():
            digest.update(f"{name}=absent;".encode())
            continue
        content = path.read_bytes()
        digest.update(
            f"{name}:{len(content)}:{hashlib.sha256(content).hexdigest()};".encode()
        )
    return digest.hexdigest()


def fingerprint_synthesis(
    spec: MachineSpec,
    n_days: float,
    seed: int,
    scale: float = 1.0,
    backend: str = "mira",
) -> str:
    """Fingerprint of a parameter-free synthesis request.

    ``scale`` is the fleet replication factor and ``backend`` the trace
    backend of :meth:`~repro.dataset.mira.MiraDataset.synthesize`; their
    defaults (``1.0`` / ``"mira"``) are deliberately left out of the
    hash so every fingerprint minted before each knob existed stays
    valid.  ``spec`` is always the *base* machine — the fleet spec is
    derived from ``(spec, scale)``, and a non-mira backend pins its own
    spec.
    """
    digest = _versioned_hasher()
    digest.update(
        (
            f"spec={spec.name}:{spec.rack_rows}:{spec.rack_columns}:"
            f"{spec.midplanes_per_rack}:{spec.node_boards_per_midplane}:"
            f"{spec.nodes_per_node_board}:{spec.cores_per_node};"
            f"n_days={n_days!r};seed={seed};"
        ).encode()
    )
    if scale != 1.0:
        digest.update(f"scale={scale!r};".encode())
    if backend != "mira":
        digest.update(f"backend={backend};".encode())
    return digest.hexdigest()


def fingerprint_for_run(
    dataset_dir: str | Path | None,
    n_days: float,
    seed: int,
    spec: MachineSpec = MIRA,
    scale: float = 1.0,
    backend: str = "mira",
) -> str:
    """Fingerprint identifying a report run's input dataset.

    The run journal pins this at run start and ``--resume`` refuses a
    mismatch, reusing the cache's content-addressed fingerprints: a
    directory load hashes the source files' contents
    (:func:`fingerprint_directory`), a synthesis hashes the generating
    parameters (:func:`fingerprint_synthesis`).  Either way, resumed
    outcomes can only ever be merged with outcomes computed from the
    same data.
    """
    if dataset_dir:
        return fingerprint_directory(dataset_dir)
    if backend != "mira":
        from repro.adapters import get_backend

        spec = get_backend(backend).spec
    return fingerprint_synthesis(spec, n_days, seed, scale, backend)


def dataset_cache_path(directory: str | Path, fingerprint: str) -> Path:
    """Where a directory load's cache entry lives."""
    return Path(directory) / _CACHE_SUBDIR / f"dataset-{fingerprint[:32]}.npz"


def synthesis_cache_path(fingerprint: str) -> Path:
    """Where a synthesis cache entry lives."""
    return default_cache_dir() / f"synth-{fingerprint[:32]}.npz"


def dataset_arena_path(directory: str | Path, fingerprint: str) -> Path:
    """Where a directory load's memory-mapped arena lives.

    Kept beside the ``.npz`` entry under the same content fingerprint:
    the ``.npz`` is the portable/cold format, the arena the hot
    zero-copy one materialized from it on first ``mode="mmap"`` use.
    """
    return Path(directory) / _CACHE_SUBDIR / f"dataset-{fingerprint[:32]}.arena"


def synthesis_arena_path(fingerprint: str) -> Path:
    """Where a synthesis's memory-mapped arena lives."""
    return default_cache_dir() / f"synth-{fingerprint[:32]}.arena"


def load_cached_bundle(path: Path) -> tuple[dict[str, Table], dict] | None:
    """Read a cache entry; a missing or corrupt entry is a miss.

    Corrupt entries are deleted on sight so they cannot shadow the slot
    forever.
    """
    if not path.exists():
        trace_add("cache.miss")
        return None
    size = path.stat().st_size
    with trace_span("cache.read", file=path.name, bytes=size):
        try:
            bundle = read_npz(path)
        except ParseError:
            try:
                path.unlink()
            except OSError:
                pass
            trace_add("cache.corrupt")
            trace_add("cache.miss")
            return None
    trace_add("cache.hit")
    trace_add("cache.read_bytes", size)
    return bundle


def store_bundle(
    path: Path,
    tables: Mapping[str, Table],
    meta: Mapping,
    *,
    prune_siblings: bool = False,
) -> bool:
    """Best-effort write of a cache entry.

    Returns True when the entry was written.  With ``prune_siblings``
    (used for per-directory entries, where only the current fingerprint
    is ever valid) other ``*.npz`` entries beside ``path`` are removed
    so an edited dataset does not accumulate stale bundles.  Synthesis
    entries are not pruned — different ``(spec, days, seed)`` keys are
    all simultaneously valid.
    """
    if path.parent.exists():
        # A SIGKILLed earlier writer may have left *.tmp.<pid> files
        # beside the entry; reclaim any whose writer is dead.
        prune_stale_temps(path.parent)
    with trace_span("cache.write", file=path.name) as sp:
        try:
            write_npz(path, tables, meta=meta)
            written = path.stat().st_size
        except OSError:
            return False
        sp.note(bytes=written)
    trace_add("cache.store")
    trace_add("cache.write_bytes", written)
    if prune_siblings:
        try:
            for sibling in path.parent.glob("*.npz"):
                if sibling != path:
                    sibling.unlink(missing_ok=True)
        except OSError:
            pass
    return True


def load_arena(path: Path, fingerprint: str) -> tuple[dict[str, Table], dict] | None:
    """Attach an arena cache entry; a missing, corrupt, or stale one is a miss.

    Attachment goes through the per-process cache
    (:func:`repro.table.attach_arena`), so repeated loads of the same
    entry share one mapping and the returned tables pickle as
    descriptors.  A corrupt or fingerprint-mismatched file is deleted
    on sight, exactly like a corrupt ``.npz`` entry.
    """
    if not path.exists():
        trace_add("arena.miss")
        return None
    with trace_span("arena.attach", file=path.name, bytes=path.stat().st_size):
        try:
            tables, meta = attach_arena(path, fingerprint)
        except (ParseError, OSError) as error:
            if isinstance(error, ParseError):
                try:
                    path.unlink()
                except OSError:
                    pass
            trace_add("arena.corrupt")
            trace_add("arena.miss")
            return None
    trace_add("arena.hit")
    return tables, meta


def store_arena(
    path: Path,
    tables: Mapping[str, Table],
    meta: Mapping,
    fingerprint: str,
    *,
    prune_siblings: bool = False,
) -> bool:
    """Best-effort write of an arena entry keyed by ``fingerprint``.

    The fingerprint is embedded in the arena's meta so an attach can
    verify it belongs to the current sources.  ``prune_siblings``
    removes other ``*.arena`` entries beside ``path`` (per-directory
    entries: only the current fingerprint is ever valid); stale
    ``*.tmp.*`` leftovers from killed writers are always pruned by the
    writer itself.  Returns True when the entry was written.
    """
    stored_meta = dict(meta)
    stored_meta["fingerprint"] = fingerprint
    with trace_span("arena.write", file=path.name) as sp:
        try:
            write_arena(path, tables, meta=stored_meta)
            written = path.stat().st_size
        except OSError:
            return False
        sp.note(bytes=written)
    trace_add("arena.store")
    trace_add("arena.write_bytes", written)
    if prune_siblings:
        try:
            for sibling in path.parent.glob("*.arena"):
                if sibling != path:
                    sibling.unlink(missing_ok=True)
        except OSError:
            pass
    return True
