"""Content-addressed columnar cache for :class:`~repro.dataset.mira.MiraDataset`.

Parsing the four CSV logs (plus validation) dominates ``repro-report``
wall time; synthesis dominates when no dataset directory is given.
This module caches the fully-assembled dataset as a compressed ``.npz``
bundle (see :mod:`repro.table.npzio`) keyed by a *fingerprint*:

- **Directory loads** — SHA-256 over the dataset schema version, the
  toolkit version, and every source file's name, size, and content
  hash.  Any edit to any source file changes the fingerprint, so a
  stale entry can never be served (``touch`` alone does not invalidate:
  the fingerprint is content-addressed, not mtime-addressed).
- **Synthesis** — SHA-256 over the schema version, toolkit version,
  machine-spec fields, ``n_days``, and ``seed``.  Only parameter-free
  syntheses are cached; custom generator params bypass the cache
  entirely rather than risk a collision.

Entries live in ``<dataset_dir>/.repro-cache/`` for directory loads and
in ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) for syntheses.
Storing is best-effort — a read-only filesystem degrades to uncached
operation, never to an error — and lenient loads that quarantined or
degraded anything are **never** stored, so a damaged dataset cannot
poison the cache for a later repaired load.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Mapping

from repro.bgq.machine import MIRA, MachineSpec
from repro.errors import ParseError
from repro.table import Table, read_npz, write_npz

try:  # tracing is optional: without repro.obs the cache runs untraced
    from repro.obs.trace import add as trace_add
    from repro.obs.trace import span as trace_span
except ImportError:  # pragma: no cover - exercised by the obs-less drill

    class _SpanOff:
        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            return False

        def note(self, **attrs):
            return None

    _SPAN_OFF = _SpanOff()

    def trace_span(name, **attrs):
        return _SPAN_OFF

    def trace_add(name, value=1):
        return None


__all__ = [
    "SCHEMA_VERSION",
    "default_cache_dir",
    "fingerprint_directory",
    "fingerprint_synthesis",
    "fingerprint_for_run",
    "dataset_cache_path",
    "synthesis_cache_path",
    "load_cached_bundle",
    "store_bundle",
]

#: Bump whenever the dataset schemas or the cached-bundle layout change;
#: old entries then miss on fingerprint and are pruned on the next store.
SCHEMA_VERSION = 1

#: Files that participate in a dataset directory's fingerprint (the
#: cache subdirectory itself never does).
FINGERPRINT_FILES = (
    "ras.csv",
    "jobs.csv",
    "tasks.csv",
    "io.csv",
    "meta.jsonl",
    "incidents.jsonl",
)

_CACHE_SUBDIR = ".repro-cache"


def default_cache_dir() -> Path:
    """Cache directory for synthesis entries (``$REPRO_CACHE_DIR`` wins)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def _versioned_hasher() -> "hashlib._Hash":
    from repro import __version__

    digest = hashlib.sha256()
    digest.update(f"schema={SCHEMA_VERSION};repro={__version__};".encode())
    return digest


def fingerprint_directory(directory: str | Path) -> str:
    """Content fingerprint of a dataset directory's source files."""
    directory = Path(directory)
    digest = _versioned_hasher()
    for name in FINGERPRINT_FILES:
        path = directory / name
        if not path.exists():
            digest.update(f"{name}=absent;".encode())
            continue
        content = path.read_bytes()
        digest.update(
            f"{name}:{len(content)}:{hashlib.sha256(content).hexdigest()};".encode()
        )
    return digest.hexdigest()


def fingerprint_synthesis(spec: MachineSpec, n_days: float, seed: int) -> str:
    """Fingerprint of a parameter-free synthesis request."""
    digest = _versioned_hasher()
    digest.update(
        (
            f"spec={spec.name}:{spec.rack_rows}:{spec.rack_columns}:"
            f"{spec.midplanes_per_rack}:{spec.node_boards_per_midplane}:"
            f"{spec.nodes_per_node_board}:{spec.cores_per_node};"
            f"n_days={n_days!r};seed={seed};"
        ).encode()
    )
    return digest.hexdigest()


def fingerprint_for_run(
    dataset_dir: str | Path | None,
    n_days: float,
    seed: int,
    spec: MachineSpec = MIRA,
) -> str:
    """Fingerprint identifying a report run's input dataset.

    The run journal pins this at run start and ``--resume`` refuses a
    mismatch, reusing the cache's content-addressed fingerprints: a
    directory load hashes the source files' contents
    (:func:`fingerprint_directory`), a synthesis hashes the generating
    parameters (:func:`fingerprint_synthesis`).  Either way, resumed
    outcomes can only ever be merged with outcomes computed from the
    same data.
    """
    if dataset_dir:
        return fingerprint_directory(dataset_dir)
    return fingerprint_synthesis(spec, n_days, seed)


def dataset_cache_path(directory: str | Path, fingerprint: str) -> Path:
    """Where a directory load's cache entry lives."""
    return Path(directory) / _CACHE_SUBDIR / f"dataset-{fingerprint[:32]}.npz"


def synthesis_cache_path(fingerprint: str) -> Path:
    """Where a synthesis cache entry lives."""
    return default_cache_dir() / f"synth-{fingerprint[:32]}.npz"


def load_cached_bundle(path: Path) -> tuple[dict[str, Table], dict] | None:
    """Read a cache entry; a missing or corrupt entry is a miss.

    Corrupt entries are deleted on sight so they cannot shadow the slot
    forever.
    """
    if not path.exists():
        trace_add("cache.miss")
        return None
    size = path.stat().st_size
    with trace_span("cache.read", file=path.name, bytes=size):
        try:
            bundle = read_npz(path)
        except ParseError:
            try:
                path.unlink()
            except OSError:
                pass
            trace_add("cache.corrupt")
            trace_add("cache.miss")
            return None
    trace_add("cache.hit")
    trace_add("cache.read_bytes", size)
    return bundle


def store_bundle(
    path: Path,
    tables: Mapping[str, Table],
    meta: Mapping,
    *,
    prune_siblings: bool = False,
) -> bool:
    """Best-effort write of a cache entry.

    Returns True when the entry was written.  With ``prune_siblings``
    (used for per-directory entries, where only the current fingerprint
    is ever valid) other ``*.npz`` entries beside ``path`` are removed
    so an edited dataset does not accumulate stale bundles.  Synthesis
    entries are not pruned — different ``(spec, days, seed)`` keys are
    all simultaneously valid.
    """
    with trace_span("cache.write", file=path.name) as sp:
        try:
            write_npz(path, tables, meta=meta)
            written = path.stat().st_size
        except OSError:
            return False
        sp.note(bytes=written)
    trace_add("cache.store")
    trace_add("cache.write_bytes", written)
    if prune_siblings:
        try:
            for sibling in path.parent.glob("*.npz"):
                if sibling != path:
                    sibling.unlink(missing_ok=True)
        except OSError:
            pass
    return True
