"""The joint four-log Mira dataset.

:class:`MiraDataset` bundles the four data sources the paper joins —
RAS log, job-scheduling log, task log, I/O log — plus the synthesis
ground truth (the incident list), and handles synthesis, persistence,
and summary statistics.  Every analysis and experiment in the toolkit
takes a ``MiraDataset`` as input, so a real exported Mira trace can be
loaded from CSVs in place of a synthetic one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.bgq.machine import MIRA, MachineSpec
from repro.darshan import (
    IO_SCHEMA,
    DarshanGenerator,
    DarshanParams,
    io_to_table,
    validate_io_table,
)
from repro.errors import (
    BackendError,
    DatasetError,
    ParseError,
    QuarantineOverflowError,
)
from repro.ingest import ParseReport
from repro.ras import (
    RAS_SCHEMA,
    Incident,
    RasGenerator,
    RasGeneratorParams,
    default_catalog,
    validate_ras_table,
)
from repro.scheduler import (
    JOB_SCHEMA,
    CobaltScheduler,
    SchedulerParams,
    WorkloadModel,
    WorkloadParams,
    jobs_to_table,
    validate_job_table,
)
from repro.table import Table, read_csv, read_jsonl, write_csv, write_jsonl
from repro.tasks import (
    TASK_SCHEMA,
    TaskLogGenerator,
    TaskLogParams,
    tasks_to_table,
    validate_task_table,
)

from . import cache as _cache

try:  # tracing is optional: without repro.obs the dataset runs untraced
    from repro.obs.trace import add as trace_add
    from repro.obs.trace import span as trace_span
except ImportError:  # pragma: no cover - exercised by the obs-less drill

    class _SpanOff:
        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            return False

        def note(self, **attrs):
            return None

    _SPAN_OFF = _SpanOff()

    def trace_span(name, **attrs):
        return _SPAN_OFF

    def trace_add(name, value=1):
        return None


__all__ = ["MiraDataset"]

_LOG_FILES = {
    "ras": "ras.csv",
    "jobs": "jobs.csv",
    "tasks": "tasks.csv",
    "io": "io.csv",
}

_LOG_SCHEMAS = {
    "ras": RAS_SCHEMA,
    "jobs": JOB_SCHEMA,
    "tasks": TASK_SCHEMA,
    "io": IO_SCHEMA,
}

SECONDS_PER_DAY = 86_400.0


def _fleet_spec(spec: MachineSpec, k: int) -> MachineSpec:
    """``k`` identical systems modeled as one row-wise widened machine.

    Replication extends the rack grid row-wise so every location keeps
    the standard three-character rack name; BG/Q hex naming caps the
    grid at 16 rows, which bounds the factor (5× for Mira's 3 rows).
    """
    rows = spec.rack_rows * k
    if rows > 16:
        raise ValueError(
            f"scale={k} needs {rows} rack rows; BG/Q rack naming allows "
            f"at most 16 (max scale for {spec.name}: {16 // spec.rack_rows})"
        )
    return replace(spec, name=f"{spec.name}x{k}", rack_rows=rows)


_SPEC_META_FIELDS = (
    "spec_name",
    "rack_rows",
    "rack_columns",
    "midplanes_per_rack",
    "node_boards_per_midplane",
    "nodes_per_node_board",
    "cores_per_node",
)


def _spec_from_meta(meta: dict) -> MachineSpec:
    """Rebuild the machine spec from a ``meta.jsonl`` record.

    Raises
    ------
    DatasetError
        When the record lacks machine-spec fields.  Guessing a geometry
        here would silently run every location/attribution kernel
        against the wrong machine — callers that *want* a fallback must
        opt in explicitly (``assume_mira``).
    """
    missing = [f for f in _SPEC_META_FIELDS if f not in meta]
    if missing:
        raise DatasetError(
            f"meta.jsonl lacks machine-spec fields {missing}; re-export "
            "the dataset, or load leniently with assume_mira=True "
            "(--assume-mira) to force Mira geometry"
        )
    return MachineSpec(
        name=meta["spec_name"],
        rack_rows=meta["rack_rows"],
        rack_columns=meta["rack_columns"],
        midplanes_per_rack=meta["midplanes_per_rack"],
        node_boards_per_midplane=meta["node_boards_per_midplane"],
        nodes_per_node_board=meta["nodes_per_node_board"],
        cores_per_node=meta["cores_per_node"],
    )


def _read_incidents(directory: Path) -> list[Incident]:
    """Read the synthesis ground truth, absent for real traces."""
    path = directory / "incidents.jsonl"
    if not path.exists():
        return []
    return [
        Incident(
            incident_id=row["incident_id"],
            timestamp=row["timestamp"],
            msg_id=row["msg_id"],
            midplane_index=row["midplane_index"],
            n_events=row["n_events"],
            had_precursor=row.get("had_precursor", False),
        )
        for row in read_jsonl(path)
    ]


@dataclass
class MiraDataset:
    """The four logs plus synthesis metadata."""

    spec: MachineSpec
    n_days: float
    seed: int
    ras: Table
    jobs: Table
    tasks: Table
    io: Table
    incidents: list[Incident] = field(default_factory=list)
    #: Lenient-load quarantine/degradation record; ``None`` after a
    #: strict load or synthesis.
    ingestion: ParseReport | None = None
    #: Trace backend this dataset came from (see :mod:`repro.adapters`);
    #: drives schema/catalog validation and cross-system experiments.
    backend: str = "mira"

    # ------------------------------------------------------------------
    # synthesis
    # ------------------------------------------------------------------

    @classmethod
    def synthesize(
        cls,
        n_days: float,
        seed: int = 0,
        spec: MachineSpec = MIRA,
        workload_params: WorkloadParams | None = None,
        ras_params: RasGeneratorParams | None = None,
        scheduler_params: SchedulerParams | None = None,
        task_params: TaskLogParams | None = None,
        darshan_params: DarshanParams | None = None,
        cache: bool = True,
        refresh_cache: bool = False,
        mode: str = "ram",
        scale: float = 1.0,
        backend: str = "mira",
    ) -> "MiraDataset":
        """Generate a complete, internally consistent synthetic dataset.

        Pipeline: RAS stream (with ground-truth incidents) → workload
        intents → scheduler simulation (incidents kill overlapping
        jobs) → task log → I/O log → RAS block annotation via the
        event→job join.

        Parameter-free syntheses (all ``*_params`` left ``None``) are
        served from and stored to the columnar cache under
        ``$REPRO_CACHE_DIR`` (see :mod:`repro.dataset.cache`), keyed by
        ``(spec, n_days, seed)`` and the toolkit version.  ``cache=False``
        bypasses it; ``refresh_cache=True`` regenerates and overwrites.

        ``scale`` models a fleet of ``scale`` identical systems sharing
        one trace: the rack grid is replicated row-wise, and workload
        arrival, scheduler capacity, and incident rates all grow with
        it (combined with a multi-year ``n_days``, row counts reach the
        ~10⁷ range).  ``scale=1`` is the exact pre-knob pipeline, bit
        for bit — the default RNG streams are untouched.  Explicit
        ``workload_params`` are used as given, not auto-rescaled.

        ``backend`` selects the trace backend (:mod:`repro.adapters`):
        a non-``mira`` backend supplies its own machine spec, RAS
        catalog, and calibrated generator parameters — ``spec`` and
        ``scale`` cannot be combined with it, while explicit ``*_params``
        still win over the backend calibration (and disable caching, as
        always).  ``backend="mira"`` is the exact historical pipeline,
        bit for bit.

        ``mode="mmap"`` additionally materializes the cached bundle as
        a page-aligned columnar arena (:mod:`repro.table.arena`) and
        returns tables backed by read-only memory maps: loading is
        O(1) RAM until columns are touched, and worker processes
        attach the same mapping instead of receiving a pickled copy.
        It requires a cacheable synthesis (``cache=True`` and no custom
        ``*_params``), since the arena lives in the cache directory.
        """
        if mode not in ("ram", "mmap"):
            raise ValueError(f"mode must be 'ram' or 'mmap', got {mode!r}")
        if scale != int(scale) or scale < 1:
            raise ValueError(
                "scale must be a positive integer (fleet replication "
                f"factor), got {scale!r}"
            )
        backend_obj = None
        if backend != "mira":
            from repro.adapters import get_backend

            backend_obj = get_backend(backend)  # raises BackendError
            if spec is not MIRA:
                raise ValueError(
                    f"backend {backend!r} supplies its own machine spec; "
                    "pass spec only with backend='mira'"
                )
            if scale != 1.0:
                raise ValueError(
                    "the scale (fleet replication) knob supports only "
                    f"the mira backend, got backend={backend!r}"
                )
            spec = backend_obj.spec
        with trace_span("dataset.synthesize", n_days=n_days, seed=seed):
            # Cacheability is decided *before* the scale knob rewrites
            # workload_params: a scaled parameter-free synthesis is still
            # parameter-free as far as the fingerprint is concerned
            # (scale is hashed separately by fingerprint_synthesis).
            cacheable = cache and all(
                p is None
                for p in (
                    workload_params,
                    ras_params,
                    scheduler_params,
                    task_params,
                    darshan_params,
                )
            )
            if mode == "mmap" and not cacheable:
                raise ValueError(
                    "mode='mmap' requires a cacheable synthesis "
                    "(cache=True and no custom *_params): the arena is "
                    "materialized in the synthesis cache directory"
                )
            cache_path = arena_path = None
            if cacheable:
                fingerprint = _cache.fingerprint_synthesis(
                    spec, n_days, seed, scale, backend
                )
                cache_path = _cache.synthesis_cache_path(fingerprint)
                if mode == "mmap":
                    arena_path = _cache.synthesis_arena_path(fingerprint)
                if refresh_cache:
                    trace_add("cache.refresh")
                else:
                    if arena_path is not None:
                        bundle = _cache.load_arena(arena_path, fingerprint)
                        if bundle is not None:
                            return cls._from_bundle(*bundle)
                    bundle = _cache.load_cached_bundle(cache_path)
                    if bundle is not None:
                        if arena_path is not None:
                            return cls._via_arena(
                                arena_path, fingerprint, *bundle
                            )
                        return cls._from_bundle(*bundle)
            if scale != 1.0:
                k = int(scale)
                spec = _fleet_spec(spec, k)
                # The workload model auto-rescales to the widened spec
                # (WorkloadParams.scaled_to); RAS rates and the backfill
                # window are per-machine constants, so a fleet of k
                # systems needs them multiplied explicitly.  Derived
                # params stay out of the fingerprint: (spec, n_days,
                # seed, scale) determines them completely.
                if ras_params is None:
                    base_ras = RasGeneratorParams()
                    ras_params = replace(
                        base_ras,
                        info_rate_per_day=base_ras.info_rate_per_day * k,
                        warn_rate_per_day=base_ras.warn_rate_per_day * k,
                        incident_rate_per_day=base_ras.incident_rate_per_day * k,
                    )
                if scheduler_params is None:
                    base_sched = SchedulerParams()
                    scheduler_params = replace(
                        base_sched,
                        backfill_depth=base_sched.backfill_depth * k,
                    )
            catalog = None
            if backend_obj is not None:
                # Backend calibration fills whatever the caller left to
                # defaults; explicit *_params still win (and are already
                # uncacheable, so the fingerprint stays backend-pure).
                if workload_params is None:
                    workload_params = backend_obj.workload_params()
                if ras_params is None:
                    ras_params = backend_obj.ras_params()
                catalog = backend_obj.catalog()
            with trace_span("synth.ras"):
                ras_table, incidents = RasGenerator(
                    spec=spec, catalog=catalog, params=ras_params, seed=seed
                ).generate(n_days)
            with trace_span("synth.workload"):
                intents = WorkloadModel(
                    spec=spec, params=workload_params, seed=seed + 1
                ).generate(n_days)
            with trace_span("synth.scheduler"):
                result = CobaltScheduler(spec=spec, params=scheduler_params).run(
                    intents, incidents, horizon_days=n_days
                )
                jobs_table = jobs_to_table(result.jobs)
            with trace_span("synth.tasks"):
                task_records = TaskLogGenerator(
                    params=task_params, seed=seed + 2
                ).generate(result.jobs)
                tasks_table = tasks_to_table(task_records)
            with trace_span("synth.io"):
                io_records = DarshanGenerator(
                    params=darshan_params, seed=seed + 3
                ).generate(result.jobs)
                io_table = io_to_table(io_records)
            with trace_span("synth.annotate"):
                ras_table = cls._annotate_blocks(ras_table, jobs_table, spec)
            dataset = cls(
                spec=spec,
                n_days=n_days,
                seed=seed,
                ras=ras_table,
                jobs=jobs_table,
                tasks=tasks_table,
                io=io_table,
                incidents=incidents,
                backend=backend,
            )
            if cache_path is not None:
                _cache.store_bundle(
                    cache_path, dataset._tables(), dataset._bundle_meta()
                )
                if arena_path is not None:
                    return cls._via_arena(
                        arena_path,
                        fingerprint,
                        dataset._tables(),
                        dataset._bundle_meta(),
                    )
            return dataset

    @staticmethod
    def _annotate_blocks(ras: Table, jobs: Table, spec: MachineSpec) -> Table:
        """Fill the RAS ``block`` column from the event→job join."""
        from repro.core.attribution import NO_JOB, map_events_to_jobs

        if jobs.n_rows == 0:
            return ras
        mapped = map_events_to_jobs(ras, jobs, spec)
        block_of_job = dict(zip(jobs["job_id"].tolist(), jobs["block"].tolist()))
        blocks = np.array(
            ["" if j == NO_JOB else block_of_job[int(j)] for j in mapped],
            dtype=object,
        )
        return ras.with_column("block", blocks)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _tables(self) -> dict[str, Table]:
        """The four log tables keyed by attribute name."""
        return {attr: getattr(self, attr) for attr in _LOG_FILES}

    def _meta_record(self) -> dict:
        """The ``meta.jsonl`` record: spec fields plus span and seed."""
        return {
            "spec_name": self.spec.name,
            "rack_rows": self.spec.rack_rows,
            "rack_columns": self.spec.rack_columns,
            "midplanes_per_rack": self.spec.midplanes_per_rack,
            "node_boards_per_midplane": self.spec.node_boards_per_midplane,
            "nodes_per_node_board": self.spec.nodes_per_node_board,
            "cores_per_node": self.spec.cores_per_node,
            "n_days": self.n_days,
            "seed": self.seed,
            "backend": self.backend,
        }

    def _incident_rows(self) -> list[dict]:
        return [
            {
                "incident_id": i.incident_id,
                "timestamp": i.timestamp,
                "msg_id": i.msg_id,
                "midplane_index": i.midplane_index,
                "n_events": i.n_events,
                "had_precursor": i.had_precursor,
            }
            for i in self.incidents
        ]

    def _bundle_meta(self) -> dict:
        """Metadata stored alongside the tables in a cache bundle."""
        meta = self._meta_record()
        meta["incidents"] = self._incident_rows()
        return meta

    @classmethod
    def _via_arena(
        cls,
        arena_path: Path,
        fingerprint: str,
        tables: dict[str, Table],
        meta: dict,
        *,
        lenient: bool = False,
        prune: bool = False,
    ) -> "MiraDataset":
        """Materialize ``tables`` as an arena and return the attached view.

        Best-effort, like every cache write: when the filesystem refuses
        the arena (or a concurrent writer races us and leaves something
        unattachable), the in-RAM tables are returned unchanged instead
        of failing the load.
        """
        stored = _cache.store_arena(
            arena_path, tables, meta, fingerprint, prune_siblings=prune
        )
        if stored:
            bundle = _cache.load_arena(arena_path, fingerprint)
            if bundle is not None:
                return cls._from_bundle(*bundle, lenient=lenient)
        return cls._from_bundle(tables, meta, lenient=lenient)

    @classmethod
    def _from_bundle(
        cls, tables: dict[str, Table], meta: dict, *, lenient: bool = False
    ) -> "MiraDataset":
        """Rebuild a dataset from a cache bundle (no parsing, no checks —
        bundles are only ever written after a fully validated load)."""
        incidents = [
            Incident(
                incident_id=row["incident_id"],
                timestamp=row["timestamp"],
                msg_id=row["msg_id"],
                midplane_index=row["midplane_index"],
                n_events=row["n_events"],
                had_precursor=row.get("had_precursor", False),
            )
            for row in meta.get("incidents", [])
        ]
        return cls(
            spec=_spec_from_meta(meta),
            n_days=float(meta["n_days"]),
            seed=int(meta["seed"]),
            backend=str(meta.get("backend", "mira")),
            incidents=incidents,
            # Lenient loads always carry a report; a cache hit means the
            # sources were clean, so the report is empty.
            ingestion=ParseReport() if lenient else None,
            **{attr: tables[attr] for attr in _LOG_FILES},
        )

    def pickle_probe(self) -> tuple:
        """A cheap stand-in for probing picklability (O(columns), not O(rows)).

        The experiment engine pickles the dataset once per worker and
        needs to know *up front* whether that will work, without paying
        for a full serialization.  Arena-backed tables already pickle as
        tiny descriptors, so they go in whole; in-RAM tables are
        represented by a small head slice, which still exercises every
        column dtype.  The spec, incidents head, and ingestion report
        ride along because those are the realistic failure sources.
        """
        tables = {
            name: table if table._arena is not None else table.head(4)
            for name, table in self._tables().items()
        }
        return (
            self.spec,
            self.n_days,
            self.seed,
            tables,
            self.incidents[:4],
            self.ingestion,
        )

    def save(self, directory: str | Path) -> None:
        """Write the dataset as CSVs plus a JSONL metadata file."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for attr, filename in _LOG_FILES.items():
            write_csv(getattr(self, attr), directory / filename)
        write_jsonl([self._meta_record()], directory / "meta.jsonl")
        write_jsonl(self._incident_rows(), directory / "incidents.jsonl")

    @classmethod
    def load(
        cls,
        directory: str | Path,
        *,
        lenient: bool = False,
        max_bad_rows: int | None = None,
        assume_mira: bool = False,
        cache: bool = True,
        refresh_cache: bool = False,
        mode: str = "ram",
    ) -> "MiraDataset":
        """Load a dataset previously written by :meth:`save`.

        Strict mode (default) raises on the first problem.  Lenient mode
        quarantines bad rows, substitutes empty tables for missing or
        unsalvageable sources, and records everything it dropped in the
        returned dataset's ``ingestion`` report; ``max_bad_rows`` bounds
        the total quarantine size (exceeding it raises
        :class:`~repro.errors.QuarantineOverflowError`).

        A missing or unreadable ``meta.jsonl`` is *never* silently
        papered over, even leniently: the machine spec drives every
        location and attribution kernel, so guessing it wrong corrupts
        results instead of degrading them.  ``assume_mira=True``
        (``--assume-mira``) is the explicit opt-in that restores the old
        assume-Mira behavior for lenient loads, recorded as a
        degradation in the ingestion report.

        Loads are served from a columnar ``.npz`` cache under
        ``<directory>/.repro-cache`` when the source files' content
        fingerprint matches a stored entry (see
        :mod:`repro.dataset.cache`); any edit to any source file misses.
        Entries are only ever written after a fully clean load — a
        lenient load that quarantined rows or degraded a source is never
        cached.  ``cache=False`` bypasses the cache; ``refresh_cache=True``
        reloads from the CSVs and overwrites the entry.

        ``mode="mmap"`` serves the dataset from a page-aligned columnar
        arena beside the ``.npz`` entry (same content fingerprint, so
        editing any source file invalidates both): tables come back as
        read-only memory-mapped views, the load is O(1) RAM until
        columns are touched, and worker processes attach the mapping by
        descriptor instead of receiving a pickled copy.  The arena is
        materialized from the bundle on first ``mmap`` use.  Requires
        ``cache=True``; a lenient load that quarantined or degraded
        anything falls back to in-RAM tables (dirty data is never
        persisted, in either format).

        Raises
        ------
        DatasetError
            When a log file or the metadata is missing (strict), or when
            the directory holds no dataset files at all (both modes).
        ParseError
            When a log violates its schema (strict), or when lenient
            parsing quarantines more than ``max_bad_rows`` rows.
        """
        if mode not in ("ram", "mmap"):
            raise ValueError(f"mode must be 'ram' or 'mmap', got {mode!r}")
        if mode == "mmap" and not cache:
            raise ValueError(
                "mode='mmap' requires cache=True: the arena lives in the "
                "dataset's cache directory"
            )
        directory = Path(directory)
        with trace_span("dataset.load", directory=directory.name, lenient=lenient):
            cache_path = arena_path = None
            if cache and directory.is_dir():
                fingerprint = _cache.fingerprint_directory(directory)
                cache_path = _cache.dataset_cache_path(directory, fingerprint)
                if mode == "mmap":
                    arena_path = _cache.dataset_arena_path(directory, fingerprint)
                if refresh_cache:
                    trace_add("cache.refresh")
                else:
                    if arena_path is not None:
                        bundle = _cache.load_arena(arena_path, fingerprint)
                        if bundle is not None:
                            return cls._from_bundle(*bundle, lenient=lenient)
                    bundle = _cache.load_cached_bundle(cache_path)
                    if bundle is not None:
                        if arena_path is not None:
                            return cls._via_arena(
                                arena_path,
                                fingerprint,
                                *bundle,
                                lenient=lenient,
                                prune=True,
                            )
                        return cls._from_bundle(*bundle, lenient=lenient)
            if lenient:
                dataset = cls._load_lenient(directory, max_bad_rows, assume_mira)
            else:
                dataset = cls._load_strict(directory)
            if cache_path is not None and not dataset.ingestion:
                _cache.store_bundle(
                    cache_path,
                    dataset._tables(),
                    dataset._bundle_meta(),
                    prune_siblings=True,
                )
                if arena_path is not None:
                    return cls._via_arena(
                        arena_path,
                        fingerprint,
                        dataset._tables(),
                        dataset._bundle_meta(),
                        lenient=lenient,
                        prune=True,
                    )
            return dataset

    @classmethod
    def _load_strict(cls, directory: Path) -> "MiraDataset":
        """Parse and validate all sources, raising on the first problem."""
        missing = [
            f for f in list(_LOG_FILES.values()) + ["meta.jsonl"]
            if not (directory / f).exists()
        ]
        if missing:
            raise DatasetError(f"{directory}: missing dataset files {missing}")
        meta = read_jsonl(directory / "meta.jsonl")[0]
        spec = _spec_from_meta(meta)
        incidents = _read_incidents(directory)
        tables = {
            attr: read_csv(directory / filename)
            for attr, filename in _LOG_FILES.items()
        }
        validate_ras_table(tables["ras"])
        validate_job_table(tables["jobs"])
        validate_task_table(tables["tasks"])
        validate_io_table(tables["io"])
        return cls(
            spec=spec,
            n_days=meta["n_days"],
            seed=meta["seed"],
            backend=str(meta.get("backend", "mira")),
            incidents=incidents,
            **tables,
        )

    @classmethod
    def _load_lenient(
        cls, directory: Path, max_bad_rows: int | None, assume_mira: bool = False
    ) -> "MiraDataset":
        """Best-effort load: quarantine rows, degrade missing sources."""
        if not directory.is_dir():
            raise DatasetError(f"{directory}: not a dataset directory")
        expected = list(_LOG_FILES.values()) + ["meta.jsonl"]
        if not any((directory / f).exists() for f in expected):
            raise DatasetError(f"{directory}: no dataset files found")
        report = ParseReport(max_bad_rows=max_bad_rows)

        spec, n_days, seed, backend = MIRA, None, -1, "mira"
        problem = None
        meta_path = directory / "meta.jsonl"
        if meta_path.exists():
            try:
                meta = read_jsonl(meta_path)[0]
                spec = _spec_from_meta(meta)
                n_days = float(meta["n_days"])
                seed = int(meta["seed"])
                backend = str(meta.get("backend", "mira"))
            except Exception as error:
                problem = f"unreadable meta.jsonl ({error})"
                spec, n_days, seed, backend = MIRA, None, -1, "mira"
        else:
            problem = "missing meta.jsonl"
        if problem is not None:
            if not assume_mira:
                raise DatasetError(
                    f"{directory}: {problem}; refusing to guess the "
                    "machine geometry — pass assume_mira=True "
                    "(--assume-mira) to load with Mira geometry"
                )
            report.degrade(
                "meta", f"{problem}; assuming Mira spec (--assume-mira)"
            )

        incidents: list[Incident] = []
        if (directory / "incidents.jsonl").exists():
            try:
                incidents = _read_incidents(directory)
            except Exception as error:
                report.degrade("incidents", f"unreadable incidents.jsonl ({error})")

        catalog = default_catalog()
        if backend != "mira":
            try:
                from repro.adapters import get_backend

                catalog = get_backend(backend).catalog()
            except BackendError as error:
                report.degrade(
                    "meta",
                    f"unknown backend {backend!r} ({error}); validating "
                    "RAS against the Mira catalog",
                )
        validators = {
            "ras": lambda t: validate_ras_table(t, catalog, report=report),
            "jobs": lambda t: validate_job_table(t, report=report),
            "tasks": lambda t: validate_task_table(t, report=report),
            "io": lambda t: validate_io_table(t, report=report),
        }
        tables: dict[str, Table] = {}
        for attr, filename in _LOG_FILES.items():
            path = directory / filename
            if not path.exists():
                report.degrade(attr, f"missing {filename}")
                tables[attr] = Table.empty(_LOG_SCHEMAS[attr])
                continue
            try:
                tables[attr] = validators[attr](
                    read_csv(path, report=report, source=attr)
                )
            except QuarantineOverflowError:
                raise  # mostly-garbage data must not load as near-empty
            except (ParseError, OSError) as error:
                report.degrade(attr, str(error))
                tables[attr] = Table.empty(_LOG_SCHEMAS[attr])

        if n_days is None:
            last = 0.0
            if tables["jobs"].n_rows:
                last = max(last, float(tables["jobs"]["end_time"].max()))
            if tables["ras"].n_rows:
                last = max(last, float(tables["ras"]["timestamp"].max()))
            n_days = last / SECONDS_PER_DAY
            report.note(f"meta: estimated span {n_days:.2f} days from log extents")
        return cls(
            spec=spec,
            n_days=n_days,
            seed=seed,
            backend=backend,
            incidents=incidents,
            ingestion=report,
            **tables,
        )

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        """Headline totals (the E01 overview row)."""
        jobs = self.jobs
        n_failed = int((jobs["exit_status"] != 0).sum()) if jobs.n_rows else 0
        severity_counts = (
            {
                row["severity"]: row["count"]
                for row in self.ras.value_counts("severity").to_rows()
            }
            if self.ras.n_rows
            else {}
        )
        return {
            "n_days": self.n_days,
            "n_jobs": jobs.n_rows,
            "n_failed_jobs": n_failed,
            "failure_rate": n_failed / jobs.n_rows if jobs.n_rows else float("nan"),
            "n_users": len(set(jobs["user"].tolist())) if jobs.n_rows else 0,
            "n_projects": len(set(jobs["project"].tolist())) if jobs.n_rows else 0,
            "total_core_hours": float(jobs["core_hours"].sum()) if jobs.n_rows else 0.0,
            "n_tasks": self.tasks.n_rows,
            "n_io_profiles": self.io.n_rows,
            "n_ras_events": self.ras.n_rows,
            "n_ras_info": severity_counts.get("INFO", 0),
            "n_ras_warn": severity_counts.get("WARN", 0),
            "n_ras_fatal": severity_counts.get("FATAL", 0),
            "n_incidents": len(self.incidents),
        }

    def fatal_events(self) -> Table:
        """The FATAL-severity slice of the RAS log."""
        return self.ras.filter(self.ras["severity"] == "FATAL")

    def failed_jobs(self) -> Table:
        """The failed-job slice of the job log."""
        return self.jobs.filter(self.jobs["exit_status"] != 0)
