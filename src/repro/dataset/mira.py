"""The joint four-log Mira dataset.

:class:`MiraDataset` bundles the four data sources the paper joins —
RAS log, job-scheduling log, task log, I/O log — plus the synthesis
ground truth (the incident list), and handles synthesis, persistence,
and summary statistics.  Every analysis and experiment in the toolkit
takes a ``MiraDataset`` as input, so a real exported Mira trace can be
loaded from CSVs in place of a synthetic one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.bgq.machine import MIRA, MachineSpec
from repro.darshan import DarshanGenerator, DarshanParams, io_to_table
from repro.errors import DatasetError
from repro.ras import (
    Incident,
    RasGenerator,
    RasGeneratorParams,
    validate_ras_table,
)
from repro.scheduler import (
    CobaltScheduler,
    SchedulerParams,
    WorkloadModel,
    WorkloadParams,
    jobs_to_table,
    validate_job_table,
)
from repro.table import Table, read_csv, read_jsonl, write_csv, write_jsonl
from repro.tasks import TaskLogGenerator, TaskLogParams, tasks_to_table

__all__ = ["MiraDataset"]

_LOG_FILES = {
    "ras": "ras.csv",
    "jobs": "jobs.csv",
    "tasks": "tasks.csv",
    "io": "io.csv",
}


@dataclass
class MiraDataset:
    """The four logs plus synthesis metadata."""

    spec: MachineSpec
    n_days: float
    seed: int
    ras: Table
    jobs: Table
    tasks: Table
    io: Table
    incidents: list[Incident] = field(default_factory=list)

    # ------------------------------------------------------------------
    # synthesis
    # ------------------------------------------------------------------

    @classmethod
    def synthesize(
        cls,
        n_days: float,
        seed: int = 0,
        spec: MachineSpec = MIRA,
        workload_params: WorkloadParams | None = None,
        ras_params: RasGeneratorParams | None = None,
        scheduler_params: SchedulerParams | None = None,
        task_params: TaskLogParams | None = None,
        darshan_params: DarshanParams | None = None,
    ) -> "MiraDataset":
        """Generate a complete, internally consistent synthetic dataset.

        Pipeline: RAS stream (with ground-truth incidents) → workload
        intents → scheduler simulation (incidents kill overlapping
        jobs) → task log → I/O log → RAS block annotation via the
        event→job join.
        """
        ras_table, incidents = RasGenerator(
            spec=spec, params=ras_params, seed=seed
        ).generate(n_days)
        intents = WorkloadModel(
            spec=spec, params=workload_params, seed=seed + 1
        ).generate(n_days)
        result = CobaltScheduler(spec=spec, params=scheduler_params).run(
            intents, incidents, horizon_days=n_days
        )
        jobs_table = jobs_to_table(result.jobs)
        task_records = TaskLogGenerator(params=task_params, seed=seed + 2).generate(
            result.jobs
        )
        io_records = DarshanGenerator(params=darshan_params, seed=seed + 3).generate(
            result.jobs
        )
        ras_table = cls._annotate_blocks(ras_table, jobs_table, spec)
        return cls(
            spec=spec,
            n_days=n_days,
            seed=seed,
            ras=ras_table,
            jobs=jobs_table,
            tasks=tasks_to_table(task_records),
            io=io_to_table(io_records),
            incidents=incidents,
        )

    @staticmethod
    def _annotate_blocks(ras: Table, jobs: Table, spec: MachineSpec) -> Table:
        """Fill the RAS ``block`` column from the event→job join."""
        from repro.core.attribution import NO_JOB, map_events_to_jobs

        if jobs.n_rows == 0:
            return ras
        mapped = map_events_to_jobs(ras, jobs, spec)
        block_of_job = dict(zip(jobs["job_id"].tolist(), jobs["block"].tolist()))
        blocks = np.array(
            ["" if j == NO_JOB else block_of_job[int(j)] for j in mapped],
            dtype=object,
        )
        return ras.with_column("block", blocks)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Write the dataset as CSVs plus a JSONL metadata file."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for attr, filename in _LOG_FILES.items():
            write_csv(getattr(self, attr), directory / filename)
        meta = {
            "spec_name": self.spec.name,
            "rack_rows": self.spec.rack_rows,
            "rack_columns": self.spec.rack_columns,
            "midplanes_per_rack": self.spec.midplanes_per_rack,
            "node_boards_per_midplane": self.spec.node_boards_per_midplane,
            "nodes_per_node_board": self.spec.nodes_per_node_board,
            "cores_per_node": self.spec.cores_per_node,
            "n_days": self.n_days,
            "seed": self.seed,
        }
        incident_rows = [
            {
                "incident_id": i.incident_id,
                "timestamp": i.timestamp,
                "msg_id": i.msg_id,
                "midplane_index": i.midplane_index,
                "n_events": i.n_events,
                "had_precursor": i.had_precursor,
            }
            for i in self.incidents
        ]
        write_jsonl([meta], directory / "meta.jsonl")
        write_jsonl(incident_rows, directory / "incidents.jsonl")

    @classmethod
    def load(cls, directory: str | Path) -> "MiraDataset":
        """Load a dataset previously written by :meth:`save`.

        Raises
        ------
        DatasetError
            When a log file or the metadata is missing.
        """
        directory = Path(directory)
        missing = [
            f for f in list(_LOG_FILES.values()) + ["meta.jsonl"]
            if not (directory / f).exists()
        ]
        if missing:
            raise DatasetError(f"{directory}: missing dataset files {missing}")
        meta = read_jsonl(directory / "meta.jsonl")[0]
        spec = MachineSpec(
            name=meta["spec_name"],
            rack_rows=meta["rack_rows"],
            rack_columns=meta["rack_columns"],
            midplanes_per_rack=meta["midplanes_per_rack"],
            node_boards_per_midplane=meta["node_boards_per_midplane"],
            nodes_per_node_board=meta["nodes_per_node_board"],
            cores_per_node=meta["cores_per_node"],
        )
        incidents = [
            Incident(
                incident_id=row["incident_id"],
                timestamp=row["timestamp"],
                msg_id=row["msg_id"],
                midplane_index=row["midplane_index"],
                n_events=row["n_events"],
                had_precursor=row.get("had_precursor", False),
            )
            for row in read_jsonl(directory / "incidents.jsonl")
        ] if (directory / "incidents.jsonl").exists() else []
        tables = {
            attr: read_csv(directory / filename)
            for attr, filename in _LOG_FILES.items()
        }
        validate_ras_table(tables["ras"])
        validate_job_table(tables["jobs"])
        return cls(
            spec=spec,
            n_days=meta["n_days"],
            seed=meta["seed"],
            incidents=incidents,
            **tables,
        )

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        """Headline totals (the E01 overview row)."""
        jobs = self.jobs
        n_failed = int((jobs["exit_status"] != 0).sum()) if jobs.n_rows else 0
        severity_counts = (
            {
                row["severity"]: row["count"]
                for row in self.ras.value_counts("severity").to_rows()
            }
            if self.ras.n_rows
            else {}
        )
        return {
            "n_days": self.n_days,
            "n_jobs": jobs.n_rows,
            "n_failed_jobs": n_failed,
            "failure_rate": n_failed / jobs.n_rows if jobs.n_rows else float("nan"),
            "n_users": len(set(jobs["user"].tolist())) if jobs.n_rows else 0,
            "n_projects": len(set(jobs["project"].tolist())) if jobs.n_rows else 0,
            "total_core_hours": float(jobs["core_hours"].sum()) if jobs.n_rows else 0.0,
            "n_tasks": self.tasks.n_rows,
            "n_io_profiles": self.io.n_rows,
            "n_ras_events": self.ras.n_rows,
            "n_ras_info": severity_counts.get("INFO", 0),
            "n_ras_warn": severity_counts.get("WARN", 0),
            "n_ras_fatal": severity_counts.get("FATAL", 0),
            "n_incidents": len(self.incidents),
        }

    def fatal_events(self) -> Table:
        """The FATAL-severity slice of the RAS log."""
        return self.ras.filter(self.ras["severity"] == "FATAL")

    def failed_jobs(self) -> Table:
        """The failed-job slice of the job log."""
        return self.jobs.filter(self.jobs["exit_status"] != 0)
