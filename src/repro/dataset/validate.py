"""Cross-log consistency validation.

The paper's joint analysis is only as sound as the consistency of its
four sources.  :func:`validate_dataset` checks the invariants the
analyses rely on and raises :class:`~repro.errors.DatasetError` with a
list of violations, or returns a per-check report when all pass.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BackendError, DatasetError

from .mira import MiraDataset

__all__ = ["validate_dataset"]


def _check_task_consistency(dataset: MiraDataset, problems: list[str]) -> None:
    jobs = dataset.jobs
    tasks = dataset.tasks
    if tasks.n_rows == 0:
        return
    job_ids = set(jobs["job_id"].tolist())
    orphan = [j for j in set(tasks["job_id"].tolist()) if j not in job_ids]
    if orphan:
        problems.append(f"tasks reference unknown jobs: {sorted(orphan)[:5]}")
        return
    joined = tasks.join(
        jobs.select(["job_id", "start_time", "end_time", "n_tasks", "exit_status"]),
        on="job_id",
        suffix="_job",
    )
    slack = 1e-6
    if (joined["start_time"] < joined["start_time_job"] - slack).any():
        problems.append("some tasks start before their job")
    if (joined["end_time"] > joined["end_time_job"] + slack).any():
        problems.append("some tasks end after their job")
    observed = tasks.group_by("job_id").size()
    merged = observed.join(jobs.select(["job_id", "n_tasks"]), on="job_id")
    if (merged["count"] > merged["n_tasks"]).any():
        problems.append("some jobs logged more tasks than intended")


def _check_io_consistency(dataset: MiraDataset, problems: list[str]) -> None:
    io = dataset.io
    if io.n_rows == 0:
        return
    job_ids = set(dataset.jobs["job_id"].tolist())
    orphan = [j for j in set(io["job_id"].tolist()) if j not in job_ids]
    if orphan:
        problems.append(f"I/O records reference unknown jobs: {sorted(orphan)[:5]}")
    if len(set(io["job_id"].tolist())) != io.n_rows:
        problems.append("duplicate I/O profiles for one job")
    if (io["io_time"] > io["runtime"] + 1e-6).any():
        problems.append("I/O time exceeds runtime in some profiles")


def _check_occupancy(dataset: MiraDataset, problems: list[str]) -> None:
    """No two jobs may occupy a midplane at the same time."""
    jobs = dataset.jobs
    if jobs.n_rows == 0:
        return
    per_midplane: dict[int, list[tuple[float, float, int]]] = {}
    for row in jobs.select(
        ["job_id", "start_time", "end_time", "first_midplane", "n_midplanes"]
    ).to_rows():
        for midplane in range(
            row["first_midplane"], row["first_midplane"] + row["n_midplanes"]
        ):
            per_midplane.setdefault(midplane, []).append(
                (row["start_time"], row["end_time"], row["job_id"])
            )
    for midplane, intervals in per_midplane.items():
        intervals.sort()
        for (s1, e1, j1), (s2, e2, j2) in zip(intervals, intervals[1:]):
            if s2 < e1 - 1e-9:
                problems.append(
                    f"jobs {j1} and {j2} overlap on midplane {midplane}"
                )
                return  # one witness is enough


def _check_ras(dataset: MiraDataset, problems: list[str]) -> None:
    ras = dataset.ras
    if ras.n_rows == 0:
        return
    horizon = dataset.n_days * 86_400.0
    # Burst tails may spill slightly past the horizon; cap the slack at
    # one burst window.
    if float(ras["timestamp"].max()) > horizon + 86_400.0:
        problems.append("RAS events far beyond the dataset horizon")
    blocks_in_jobs = set(dataset.jobs["block"].tolist()) | {""}
    unknown_blocks = set(ras["block"].tolist()) - blocks_in_jobs
    if unknown_blocks:
        problems.append(f"RAS block names not in job log: {sorted(unknown_blocks)[:3]}")


def _check_ras_catalog(dataset: MiraDataset, problems: list[str]) -> None:
    """RAS message IDs and severities must match the backend's catalog.

    Validating a google trace against the Mira catalog would flag every
    record as invalid — the catalog comes from ``dataset.backend``, not
    from a hard-coded default.
    """
    ras = dataset.ras
    if ras.n_rows == 0:
        return
    try:
        from repro.adapters import get_backend

        catalog = get_backend(dataset.backend).catalog()
    except BackendError as error:
        problems.append(f"unknown trace backend {dataset.backend!r} ({error})")
        return
    known = {entry.msg_id: entry.severity.name for entry in catalog}
    seen = set(zip(ras["msg_id"].tolist(), ras["severity"].tolist()))
    unknown = sorted({m for m, _ in seen if m not in known})
    if unknown:
        problems.append(
            f"RAS message ids not in the {dataset.backend!r} catalog: "
            f"{unknown[:5]}"
        )
    mismatched = sorted(
        m for m, s in seen if m in known and known[m] != s
    )
    if mismatched:
        problems.append(
            f"RAS severity disagrees with the {dataset.backend!r} catalog "
            f"for: {mismatched[:5]}"
        )


def _check_incidents(dataset: MiraDataset, problems: list[str]) -> None:
    if not dataset.incidents:
        return
    n_fatal = int((dataset.ras["severity"] == "FATAL").sum())
    expected = sum(i.n_events for i in dataset.incidents)
    if n_fatal != expected:
        problems.append(
            f"FATAL event count {n_fatal} != incident ground truth {expected}"
        )
    n_midplanes = dataset.spec.n_midplanes
    if any(not 0 <= i.midplane_index < n_midplanes for i in dataset.incidents):
        problems.append("incident midplane index out of range")


def validate_dataset(dataset: MiraDataset, *, lenient: bool = False) -> dict[str, str]:
    """Run all cross-log checks.

    Returns a check-name → "ok" report on success.  In lenient mode no
    exception is raised: failed checks carry their violation text in the
    report instead, and sources the ingestion layer degraded (missing or
    unsalvageable files from a lenient load) appear as ``source:<name>``
    entries — a degraded dataset is still usable, it just says so.

    Raises
    ------
    DatasetError
        Listing every violated invariant (strict mode only).
    """
    checks = {
        "task_consistency": _check_task_consistency,
        "io_consistency": _check_io_consistency,
        "occupancy": _check_occupancy,
        "ras": _check_ras,
        "ras_catalog": _check_ras_catalog,
        "incidents": _check_incidents,
    }
    problems: list[str] = []
    report: dict[str, str] = {}
    for name, check in checks.items():
        before = len(problems)
        check(dataset, problems)
        if len(problems) == before:
            report[name] = "ok"
        elif lenient:
            report[name] = "failed: " + "; ".join(problems[before:])
        else:
            report[name] = "failed"
    if lenient:
        if dataset.ingestion is not None:
            for source, reason in sorted(dataset.ingestion.degraded.items()):
                report[f"source:{source}"] = f"degraded: {reason}"
        return report
    if problems:
        raise DatasetError("; ".join(problems))
    return report
