"""Joint four-log dataset: assembly, persistence, validation."""

from .mira import MiraDataset
from .validate import validate_dataset

__all__ = ["MiraDataset", "validate_dataset"]
