"""Joint four-log dataset: assembly, persistence, validation, caching."""

from .cache import SCHEMA_VERSION, default_cache_dir, fingerprint_directory
from .mira import MiraDataset
from .validate import validate_dataset

__all__ = [
    "MiraDataset",
    "validate_dataset",
    "SCHEMA_VERSION",
    "default_cache_dir",
    "fingerprint_directory",
]
