"""``trace.jsonl`` schema validation.

A trace file is JSONL: a ``kind: "trace"`` header first, then ``span``
records in start order, then final ``counter``/``gauge`` totals.  The
validators here are what ``repro-trace`` and the CI trace-smoke job run
against every line — strict on structure (required keys, types, parent
links) so a malformed writer fails loudly instead of producing a file
that summarizes to garbage.
"""

from __future__ import annotations

import json
from pathlib import Path

from .trace import TRACE_SCHEMA

__all__ = ["TraceSchemaError", "validate_record", "validate_lines", "validate_file"]

_SCALAR = (str, int, float, bool, type(None))

_KINDS = ("trace", "span", "counter", "gauge")


class TraceSchemaError(ValueError):
    """A trace record violates the trace.jsonl schema."""


def _require(record: dict, key: str, types, where: str):
    if key not in record:
        raise TraceSchemaError(f"{where}: missing key {key!r}")
    value = record[key]
    type_tuple = types if isinstance(types, tuple) else (types,)
    # bool subclasses int; a True pid/seconds is a writer bug, not a number.
    if isinstance(value, bool) or not isinstance(value, type_tuple):
        raise TraceSchemaError(
            f"{where}: key {key!r} has {type(value).__name__}, "
            f"expected {'/'.join(t.__name__ for t in type_tuple)}"
        )
    return value


def validate_record(record: dict, where: str = "trace record") -> str:
    """Validate one parsed record; returns its ``kind``.

    Raises
    ------
    TraceSchemaError
        On a missing/unknown kind, missing keys, or wrong value types.
    """
    if not isinstance(record, dict):
        raise TraceSchemaError(f"{where}: not a JSON object")
    kind = record.get("kind")
    if kind not in _KINDS:
        raise TraceSchemaError(f"{where}: unknown kind {kind!r}")
    if kind == "trace":
        schema = _require(record, "schema", int, where)
        if schema != TRACE_SCHEMA:
            raise TraceSchemaError(
                f"{where}: trace schema {schema!r} != {TRACE_SCHEMA}"
            )
        _require(record, "toolkit_version", str, where)
        _require(record, "pid", int, where)
        if not isinstance(record.get("run_id"), (str, type(None))):
            raise TraceSchemaError(f"{where}: run_id must be string or null")
    elif kind == "span":
        span_id = _require(record, "id", int, where)
        if span_id < 0:
            raise TraceSchemaError(f"{where}: negative span id {span_id}")
        parent = record.get("parent")
        if parent is not None and (not isinstance(parent, int) or parent < 0):
            raise TraceSchemaError(f"{where}: bad parent {parent!r}")
        name = _require(record, "name", str, where)
        if not name:
            raise TraceSchemaError(f"{where}: empty span name")
        for key in ("start", "seconds"):
            value = _require(record, key, (int, float), where)
            if value < 0:
                raise TraceSchemaError(f"{where}: negative {key} {value!r}")
        depth = _require(record, "depth", int, where)
        if depth < 0:
            raise TraceSchemaError(f"{where}: negative depth {depth}")
        _require(record, "pid", int, where)
        attrs = _require(record, "attrs", dict, where)
        for key, value in attrs.items():
            if not isinstance(key, str) or not isinstance(value, _SCALAR):
                raise TraceSchemaError(
                    f"{where}: attr {key!r} must map a string to a scalar"
                )
    else:  # counter / gauge
        name = _require(record, "name", str, where)
        if not name:
            raise TraceSchemaError(f"{where}: empty {kind} name")
        _require(record, "value", (int, float), where)
        _require(record, "pid", int, where)
    return kind


def validate_lines(lines, where: str = "trace") -> list[dict]:
    """Validate a whole trace, line by line; returns the parsed records.

    Beyond per-record checks this enforces file-level invariants: the
    first record is the header, span ids are unique, and every parent
    id references an *earlier* span (children cannot precede the span
    that contains them).
    """
    records: list[dict] = []
    seen_ids: set[int] = set()
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        label = f"{where}:{line_no}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceSchemaError(f"{label}: not JSON ({error})") from None
        kind = validate_record(record, label)
        if not records and kind != "trace":
            raise TraceSchemaError(f"{label}: first record must be the header")
        if records and kind == "trace":
            raise TraceSchemaError(f"{label}: duplicate trace header")
        if kind == "span":
            span_id = record["id"]
            if span_id in seen_ids:
                raise TraceSchemaError(f"{label}: duplicate span id {span_id}")
            parent = record.get("parent")
            if parent is not None and parent not in seen_ids:
                raise TraceSchemaError(
                    f"{label}: parent {parent} is not an earlier span"
                )
            seen_ids.add(span_id)
        records.append(record)
    if not records:
        raise TraceSchemaError(f"{where}: empty trace")
    return records


def validate_file(path: str | Path) -> list[dict]:
    """Validate ``path`` as a trace.jsonl file; returns the records."""
    path = Path(path)
    return validate_lines(path.read_text().splitlines(), where=str(path))
