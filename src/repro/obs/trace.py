"""Span-based tracing with named counters and gauges.

One module-level recorder slot governs everything.  When it is empty
(the default), :func:`span` returns a shared do-nothing context manager
and :func:`add`/:func:`set_gauge` return immediately — the entire cost
of an instrumented hot path is one global load and an ``is None`` test,
guarded below 1 µs per span by a tier-1 perf test.  When a
:class:`TraceRecorder` is installed (``repro-report --trace``), spans
nest via an explicit stack, durations come from the monotonic clock
(:func:`time.perf_counter`), and the finished trace is written as
``trace.jsonl`` through :mod:`repro.util.atomic` next to the run's
``journal.jsonl``.

Spans recorded in a worker process cannot share the supervisor's
recorder; the experiment engine ships them back inside the
:class:`~repro.experiments.engine.ExperimentOutcome` and merges them
with :meth:`TraceRecorder.absorb`, which re-bases span ids so parent
links stay valid.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping

__all__ = [
    "TRACE_SCHEMA",
    "TraceRecorder",
    "active",
    "add",
    "install",
    "recording",
    "set_gauge",
    "span",
    "uninstall",
]

#: Bump when the trace.jsonl record layout changes; validators refuse
#: other versions rather than guessing.
TRACE_SCHEMA = 1


class _NullSpan:
    """The disabled-path span: enters, exits, records nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def note(self, **attrs) -> None:
        """Discard attributes (matches :meth:`_Span.note`)."""


_NULL_SPAN = _NullSpan()

#: The installed recorder, or ``None`` (tracing off).  A plain module
#: global, not a threading.local: the pipeline's hot paths run on the
#: main thread of each process, and worker processes get their own
#: module copy anyway.
_ACTIVE: "TraceRecorder | None" = None


class _Span:
    """A live span: context manager that finalizes its record on exit."""

    __slots__ = ("_recorder", "_record", "_t0")

    def __init__(self, recorder: "TraceRecorder", record: dict):
        self._recorder = recorder
        self._record = record
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        recorder = self._recorder
        recorder._stack.append(self._record["id"])
        self._t0 = time.perf_counter()
        self._record["start"] = round(self._t0 - recorder._epoch, 9)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._record["seconds"] = round(time.perf_counter() - self._t0, 9)
        if exc_type is not None:
            # The span still closes and keeps its duration; the error
            # class makes aborted phases visible in the trace.
            self._record["attrs"]["error"] = exc_type.__name__
        self._recorder._stack.pop()
        return False

    def note(self, **attrs) -> None:
        """Attach attributes computed mid-span (row counts, byte sizes)."""
        self._record["attrs"].update(attrs)


class TraceRecorder:
    """Accumulates spans, counters, and gauges for one process.

    Spans are appended in start order; ``parent`` links express the
    nesting that was live when each span began.  Counters and gauges
    are plain name→number maps; counters accumulate, gauges overwrite.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._stack: list[int] = []
        self.spans: list[dict] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    def start_span(self, name: str, attrs: Mapping) -> _Span:
        record = {
            "kind": "span",
            "id": len(self.spans),
            "parent": self._stack[-1] if self._stack else None,
            "name": name,
            "start": 0.0,
            "seconds": 0.0,
            "depth": len(self._stack),
            "pid": os.getpid(),
            "attrs": dict(attrs),
        }
        self.spans.append(record)
        return _Span(self, record)

    def add(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def absorb(self, spans, counters: Mapping | None = None) -> None:
        """Merge spans shipped from another process (the worker path).

        Ids are re-based past this recorder's existing spans so parent
        links inside the shipped batch stay consistent; batch roots
        keep ``parent: null`` (cross-process clocks are not
        comparable, so grafting them under a supervisor span would
        fabricate a timing relationship).
        """
        offset = len(self.spans)
        for record in spans:
            merged = dict(record)
            merged["id"] = record["id"] + offset
            if record.get("parent") is not None:
                merged["parent"] = record["parent"] + offset
            merged["attrs"] = dict(record.get("attrs", {}))
            self.spans.append(merged)
        for name, value in (counters or {}).items():
            self.add(name, value)

    def records(self, run_id: str | None = None) -> list[dict]:
        """All trace records in file order: header, spans, metrics."""
        from repro import __version__

        header = {
            "kind": "trace",
            "schema": TRACE_SCHEMA,
            "run_id": run_id,
            "toolkit_version": __version__,
            "pid": os.getpid(),
        }
        out = [header]
        out.extend(self.spans)
        pid = os.getpid()
        for name in sorted(self.counters):
            out.append(
                {
                    "kind": "counter",
                    "name": name,
                    "value": self.counters[name],
                    "pid": pid,
                }
            )
        for name in sorted(self.gauges):
            out.append(
                {"kind": "gauge", "name": name, "value": self.gauges[name], "pid": pid}
            )
        return out

    def write(self, path: str | Path, run_id: str | None = None) -> Path:
        """Write the trace as JSONL, atomically; returns the path."""
        from repro.util.atomic import atomic_write_text

        lines = [json.dumps(record) for record in self.records(run_id)]
        return atomic_write_text(Path(path), "\n".join(lines) + "\n")


def active() -> TraceRecorder | None:
    """The installed recorder, or ``None`` when tracing is off."""
    return _ACTIVE


def install(recorder: TraceRecorder) -> TraceRecorder:
    """Make ``recorder`` the process-wide active recorder."""
    global _ACTIVE
    _ACTIVE = recorder
    return recorder


def uninstall() -> None:
    """Disable tracing (spans revert to the shared no-op)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def recording(
    recorder: TraceRecorder | None = None,
) -> Iterator[TraceRecorder]:
    """Install a recorder for the duration of a block, then restore.

    The previous recorder (usually ``None``) comes back on exit, so
    nested/temporary recordings — tests, the worker path — cannot leak
    an active recorder into later code.
    """
    recorder = recorder if recorder is not None else TraceRecorder()
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


def span(name: str, **attrs) -> _Span | _NullSpan:
    """Start a span; use as ``with span("csv.tokenize", rows=n): ...``.

    With no recorder installed this returns a shared no-op context
    manager — the disabled cost is one global load plus the call
    overhead, guarded under 1 µs by ``tests/obs``.
    """
    recorder = _ACTIVE
    if recorder is None:
        return _NULL_SPAN
    return recorder.start_span(name, attrs)


def add(name: str, value: float = 1) -> None:
    """Increment counter ``name`` by ``value`` (no-op when disabled)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.add(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when disabled)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.set_gauge(name, value)
