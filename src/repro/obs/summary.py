"""Trace rollups: where did the run's wall time actually go.

Loads a validated ``trace.jsonl`` (see :mod:`repro.obs.schema`), rolls
spans up by name into total time and **self time** (a span's duration
minus its direct children — the quantity that sums to real work instead
of double-counting every nesting level), and renders the two views
``repro-trace`` exposes:

- ``summarize`` — top span names by self time plus counter/gauge totals;
- ``diff`` — per-span-name regression table between two runs, the
  manual counterpart of the CI e03 wall-time gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .schema import validate_file

__all__ = ["Trace", "SpanRollup", "load_trace", "rollup_spans", "summarize_lines", "diff_lines"]


@dataclass(frozen=True)
class Trace:
    """One parsed, schema-valid trace file."""

    header: dict
    spans: list[dict] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)

    @property
    def run_id(self) -> str | None:
        return self.header.get("run_id")


@dataclass(frozen=True)
class SpanRollup:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    total_seconds: float
    self_seconds: float


def load_trace(path: str | Path) -> Trace:
    """Read and validate a trace.jsonl into a :class:`Trace`."""
    records = validate_file(path)
    header = records[0]
    spans = [r for r in records if r["kind"] == "span"]
    counters = {r["name"]: r["value"] for r in records if r["kind"] == "counter"}
    gauges = {r["name"]: r["value"] for r in records if r["kind"] == "gauge"}
    return Trace(header=header, spans=spans, counters=counters, gauges=gauges)


def rollup_spans(spans: list[dict]) -> list[SpanRollup]:
    """Per-name rollups sorted by self time, descending.

    Self time charges each span for its own duration minus its direct
    children's, so a parent that merely wraps an instrumented child
    ranks by its true overhead, not the child's work again.
    """
    self_seconds = {record["id"]: float(record["seconds"]) for record in spans}
    for record in spans:
        parent = record.get("parent")
        if parent is not None and parent in self_seconds:
            self_seconds[parent] -= float(record["seconds"])
    totals: dict[str, list[float]] = {}
    for record in spans:
        bucket = totals.setdefault(record["name"], [0, 0.0, 0.0])
        bucket[0] += 1
        bucket[1] += float(record["seconds"])
        bucket[2] += self_seconds[record["id"]]
    rollups = [
        SpanRollup(name, int(c), total, self_s)
        for name, (c, total, self_s) in totals.items()
    ]
    rollups.sort(key=lambda r: (-r.self_seconds, r.name))
    return rollups


def summarize_lines(trace: Trace, top: int = 20) -> list[str]:
    """Human-readable summary: top spans by self time, then metrics."""
    label = trace.run_id or "<no run id>"
    lines = [
        f"trace {label}: {len(trace.spans)} spans, "
        f"{len(trace.counters)} counters, {len(trace.gauges)} gauges"
    ]
    rollups = rollup_spans(trace.spans)
    if rollups:
        lines.append("")
        lines.append(
            f"{'span':<32} {'count':>7} {'total s':>10} {'self s':>10}"
        )
        for r in rollups[:top]:
            lines.append(
                f"{r.name:<32} {r.count:>7} {r.total_seconds:>10.4f} "
                f"{r.self_seconds:>10.4f}"
            )
        if len(rollups) > top:
            lines.append(f"... {len(rollups) - top} more span name(s)")
    if trace.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(trace.counters):
            lines.append(f"  {name} = {trace.counters[name]:g}")
    if trace.gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(trace.gauges):
            lines.append(f"  {name} = {trace.gauges[name]:g}")
    return lines


def diff_lines(
    a: Trace,
    b: Trace,
    *,
    fail_above: float | None = None,
    min_seconds: float = 0.005,
) -> tuple[list[str], bool]:
    """Per-span regression table between two traces.

    Returns ``(lines, regressed)``: ``regressed`` is True when
    ``fail_above`` is set and some span name's total grew by more than
    that ratio (``1.5`` = +50%) while being big enough to matter
    (``min_seconds`` in the baseline — ratios on microsecond spans are
    noise, not regressions).
    """
    rollup_a = {r.name: r for r in rollup_spans(a.spans)}
    rollup_b = {r.name: r for r in rollup_spans(b.spans)}
    names = sorted(set(rollup_a) | set(rollup_b))
    rows = []
    regressed = False
    for name in names:
        total_a = rollup_a[name].total_seconds if name in rollup_a else 0.0
        total_b = rollup_b[name].total_seconds if name in rollup_b else 0.0
        delta = total_b - total_a
        ratio = total_b / total_a if total_a > 0 else float("inf")
        flag = ""
        if (
            fail_above is not None
            and total_a >= min_seconds
            and ratio > fail_above
        ):
            regressed = True
            flag = "  <-- regression"
        rows.append((abs(delta), name, total_a, total_b, delta, ratio, flag))
    rows.sort(key=lambda row: (-row[0], row[1]))
    label_a = a.run_id or "a"
    label_b = b.run_id or "b"
    lines = [
        f"{'span':<32} {label_a[:12]:>12} {label_b[:12]:>12} "
        f"{'delta s':>10} {'ratio':>7}"
    ]
    for _, name, total_a, total_b, delta, ratio, flag in rows:
        ratio_text = f"{ratio:.2f}" if ratio != float("inf") else "new"
        lines.append(
            f"{name:<32} {total_a:>12.4f} {total_b:>12.4f} "
            f"{delta:>+10.4f} {ratio_text:>7}{flag}"
        )
    counter_names = sorted(set(a.counters) | set(b.counters))
    if counter_names:
        lines.append("")
        lines.append(f"{'counter':<32} {label_a[:12]:>12} {label_b[:12]:>12}")
        for name in counter_names:
            lines.append(
                f"{name:<32} {a.counters.get(name, 0):>12g} "
                f"{b.counters.get(name, 0):>12g}"
            )
    return lines, regressed
