"""Structured observability: span tracing + run metrics, off by default.

The reproduction pipeline is instrumented the way the paper instruments
its subject system: every hot path — CSV ingest, the columnar cache,
dataset synthesis, the vectorized kernels, and the experiment engine —
carries named spans and counters that cost a single attribute check
when no recorder is installed, and stream into a per-run
``trace.jsonl`` when one is (``repro-report --trace``).

The package is dependency-free and *optional*: every instrumented
module imports it behind a ``try/except ImportError`` with inline
no-op fallbacks, so deleting ``repro/obs/`` entirely leaves the
toolkit's output byte-identical.

- :mod:`repro.obs.trace` — the recorder, ``span()`` context managers,
  counters and gauges.
- :mod:`repro.obs.schema` — ``trace.jsonl`` record validation.
- :mod:`repro.obs.summary` — self-time rollups and run-vs-run diffs.
- :mod:`repro.obs.cli` — the ``repro-trace`` command
  (``summarize`` / ``diff`` / ``validate``).
"""

from .trace import (
    TRACE_SCHEMA,
    TraceRecorder,
    active,
    add,
    install,
    recording,
    set_gauge,
    span,
    uninstall,
)

__all__ = [
    "TRACE_SCHEMA",
    "TraceRecorder",
    "active",
    "add",
    "install",
    "recording",
    "set_gauge",
    "span",
    "uninstall",
]
