"""The ``repro-trace`` command: inspect traces written by ``--trace``.

Three subcommands over ``results/runs/<run-id>/trace.jsonl``:

- ``summarize RUN_ID`` — top span names by self time + counter totals;
- ``diff RUN_A RUN_B`` — per-span regression table between two runs
  (``--fail-above 1.5`` turns it into a gate that exits 1, the manual
  counterpart of the CI e03 wall-time check);
- ``validate RUN_ID`` — schema-check every trace.jsonl line (what the
  CI trace-smoke job runs).

A run argument may also be a direct path to a ``.jsonl`` file, so
traces copied out of CI artifacts diff against local ones.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.schema import TraceSchemaError, validate_file
from repro.obs.summary import diff_lines, load_trace, summarize_lines

__all__ = ["main_trace", "trace_path"]

TRACE_NAME = "trace.jsonl"


def trace_path(runs_root: Path, run: str) -> Path:
    """Resolve a run id (or a direct file path) to its trace.jsonl."""
    direct = Path(run)
    if direct.suffix == ".jsonl" or direct.is_file():
        return direct
    return runs_root / run / TRACE_NAME


def _load_labelled(path: Path, side: str = "") -> "object":
    """Load a trace, turning every read failure into a typed error.

    ``side`` names the operand (``baseline`` / ``candidate``) so a
    two-file ``diff`` says *which* trace was empty, missing its run
    header, unreadable, or not text — instead of a traceback that
    names neither.
    """
    label = f"{side} trace {path}" if side else f"trace {path}"
    try:
        return load_trace(path)
    except FileNotFoundError:
        raise TraceSchemaError(f"{label}: no such file") from None
    except OSError as error:
        reason = error.strerror or error
        raise TraceSchemaError(f"{label}: unreadable ({reason})") from None
    except UnicodeDecodeError:
        raise TraceSchemaError(
            f"{label}: not a text file (binary or corrupt data)"
        ) from None
    except TraceSchemaError as error:
        message = str(error)
        # validate_lines already embeds ``path:line`` in its messages;
        # only prepend the side label diff needs.
        raise TraceSchemaError(
            f"{side} {message}" if side else message
        ) from None


def main_trace(argv: list[str] | None = None) -> int:
    """Summarize, diff, or validate run traces (repro-report --trace)."""
    from repro.experiments.journal import default_runs_dir

    parser = argparse.ArgumentParser(
        prog="repro-trace", description=main_trace.__doc__
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="root of journaled run directories "
        "(default: $REPRO_RUNS_DIR or results/runs)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd_summarize = commands.add_parser(
        "summarize", help="top spans by self time + counter totals"
    )
    cmd_summarize.add_argument("run", help="run id or path to a trace.jsonl")
    cmd_summarize.add_argument(
        "--top", type=int, default=20, help="span names to show (default: 20)"
    )

    cmd_diff = commands.add_parser(
        "diff", help="per-span regression table between two runs"
    )
    cmd_diff.add_argument("run_a", help="baseline run id or trace path")
    cmd_diff.add_argument("run_b", help="candidate run id or trace path")
    cmd_diff.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 when any span's total time grew by more than this "
        "ratio (e.g. 1.5 = +50%%)",
    )

    cmd_validate = commands.add_parser(
        "validate", help="schema-check every line of a run's trace.jsonl"
    )
    cmd_validate.add_argument("run", help="run id or path to a trace.jsonl")

    args = parser.parse_args(argv)
    runs_root = Path(args.run_dir) if args.run_dir else default_runs_dir()

    try:
        if args.command == "summarize":
            trace = _load_labelled(trace_path(runs_root, args.run))
            print("\n".join(summarize_lines(trace, top=args.top)))
            return 0
        if args.command == "validate":
            path = trace_path(runs_root, args.run)
            try:
                records = validate_file(path)
            except (OSError, UnicodeDecodeError):
                _load_labelled(path)  # raises the typed equivalent
                raise  # pragma: no cover - _load_labelled always raises
            n_spans = sum(1 for r in records if r["kind"] == "span")
            print(f"OK: {path}: {len(records)} records, {n_spans} spans")
            return 0
        # diff
        trace_a = _load_labelled(trace_path(runs_root, args.run_a), "baseline")
        trace_b = _load_labelled(
            trace_path(runs_root, args.run_b), "candidate"
        )
        lines, regressed = diff_lines(
            trace_a, trace_b, fail_above=args.fail_above
        )
        print("\n".join(lines))
        if regressed:
            print(
                f"regression: a span exceeded {args.fail_above:g}x its "
                "baseline total",
                file=sys.stderr,
            )
            return 1
        return 0
    except FileNotFoundError as error:
        print(f"INVALID: no trace file: {error.filename}", file=sys.stderr)
        return 1
    except TraceSchemaError as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_trace())
