"""repro — a failure-mining toolkit reproducing the DSN'19 study
"Characterizing and Understanding HPC Job Failures Over The 2K-Day Life
of IBM BlueGene/Q System" (Di, Guo, Pershey, Snir, Cappello).

Quickstart::

    from repro import MiraDataset, run_experiment

    dataset = MiraDataset.synthesize(n_days=90, seed=0)
    print(run_experiment("e13", dataset).to_text())

Subpackages:

- :mod:`repro.table` — columnar data layer
- :mod:`repro.stats` — statistics substrate
- :mod:`repro.bgq` — BG/Q machine model (locations, torus, partitions)
- :mod:`repro.ras` — RAS log model and generator
- :mod:`repro.scheduler` — Cobalt-like scheduler and workload model
- :mod:`repro.tasks` / :mod:`repro.darshan` — task and I/O logs
- :mod:`repro.dataset` — the joint four-log dataset
- :mod:`repro.core` — the analysis methodology (the paper's contribution)
- :mod:`repro.experiments` — one module per reconstructed table/figure
"""

from repro.bgq import MIRA, MIRA_SMALL, Level, Location, MachineSpec, TorusTopology
from repro.core.report import render_report
from repro.core.takeaways import Takeaway, compute_takeaways, takeaways_to_table
from repro.dataset import MiraDataset, validate_dataset
from repro.errors import ReproError
from repro.experiments import ExperimentResult, all_experiments, run_experiment
from repro.table import Table

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Table",
    "MachineSpec",
    "MIRA",
    "MIRA_SMALL",
    "Location",
    "Level",
    "TorusTopology",
    "MiraDataset",
    "validate_dataset",
    "ExperimentResult",
    "all_experiments",
    "run_experiment",
    "Takeaway",
    "compute_takeaways",
    "takeaways_to_table",
    "render_report",
    "ReproError",
]
