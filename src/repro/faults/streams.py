"""Seeded chaos feeder: replay a closed dataset as a hostile live feed.

The :class:`StreamFeeder` turns a saved dataset directory (the closed
window) into an *append-only feed* the streaming pipeline can tail,
while optionally injecting the stream-level faults the tailer must
survive:

- ``torn_write`` — append only a prefix of a row, finish it on the
  next step (a writer killed mid-``write``);
- ``rotate`` — logrotate-style shift (``f.N → f.(N+1)``, ``f → f.1``
  by *rename*, preserving the inode, then a fresh ``f`` with the
  header) under the reader's feet;
- ``duplicate_replay`` — re-append an already-delivered row (an
  upstream shipper retrying after a lost ack);
- ``burst`` — a backlog flood (several chunks at once);
- ``stall`` — a source that goes quiet for a step.

Everything is deterministic: step *k* of a feeder constructed with
seed *s* draws from ``default_rng([s, k])``, and progress persists in
``FEED/.feeder-state.json`` (atomic write), so a multi-invocation CI
drill — feed, kill the tailer, feed more, resume — replays the exact
same byte history every time.

Because rotation renames (never copies) and completes any pending torn
row first, the full feed history remains reconstructable from the
rotated siblings plus the live file — which is what lets the stream
pipeline's ``verify_batch`` prove online/batch parity even under
chaos.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import FaultError
from repro.util.atomic import atomic_write_text

__all__ = ["STREAM_FAULTS", "StreamFeeder"]

STREAM_FAULTS = ("torn_write", "rotate", "duplicate_replay", "burst", "stall")

_STATE_NAME = ".feeder-state.json"

_FEED_FILES = ("ras.csv", "jobs.csv", "tasks.csv", "io.csv")


class StreamFeeder:
    """Deterministic incremental appender with optional stream faults."""

    def __init__(
        self,
        source_dir: str | Path,
        feed_dir: str | Path,
        *,
        seed: int = 0,
        chunk_rows: int = 200,
        faults: tuple | list = (),
        rate: float = 0.1,
    ):
        self.source_dir = Path(source_dir)
        self.feed_dir = Path(feed_dir)
        self.seed = int(seed)
        self.chunk_rows = int(chunk_rows)
        for fault in faults:
            if fault not in STREAM_FAULTS:
                raise FaultError(
                    f"unknown stream fault {fault!r} "
                    f"(have: {', '.join(STREAM_FAULTS)})"
                )
        self.faults = tuple(faults)
        self.rate = float(rate)
        if not self.source_dir.is_dir():
            raise FaultError(f"source dataset not found: {self.source_dir}")
        self.feed_dir.mkdir(parents=True, exist_ok=True)
        # Source lines, loaded once: [header, row, row, ...] per file.
        self._lines: dict[str, list[str]] = {}
        for name in _FEED_FILES:
            path = self.source_dir / name
            if not path.exists():
                raise FaultError(f"source feed file missing: {path}")
            self._lines[name] = path.read_text().splitlines()
        self._state = self._load_state()

    # -- persistent progress -------------------------------------------

    def _state_path(self) -> Path:
        return self.feed_dir / _STATE_NAME

    def _load_state(self) -> dict:
        try:
            state = json.loads(self._state_path().read_text())
        except (OSError, ValueError):
            state = {}
        if not isinstance(state, dict) or "positions" not in state:
            state = {
                "step": 0,
                # next un-appended data-row index per file (0 = none yet;
                # index is into the data rows, header excluded)
                "positions": {name: 0 for name in _FEED_FILES},
                # pending torn fragment per file: [row_index, n_chars]
                "torn": {},
            }
        return state

    def _save_state(self) -> None:
        atomic_write_text(
            self._state_path(),
            json.dumps(self._state, sort_keys=True) + "\n",
        )

    # -- feed primitives -----------------------------------------------

    def _data_rows(self, name: str) -> list[str]:
        return self._lines[name][1:]

    def _header(self, name: str) -> str:
        return self._lines[name][0]

    def _append(self, name: str, text: str) -> None:
        path = self.feed_dir / name
        if not path.exists():
            path.write_text(self._header(name) + "\n")
        with open(path, "a") as fh:
            fh.write(text)

    def _complete_torn(self, name: str) -> bool:
        torn = self._state["torn"].pop(name, None)
        if torn is None:
            return False
        row_index, n_chars = torn
        row = self._data_rows(name)[row_index]
        self._append(name, row[n_chars:] + "\n")
        return True

    def _rotate(self, name: str) -> None:
        """Logrotate shift by rename — the live file keeps its inode as
        ``<name>.1``, so the tailer can drain its unread tail."""
        base = self.feed_dir / name
        if not base.exists():
            return
        numbered = []
        for sibling in self.feed_dir.glob(name + ".*"):
            suffix = sibling.name[len(name) + 1:]
            if suffix.isdigit():
                numbered.append(int(suffix))
        for n in sorted(numbered, reverse=True):
            (self.feed_dir / f"{name}.{n}").rename(
                self.feed_dir / f"{name}.{n + 1}"
            )
        base.rename(self.feed_dir / f"{name}.1")
        (self.feed_dir / name).write_text(self._header(name) + "\n")

    # -- stepping ------------------------------------------------------

    @property
    def done(self) -> bool:
        return all(
            self._state["positions"][name] >= len(self._data_rows(name))
            and name not in self._state["torn"]
            for name in _FEED_FILES
        )

    def step(self) -> dict:
        """One deterministic append round across every source."""
        step_index = int(self._state["step"])
        rng = np.random.default_rng([self.seed, step_index])
        fired: list[str] = []
        wrote = 0
        for name in _FEED_FILES:
            rows = self._data_rows(name)
            position = int(self._state["positions"][name])
            # A pending torn row is always finished before anything
            # else happens to this source (so rotation never strands a
            # half-row in a rotated-out file).
            if self._complete_torn(name):
                fired.append(f"torn_complete:{name}")
                wrote += 1
            if position >= len(rows):
                continue
            if "stall" in self.faults and rng.random() < self.rate:
                fired.append(f"stall:{name}")
                continue
            if "rotate" in self.faults and rng.random() < self.rate:
                self._rotate(name)
                fired.append(f"rotate:{name}")
            chunk = self.chunk_rows
            if "burst" in self.faults and rng.random() < self.rate:
                chunk *= 5
                fired.append(f"burst:{name}")
            if (
                "duplicate_replay" in self.faults
                and position > 0
                and rng.random() < self.rate
            ):
                replayed = int(rng.integers(0, position))
                self._append(name, rows[replayed] + "\n")
                fired.append(f"duplicate_replay:{name}")
                wrote += 1
            end = min(position + chunk, len(rows))
            torn_here = (
                "torn_write" in self.faults
                and end > position
                and end < len(rows)  # never tear the very last row
                and rng.random() < self.rate
            )
            if torn_here:
                # write whole rows up to end-1, then a prefix of row end-1
                whole = rows[position:end - 1]
                if whole:
                    self._append(name, "\n".join(whole) + "\n")
                    wrote += len(whole)
                victim = rows[end - 1]
                n_chars = max(1, int(rng.integers(1, max(2, len(victim)))))
                self._append(name, victim[:n_chars])
                self._state["torn"][name] = [end - 1, n_chars]
                fired.append(f"torn_write:{name}")
            else:
                batch = rows[position:end]
                if batch:
                    self._append(name, "\n".join(batch) + "\n")
                    wrote += len(batch)
            self._state["positions"][name] = end
        self._state["step"] = step_index + 1
        self._save_state()
        return {"step": step_index, "wrote": wrote, "faults": fired,
                "done": self.done}

    def run(self, steps: int | None = None) -> dict:
        """Run ``steps`` rounds (or until the source is exhausted)."""
        summaries = []
        while not self.done:
            summaries.append(self.step())
            if steps is not None and len(summaries) >= steps:
                break
        if self.done:
            # Exhausted: finish any trailing torn fragment so the feed
            # ends newline-terminated (a still-live feeder would have
            # completed it on its next step anyway).
            for name in _FEED_FILES:
                if self._complete_torn(name):
                    self._save_state()
        return {
            "steps": len(summaries),
            "wrote": sum(s["wrote"] for s in summaries),
            "faults": [f for s in summaries for f in s["faults"]],
            "done": self.done,
        }
