"""Deterministic fault injection for resilience drills.

Corrupts a saved dataset directory the way production logging corrupts
real traces, reproducibly::

    from repro.faults import FaultPlan
    records = FaultPlan(seed=7).inject("dataset_dir")

The ``repro-chaos`` CLI wraps this for end-to-end drills against the
lenient ingestion path.
"""

from .injectors import ALL_FAULTS, FAULT_INJECTORS, FaultRecord
from .plan import FaultPlan, inject_faults

__all__ = [
    "ALL_FAULTS",
    "FAULT_INJECTORS",
    "FaultRecord",
    "FaultPlan",
    "inject_faults",
]
