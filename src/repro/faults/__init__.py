"""Deterministic fault injection for resilience drills.

Two fault families, both reproducible:

- **On-disk** — corrupt a saved dataset directory the way production
  logging corrupts real traces::

      from repro.faults import FaultPlan
      records = FaultPlan(seed=7).inject("dataset_dir")

- **Process-level** — kill, hang, or slow the process running a named
  experiment, driving the engine's supervision paths (worker-death
  re-dispatch, timeout, stall recovery)::

      from repro.faults import process_faults
      with process_faults("kill_worker:e03"):
          suite = run_suite(dataset, jobs=4)

The ``repro-chaos`` CLI wraps both for end-to-end drills against the
lenient ingestion path and the crash-safe run orchestration.
"""

from .injectors import (
    ALL_FAULTS,
    FAULT_INJECTORS,
    PROCESS_FAULTS,
    FaultRecord,
)
from .plan import (
    PROCESS_FAULT_ENV,
    FaultPlan,
    ProcessFaultPlan,
    active_process_plan,
    apply_process_faults,
    inject_faults,
    process_faults,
)
from .streams import STREAM_FAULTS, StreamFeeder

__all__ = [
    "ALL_FAULTS",
    "FAULT_INJECTORS",
    "PROCESS_FAULTS",
    "FaultRecord",
    "FaultPlan",
    "ProcessFaultPlan",
    "PROCESS_FAULT_ENV",
    "active_process_plan",
    "apply_process_faults",
    "inject_faults",
    "process_faults",
    "STREAM_FAULTS",
    "StreamFeeder",
]
