"""Deterministic on-disk fault injectors.

Each injector corrupts one aspect of a saved dataset directory the way
2001 days of production logging corrupts real traces: truncated and
garbled CSV lines, out-of-domain severities and message IDs, unsorted
and negative timestamps, duplicated records, and whole-source dropout.
Injectors draw from a caller-supplied :class:`numpy.random.Generator`,
so a :class:`~repro.faults.plan.FaultPlan` replays the exact same
corruption for the same seed — every drill is reproducible in tests.

An injector takes ``(directory, rng, rate)`` and returns a
:class:`FaultRecord` describing what it touched; a missing target file
yields a zero-row record instead of an error so plans compose with the
dropout faults in any order.
"""

from __future__ import annotations

import csv
import io
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

__all__ = [
    "FaultRecord",
    "FAULT_INJECTORS",
    "ALL_FAULTS",
    "PROCESS_FAULTS",
    "kill_worker_action",
    "hang_action",
    "slow_action",
]

_GARBAGE_ALPHABET = list("#@!%&*~?^|;$ ")
_UNKNOWN_SEVERITY = "CATASTROPHIC"
_UNKNOWN_MSG_ID = "FFFFFFFF"  # valid 8-hex shape, absent from every catalog


@dataclass(frozen=True)
class FaultRecord:
    """What one injector did: which file, how many rows, any detail."""

    fault: str
    path: str
    n_rows: int
    detail: str = ""


def _read_lines(path: Path) -> list[str]:
    return path.read_text().splitlines()


def _write_lines(path: Path, lines: list[str]) -> None:
    path.write_text("\n".join(lines) + "\n")


def _sample_rows(rng: np.random.Generator, n_rows: int, rate: float) -> np.ndarray:
    """Pick ``max(1, rate*n)`` distinct data-row indices, sorted."""
    if n_rows == 0:
        return np.empty(0, dtype=int)
    k = min(n_rows, max(1, int(round(rate * n_rows))))
    return np.sort(rng.choice(n_rows, size=k, replace=False))


def _missing(fault: str, filename: str) -> FaultRecord:
    return FaultRecord(fault, filename, 0, "target missing; skipped")


def _parse_csv(lines: list[str]) -> list[list[str]]:
    return list(csv.reader(lines))


def _format_csv_row(row: list[str]) -> str:
    buffer = io.StringIO()
    csv.writer(buffer, lineterminator="").writerow(row)
    return buffer.getvalue()


def _rewrite_cells(
    fault: str,
    directory: Path,
    rng: np.random.Generator,
    rate: float,
    filename: str,
    mutate: Callable[[list[str], dict[str, int], np.random.Generator], None],
) -> FaultRecord:
    """Apply ``mutate(row, column_index, rng)`` to sampled parsed rows."""
    path = directory / filename
    if not path.exists():
        return _missing(fault, filename)
    lines = _read_lines(path)
    header, *body = lines
    column_index = {name: i for i, name in enumerate(next(csv.reader([header])))}
    picks = _sample_rows(rng, len(body), rate)
    parsed = _parse_csv(body)
    touched = 0
    for i in picks:
        # Rows already mangled by an earlier fault in the plan no longer
        # have the full field set; leave them as they are.
        if len(parsed[i]) != len(column_index):
            continue
        mutate(parsed[i], column_index, rng)
        body[i] = _format_csv_row(parsed[i])
        touched += 1
    _write_lines(path, [header] + body)
    return FaultRecord(fault, filename, touched)


def truncate_rows(directory: Path, rng: np.random.Generator, rate: float) -> FaultRecord:
    """Cut sampled ``ras.csv`` lines off mid-record (lost log tail)."""
    path = directory / "ras.csv"
    if not path.exists():
        return _missing("truncate_rows", "ras.csv")
    lines = _read_lines(path)
    header, *body = lines
    picks = _sample_rows(rng, len(body), rate)
    for i in picks:
        line = body[i]
        last_comma = line.rfind(",")
        if last_comma <= 1:
            continue
        # Cutting before the final separator always changes the field
        # count, so strict parsing fails deterministically.
        body[i] = line[: int(rng.integers(1, last_comma))]
    _write_lines(path, [header] + body)
    return FaultRecord("truncate_rows", "ras.csv", len(picks))


def garble_rows(directory: Path, rng: np.random.Generator, rate: float) -> FaultRecord:
    """Replace sampled ``ras.csv`` lines with separator-free noise."""
    path = directory / "ras.csv"
    if not path.exists():
        return _missing("garble_rows", "ras.csv")
    lines = _read_lines(path)
    header, *body = lines
    picks = _sample_rows(rng, len(body), rate)
    for i in picks:
        length = int(rng.integers(5, 40))
        body[i] = "".join(rng.choice(_GARBAGE_ALPHABET, size=length))
    _write_lines(path, [header] + body)
    return FaultRecord("garble_rows", "ras.csv", len(picks))


def unknown_severity(
    directory: Path, rng: np.random.Generator, rate: float
) -> FaultRecord:
    """Rewrite sampled RAS severities to an out-of-domain token."""

    def mutate(row, column_index, _rng):
        row[column_index["severity"]] = _UNKNOWN_SEVERITY

    return _rewrite_cells(
        "unknown_severity", directory, rng, rate, "ras.csv", mutate
    )


def unknown_msg_id(
    directory: Path, rng: np.random.Generator, rate: float
) -> FaultRecord:
    """Rewrite sampled RAS message IDs to one absent from the catalog."""

    def mutate(row, column_index, _rng):
        row[column_index["msg_id"]] = _UNKNOWN_MSG_ID

    return _rewrite_cells("unknown_msg_id", directory, rng, rate, "ras.csv", mutate)


def shuffle_timestamps(
    directory: Path, rng: np.random.Generator, rate: float
) -> FaultRecord:
    """Swap timestamps of sampled adjacent RAS rows (ordering faults)."""
    path = directory / "ras.csv"
    if not path.exists():
        return _missing("shuffle_timestamps", "ras.csv")
    lines = _read_lines(path)
    header, *body = lines
    column_index = {
        name: i for i, name in enumerate(next(csv.reader([header])))
    }
    ts = column_index["timestamp"]
    parsed = _parse_csv(body)
    picks = _sample_rows(rng, max(len(body) - 1, 0), rate)
    swapped = 0
    for i in picks:
        a, b = parsed[i], parsed[i + 1]
        if len(a) != len(column_index) or len(b) != len(column_index):
            continue
        if a[ts] == b[ts]:
            continue
        a[ts], b[ts] = b[ts], a[ts]
        body[i] = _format_csv_row(a)
        body[i + 1] = _format_csv_row(b)
        swapped += 1
    _write_lines(path, [header] + body)
    return FaultRecord("shuffle_timestamps", "ras.csv", swapped)


def negative_timestamps(
    directory: Path, rng: np.random.Generator, rate: float
) -> FaultRecord:
    """Rewrite sampled RAS timestamps to negative values (clock bugs)."""

    def mutate(row, column_index, rng):
        row[column_index["timestamp"]] = f"-{float(rng.uniform(1.0, 1e6)):.3f}"

    return _rewrite_cells(
        "negative_timestamps", directory, rng, rate, "ras.csv", mutate
    )


def duplicate_rows(
    directory: Path, rng: np.random.Generator, rate: float
) -> FaultRecord:
    """Append duplicates of sampled ``jobs.csv`` rows (double logging)."""
    path = directory / "jobs.csv"
    if not path.exists():
        return _missing("duplicate_rows", "jobs.csv")
    lines = _read_lines(path)
    header, *body = lines
    picks = _sample_rows(rng, len(body), rate)
    body.extend(body[i] for i in picks)
    _write_lines(path, [header] + body)
    return FaultRecord("duplicate_rows", "jobs.csv", len(picks))


def drop_darshan(
    directory: Path, rng: np.random.Generator, rate: float
) -> FaultRecord:
    """Delete the Darshan I/O log entirely (whole-source dropout)."""
    path = directory / "io.csv"
    if not path.exists():
        return _missing("drop_darshan", "io.csv")
    n_rows = max(len(_read_lines(path)) - 1, 0)
    path.unlink()
    return FaultRecord("drop_darshan", "io.csv", n_rows, "file deleted")


def drop_tasks(
    directory: Path, rng: np.random.Generator, rate: float
) -> FaultRecord:
    """Delete the task log entirely (whole-source dropout)."""
    path = directory / "tasks.csv"
    if not path.exists():
        return _missing("drop_tasks", "tasks.csv")
    n_rows = max(len(_read_lines(path)) - 1, 0)
    path.unlink()
    return FaultRecord("drop_tasks", "tasks.csv", n_rows, "file deleted")


# ----------------------------------------------------------------------
# process-level fault actions
# ----------------------------------------------------------------------
#
# Unlike the on-disk injectors above, these act on the *running*
# experiment process, modeling the failure modes a long campaign
# actually dies of: a worker OOM-killed mid-experiment, an experiment
# wedged in an uninterruptible call, and an experiment that is merely
# far slower than budgeted.  They are armed per experiment through a
# :class:`~repro.faults.plan.ProcessFaultPlan` (usually via the
# ``REPRO_PROCESS_FAULTS`` environment variable, which crosses into
# pool workers), and are fully deterministic: the same plan kills the
# same experiment on the same attempt every run.


def kill_worker_action() -> None:
    """Die instantly (SIGKILL self), like an OOM-killed pool worker.

    No Python cleanup runs — the supervising engine sees a broken pool
    exactly as it would for a real worker death.
    """
    os.kill(os.getpid(), signal.SIGKILL)


def hang_action(seconds: float) -> None:
    """Wedge for ``seconds`` with ``SIGALRM`` blocked.

    Blocking the alarm makes the hang immune to the engine's in-worker
    timeout, so it exercises the supervisor-side stall detector (the
    path a worker stuck in uninterruptible C code would take).
    """
    if hasattr(signal, "pthread_sigmask") and hasattr(signal, "SIGALRM"):
        signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        time.sleep(min(1.0, max(deadline - time.monotonic(), 0.0)))


def slow_action(seconds: float) -> None:
    """Sleep ``seconds`` before the experiment runs (interruptible).

    With a ``--timeout`` below ``seconds`` this deterministically
    drives the in-worker timeout path; without one it just paces the
    suite (useful for kill-mid-run drills).
    """
    time.sleep(seconds)


PROCESS_FAULTS: tuple[str, ...] = ("kill_worker", "hang", "slow")
"""Process-level fault kinds accepted by a ``ProcessFaultPlan`` spec."""


FAULT_INJECTORS: dict[str, Callable[[Path, np.random.Generator, float], FaultRecord]] = {
    "truncate_rows": truncate_rows,
    "garble_rows": garble_rows,
    "unknown_severity": unknown_severity,
    "unknown_msg_id": unknown_msg_id,
    "shuffle_timestamps": shuffle_timestamps,
    "negative_timestamps": negative_timestamps,
    "duplicate_rows": duplicate_rows,
    "drop_darshan": drop_darshan,
    "drop_tasks": drop_tasks,
}
"""Registry of fault name → injector."""

ALL_FAULTS: tuple[str, ...] = tuple(FAULT_INJECTORS)
"""Every fault, in registry (application) order — dropouts last."""
