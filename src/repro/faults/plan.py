"""Composable, seeded fault plans.

A :class:`FaultPlan` names an ordered set of faults, a seed, and a
corruption rate; :meth:`FaultPlan.inject` applies them to a dataset
directory in order, threading one seeded RNG through all injectors so
the same plan always produces the same corruption.  That determinism is
what makes chaos drills assertable: a test can corrupt a dataset, run
the lenient pipeline, and check exact quarantine counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import FaultError

from .injectors import ALL_FAULTS, FAULT_INJECTORS, FaultRecord

__all__ = ["FaultPlan", "inject_faults"]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded, rate-controlled set of faults to inject.

    Parameters
    ----------
    faults:
        Fault names from :data:`~repro.faults.injectors.FAULT_INJECTORS`,
        applied in the given order.
    seed:
        RNG seed; identical plans corrupt identically.
    rate:
        Fraction of data rows each row-level fault touches (at least
        one row per fault).
    """

    faults: tuple[str, ...] = ALL_FAULTS
    seed: int = 0
    rate: float = 0.02

    def __post_init__(self):
        unknown = [name for name in self.faults if name not in FAULT_INJECTORS]
        if unknown:
            raise FaultError(
                f"unknown fault(s) {unknown}; known: {sorted(FAULT_INJECTORS)}"
            )
        if not self.faults:
            raise FaultError("fault plan is empty")
        if not 0.0 < self.rate <= 1.0:
            raise FaultError(f"rate {self.rate} outside (0, 1]")

    def inject(self, directory: str | Path) -> list[FaultRecord]:
        """Corrupt ``directory`` in place; returns one record per fault.

        Raises
        ------
        FaultError
            When the directory does not exist or holds no log files.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise FaultError(f"{directory}: not a dataset directory")
        if not any(directory.glob("*.csv")):
            raise FaultError(f"{directory}: no log files to corrupt")
        rng = np.random.default_rng(self.seed)
        return [
            FAULT_INJECTORS[name](directory, rng, self.rate)
            for name in self.faults
        ]


def inject_faults(
    directory: str | Path,
    faults: tuple[str, ...] | list[str] | None = None,
    seed: int = 0,
    rate: float = 0.02,
) -> list[FaultRecord]:
    """One-call convenience wrapper around :class:`FaultPlan`."""
    plan = FaultPlan(
        faults=tuple(faults) if faults else ALL_FAULTS, seed=seed, rate=rate
    )
    return plan.inject(directory)
