"""Composable, seeded fault plans — on-disk and process-level.

A :class:`FaultPlan` names an ordered set of faults, a seed, and a
corruption rate; :meth:`FaultPlan.inject` applies them to a dataset
directory in order, threading one seeded RNG through all injectors so
the same plan always produces the same corruption.  That determinism is
what makes chaos drills assertable: a test can corrupt a dataset, run
the lenient pipeline, and check exact quarantine counts.

A :class:`ProcessFaultPlan` is its runtime sibling: instead of
corrupting files it deterministically kills, hangs, or slows the
process running a named experiment, so every supervision path in
:mod:`repro.experiments.engine` (worker-death re-dispatch, in-worker
timeout, supervisor stall recovery) is drivable from a test or from
the ``repro-chaos`` CLI.  Plans travel through the
``REPRO_PROCESS_FAULTS`` environment variable, which pool workers
inherit, encoded as semicolon-separated clauses::

    kill_worker:e03        # SIGKILL the process running e03 (attempt 1)
    kill_worker:e03:2      # kill attempts 1 and 2; attempt 3 survives
    hang:e05:60            # wedge e05 for 60s, immune to SIGALRM
    slow:e07:0.5           # sleep 0.5s before e07 runs
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.errors import FaultError

from .injectors import (
    ALL_FAULTS,
    FAULT_INJECTORS,
    PROCESS_FAULTS,
    FaultRecord,
    hang_action,
    kill_worker_action,
    slow_action,
)

__all__ = [
    "FaultPlan",
    "inject_faults",
    "ProcessFaultPlan",
    "PROCESS_FAULT_ENV",
    "active_process_plan",
    "apply_process_faults",
    "process_faults",
]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded, rate-controlled set of faults to inject.

    Parameters
    ----------
    faults:
        Fault names from :data:`~repro.faults.injectors.FAULT_INJECTORS`,
        applied in the given order.
    seed:
        RNG seed; identical plans corrupt identically.
    rate:
        Fraction of data rows each row-level fault touches (at least
        one row per fault).
    """

    faults: tuple[str, ...] = ALL_FAULTS
    seed: int = 0
    rate: float = 0.02

    def __post_init__(self):
        unknown = [name for name in self.faults if name not in FAULT_INJECTORS]
        if unknown:
            raise FaultError(
                f"unknown fault(s) {unknown}; known: {sorted(FAULT_INJECTORS)}"
            )
        if not self.faults:
            raise FaultError("fault plan is empty")
        if not 0.0 < self.rate <= 1.0:
            raise FaultError(f"rate {self.rate} outside (0, 1]")

    def inject(self, directory: str | Path) -> list[FaultRecord]:
        """Corrupt ``directory`` in place; returns one record per fault.

        Raises
        ------
        FaultError
            When the directory does not exist or holds no log files.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise FaultError(f"{directory}: not a dataset directory")
        if not any(directory.glob("*.csv")):
            raise FaultError(f"{directory}: no log files to corrupt")
        rng = np.random.default_rng(self.seed)
        return [
            FAULT_INJECTORS[name](directory, rng, self.rate)
            for name in self.faults
        ]


def inject_faults(
    directory: str | Path,
    faults: tuple[str, ...] | list[str] | None = None,
    seed: int = 0,
    rate: float = 0.02,
) -> list[FaultRecord]:
    """One-call convenience wrapper around :class:`FaultPlan`."""
    plan = FaultPlan(
        faults=tuple(faults) if faults else ALL_FAULTS, seed=seed, rate=rate
    )
    return plan.inject(directory)


# ----------------------------------------------------------------------
# process-level plans
# ----------------------------------------------------------------------

PROCESS_FAULT_ENV = "REPRO_PROCESS_FAULTS"
"""Environment variable carrying the active process-fault spec into
the experiment engine and its pool workers."""

_DEFAULT_HANG_SECONDS = 3600.0
_DEFAULT_SLOW_SECONDS = 1.0


@dataclass(frozen=True)
class ProcessFaultPlan:
    """Deterministic process-level faults, keyed by experiment ID.

    Parameters
    ----------
    kills:
        Experiment ID → number of leading attempts to SIGKILL.  The
        process running attempt ``n`` of that experiment dies iff
        ``n <= kills[id]``, so a plan with ``{"e03": 1}`` kills the
        first dispatch and lets the retry succeed.
    hangs:
        Experiment ID → seconds to wedge with ``SIGALRM`` blocked
        (immune to the in-worker timeout; drives the supervisor's
        stall detector).
    slows:
        Experiment ID → seconds to sleep, interruptibly, before the
        experiment runs (drives the in-worker timeout when it exceeds
        the configured budget).
    """

    kills: Mapping[str, int] = field(default_factory=dict)
    hangs: Mapping[str, float] = field(default_factory=dict)
    slows: Mapping[str, float] = field(default_factory=dict)

    @classmethod
    def parse(cls, spec: str) -> "ProcessFaultPlan":
        """Parse a ``kind:experiment[:amount]`` clause list (``;``-joined).

        Raises
        ------
        FaultError
            On an unknown fault kind or a malformed clause.
        """
        kills: dict[str, int] = {}
        hangs: dict[str, float] = {}
        slows: dict[str, float] = {}
        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            parts = clause.split(":")
            if len(parts) not in (2, 3) or not parts[1]:
                raise FaultError(
                    f"malformed process-fault clause {clause!r}; "
                    "expected kind:experiment[:amount]"
                )
            kind, experiment_id = parts[0], parts[1]
            if kind not in PROCESS_FAULTS:
                raise FaultError(
                    f"unknown process fault {kind!r}; known: {list(PROCESS_FAULTS)}"
                )
            amount = parts[2] if len(parts) == 3 else None
            try:
                if kind == "kill_worker":
                    kills[experiment_id] = int(amount) if amount else 1
                elif kind == "hang":
                    hangs[experiment_id] = (
                        float(amount) if amount else _DEFAULT_HANG_SECONDS
                    )
                else:
                    slows[experiment_id] = (
                        float(amount) if amount else _DEFAULT_SLOW_SECONDS
                    )
            except ValueError as error:
                raise FaultError(
                    f"bad amount in process-fault clause {clause!r}: {error}"
                ) from None
        if not (kills or hangs or slows):
            raise FaultError("process-fault spec is empty")
        return cls(kills=kills, hangs=hangs, slows=slows)

    def spec(self) -> str:
        """Canonical spec string; ``parse(plan.spec()) == plan``."""
        clauses = [f"kill_worker:{eid}:{n}" for eid, n in sorted(self.kills.items())]
        clauses += [f"hang:{eid}:{s:g}" for eid, s in sorted(self.hangs.items())]
        clauses += [f"slow:{eid}:{s:g}" for eid, s in sorted(self.slows.items())]
        return ";".join(clauses)

    def apply(self, experiment_id: str, attempt: int = 1) -> None:
        """Fire any faults armed for ``experiment_id`` on this ``attempt``.

        Called by the engine inside the worker immediately before the
        experiment body runs.
        """
        if self.kills.get(experiment_id, 0) >= attempt:
            kill_worker_action()
        if experiment_id in self.hangs:
            hang_action(self.hangs[experiment_id])
        if experiment_id in self.slows:
            slow_action(self.slows[experiment_id])


def active_process_plan() -> ProcessFaultPlan | None:
    """The plan armed via ``REPRO_PROCESS_FAULTS``, or ``None``.

    Raises
    ------
    FaultError
        When the variable is set but unparseable — a misspelled drill
        must fail loudly, not silently run fault-free.
    """
    spec = os.environ.get(PROCESS_FAULT_ENV, "").strip()
    if not spec:
        return None
    return ProcessFaultPlan.parse(spec)


def apply_process_faults(experiment_id: str, attempt: int = 1) -> None:
    """Engine hook: fire the environment-armed faults, if any."""
    plan = active_process_plan()
    if plan is not None:
        plan.apply(experiment_id, attempt)


@contextmanager
def process_faults(spec: str) -> Iterator[ProcessFaultPlan]:
    """Arm a process-fault spec for the duration of a ``with`` block.

    Validates the spec eagerly, exports it through
    ``REPRO_PROCESS_FAULTS`` (so freshly spawned pool workers inherit
    it), and restores the previous value on exit.
    """
    plan = ProcessFaultPlan.parse(spec)
    previous = os.environ.get(PROCESS_FAULT_ENV)
    os.environ[PROCESS_FAULT_ENV] = plan.spec()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(PROCESS_FAULT_ENV, None)
        else:
            os.environ[PROCESS_FAULT_ENV] = previous
