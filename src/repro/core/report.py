"""Plain-text study report generation.

Renders a dataset plus any subset of experiments into the terminal
report the CLI's ``repro-report`` emits: overview, per-experiment
tables, and the takeaway scorecard.
"""

from __future__ import annotations

from repro.dataset import MiraDataset
from repro.errors import ReproError

__all__ = ["render_report"]


def render_report(
    dataset: MiraDataset,
    experiment_ids: list[str] | None = None,
    max_rows: int = 20,
) -> str:
    """Render a multi-experiment text report.

    Parameters
    ----------
    experiment_ids:
        Experiments to include (default: all sixteen, in order).
    """
    from repro.experiments import all_experiments, run_experiment

    ids = experiment_ids if experiment_ids is not None else list(all_experiments())
    header = [
        "=" * 72,
        f"Mira job-failure characterization — {dataset.spec.name}, "
        f"{dataset.n_days:g} days, seed {dataset.seed}",
        "=" * 72,
    ]
    sections = []
    for experiment_id in ids:
        try:
            result = run_experiment(experiment_id, dataset)
        except (ReproError, ValueError) as error:
            # Small traces legitimately starve some experiments (too few
            # failures per family, too few interruption intervals, ...);
            # report the reason instead of aborting the whole report.
            sections.append(
                f"== {experiment_id.upper()} == skipped: {error}"
            )
            continue
        sections.append(result.to_text(max_rows=max_rows))
    return "\n\n".join(["\n".join(header)] + sections)
