"""Plain-text study report generation.

Renders a dataset plus any subset of experiments into the terminal
report the CLI's ``repro-report`` emits: overview, per-experiment
tables, and the takeaway scorecard.

Experiments are isolated from each other: one crashing experiment
becomes a line in the report's failure section instead of aborting the
run, and experiments degraded by missing sources (lenient ingestion)
are listed there too, next to the quarantined-row counts.
"""

from __future__ import annotations

from repro.dataset import MiraDataset
from repro.errors import ReproError

__all__ = ["render_report"]


def render_report(
    dataset: MiraDataset,
    experiment_ids: list[str] | None = None,
    max_rows: int = 20,
) -> str:
    """Render a multi-experiment text report.

    Parameters
    ----------
    experiment_ids:
        Experiments to include (default: all, in order).

    Every experiment runs even if earlier ones fail; skips, errors, and
    degradations are collected into a trailing ``INGESTION & FAILURES``
    section together with the dataset's lenient-ingestion report (when
    it was loaded with ``lenient=True``).
    """
    from repro.experiments import all_experiments, run_experiment

    ids = experiment_ids if experiment_ids is not None else list(all_experiments())
    header = [
        "=" * 72,
        f"Mira job-failure characterization — {dataset.spec.name}, "
        f"{dataset.n_days:g} days, seed {dataset.seed}",
        "=" * 72,
    ]
    sections = []
    failures: list[str] = []
    degraded: list[str] = []
    for experiment_id in ids:
        try:
            result = run_experiment(experiment_id, dataset)
        except (ReproError, ValueError) as error:
            # Small traces legitimately starve some experiments (too few
            # failures per family, too few interruption intervals, ...);
            # report the reason instead of aborting the whole report.
            sections.append(f"== {experiment_id.upper()} == skipped: {error}")
            failures.append(f"{experiment_id}: skipped: {error}")
            continue
        except Exception as error:  # noqa: BLE001 - isolate experiment crashes
            sections.append(f"== {experiment_id.upper()} == error: {error!r}")
            failures.append(f"{experiment_id}: error: {error!r}")
            continue
        if result.degraded:
            degraded.append(f"{experiment_id}: {result.notes}")
        sections.append(result.to_text(max_rows=max_rows))
    ingestion = getattr(dataset, "ingestion", None)
    if ingestion or failures or degraded:
        tail = ["== INGESTION & FAILURES =="]
        if ingestion:
            tail.extend(f"  {line}" for line in ingestion.summary_lines())
        tail.extend(f"  degraded experiment {line}" for line in degraded)
        tail.extend(f"  failed experiment {line}" for line in failures)
        sections.append("\n".join(tail))
    return "\n\n".join(["\n".join(header)] + sections)
