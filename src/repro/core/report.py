"""Plain-text study report generation.

Renders a dataset plus any subset of experiments into the terminal
report the CLI's ``repro-report`` emits: overview, per-experiment
tables, and the takeaway scorecard.

Experiment execution is delegated to
:mod:`repro.experiments.engine`, which isolates failures (one crashing
experiment becomes a line in the report's failure section instead of
aborting the run) and can fan the suite out across worker processes;
the rendered text is byte-identical whichever worker count ran it.
Experiments degraded by missing sources (lenient ingestion) are listed
in the trailing section next to the quarantined-row counts.
"""

from __future__ import annotations

from repro.dataset import MiraDataset

__all__ = ["render_report"]


def render_report(
    dataset: MiraDataset,
    experiment_ids: list[str] | None = None,
    max_rows: int = 20,
    jobs: int = 1,
    timings: bool = False,
    suite=None,
) -> str:
    """Render a multi-experiment text report.

    Parameters
    ----------
    experiment_ids:
        Experiments to include (default: all, in order).
    jobs:
        Worker processes for the experiment suite (1 = in-process).
        The output text does not depend on this.
    timings:
        Append a ``TIMINGS`` section with per-experiment wall time and
        peak RSS.  Off by default so repeated runs stay byte-identical.
    suite:
        A pre-computed :class:`~repro.experiments.engine.SuiteResult`
        to render instead of running the experiments here (used by the
        CLI to share one run between the report and the bench record).

    Every experiment runs even if earlier ones fail; skips, errors, and
    degradations are collected into a trailing ``INGESTION & FAILURES``
    section together with the dataset's lenient-ingestion report (when
    it was loaded with ``lenient=True``).
    """
    from repro.experiments.engine import run_suite, timing_lines

    if suite is None:
        suite = run_suite(dataset, experiment_ids, jobs=jobs)
    header = [
        "=" * 72,
        f"Mira job-failure characterization — {dataset.spec.name}, "
        f"{dataset.n_days:g} days, seed {dataset.seed}",
        "=" * 72,
    ]
    sections = []
    failures: list[str] = []
    degraded: list[str] = []
    for outcome in suite.outcomes:
        experiment_id = outcome.experiment_id
        if outcome.status == "skipped":
            sections.append(
                f"== {experiment_id.upper()} == skipped: {outcome.message}"
            )
            failures.append(f"{experiment_id}: skipped: {outcome.message}")
            continue
        if outcome.status == "error":
            sections.append(
                f"== {experiment_id.upper()} == error: {outcome.message}"
            )
            failures.append(f"{experiment_id}: error: {outcome.message}")
            continue
        result = outcome.result
        if result.degraded:
            degraded.append(f"{experiment_id}: {result.notes}")
        sections.append(result.to_text(max_rows=max_rows))
    ingestion = getattr(dataset, "ingestion", None)
    if ingestion or failures or degraded:
        tail = ["== INGESTION & FAILURES =="]
        if ingestion:
            tail.extend(f"  {line}" for line in ingestion.summary_lines())
        tail.extend(f"  degraded experiment {line}" for line in degraded)
        tail.extend(f"  failed experiment {line}" for line in failures)
        sections.append("\n".join(tail))
    if timings:
        sections.append(
            "\n".join(["== TIMINGS =="] + [f"  {line}" for line in timing_lines(suite)])
        )
    return "\n\n".join(["\n".join(header)] + sections)
