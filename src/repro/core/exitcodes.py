"""Exit-status taxonomy and user/system attribution rules.

The job-scheduling log reports one byte of exit status per job.  The
paper groups the observed statuses into error types ("exit codes") and
shows that the best-fitting execution-length distribution differs per
type.  This module defines that grouping:

===============  ==========================  =======================
Family           Exit statuses               Typical cause
===============  ==========================  =======================
SUCCESS          0                           normal completion
SEGFAULT         139 (128+SIGSEGV), 11       memory bugs in user code
ABORT            134 (128+SIGABRT), 6        failed assertions/aborts
APP_ERROR        1, 255                      application-level errors
CONFIG           2, 125, 126, 127            wrong configuration,
                                             missing binaries
TIMEOUT          143 (128+SIGTERM)           walltime exhaustion
SYSTEM_KILL      137 (128+SIGKILL)           killed by control system
OTHER            anything else               unclassified
===============  ==========================  =======================

All families except SYSTEM_KILL are user behaviour; SYSTEM_KILL is the
candidate set for system-caused failures, confirmed by the RAS join in
:mod:`repro.core.attribution`.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.table import Table

__all__ = [
    "ExitFamily",
    "classify_exit_status",
    "classify_column",
    "is_user_family",
    "family_breakdown",
    "USER_FAMILIES",
]


class ExitFamily(Enum):
    """Grouping of exit statuses into error types."""

    SUCCESS = "success"
    SEGFAULT = "segfault"
    ABORT = "abort"
    APP_ERROR = "app_error"
    CONFIG = "config"
    TIMEOUT = "timeout"
    SYSTEM_KILL = "system_kill"
    OTHER = "other"


_STATUS_TO_FAMILY: dict[int, ExitFamily] = {
    0: ExitFamily.SUCCESS,
    139: ExitFamily.SEGFAULT,
    11: ExitFamily.SEGFAULT,
    134: ExitFamily.ABORT,
    6: ExitFamily.ABORT,
    1: ExitFamily.APP_ERROR,
    255: ExitFamily.APP_ERROR,
    2: ExitFamily.CONFIG,
    125: ExitFamily.CONFIG,
    126: ExitFamily.CONFIG,
    127: ExitFamily.CONFIG,
    143: ExitFamily.TIMEOUT,
    137: ExitFamily.SYSTEM_KILL,
}

USER_FAMILIES = frozenset(
    {
        ExitFamily.SEGFAULT,
        ExitFamily.ABORT,
        ExitFamily.APP_ERROR,
        ExitFamily.CONFIG,
        ExitFamily.TIMEOUT,
    }
)
"""Failure families attributed to user behaviour by the taxonomy alone."""


def classify_exit_status(status: int) -> ExitFamily:
    """Map one exit status byte to its family.

    Raises
    ------
    ValueError
        For statuses outside [0, 255].
    """
    if not 0 <= status <= 255:
        raise ValueError(f"exit status {status} outside [0, 255]")
    return _STATUS_TO_FAMILY.get(status, ExitFamily.OTHER)


def classify_column(statuses) -> np.ndarray:
    """Vector version: array of family value strings for a status column.

    Only the distinct statuses are classified (a full trace repeats a
    handful of exit bytes millions of times); the result fans back out
    through the inverse index.
    """
    arr = np.asarray(statuses)
    if arr.size == 0:
        return np.empty(0, dtype=object)
    uniques, inverse = np.unique(arr, return_inverse=True)
    families = np.array(
        [classify_exit_status(int(s)).value for s in uniques], dtype=object
    )
    return families[inverse]


def is_user_family(family: ExitFamily) -> bool:
    """True when the family is user-caused by the static taxonomy."""
    return family in USER_FAMILIES


def family_breakdown(jobs: Table) -> Table:
    """Count jobs per exit family, with share-of-failures.

    Returns columns ``(family, count, share, failure_share)`` sorted by
    count descending.  ``share`` is over all jobs; ``failure_share`` is
    over failed jobs only (NaN for the success row).
    """
    families = classify_column(jobs["exit_status"])
    annotated = jobs.with_column("family", families)
    counts = annotated.value_counts("family")
    total = jobs.n_rows
    n_failed = int((jobs["exit_status"] != 0).sum())
    share = counts["count"] / max(total, 1)
    failure_share = np.array(
        [
            np.nan
            if family == ExitFamily.SUCCESS.value
            else count / max(n_failed, 1)
            for family, count in zip(counts["family"], counts["count"])
        ]
    )
    return counts.with_column("share", share).with_column(
        "failure_share", failure_share
    )
