"""Spatial locality of fatal events.

The paper reports that RAS events "have a strong locality feature":
fatal activity concentrates on a small set of locations.  This module
computes the per-midplane fatal counts (the data behind the heatmap
figure) and scalar concentration metrics — Gini coefficient, top-k
shares, and normalized entropy.
"""

from __future__ import annotations

import numpy as np

from repro.bgq.machine import MachineSpec
from repro.core.attribution import event_midplane_spans
from repro.stats import gini
from repro.table import Table

__all__ = ["counts_by_midplane", "locality_metrics", "hot_midplanes"]


def counts_by_midplane(events: Table, spec: MachineSpec) -> np.ndarray:
    """Event count per global midplane index (rack events count on each
    midplane of the rack)."""
    first, count = event_midplane_spans(events["location"], spec)
    hits = np.repeat(first, count) + (
        np.arange(int(count.sum()), dtype=np.int64)
        - np.repeat(np.cumsum(count) - count, count)
    )
    return np.bincount(hits, minlength=spec.n_midplanes).astype(np.int64)


def locality_metrics(counts: np.ndarray) -> dict[str, float]:
    """Concentration metrics of a per-location count vector.

    ``normalized_entropy`` is Shannon entropy over the empirical
    distribution divided by ``log(n)`` — 1.0 means perfectly even, small
    values mean concentrated.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0:
        raise ValueError("locality_metrics requires a non-empty count vector")
    total = counts.sum()
    if total == 0:
        return {
            "gini": 0.0,
            "top1_share": 0.0,
            "top5pct_share": 0.0,
            "top10pct_share": 0.0,
            "normalized_entropy": 1.0,
            "n_locations_hit": 0,
        }
    ordered = np.sort(counts)[::-1]
    top5 = max(1, int(np.ceil(0.05 * counts.size)))
    top10 = max(1, int(np.ceil(0.10 * counts.size)))
    probabilities = counts / total
    nonzero = probabilities[probabilities > 0]
    entropy = float(-(nonzero * np.log(nonzero)).sum())
    return {
        "gini": gini(counts),
        "top1_share": float(ordered[0] / total),
        "top5pct_share": float(ordered[:top5].sum() / total),
        "top10pct_share": float(ordered[:top10].sum() / total),
        "normalized_entropy": entropy / np.log(counts.size) if counts.size > 1 else 1.0,
        "n_locations_hit": int((counts > 0).sum()),
    }


def hot_midplanes(
    events: Table, spec: MachineSpec, k: int = 10
) -> Table:
    """The k midplanes with the most events (heatmap top rows)."""
    from repro.bgq.location import Location

    counts = counts_by_midplane(events, spec)
    order = np.argsort(counts)[::-1][:k]
    total = counts.sum()
    return Table(
        {
            "midplane": [
                Location.from_midplane_index(int(i), spec).code for i in order
            ],
            "n_events": counts[order],
            "share": counts[order] / total if total else np.zeros(len(order)),
        }
    )
