"""Precursor analysis: do warnings announce fatal events? (extension)

Failing components often degrade visibly before they fail — correctable
error storms, temperature drift, link retraining.  This module measures
the WARN→FATAL relationship the way an operator would exploit it:

* **coverage** — the fraction of fatal incidents (filtered clusters)
  preceded by a WARN record at the same location unit within a lookback
  window;
* **lead time** — the distribution of gaps between the last such WARN
  and the fatal event;
* **alarm quality** — treating "WARN at location" as an alarm that a
  fatal event will follow within the window: precision and recall.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np

from repro.bgq.location import Level, Location
from repro.bgq.machine import MachineSpec
from repro.table import Table

__all__ = ["precursor_coverage", "alarm_quality"]


def _unit_times(
    events: Table, level: Level, spec: MachineSpec
) -> dict[str, np.ndarray]:
    """Sorted timestamps per enclosing location unit."""
    cache: dict[str, str] = {}
    per_unit: dict[str, list[float]] = {}
    for code, timestamp in zip(events["location"], events["timestamp"]):
        unit = cache.get(code)
        if unit is None:
            loc = Location.parse(code, spec)
            unit = loc.ancestor(min(level, loc.level, key=lambda l: l.value)).code
            cache[code] = unit
        per_unit.setdefault(unit, []).append(float(timestamp))
    return {unit: np.sort(np.asarray(times)) for unit, times in per_unit.items()}


def precursor_coverage(
    warn_events: Table,
    fatal_clusters: Table,
    lookback_seconds: float = 7200.0,
    level: Level = Level.MIDPLANE,
    *,
    spec: MachineSpec,
) -> tuple[dict[str, float], np.ndarray]:
    """Fraction of fatal clusters with a same-unit WARN precursor.

    Returns ``(metrics, lead_times_seconds)`` where metrics holds the
    coverage and lead-time quantiles.

    Raises
    ------
    ValueError
        For a non-positive lookback or no fatal clusters.
    """
    if lookback_seconds <= 0:
        raise ValueError("lookback must be positive")
    if fatal_clusters.n_rows == 0:
        raise ValueError("no fatal clusters to analyze")
    warn_times = _unit_times(warn_events, level, spec)
    cache: dict[str, str] = {}
    lead_times: list[float] = []
    covered = 0
    for code, timestamp in zip(
        fatal_clusters["location"], fatal_clusters["first_timestamp"]
    ):
        unit = cache.get(code)
        if unit is None:
            loc = Location.parse(code, spec)
            unit = loc.ancestor(min(level, loc.level, key=lambda l: l.value)).code
            cache[code] = unit
        times = warn_times.get(unit)
        if times is None:
            continue
        index = bisect_left(times, float(timestamp)) - 1
        if index >= 0 and timestamp - times[index] <= lookback_seconds:
            covered += 1
            lead_times.append(float(timestamp - times[index]))
    leads = np.asarray(lead_times)
    metrics = {
        "n_fatal_clusters": fatal_clusters.n_rows,
        "n_covered": covered,
        "coverage": covered / fatal_clusters.n_rows,
        "median_lead_seconds": float(np.median(leads)) if leads.size else float("nan"),
        "p90_lead_seconds": (
            float(np.percentile(leads, 90)) if leads.size else float("nan")
        ),
    }
    return metrics, leads


def alarm_quality(
    warn_events: Table,
    fatal_clusters: Table,
    horizon_seconds: float = 7200.0,
    level: Level = Level.MIDPLANE,
    *,
    spec: MachineSpec,
) -> dict[str, float]:
    """Precision/recall of "WARN at unit ⇒ fatal within horizon".

    Every WARN record is an alarm; it is a true positive when a fatal
    cluster starts at the same unit within ``horizon_seconds`` after it.
    Recall is the precursor coverage over that forward horizon.
    """
    if horizon_seconds <= 0:
        raise ValueError("horizon must be positive")
    fatal_times = _unit_times(
        fatal_clusters.rename({"first_timestamp": "timestamp"}), level, spec
    )
    cache: dict[str, str] = {}
    true_positive = 0
    n_alarms = warn_events.n_rows
    for code, timestamp in zip(warn_events["location"], warn_events["timestamp"]):
        unit = cache.get(code)
        if unit is None:
            loc = Location.parse(code, spec)
            unit = loc.ancestor(min(level, loc.level, key=lambda l: l.value)).code
            cache[code] = unit
        times = fatal_times.get(unit)
        if times is None:
            continue
        index = bisect_right(times, float(timestamp))
        if index < len(times) and times[index] - timestamp <= horizon_seconds:
            true_positive += 1
    coverage, _ = precursor_coverage(
        warn_events, fatal_clusters, horizon_seconds, level, spec=spec
    )
    return {
        "n_alarms": n_alarms,
        "precision": true_positive / n_alarms if n_alarms else float("nan"),
        "recall": coverage["coverage"],
    }
