"""Job-failure prediction from submit-time features (extension).

The paper motivates its characterization with proactive system
management: if failures correlate strongly with users, scale and
structure, they should be *predictable at submission time*.  This
module operationalizes that claim with two baselines evaluated under a
chronological train/test split:

* :class:`UserHistoryPredictor` — the user's smoothed historical
  failure rate (what a support team could compute by hand);
* :class:`LogisticPredictor` — logistic regression (numpy gradient
  descent) over user history plus job-shape features.

A large AUC gap over the 50% coin-flip line *is* the paper's
correlation findings, restated predictively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.correlation import rank
from repro.table import Table

__all__ = [
    "build_features",
    "UserHistoryPredictor",
    "LogisticPredictor",
    "auc_score",
    "evaluate_predictors",
    "PredictionReport",
]

FEATURE_NAMES = (
    "user_fail_rate",
    "user_n_jobs_log",
    "nodes_log2",
    "walltime_log",
    "n_tasks_log2",
)


def build_features(jobs: Table, smoothing: float = 2.0) -> tuple[np.ndarray, np.ndarray]:
    """Submit-time feature matrix and failure labels.

    Jobs must be sorted by submit time.  The user-history features for
    job *i* are computed only from that user's earlier submissions
    (prefix statistics), so there is no label leakage.  Returns
    ``(X, y)`` with ``X.shape == (n_jobs, len(FEATURE_NAMES))``.
    """
    order = np.argsort(jobs["submit_time"], kind="stable")
    ordered = jobs.take(order)
    n = ordered.n_rows
    x = np.zeros((n, len(FEATURE_NAMES)), dtype=np.float64)
    y = (ordered["exit_status"] != 0).astype(np.float64)
    past_jobs: dict[str, int] = {}
    past_failed: dict[str, int] = {}
    users = ordered["user"]
    global_rate = 0.25  # prior for unseen users
    for i in range(n):
        user = users[i]
        seen = past_jobs.get(user, 0)
        failed = past_failed.get(user, 0)
        x[i, 0] = (failed + smoothing * global_rate) / (seen + smoothing)
        x[i, 1] = np.log1p(seen)
        past_jobs[user] = seen + 1
        past_failed[user] = failed + int(y[i])
    x[:, 2] = np.log2(np.maximum(ordered["allocated_nodes"], 1))
    x[:, 3] = np.log(np.maximum(ordered["requested_walltime"], 1.0))
    x[:, 4] = np.log2(np.maximum(ordered["n_tasks"], 1))
    return x, y


class UserHistoryPredictor:
    """Predicts the user's smoothed historical failure rate."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "UserHistoryPredictor":
        """No-op (the feature already is the prediction)."""
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of failure per job."""
        return x[:, 0]


class LogisticPredictor:
    """Logistic regression via full-batch gradient descent on numpy."""

    def __init__(self, learning_rate: float = 0.5, n_iterations: int = 400,
                 l2: float = 1e-3):
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def _standardize(self, x: np.ndarray) -> np.ndarray:
        return (x - self._mean) / self._std

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticPredictor":
        """Train on features ``x`` and binary labels ``y``."""
        if len(x) != len(y) or len(x) == 0:
            raise ValueError("x and y must be equal-length and non-empty")
        self._mean = x.mean(axis=0)
        self._std = np.where(x.std(axis=0) > 0, x.std(axis=0), 1.0)
        z = np.hstack([np.ones((len(x), 1)), self._standardize(x)])
        w = np.zeros(z.shape[1])
        for _ in range(self.n_iterations):
            p = 1.0 / (1.0 + np.exp(-z @ w))
            gradient = z.T @ (p - y) / len(y) + self.l2 * w
            w -= self.learning_rate * gradient
        self.weights = w
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of failure per job.

        Raises
        ------
        RuntimeError
            If called before :meth:`fit`.
        """
        if self.weights is None:
            raise RuntimeError("predictor is not fitted")
        z = np.hstack([np.ones((len(x), 1)), self._standardize(x)])
        return 1.0 / (1.0 + np.exp(-z @ self.weights))


def auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank (Mann–Whitney) formula."""
    y = np.asarray(y_true, dtype=bool)
    n_pos = int(y.sum())
    n_neg = y.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC needs both classes present")
    ranks = rank(np.asarray(scores, dtype=np.float64))
    return float((ranks[y].sum() - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


@dataclass(frozen=True)
class PredictionReport:
    """Test-set quality of one predictor."""

    name: str
    auc: float
    brier: float
    precision_at_half: float
    recall_at_half: float
    n_test: int


def _report(name: str, y: np.ndarray, p: np.ndarray) -> PredictionReport:
    predicted = p >= 0.5
    true_pos = int((predicted & (y > 0)).sum())
    precision = true_pos / max(int(predicted.sum()), 1)
    recall = true_pos / max(int(y.sum()), 1)
    return PredictionReport(
        name=name,
        auc=auc_score(y, p),
        brier=float(np.mean((p - y) ** 2)),
        precision_at_half=precision,
        recall_at_half=recall,
        n_test=len(y),
    )


def evaluate_predictors(jobs: Table, train_fraction: float = 0.7) -> Table:
    """Chronological-split evaluation of both predictors.

    Returns one row per predictor with AUC, Brier score and
    precision/recall at the 0.5 threshold.

    Raises
    ------
    ValueError
        For degenerate splits (too few jobs or a single class).
    """
    if not 0.1 <= train_fraction <= 0.9:
        raise ValueError("train_fraction must be in [0.1, 0.9]")
    x, y = build_features(jobs)
    split = int(len(y) * train_fraction)
    if split < 10 or len(y) - split < 10:
        raise ValueError("need at least 10 jobs on each side of the split")
    reports = [
        _report(
            "user_history",
            y[split:],
            UserHistoryPredictor().fit(x[:split], y[:split]).predict_proba(x[split:]),
        ),
        _report(
            "logistic",
            y[split:],
            LogisticPredictor().fit(x[:split], y[:split]).predict_proba(x[split:]),
        ),
    ]
    return Table(
        {
            "predictor": [r.name for r in reports],
            "auc": [r.auc for r in reports],
            "brier": [r.brier for r in reports],
            "precision_at_half": [r.precision_at_half for r in reports],
            "recall_at_half": [r.recall_at_half for r in reports],
            "n_test": [r.n_test for r in reports],
        }
    )
