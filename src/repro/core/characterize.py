"""Job-failure characterization: rates by attribute, concentration.

The workhorse of experiments E05–E07: failure rates across numeric
attributes (scale, core-hours) via binning, across categorical ones
(user, project, queue) via grouping, and concentration metrics showing
that failures cluster on few users/projects.
"""

from __future__ import annotations

import numpy as np

from repro.stats import gini
from repro.table import Table

__all__ = [
    "failure_rate_by_category",
    "failure_rate_by_bins",
    "node_count_bins",
    "top_failing",
    "failure_concentration",
    "runtime_summary",
    "wasted_core_hours_by_family",
    "walltime_accuracy",
]


def _with_failed(jobs: Table) -> Table:
    return jobs.with_column("failed", (jobs["exit_status"] != 0).astype(np.int64))


def failure_rate_by_category(jobs: Table, column: str) -> Table:
    """Failure rate per value of a categorical column.

    Returns ``(column, n_jobs, n_failed, failure_rate)``, sorted by job
    count descending.
    """
    annotated = _with_failed(jobs)
    grouped = annotated.group_by(column).agg(failed="sum")
    rates = grouped["failed_sum"] / np.maximum(grouped["count"], 1)
    return (
        grouped.rename({"count": "n_jobs", "failed_sum": "n_failed"})
        .with_column("failure_rate", rates)
        .sort_by("n_jobs", reverse=True)
    )


def node_count_bins(jobs: Table) -> Table:
    """Failure rate per exact allocation size (the node-count ladder)."""
    return failure_rate_by_category(jobs, "allocated_nodes").sort_by(
        "allocated_nodes"
    )


def failure_rate_by_bins(
    jobs: Table, column: str, n_bins: int = 8
) -> Table:
    """Failure rate across log-spaced bins of a positive numeric column.

    Returns ``(bin_low, bin_high, n_jobs, n_failed, failure_rate)`` with
    one row per non-empty bin, ascending.
    """
    values = np.asarray(jobs[column], dtype=np.float64)
    if (values <= 0).any():
        raise ValueError(f"column {column!r} must be strictly positive to log-bin")
    if jobs.n_rows == 0:
        return Table(
            {
                "bin_low": [],
                "bin_high": [],
                "n_jobs": [],
                "n_failed": [],
                "failure_rate": [],
            }
        )
    low, high = values.min() * (1 - 1e-9), values.max() * (1 + 1e-9)
    edges = np.logspace(np.log10(low), np.log10(high), n_bins + 1)
    indices = np.clip(np.digitize(values, edges) - 1, 0, n_bins - 1)
    failed = (jobs["exit_status"] != 0).astype(np.int64)
    rows = {"bin_low": [], "bin_high": [], "n_jobs": [], "n_failed": [], "failure_rate": []}
    for b in range(n_bins):
        mask = indices == b
        n = int(mask.sum())
        if n == 0:
            continue
        n_failed = int(failed[mask].sum())
        rows["bin_low"].append(float(edges[b]))
        rows["bin_high"].append(float(edges[b + 1]))
        rows["n_jobs"].append(n)
        rows["n_failed"].append(n_failed)
        rows["failure_rate"].append(n_failed / n)
    return Table(rows)


def top_failing(jobs: Table, column: str, k: int = 10) -> Table:
    """The k values of ``column`` with the most failed jobs."""
    failed = jobs.filter(jobs["exit_status"] != 0)
    counts = failed.value_counts(column).head(k)
    total = max(int((jobs["exit_status"] != 0).sum()), 1)
    return counts.rename({"count": "n_failed"}).with_column(
        "failure_share", counts["count"] / total
    )


def failure_concentration(jobs: Table, column: str) -> dict[str, float]:
    """How concentrated failures are across values of ``column``.

    Reports the Gini coefficient of per-value failure counts and the
    share of failures owned by the top 1% / 10% of values.
    """
    failed = jobs.filter(jobs["exit_status"] != 0)
    if failed.n_rows == 0:
        raise ValueError("no failed jobs to analyze")
    counts = failed.value_counts(column)["count"].astype(np.float64)
    # Values with zero failures still matter for concentration.
    n_values = len(set(jobs[column].tolist()))
    padded = np.concatenate([counts, np.zeros(n_values - len(counts))])
    ordered = np.sort(padded)[::-1]
    total = ordered.sum()
    top1 = max(1, int(np.ceil(0.01 * n_values)))
    top10 = max(1, int(np.ceil(0.10 * n_values)))
    return {
        "gini": gini(padded),
        "top1pct_share": float(ordered[:top1].sum() / total),
        "top10pct_share": float(ordered[:top10].sum() / total),
        "n_values": n_values,
        "n_values_with_failures": int((padded > 0).sum()),
    }


def walltime_accuracy(jobs: Table) -> Table:
    """How well requested walltimes predict actual runtimes, per outcome.

    Reports quantiles of ``runtime / requested_walltime`` for successful
    and failed jobs plus the share of jobs using less than 10 % of their
    request — the classic observation that users heavily over-request
    (and failed jobs use almost none of their allocation window).
    """
    ratio = (jobs["end_time"] - jobs["start_time"]) / np.maximum(
        jobs["requested_walltime"], 1e-9
    )
    annotated = jobs.with_column("walltime_ratio", ratio)
    rows = {
        "outcome": [], "n": [], "p25": [], "median": [], "p75": [],
        "share_under_10pct": [],
    }
    for label, mask in (
        ("success", jobs["exit_status"] == 0),
        ("failed", jobs["exit_status"] != 0),
    ):
        sub = annotated.filter(mask)
        if sub.n_rows == 0:
            continue
        values = sub["walltime_ratio"]
        rows["outcome"].append(label)
        rows["n"].append(sub.n_rows)
        rows["p25"].append(float(np.percentile(values, 25)))
        rows["median"].append(float(np.median(values)))
        rows["p75"].append(float(np.percentile(values, 75)))
        rows["share_under_10pct"].append(float((values < 0.1).mean()))
    return Table(rows)


def wasted_core_hours_by_family(jobs: Table) -> Table:
    """Core-hours consumed by failed jobs, broken down by exit family.

    The cost side of the characterization: which error classes burn the
    machine time.  Returns ``(family, n_failed, wasted_core_hours,
    share_of_waste, mean_core_hours)`` sorted by waste descending.

    Raises
    ------
    ValueError
        If there are no failed jobs.
    """
    from .exitcodes import classify_column

    failed = jobs.filter(jobs["exit_status"] != 0)
    if failed.n_rows == 0:
        raise ValueError("no failed jobs to analyze")
    annotated = failed.with_column("family", classify_column(failed["exit_status"]))
    grouped = annotated.group_by("family").agg(core_hours="sum")
    total = float(grouped["core_hours_sum"].sum())
    return (
        grouped.rename({"count": "n_failed", "core_hours_sum": "wasted_core_hours"})
        .with_column("share_of_waste", grouped["core_hours_sum"] / total)
        .with_column(
            "mean_core_hours",
            grouped["core_hours_sum"] / np.maximum(grouped["count"], 1),
        )
        .sort_by("wasted_core_hours", reverse=True)
    )


def runtime_summary(jobs: Table) -> Table:
    """Execution-length quantiles for successful vs failed jobs."""
    runtime = jobs["end_time"] - jobs["start_time"]
    annotated = jobs.with_column("runtime", runtime)
    rows = {"outcome": [], "n": [], "p25": [], "median": [], "p75": [], "mean": []}
    for label, mask in (
        ("success", jobs["exit_status"] == 0),
        ("failed", jobs["exit_status"] != 0),
    ):
        sub = annotated.filter(mask)
        if sub.n_rows == 0:
            continue
        values = sub["runtime"]
        rows["outcome"].append(label)
        rows["n"].append(sub.n_rows)
        rows["p25"].append(float(np.percentile(values, 25)))
        rows["median"].append(float(np.median(values)))
        rows["p75"].append(float(np.percentile(values, 75)))
        rows["mean"].append(float(values.mean()))
    return Table(rows)
