"""Cross-log attribution: joining RAS events to job executions.

This is the paper's central methodological device: a RAS event *affects*
a job when it occurs (a) during the job's execution window and (b) on
hardware inside the job's block.  From that join follow the
user-vs-system failure attribution (E03), the per-user event
correlations (E14), and the block annotation of the RAS log.

The join is interval-based: jobs on the same midplane never overlap in
time (the allocator guarantees it), so each (midplane, timestamp) query
has at most one owning job, found by bisection.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.bgq.location import Location
from repro.bgq.machine import MIRA, MachineSpec
from repro.stats import pearson, spearman
from repro.table import Table

__all__ = [
    "event_midplanes",
    "map_events_to_jobs",
    "attribute_failures",
    "attribution_summary",
    "events_per_user",
]

NO_JOB = -1
"""Sentinel job id for events that hit no running job."""


def event_midplanes(locations, spec: MachineSpec = MIRA) -> list[tuple[int, ...]]:
    """Midplane indices covered by each location code.

    Midplane-level and finer codes map to one midplane; rack-level codes
    (power/cooling/clock events) cover every midplane of the rack.
    Parsing is memoized per distinct code — RAS logs repeat locations
    heavily.
    """
    cache: dict[str, tuple[int, ...]] = {}
    out: list[tuple[int, ...]] = []
    for code in locations:
        hit = cache.get(code)
        if hit is None:
            loc = Location.parse(code, spec)
            if loc.midplane is not None:
                hit = (loc.midplane_index(spec),)
            else:
                rack = spec.rack_index(loc.rack)
                base = rack * spec.midplanes_per_rack
                hit = tuple(range(base, base + spec.midplanes_per_rack))
            cache[code] = hit
        out.append(hit)
    return out


class _JobIntervalIndex:
    """Per-midplane (start, end, job_id) intervals with bisection lookup."""

    def __init__(self, jobs: Table, spec: MachineSpec):
        per_midplane: dict[int, list[tuple[float, float, int]]] = {}
        starts = jobs["start_time"]
        ends = jobs["end_time"]
        firsts = jobs["first_midplane"]
        counts = jobs["n_midplanes"]
        ids = jobs["job_id"]
        for i in range(jobs.n_rows):
            for midplane in range(int(firsts[i]), int(firsts[i]) + int(counts[i])):
                per_midplane.setdefault(midplane, []).append(
                    (float(starts[i]), float(ends[i]), int(ids[i]))
                )
        self._starts: dict[int, list[float]] = {}
        self._intervals: dict[int, list[tuple[float, float, int]]] = {}
        for midplane, intervals in per_midplane.items():
            intervals.sort()
            self._intervals[midplane] = intervals
            self._starts[midplane] = [iv[0] for iv in intervals]

    def lookup(self, midplane: int, timestamp: float) -> int:
        starts = self._starts.get(midplane)
        if not starts:
            return NO_JOB
        index = bisect_right(starts, timestamp) - 1
        if index < 0:
            return NO_JOB
        start, end, job_id = self._intervals[midplane][index]
        return job_id if start <= timestamp < end else NO_JOB


def map_events_to_jobs(
    ras: Table, jobs: Table, spec: MachineSpec = MIRA
) -> np.ndarray:
    """Map each RAS event to the job it affected (or :data:`NO_JOB`).

    An event affects a job when its timestamp falls inside the job's
    execution window and its location lies inside the job's block.  A
    rack-level event is charged to the first running job found among the
    rack's midplanes.
    """
    index = _JobIntervalIndex(jobs, spec)
    midplane_sets = event_midplanes(ras["location"], spec)
    timestamps = ras["timestamp"]
    out = np.full(ras.n_rows, NO_JOB, dtype=np.int64)
    for i, (midplanes, timestamp) in enumerate(zip(midplane_sets, timestamps)):
        for midplane in midplanes:
            job_id = index.lookup(midplane, float(timestamp))
            if job_id != NO_JOB:
                out[i] = job_id
                break
    return out


def attribute_failures(
    jobs: Table, fatal_events: Table, spec: MachineSpec = MIRA
) -> Table:
    """Classify each failed job as user- or system-caused.

    A failed job is *system-caused* when at least one FATAL event maps
    into its execution; all other failures are *user-caused*.  Returns
    the failed-job sub-table with an ``attributed`` column.  The input
    ``fatal_events`` should already be restricted to FATAL severity
    (pass a filtered table) — events of other severities would inflate
    the system share.
    """
    failed = jobs.filter(jobs["exit_status"] != 0)
    mapped = map_events_to_jobs(fatal_events, failed, spec)
    hit_jobs = set(int(j) for j in mapped if j != NO_JOB)
    attributed = np.array(
        [
            "system" if int(job_id) in hit_jobs else "user"
            for job_id in failed["job_id"]
        ],
        dtype=object,
    )
    return failed.with_column("attributed", attributed)


def attribution_summary(attributed_failures: Table) -> dict[str, float]:
    """Headline attribution numbers (E03) from :func:`attribute_failures`."""
    n = attributed_failures.n_rows
    n_system = int((attributed_failures["attributed"] == "system").sum())
    n_user = n - n_system
    return {
        "n_failed": n,
        "n_user": n_user,
        "n_system": n_system,
        "user_share": n_user / n if n else float("nan"),
        "system_share": n_system / n if n else float("nan"),
    }


def events_per_user(
    ras: Table, jobs: Table, spec: MachineSpec = MIRA
) -> tuple[Table, dict[str, float]]:
    """Per-user event exposure versus core-hours (E14).

    Maps every event to a job, aggregates hit counts per user alongside
    the user's total core-hours, and reports Pearson/Spearman
    correlations between the two — the paper's "RAS events affecting
    job executions exhibit a high correlation with users and
    core-hours".
    """
    mapped = map_events_to_jobs(ras, jobs, spec)
    hit = ras.with_column("job_id", mapped).filter(mapped != NO_JOB)
    per_job = hit.group_by("job_id").size().rename({"count": "n_events"})
    jobs_with_events = jobs.join(
        per_job.select(["job_id", "n_events"]), on="job_id", how="left"
    )
    n_events = np.maximum(jobs_with_events["n_events"], 0)
    jobs_with_events = jobs_with_events.with_column("n_events", n_events)
    per_user = (
        jobs_with_events.group_by("user")
        .agg(n_events="sum", core_hours="sum")
        .rename({"n_events_sum": "n_events", "core_hours_sum": "core_hours"})
    )
    correlations = {
        "pearson": pearson(per_user["core_hours"], per_user["n_events"]),
        "spearman": spearman(per_user["core_hours"], per_user["n_events"]),
    }
    return per_user, correlations
