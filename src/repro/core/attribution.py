"""Cross-log attribution: joining RAS events to job executions.

This is the paper's central methodological device: a RAS event *affects*
a job when it occurs (a) during the job's execution window and (b) on
hardware inside the job's block.  From that join follow the
user-vs-system failure attribution (E03), the per-user event
correlations (E14), and the block annotation of the RAS log.

The join is interval-based: jobs on the same midplane never overlap in
time (the allocator guarantees it), so each (midplane, timestamp) query
has at most one owning job.  The index flattens every job into
per-midplane intervals sorted by ``(midplane, start)`` and resolves all
queries in a single :func:`np.searchsorted` pass — no per-event Python
loop, which is what keeps the full 2001-day trace tractable.
"""

from __future__ import annotations

import numpy as np

from repro.bgq.location import Location
from repro.bgq.machine import MachineSpec
from repro.stats import pearson, spearman
from repro.table import Table
from repro.table.column import factorize
from repro.util.chunking import chunk_rows, iter_slices

try:  # tracing is optional: without repro.obs the kernel runs untraced
    from repro.obs.trace import span as trace_span
except ImportError:  # pragma: no cover - exercised by the obs-less drill

    class _SpanOff:
        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            return False

        def note(self, **attrs):
            return None

    _SPAN_OFF = _SpanOff()

    def trace_span(name, **attrs):
        return _SPAN_OFF


__all__ = [
    "event_midplanes",
    "event_midplane_spans",
    "map_events_to_jobs",
    "attribute_failures",
    "attribution_summary",
    "events_per_user",
]

NO_JOB = -1
"""Sentinel job id for events that hit no running job."""


def _hex_digit_values(chars: np.ndarray) -> np.ndarray:
    """Codepoints → hex digit values; -1 where not an uppercase hex digit."""
    values = np.full(chars.shape, -1, dtype=np.int64)
    decimal = (chars >= 48) & (chars <= 57)
    values[decimal] = chars[decimal].astype(np.int64) - 48
    upper = (chars >= 65) & (chars <= 70)
    values[upper] = chars[upper].astype(np.int64) - 55
    return values


def _parse_unique_spans(
    uniques: np.ndarray, spec: MachineSpec
) -> tuple[np.ndarray, np.ndarray]:
    """``(first_midplane, n_midplanes)`` for each distinct location code.

    The canonical grammar (``Rxx[-Md[-Nnn[-Jnn[-Cnn]]]]`` with
    range-checked fields) is verified on a codepoint matrix — one
    vectorized pass over all distinct codes instead of one regex parse
    per code.  Anything the fast path rejects goes through
    :meth:`Location.parse`, which either handles it or raises the
    canonical :class:`~repro.errors.LocationError`.
    """
    n = len(uniques)
    first = np.empty(n, dtype=np.int64)
    count = np.empty(n, dtype=np.int64)
    fixed = uniques.astype(str)
    width = fixed.dtype.itemsize // 4
    if n == 0 or width == 0:
        slow = np.arange(n)
    else:
        chars = np.ascontiguousarray(fixed).view(np.uint32).reshape(n, width)

        def column(i: int) -> np.ndarray:
            return chars[:, i] if i < width else np.zeros(n, dtype=np.uint32)

        def decimal_digit(i: int) -> np.ndarray:
            c = column(i)
            return np.where((c >= 48) & (c <= 57), c.astype(np.int64) - 48, -1)

        nonzero = chars != 0
        lengths = width - nonzero[:, ::-1].argmax(axis=1)
        clean = nonzero.sum(axis=1) == lengths  # no embedded NULs
        row = _hex_digit_values(column(1))
        col = _hex_digit_values(column(2))
        rack_ok = (
            clean
            & (lengths >= 3)
            & (column(0) == ord("R"))
            & (row >= 0)
            & (row < spec.rack_rows)
            & (col >= 0)
            & (col < spec.rack_columns)
        )
        rack = row * spec.rack_columns + col
        midplane = decimal_digit(5)
        mp_ok = (
            rack_ok
            & (lengths >= 6)
            & (column(3) == ord("-"))
            & (column(4) == ord("M"))
            & (midplane >= 0)
            & (midplane < spec.midplanes_per_rack)
        )
        # Optional deeper levels: each must nest inside the previous one
        # and stay in range, exactly like Location.parse + validate.
        depth_ok = mp_ok
        valid = rack_ok & (lengths == 3) | (mp_ok & (lengths == 6))
        for offset, letter, bound in (
            (6, "N", spec.node_boards_per_midplane),
            (10, "J", spec.nodes_per_node_board),
            (14, "C", spec.cores_per_node),
        ):
            tens, ones = decimal_digit(offset + 2), decimal_digit(offset + 3)
            value = tens * 10 + ones
            depth_ok = (
                depth_ok
                & (lengths >= offset + 4)
                & (column(offset) == ord("-"))
                & (column(offset + 1) == ord(letter))
                & (tens >= 0)
                & (ones >= 0)
                & (value < bound)
            )
            valid |= depth_ok & (lengths == offset + 4)
        is_rack_level = valid & (lengths == 3)
        has_midplane = valid & ~is_rack_level
        first[has_midplane] = (
            rack[has_midplane] * spec.midplanes_per_rack + midplane[has_midplane]
        )
        count[has_midplane] = 1
        first[is_rack_level] = rack[is_rack_level] * spec.midplanes_per_rack
        count[is_rack_level] = spec.midplanes_per_rack
        slow = np.flatnonzero(~valid)
    for i in slow:
        loc = Location.parse(uniques[i], spec)
        if loc.midplane is not None:
            first[i] = loc.midplane_index(spec)
            count[i] = 1
        else:
            first[i] = spec.rack_index(loc.rack) * spec.midplanes_per_rack
            count[i] = spec.midplanes_per_rack
    return first, count


def event_midplane_spans(
    locations, spec: MachineSpec
) -> tuple[np.ndarray, np.ndarray]:
    """Midplane coverage of each location code as ``(first, count)`` arrays.

    Every covered span is contiguous: midplane-level and finer codes map
    to one midplane (``count == 1``); rack-level codes (power/cooling/
    clock events) cover every midplane of the rack.  Locations are
    factorized so each distinct code — RAS logs repeat locations heavily
    — is parsed exactly once, and the distinct codes themselves parse as
    one vectorized pass (:func:`_parse_unique_spans`).
    """
    arr = np.asarray(locations, dtype=object)
    codes, uniques = factorize(arr)
    first, count = _parse_unique_spans(uniques, spec)
    return first[codes], count[codes]


def event_midplanes(locations, spec: MachineSpec) -> list[tuple[int, ...]]:
    """Midplane indices covered by each location code, as tuples.

    Compatibility wrapper around :func:`event_midplane_spans` for
    callers that want per-event tuples rather than flat arrays.
    """
    first, count = event_midplane_spans(locations, spec)
    return [
        tuple(range(f, f + c)) for f, c in zip(first.tolist(), count.tolist())
    ]


def _within_offsets(counts: np.ndarray) -> np.ndarray:
    """``[0..c0-1, 0..c1-1, ...]`` — offsets inside each repeated span."""
    total = int(counts.sum())
    return np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )


class _JobIntervalIndex:
    """Flattened per-midplane job intervals with one-pass batch lookup.

    Jobs are expanded to one interval per covered midplane
    (``np.repeat``), then sorted by ``(midplane, start, end, job_id)``.
    :meth:`lookup_many` ranks all float timestamps through one shared
    ``np.unique`` so the ``(midplane, start)`` composite keys are exact
    integers — the float comparisons of the old bisection are preserved
    bit-for-bit — and resolves every query with a single
    ``np.searchsorted`` over the flat key array.
    """

    def __init__(self, jobs: Table, spec: MachineSpec):
        n = jobs.n_rows
        if n:
            counts = np.asarray(jobs["n_midplanes"], dtype=np.int64)
            firsts = np.asarray(jobs["first_midplane"], dtype=np.int64)
            midplanes = np.repeat(firsts, counts) + _within_offsets(counts)
            starts = np.repeat(
                np.asarray(jobs["start_time"], dtype=np.float64), counts
            )
            ends = np.repeat(np.asarray(jobs["end_time"], dtype=np.float64), counts)
            ids = np.repeat(np.asarray(jobs["job_id"], dtype=np.int64), counts)
            order = np.lexsort((ids, ends, starts, midplanes))
            self._midplanes = midplanes[order]
            self._starts = starts[order]
            self._ends = ends[order]
            self._ids = ids[order]
        else:
            self._midplanes = np.empty(0, dtype=np.int64)
            self._starts = np.empty(0, dtype=np.float64)
            self._ends = np.empty(0, dtype=np.float64)
            self._ids = np.empty(0, dtype=np.int64)

    def lookup_many(self, midplanes: np.ndarray, timestamps: np.ndarray) -> np.ndarray:
        """Owning job id for each ``(midplane, timestamp)`` query row."""
        if self._midplanes.size == 0 or midplanes.size == 0:
            return np.full(midplanes.size, NO_JOB, dtype=np.int64)
        ranks = np.unique(np.concatenate((self._starts, timestamps)))
        radix = np.int64(ranks.size + 1)
        keys = self._midplanes * radix + np.searchsorted(ranks, self._starts)
        query_keys = midplanes * radix + np.searchsorted(ranks, timestamps)
        pos = np.searchsorted(keys, query_keys, side="right") - 1
        safe = np.maximum(pos, 0)
        hit = (
            (pos >= 0)
            & (self._midplanes[safe] == midplanes)
            & (timestamps < self._ends[safe])
        )
        return np.where(hit, self._ids[safe], NO_JOB)


def map_events_to_jobs(
    ras: Table, jobs: Table, spec: MachineSpec
) -> np.ndarray:
    """Map each RAS event to the job it affected (or :data:`NO_JOB`).

    An event affects a job when its timestamp falls inside the job's
    execution window and its location lies inside the job's block.  A
    rack-level event is charged to the first running job found among the
    rack's midplanes.  Events expand to one query per covered midplane
    (``np.repeat``), all queries resolve in one ``searchsorted`` pass,
    and the first midplane-order hit per event wins — identical
    semantics to the old per-event bisection loop.

    When ``REPRO_CHUNK_ROWS`` is set, events stream through the join in
    chunks: the interval index is built once, but the repeat expansion
    and rank arrays only ever cover one chunk of events, bounding the
    working set on fleet-scale traces.  The output is bit-identical to
    the single-pass join — the timestamp ranking only ever compares job
    starts against query timestamps pairwise, so it is insensitive to
    which other timestamps share the batch.
    """
    size = chunk_rows()
    chunked = 0 < size < ras.n_rows
    with trace_span(
        "kernel.attribution",
        n_events=ras.n_rows,
        n_jobs=jobs.n_rows,
        chunked=chunked,
    ):
        first, count = event_midplane_spans(ras["location"], spec)
        out = np.full(ras.n_rows, NO_JOB, dtype=np.int64)
        if ras.n_rows == 0 or jobs.n_rows == 0:
            return out
        index = _JobIntervalIndex(jobs, spec)
        timestamps = np.asarray(ras["timestamp"], dtype=np.float64)
        spans = (
            iter_slices(ras.n_rows, size) if chunked else [(0, ras.n_rows)]
        )
        for lo, hi in spans:
            span_count = count[lo:hi]
            event_index = np.repeat(
                np.arange(hi - lo, dtype=np.int64), span_count
            )
            query_midplanes = (
                np.repeat(first[lo:hi], span_count) + _within_offsets(span_count)
            )
            query_times = np.repeat(timestamps[lo:hi], span_count)
            pair_jobs = index.lookup_many(query_midplanes, query_times)
            hits = np.flatnonzero(pair_jobs != NO_JOB)
            if hits.size:
                # event_index is non-decreasing, so return_index picks
                # each event's first hit in midplane order — the loop's
                # `break`.
                hit_events, first_hit = np.unique(
                    event_index[hits], return_index=True
                )
                out[lo + hit_events] = pair_jobs[hits[first_hit]]
        return out


def attribute_failures(
    jobs: Table, fatal_events: Table, spec: MachineSpec
) -> Table:
    """Classify each failed job as user- or system-caused.

    A failed job is *system-caused* when at least one FATAL event maps
    into its execution; all other failures are *user-caused*.  Returns
    the failed-job sub-table with an ``attributed`` column.  The input
    ``fatal_events`` should already be restricted to FATAL severity
    (pass a filtered table) — events of other severities would inflate
    the system share.
    """
    failed = jobs.filter(jobs["exit_status"] != 0)
    mapped = map_events_to_jobs(fatal_events, failed, spec)
    is_system = np.isin(failed["job_id"], mapped[mapped != NO_JOB])
    attributed = np.empty(failed.n_rows, dtype=object)
    attributed[:] = "user"
    attributed[is_system] = "system"
    return failed.with_column("attributed", attributed)


def attribution_summary(attributed_failures: Table) -> dict[str, float]:
    """Headline attribution numbers (E03) from :func:`attribute_failures`."""
    n = attributed_failures.n_rows
    n_system = int((attributed_failures["attributed"] == "system").sum())
    n_user = n - n_system
    return {
        "n_failed": n,
        "n_user": n_user,
        "n_system": n_system,
        "user_share": n_user / n if n else float("nan"),
        "system_share": n_system / n if n else float("nan"),
    }


def events_per_user(
    ras: Table, jobs: Table, spec: MachineSpec
) -> tuple[Table, dict[str, float]]:
    """Per-user event exposure versus core-hours (E14).

    Maps every event to a job, aggregates hit counts per user alongside
    the user's total core-hours, and reports Pearson/Spearman
    correlations between the two — the paper's "RAS events affecting
    job executions exhibit a high correlation with users and
    core-hours".
    """
    mapped = map_events_to_jobs(ras, jobs, spec)
    hit = ras.with_column("job_id", mapped).filter(mapped != NO_JOB)
    per_job = hit.group_by("job_id").size().rename({"count": "n_events"})
    jobs_with_events = jobs.join(
        per_job.select(["job_id", "n_events"]), on="job_id", how="left"
    )
    n_events = np.maximum(jobs_with_events["n_events"], 0)
    jobs_with_events = jobs_with_events.with_column("n_events", n_events)
    per_user = (
        jobs_with_events.group_by("user")
        .agg(n_events="sum", core_hours="sum")
        .rename({"n_events_sum": "n_events", "core_hours_sum": "core_hours"})
    )
    correlations = {
        "pearson": pearson(per_user["core_hours"], per_user["n_events"]),
        "spearman": spearman(per_user["core_hours"], per_user["n_events"]),
    }
    return per_user, correlations
