"""Interruption-interval analysis.

The abstract reads: "The best-fitting distributions of a failed job's
execution length *(or interruption interval)* include Weibull, Pareto,
inverse Gaussian, and Erlang/exponential".  This module covers the
parenthetical: the gaps between consecutive system interruptions
(filtered fatal clusters) are themselves fitted against the candidate
set.

Because the synthetic incident process is homogeneous Poisson, the
expected winner on synthetic data is the exponential (Erlang k=1)
family — which the experiment reports and tests pin.  On a real trace
the same code reveals whichever clustering/aging behaviour the machine
actually had.
"""

from __future__ import annotations

import numpy as np

from repro.core.fitting import FitReport, fit_all
from repro.errors import FitError
from repro.table import Table

__all__ = ["interruption_intervals", "fit_interruption_intervals"]

SECONDS_PER_DAY = 86_400.0


def interruption_intervals(clusters: Table) -> np.ndarray:
    """Gaps (days) between consecutive filtered interruptions.

    Raises
    ------
    ValueError
        With fewer than two clusters (no interval exists).
    """
    if clusters.n_rows < 2:
        raise ValueError("need at least two interruptions for intervals")
    timestamps = np.sort(np.asarray(clusters["first_timestamp"], dtype=np.float64))
    gaps = np.diff(timestamps) / SECONDS_PER_DAY
    return gaps[gaps > 0]


def fit_interruption_intervals(clusters: Table) -> list[FitReport]:
    """Fit every candidate family to the interruption intervals.

    Returns reports sorted by KS statistic (see
    :func:`repro.core.fitting.fit_all`).

    Raises
    ------
    FitError
        When too few intervals exist to fit (fewer than 8).
    """
    gaps = interruption_intervals(clusters)
    if gaps.size < 8:
        raise FitError(f"only {gaps.size} interruption intervals; need >= 8")
    return fit_all(gaps)
