"""I/O behaviour of failed versus successful jobs (E15).

Joins the Darshan-style I/O log with job outcomes and contrasts the two
populations: volume per core-hour (failed jobs die before writing their
output), I/O intensity, and a KS test on the write-volume
distributions.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sps

from repro.table import Table

__all__ = ["io_by_outcome", "io_volume_vs_corehours", "io_throughput_by_scale"]


def io_by_outcome(io: Table, jobs: Table) -> tuple[Table, dict[str, float]]:
    """Per-outcome I/O summary plus a two-sample KS test.

    Returns a table ``(outcome, n, median_read, median_written,
    median_write_per_ch, median_io_intensity)`` and a dict with the KS
    statistic/p-value comparing write-per-core-hour of failed vs
    successful jobs.

    Raises
    ------
    ValueError
        When the join yields no profiles for either outcome.
    """
    joined = io.join(
        jobs.select(["job_id", "exit_status", "core_hours"]), on="job_id"
    )
    if joined.n_rows == 0:
        raise ValueError("no I/O profiles match the job log")
    write_per_ch = joined["bytes_written"] / np.maximum(joined["core_hours"], 1e-9)
    intensity = joined["io_time"] / np.maximum(joined["runtime"], 1e-9)
    annotated = joined.with_column("write_per_ch", write_per_ch).with_column(
        "io_intensity", intensity
    )
    rows = {
        "outcome": [], "n": [], "median_read": [], "median_written": [],
        "median_write_per_ch": [], "median_io_intensity": [],
    }
    samples: dict[str, np.ndarray] = {}
    for label, mask in (
        ("success", annotated["exit_status"] == 0),
        ("failed", annotated["exit_status"] != 0),
    ):
        sub = annotated.filter(mask)
        if sub.n_rows == 0:
            raise ValueError(f"no I/O profiles for {label} jobs")
        samples[label] = sub["write_per_ch"]
        rows["outcome"].append(label)
        rows["n"].append(sub.n_rows)
        rows["median_read"].append(float(np.median(sub["bytes_read"])))
        rows["median_written"].append(float(np.median(sub["bytes_written"])))
        rows["median_write_per_ch"].append(float(np.median(sub["write_per_ch"])))
        rows["median_io_intensity"].append(float(np.median(sub["io_intensity"])))
    ks = sps.ks_2samp(samples["success"], samples["failed"])
    return Table(rows), {"ks_statistic": float(ks.statistic), "p_value": float(ks.pvalue)}


def io_throughput_by_scale(io: Table, jobs: Table) -> Table:
    """Median aggregate I/O throughput per job-size rung.

    Throughput is total transferred bytes over the time spent in I/O —
    the paper's I/O characterization angle of whether larger jobs move
    data proportionally faster.  Returns ``(allocated_nodes, n,
    median_throughput_mbs, median_bytes_per_node)``.
    """
    joined = io.join(jobs.select(["job_id", "allocated_nodes"]), on="job_id")
    if joined.n_rows == 0:
        raise ValueError("no I/O profiles match the job log")
    total = joined["bytes_read"] + joined["bytes_written"]
    throughput = total / np.maximum(joined["io_time"], 1.0) / 1e6  # MB/s
    per_node = total / np.maximum(joined["allocated_nodes"], 1)
    annotated = joined.with_column("throughput", throughput).with_column(
        "bytes_per_node", per_node
    )
    rows = {"allocated_nodes": [], "n": [], "median_throughput_mbs": [],
            "median_bytes_per_node": []}
    for size in sorted(set(annotated["allocated_nodes"].tolist())):
        sub = annotated.filter(annotated["allocated_nodes"] == size)
        rows["allocated_nodes"].append(size)
        rows["n"].append(sub.n_rows)
        rows["median_throughput_mbs"].append(float(np.median(sub["throughput"])))
        rows["median_bytes_per_node"].append(float(np.median(sub["bytes_per_node"])))
    return Table(rows)


def io_volume_vs_corehours(io: Table, jobs: Table, n_bins: int = 6) -> Table:
    """Median total I/O volume across log-spaced core-hour bins."""
    joined = io.join(jobs.select(["job_id", "core_hours"]), on="job_id")
    if joined.n_rows == 0:
        raise ValueError("no I/O profiles match the job log")
    core_hours = np.asarray(joined["core_hours"], dtype=np.float64)
    volume = joined["bytes_read"] + joined["bytes_written"]
    low = core_hours.min() * (1 - 1e-9)
    high = core_hours.max() * (1 + 1e-9)
    edges = np.logspace(np.log10(max(low, 1e-9)), np.log10(high), n_bins + 1)
    indices = np.clip(np.digitize(core_hours, edges) - 1, 0, n_bins - 1)
    rows = {"ch_low": [], "ch_high": [], "n": [], "median_bytes": []}
    for b in range(n_bins):
        mask = indices == b
        if not mask.any():
            continue
        rows["ch_low"].append(float(edges[b]))
        rows["ch_high"].append(float(edges[b + 1]))
        rows["n"].append(int(mask.sum()))
        rows["median_bytes"].append(float(np.median(volume[mask])))
    return Table(rows)
