"""Job execution structure: tasks per job versus failure behaviour (E08).

The paper correlates job failures with the job's execution structure —
the number of physical tasks a job launches.  The analysis joins the
job log with the task log, bins by task count, and reports failure
rates per bin plus which task of an ensemble fails.
"""

from __future__ import annotations

import numpy as np

from repro.table import Table

__all__ = ["task_count_bins", "failure_rate_by_task_count", "failing_task_position"]

TASK_BINS = ((1, 1), (2, 4), (5, 8), (9, 16), (17, 32), (33, 128))
"""Inclusive (low, high) bins over intended task counts."""


def task_count_bins(jobs: Table) -> Table:
    """Job and failure counts per task-count bin.

    Returns ``(bin_label, low, high, n_jobs, n_failed, failure_rate)``.
    """
    n_tasks = jobs["n_tasks"]
    failed = (jobs["exit_status"] != 0).astype(np.int64)
    rows = {
        "bin_label": [], "low": [], "high": [],
        "n_jobs": [], "n_failed": [], "failure_rate": [],
    }
    for low, high in TASK_BINS:
        mask = (n_tasks >= low) & (n_tasks <= high)
        n = int(mask.sum())
        if n == 0:
            continue
        n_failed = int(failed[mask].sum())
        rows["bin_label"].append(f"{low}-{high}" if low != high else str(low))
        rows["low"].append(low)
        rows["high"].append(high)
        rows["n_jobs"].append(n)
        rows["n_failed"].append(n_failed)
        rows["failure_rate"].append(n_failed / n)
    return Table(rows)


def failure_rate_by_task_count(jobs: Table) -> tuple[Table, float]:
    """Per-bin failure rates plus the single/multi-task rate ratio."""
    bins = task_count_bins(jobs)
    single = jobs.filter(jobs["n_tasks"] == 1)
    multi = jobs.filter(jobs["n_tasks"] > 1)
    single_rate = (
        float((single["exit_status"] != 0).mean()) if single.n_rows else float("nan")
    )
    multi_rate = (
        float((multi["exit_status"] != 0).mean()) if multi.n_rows else float("nan")
    )
    ratio = multi_rate / single_rate if single_rate else float("inf")
    return bins, ratio


def failing_task_position(tasks: Table) -> Table:
    """Where in an ensemble the failing task sits.

    For failed multi-task jobs, reports the distribution of the failing
    task's relative position (index / (observed tasks - 1)) in quartile
    bins — the paper's observation that ensembles die part-way through.
    """
    failing = tasks.filter(tasks["exit_status"] != 0)
    per_job = tasks.group_by("job_id").agg(task_index="max")
    merged = failing.join(
        per_job.select(["job_id", "task_index_max"]), on="job_id"
    )
    multi = merged.filter(merged["task_index_max"] > 0)
    if multi.n_rows == 0:
        return Table({"position_bin": [], "n": [], "share": []})
    position = multi["task_index"] / multi["task_index_max"]
    edges = np.array([0.0, 0.25, 0.5, 0.75, 1.0 + 1e-9])
    labels = ["0-25%", "25-50%", "50-75%", "75-100%"]
    indices = np.clip(np.digitize(position, edges) - 1, 0, 3)
    counts = np.bincount(indices, minlength=4)
    return Table(
        {
            "position_bin": labels,
            "n": counts,
            "share": counts / counts.sum(),
        }
    )
