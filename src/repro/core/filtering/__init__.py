"""RAS event filtering: temporal, spatial, similarity stages + pipeline."""

from .pipeline import FilterOutcome, FilterPipeline, FilterStage, default_pipeline
from .similarity import jaccard, similarity_filter, tokenize
from .spatial import spatial_filter
from .temporal import CLUSTER_COLUMNS, events_to_clusters, temporal_filter

__all__ = [
    "CLUSTER_COLUMNS",
    "events_to_clusters",
    "temporal_filter",
    "spatial_filter",
    "similarity_filter",
    "tokenize",
    "jaccard",
    "FilterStage",
    "FilterPipeline",
    "FilterOutcome",
    "default_pipeline",
]
