"""Composable filtering pipeline with per-stage accounting.

The E12 experiment reports the reduction factor of each stage
(raw → temporal → spatial → similarity); :class:`FilterPipeline`
composes the stages and records counts so the ablation falls out for
free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bgq.location import Level
from repro.bgq.machine import MachineSpec
from repro.table import Table

from .similarity import similarity_filter
from .spatial import spatial_filter
from .temporal import events_to_clusters, temporal_filter

__all__ = ["FilterStage", "FilterPipeline", "default_pipeline"]


@dataclass(frozen=True)
class FilterStage:
    """A named table→table filtering stage."""

    name: str
    apply: Callable[[Table], Table]


@dataclass(frozen=True)
class FilterOutcome:
    """Result of running a pipeline over an event table."""

    clusters: Table
    stage_counts: list[tuple[str, int]]  # (stage name, clusters after stage)

    @property
    def n_clusters(self) -> int:
        """Clusters surviving the full pipeline."""
        return self.clusters.n_rows

    def reduction_factors(self) -> list[tuple[str, float]]:
        """Per-stage compression: count_before / count_after."""
        out = []
        for (_, before), (name, after) in zip(self.stage_counts, self.stage_counts[1:]):
            out.append((name, before / after if after else float("inf")))
        return out

    @property
    def total_reduction(self) -> float:
        """Raw events per surviving cluster."""
        raw = self.stage_counts[0][1]
        return raw / self.n_clusters if self.n_clusters else float("inf")


class FilterPipeline:
    """An ordered sequence of filtering stages."""

    def __init__(self, stages: list[FilterStage]):
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.stages = stages

    def run(self, events: Table) -> FilterOutcome:
        """Apply all stages to a FATAL event table."""
        clusters = events_to_clusters(events)
        counts = [("raw", clusters.n_rows)]
        for stage in self.stages:
            clusters = stage.apply(clusters)
            counts.append((stage.name, clusters.n_rows))
        return FilterOutcome(clusters=clusters, stage_counts=counts)


def default_pipeline(
    temporal_window: float = 3600.0,
    spatial_window: float = 3600.0,
    similarity_window: float = 3600.0,
    similarity_threshold: float = 0.5,
    spatial_level: Level = Level.MIDPLANE,
    *,
    spec: MachineSpec,
) -> FilterPipeline:
    """The paper's three-stage filter: temporal → spatial → similarity."""
    return FilterPipeline(
        [
            FilterStage(
                "temporal", lambda t: temporal_filter(t, temporal_window)
            ),
            FilterStage(
                "spatial",
                lambda t: spatial_filter(
                    t, spatial_window, level=spatial_level, spec=spec
                ),
            ),
            FilterStage(
                "similarity",
                lambda t: similarity_filter(
                    t, similarity_window, similarity_threshold
                ),
            ),
        ]
    )
