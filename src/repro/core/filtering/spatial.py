"""Spatial compression of FATAL event clusters.

A fault fans out across neighboring hardware: the same message fires on
several compute cards of one node board or midplane within seconds.
Spatial filtering merges clusters that share a message ID, are close in
time, and whose locations fall inside the same enclosing unit (midplane
by default) — the second of the paper's filtering stages.
"""

from __future__ import annotations

from repro.bgq.location import Level, Location
from repro.bgq.machine import MachineSpec
from repro.table import Table

from .temporal import CLUSTER_COLUMNS

__all__ = ["spatial_filter"]


def _enclosing(code: str, level: Level, spec: MachineSpec, cache: dict) -> str:
    key = (code, level)
    hit = cache.get(key)
    if hit is None:
        loc = Location.parse(code, spec)
        hit = loc.ancestor(min(level, loc.level, key=lambda l: l.value)).code
        cache[key] = hit
    return hit


def spatial_filter(
    clusters: Table,
    window_seconds: float = 3600.0,
    level: Level = Level.MIDPLANE,
    *,
    spec: MachineSpec,
) -> Table:
    """Merge same-message clusters inside one ``level`` unit and window.

    Clusters are grouped by (msg_id, enclosing location at ``level``)
    and merged when the time gap between consecutive clusters is at
    most ``window_seconds``.  The representative location is the
    *enclosing* unit (the fault is a unit-level fault once it fans out).

    Raises
    ------
    ValueError
        For a non-positive window.
    """
    if window_seconds <= 0:
        raise ValueError(f"window must be positive, got {window_seconds}")
    if clusters.n_rows == 0:
        return clusters
    cache: dict = {}
    enclosing = [
        _enclosing(code, level, spec, cache) for code in clusters["location"]
    ]
    lifted = clusters.with_column("_unit", enclosing)
    merged_rows: dict[str, list] = {c: [] for c in CLUSTER_COLUMNS}
    for _, group in lifted.group_by("msg_id", "_unit").groups():
        ordered = group.sort_by("first_timestamp")
        firsts = ordered["first_timestamp"]
        lasts = ordered["last_timestamp"]
        counts = ordered["n_events"]
        run_start = 0
        running_last = float(lasts[0]) if ordered.n_rows else 0.0
        for i in range(1, ordered.n_rows + 1):
            boundary = i == ordered.n_rows or (
                float(firsts[i]) - running_last > window_seconds
            )
            if boundary:
                merged_rows["first_timestamp"].append(float(firsts[run_start]))
                merged_rows["last_timestamp"].append(running_last)
                merged_rows["msg_id"].append(ordered["msg_id"][run_start])
                merged_rows["location"].append(ordered["_unit"][run_start])
                merged_rows["message"].append(ordered["message"][run_start])
                merged_rows["n_events"].append(int(counts[run_start:i].sum()))
                run_start = i
                if i < ordered.n_rows:
                    running_last = float(lasts[i])
            else:
                running_last = max(running_last, float(lasts[i]))
    return Table(merged_rows).sort_by("first_timestamp")
