"""Similarity-based compression of FATAL event clusters.

The paper's final and strongest filter: two records describe the same
interruption when their *message texts* are similar enough and they are
close in time — regardless of message ID or exact location.  We use
token-set Jaccard similarity over the rendered message (numeric payload
slots differ between duplicates; the fixed template vocabulary carries
the similarity), with a greedy single-pass clustering in time order.
"""

from __future__ import annotations

import re

import numpy as np

from repro.table import Table

from .temporal import CLUSTER_COLUMNS

__all__ = ["tokenize", "jaccard", "similarity_filter"]

_TOKEN_RE = re.compile(r"[a-z]{2,}")


def tokenize(message: str) -> frozenset[str]:
    """Lower-cased alphabetic tokens of a message (payload digits drop out)."""
    return frozenset(_TOKEN_RE.findall(message.lower()))


def jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    """Jaccard similarity of two token sets (1.0 for two empty sets)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def similarity_filter(
    clusters: Table,
    window_seconds: float = 3600.0,
    threshold: float = 0.5,
) -> Table:
    """Greedy merge of message-similar clusters within a time window.

    Scanning clusters in time order, each is compared against the open
    clusters whose last event is within ``window_seconds``; it joins the
    first one whose representative message has Jaccard similarity >=
    ``threshold``, else opens a new cluster.

    Raises
    ------
    ValueError
        For a threshold outside [0, 1] or non-positive window.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    if window_seconds <= 0:
        raise ValueError(f"window must be positive, got {window_seconds}")
    if clusters.n_rows == 0:
        return clusters
    ordered = clusters.sort_by("first_timestamp")
    firsts = ordered["first_timestamp"]
    lasts = ordered["last_timestamp"]
    counts = ordered["n_events"]
    messages = ordered["message"]

    open_clusters: list[dict] = []
    closed: list[dict] = []

    for i in range(ordered.n_rows):
        timestamp = float(firsts[i])
        tokens = tokenize(messages[i])
        # Retire clusters that fell out of the window.
        still_open = []
        for cluster in open_clusters:
            if timestamp - cluster["last_timestamp"] > window_seconds:
                closed.append(cluster)
            else:
                still_open.append(cluster)
        open_clusters = still_open

        joined = None
        for cluster in open_clusters:
            if jaccard(tokens, cluster["tokens"]) >= threshold:
                joined = cluster
                break
        if joined is not None:
            joined["last_timestamp"] = max(
                joined["last_timestamp"], float(lasts[i])
            )
            joined["n_events"] += int(counts[i])
        else:
            open_clusters.append(
                {
                    "first_timestamp": timestamp,
                    "last_timestamp": float(lasts[i]),
                    "msg_id": ordered["msg_id"][i],
                    "location": ordered["location"][i],
                    "message": messages[i],
                    "tokens": tokens,
                    "n_events": int(counts[i]),
                }
            )
    closed.extend(open_clusters)
    closed.sort(key=lambda c: c["first_timestamp"])
    return Table(
        {column: [c[column] for c in closed] for column in CLUSTER_COLUMNS}
    )
