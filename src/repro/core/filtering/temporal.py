"""Temporal compression of the FATAL event stream.

One physical fault floods the RAS log with near-identical records over
minutes.  Temporal filtering collapses runs of events that share a
message ID *and* a location and are separated by no more than a gap
window into a single cluster — the first and coarsest of the paper's
three filtering stages.

All filtering stages share one tabular cluster schema (see
:data:`CLUSTER_COLUMNS`): filtering is composition of table→table
functions, so stages chain in any order.
"""

from __future__ import annotations

import numpy as np

from repro.table import Table

__all__ = ["CLUSTER_COLUMNS", "events_to_clusters", "temporal_filter"]

CLUSTER_COLUMNS = [
    "first_timestamp",
    "last_timestamp",
    "msg_id",
    "location",
    "message",
    "n_events",
]
"""Schema shared by every filtering stage (representative = first event)."""


def events_to_clusters(events: Table) -> Table:
    """Lift raw events into singleton clusters (the identity stage)."""
    return Table(
        {
            "first_timestamp": events["timestamp"],
            "last_timestamp": events["timestamp"],
            "msg_id": events["msg_id"],
            "location": events["location"],
            "message": events["message"],
            "n_events": np.ones(events.n_rows, dtype=np.int64),
        }
    )


def temporal_filter(clusters: Table, window_seconds: float = 3600.0) -> Table:
    """Merge same-(msg_id, location) clusters separated by <= window.

    Input and output follow :data:`CLUSTER_COLUMNS`.  The output is
    sorted by ``first_timestamp``.

    Raises
    ------
    ValueError
        For a non-positive window.
    """
    if window_seconds <= 0:
        raise ValueError(f"window must be positive, got {window_seconds}")
    if clusters.n_rows == 0:
        return clusters
    merged_rows: dict[str, list] = {c: [] for c in CLUSTER_COLUMNS}
    for _, group in clusters.group_by("msg_id", "location").groups():
        ordered = group.sort_by("first_timestamp")
        firsts = ordered["first_timestamp"]
        lasts = ordered["last_timestamp"]
        counts = ordered["n_events"]
        messages = ordered["message"]
        run_start = 0
        for i in range(1, ordered.n_rows + 1):
            boundary = i == ordered.n_rows or (
                firsts[i] - lasts[i - 1] > window_seconds
            )
            if boundary:
                merged_rows["first_timestamp"].append(float(firsts[run_start]))
                merged_rows["last_timestamp"].append(float(lasts[i - 1]))
                merged_rows["msg_id"].append(ordered["msg_id"][run_start])
                merged_rows["location"].append(ordered["location"][run_start])
                merged_rows["message"].append(messages[run_start])
                merged_rows["n_events"].append(int(counts[run_start:i].sum()))
                run_start = i
    return Table(merged_rows).sort_by("first_timestamp")
