"""User behavioral analysis: failure repetition and learning.

The paper attributes 99.4 % of failures to user behaviour (bugs, wrong
configuration, misoperations); this module characterizes that behaviour
over time:

* **Repetition** — is a job more likely to fail when the user's
  *previous* job failed?  (Debug-resubmit cycles make consecutive
  failures highly correlated.)
* **Run length** — the distribution of consecutive-failure streak
  lengths per user.
* **Learning** — does a user's failure rate decline with experience
  (position in their own submission history)?
"""

from __future__ import annotations

import numpy as np

from repro.table import Table

__all__ = ["failure_repetition", "failure_streaks", "learning_curve"]


def _per_user_sequences(jobs: Table) -> dict[str, np.ndarray]:
    ordered = jobs.sort_by("submit_time")
    sequences: dict[str, list[int]] = {}
    for user, status in zip(ordered["user"], ordered["exit_status"]):
        sequences.setdefault(user, []).append(int(status != 0))
    return {u: np.asarray(s, dtype=np.int64) for u, s in sequences.items()}


def failure_repetition(jobs: Table) -> dict[str, float]:
    """Conditional failure probabilities given the previous outcome.

    Returns ``p_fail_after_fail``, ``p_fail_after_success``, their
    ratio (the repetition factor), and the transition counts.  Pairs are
    formed within each user's own chronological sequence.

    Raises
    ------
    ValueError
        If no user has two or more jobs.
    """
    after_fail = [0, 0]  # [survived, failed]
    after_success = [0, 0]
    for sequence in _per_user_sequences(jobs).values():
        for previous, current in zip(sequence, sequence[1:]):
            bucket = after_fail if previous else after_success
            bucket[current] += 1
    n_after_fail = sum(after_fail)
    n_after_success = sum(after_success)
    if n_after_fail + n_after_success == 0:
        raise ValueError("no user has two or more jobs")
    p_ff = after_fail[1] / n_after_fail if n_after_fail else float("nan")
    p_sf = after_success[1] / n_after_success if n_after_success else float("nan")
    return {
        "p_fail_after_fail": p_ff,
        "p_fail_after_success": p_sf,
        "repetition_factor": p_ff / p_sf if p_sf else float("inf"),
        "n_after_fail": n_after_fail,
        "n_after_success": n_after_success,
    }


def failure_streaks(jobs: Table, max_length: int = 10) -> Table:
    """Distribution of consecutive-failure streak lengths.

    Returns ``(length, count)`` with streaks longer than ``max_length``
    folded into the last row (labelled ``max_length``).
    """
    counts = np.zeros(max_length + 1, dtype=np.int64)  # index 1..max
    for sequence in _per_user_sequences(jobs).values():
        streak = 0
        for failed in np.append(sequence, 0):  # sentinel closes a streak
            if failed:
                streak += 1
            elif streak:
                counts[min(streak, max_length)] += 1
                streak = 0
    lengths = list(range(1, max_length + 1))
    return Table({"length": lengths, "count": counts[1:]})


def learning_curve(jobs: Table, n_bins: int = 5, min_jobs: int = 20) -> Table:
    """Failure rate versus position in the user's own history.

    Each qualifying user's submissions are split into ``n_bins``
    equal-count phases; the table reports the pooled failure rate per
    phase.  A *declining* curve would indicate users learn; the paper's
    concentration findings suggest they largely do not.
    """
    if n_bins < 2:
        raise ValueError("need at least 2 bins")
    totals = np.zeros(n_bins, dtype=np.int64)
    failures = np.zeros(n_bins, dtype=np.int64)
    for sequence in _per_user_sequences(jobs).values():
        if sequence.size < min_jobs:
            continue
        edges = np.linspace(0, sequence.size, n_bins + 1).astype(int)
        for b in range(n_bins):
            segment = sequence[edges[b] : edges[b + 1]]
            totals[b] += segment.size
            failures[b] += segment.sum()
    with np.errstate(invalid="ignore", divide="ignore"):
        rates = np.where(totals > 0, failures / totals, np.nan)
    return Table(
        {
            "phase": list(range(n_bins)),
            "n_jobs": totals,
            "n_failed": failures,
            "failure_rate": rates,
        }
    )
